//! Integration tests of the sharded backend: the hash-partitioned tree must
//! be indistinguishable from the sequential reference map under arbitrary
//! operation sequences, and the cross-shard move protocol must never lose or
//! duplicate a key under concurrency.

use std::collections::BTreeSet;
use std::sync::Arc;

use proptest::prelude::*;
use speculation_friendly_tree::baselines::SeqMap;
use speculation_friendly_tree::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u8, u8),
    Delete(u8),
    DeleteIf(u8, u8),
    Contains(u8),
    Get(u8),
    Move(u8, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::Insert(k, v)),
        any::<u8>().prop_map(Op::Delete),
        (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::DeleteIf(k, v)),
        any::<u8>().prop_map(Op::Contains),
        any::<u8>().prop_map(Op::Get),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Move(a, b)),
    ]
}

/// Apply one op; booleans/options encode every observable answer.
fn apply<M: TxMap>(map: &M, handle: &mut M::Handle, op: Op) -> (bool, Option<u64>) {
    match op {
        Op::Insert(k, v) => (map.insert(handle, k as u64, v as u64), None),
        Op::Delete(k) => (map.delete(handle, k as u64), None),
        Op::DeleteIf(k, v) => (map.delete_if(handle, k as u64, v as u64), None),
        Op::Contains(k) => (map.contains(handle, k as u64), None),
        Op::Get(k) => (true, map.get(handle, k as u64)),
        Op::Move(a, b) => (map.move_entry(handle, a as u64, b as u64), None),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn sharded_tree_matches_the_sequential_map(
        ops in proptest::collection::vec(op_strategy(), 1..150),
        shards in 1usize..6,
    ) {
        let sharded = ShardedMap::optimized(shards, StmConfig::ctl());
        let mut sharded_handle = sharded.register_sharded();
        let oracle = SeqMap::new();
        let oracle_stm = Stm::default_config();
        let mut oracle_handle = TxMap::register(&oracle, oracle_stm.register());

        for (index, &op) in ops.iter().enumerate() {
            let got = apply(&sharded, &mut sharded_handle, op);
            let want = apply(&oracle, &mut oracle_handle, op);
            prop_assert_eq!(got, want, "answer diverged at op {} ({:?})", index, op);
        }

        // Final contents must agree key-for-key, and so must the sizes.
        for key in 0u64..256 {
            prop_assert_eq!(
                sharded.get(&mut sharded_handle, key),
                oracle.get_direct(key),
                "final contents diverged at key {}",
                key
            );
        }
        prop_assert_eq!(sharded.len_quiescent(), TxMap::len_quiescent(&oracle));
    }
}

/// Token-conservation under concurrent cross-shard moves: a fixed ring of
/// slots holds a fixed set of tokens; every thread randomly moves tokens
/// between slots. An atomic move conserves the token count (it only succeeds
/// when the source is occupied and the destination is free), so a lost or
/// duplicated key would change the slot occupancy or the value multiset.
#[test]
fn concurrent_cross_shard_moves_never_lose_or_duplicate_keys() {
    const SLOTS: u64 = 64;
    const THREADS: u64 = 4;
    const MOVES_PER_THREAD: u64 = 3_000;

    let map = Arc::new(ShardedMap::optimized(8, StmConfig::ctl()));
    let mut handle = map.register_sharded();
    let initial_tokens: BTreeSet<u64> = (0..SLOTS).step_by(4).collect();
    for &slot in &initial_tokens {
        assert!(map.insert(&mut handle, slot, slot + 1_000));
    }

    // Sanity: the ring really spans several shards.
    let shards_used: BTreeSet<usize> = (0..SLOTS).map(|k| map.shard_of(k)).collect();
    assert!(shards_used.len() > 1, "ring must span multiple shards");

    let movers: Vec<_> = (0..THREADS)
        .map(|thread| {
            let map = Arc::clone(&map);
            std::thread::spawn(move || {
                let mut handle = map.register_sharded();
                let mut state = 0x9e37_79b9u64.wrapping_mul(thread + 1) | 1;
                let mut rand = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                let mut successes = 0u64;
                for _ in 0..MOVES_PER_THREAD {
                    let from = rand() % SLOTS;
                    let to = rand() % SLOTS;
                    if map.move_entry(&mut handle, from, to) {
                        successes += 1;
                    }
                }
                successes
            })
        })
        .collect();

    // A reader hammers membership tests while the movers run; its answers
    // are not checked (any interleaving is legal), it exists to race the
    // move protocol's window.
    let reader = {
        let map = Arc::clone(&map);
        std::thread::spawn(move || {
            let mut handle = map.register_sharded();
            let mut seen_any = false;
            for round in 0..20_000u64 {
                seen_any |= map.contains(&mut handle, round % SLOTS);
            }
            seen_any
        })
    };

    let total_moves: u64 = movers.into_iter().map(|t| t.join().unwrap()).sum();
    assert!(reader.join().unwrap(), "reader never observed a token");
    assert!(total_moves > 0, "no move ever succeeded");

    // Conservation: same number of tokens, same value multiset, nothing
    // outside the ring. The scan is a quiescent check, so park the shard
    // rotators first — a membership probe racing a rotation is not part of
    // what this test asserts.
    let _quiesced = map.pause_maintenance();
    let final_slots: Vec<u64> = (0..SLOTS)
        .filter(|&slot| map.contains(&mut handle, slot))
        .collect();
    assert_eq!(
        final_slots.len(),
        initial_tokens.len(),
        "token count changed: {final_slots:?}"
    );
    let final_values: BTreeSet<u64> = final_slots
        .iter()
        .map(|&slot| map.get(&mut handle, slot).expect("slot vanished mid-check"))
        .collect();
    let expected_values: BTreeSet<u64> = initial_tokens.iter().map(|&s| s + 1_000).collect();
    assert_eq!(final_values, expected_values, "value multiset changed");
    assert_eq!(map.len_quiescent(), initial_tokens.len());
}

/// Value-level accounting under a fully mixed concurrent workload — the test
/// the movers-only conservation check cannot replace (a blind source delete
/// in the move protocol destroys a *value* while keeping entry counts
/// balanced, so counting entries is not enough). Every inserted value is
/// globally unique and deletions go through observed-value compare-and-delete
/// ([`TxMap::delete_if`]), so each thread knows exactly *which* values it
/// inserted and removed. At the end, the surviving value set must equal
/// `inserted − deleted`: a move that silently destroys a concurrent write
/// leaves a value in `inserted − deleted` that no longer exists; a leaked
/// duplicate or mis-targeted rollback leaves a survivor outside it.
#[test]
fn mixed_concurrent_ops_keep_value_level_accounting() {
    // Independent rounds with a fresh map amplify the detection odds: the
    // race windows are microseconds wide, so any single round can miss a
    // regression that several rounds catch reliably.
    for round in 0..4 {
        mixed_value_accounting_round(round);
    }
}

fn mixed_value_accounting_round(round: u64) {
    // Few, hot slots: the protocol's race windows (get-to-delete on the
    // source, insert-to-retract on the destination) only open when another
    // thread rewrites the same key within microseconds, so contention is
    // deliberately extreme.
    const SLOTS: u64 = 12;
    const THREADS: u64 = 8;
    const OPS_PER_THREAD: u64 = 12_000;

    let map = Arc::new(ShardedMap::optimized(8, StmConfig::ctl()));
    let workers: Vec<_> = (0..THREADS)
        .map(|thread| {
            let map = Arc::clone(&map);
            std::thread::spawn(move || {
                let mut handle = map.register_sharded();
                let mut state = 0xdead_beefu64
                    .wrapping_mul(thread + 1)
                    .wrapping_add(round * 0x1234_5677)
                    | 1;
                let mut rand = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                let mut next_value = thread * 1_000_000_000;
                let mut inserted = BTreeSet::new();
                let mut deleted = BTreeSet::new();
                for _ in 0..OPS_PER_THREAD {
                    let key = rand() % SLOTS;
                    match rand() % 4 {
                        0 | 1 => {
                            next_value += 1;
                            if map.insert(&mut handle, key, next_value) {
                                inserted.insert(next_value);
                            }
                        }
                        2 => {
                            // Observed-value delete: read, then remove only
                            // that value, so the thread knows which value it
                            // consumed even when a move races in between.
                            if let Some(value) = map.get(&mut handle, key) {
                                if map.delete_if(&mut handle, key, value) {
                                    deleted.insert(value);
                                }
                            }
                        }
                        _ => {
                            let to = rand() % SLOTS;
                            map.move_entry(&mut handle, key, to);
                        }
                    }
                }
                (inserted, deleted)
            })
        })
        .collect();

    let mut inserted = BTreeSet::new();
    let mut deleted = BTreeSet::new();
    for worker in workers {
        let (i, d) = worker.join().unwrap();
        inserted.extend(i);
        deleted.extend(d);
    }
    assert!(
        !inserted.is_empty() && !deleted.is_empty(),
        "workload degenerated"
    );

    let mut handle = map.register_sharded();
    let _quiesced = map.pause_maintenance();
    let survivors: BTreeSet<u64> = (0..SLOTS)
        .filter_map(|slot| map.get(&mut handle, slot))
        .collect();
    let expected: BTreeSet<u64> = inserted.difference(&deleted).copied().collect();
    assert_eq!(
        survivors,
        expected,
        "value accounting broke: destroyed = {:?}, leaked = {:?}",
        expected.difference(&survivors).collect::<Vec<_>>(),
        survivors.difference(&expected).collect::<Vec<_>>()
    );
    assert_eq!(map.len_quiescent(), survivors.len());
}

/// Concurrent movers with disjoint token sets but shared shards: every
/// thread's tokens must all survive with their values intact.
#[test]
fn concurrent_disjoint_moves_preserve_every_token() {
    const THREADS: u64 = 4;
    const TOKENS_PER_THREAD: u64 = 32;
    const ROUNDS: u64 = 400;

    let map = Arc::new(ShardedMap::optimized(4, StmConfig::ctl()));
    let workers: Vec<_> = (0..THREADS)
        .map(|thread| {
            let map = Arc::clone(&map);
            std::thread::spawn(move || {
                let mut handle = map.register_sharded();
                // Thread-private key namespace: key = thread * stride + slot.
                let base = thread * 1_000_000;
                let mut keys: Vec<u64> = (0..TOKENS_PER_THREAD).map(|t| base + t).collect();
                for (token, &key) in keys.iter().enumerate() {
                    assert!(map.insert(&mut handle, key, thread * 100 + token as u64));
                }
                let mut state = thread.wrapping_mul(0x5851_f42d_4c95_7f2d) | 1;
                let mut rand = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                for round in 0..ROUNDS {
                    let token = (rand() % TOKENS_PER_THREAD) as usize;
                    let to = base + TOKENS_PER_THREAD + (round * TOKENS_PER_THREAD) + rand() % 512;
                    if map.move_entry(&mut handle, keys[token], to) {
                        keys[token] = to;
                    }
                }
                (thread, keys)
            })
        })
        .collect();

    let mut handle = map.register_sharded();
    let _quiesced = map.pause_maintenance();
    let mut total = 0usize;
    for worker in workers {
        let (thread, keys) = worker.join().unwrap();
        let values: BTreeSet<u64> = keys
            .iter()
            .map(|&key| {
                map.get(&mut handle, key)
                    .unwrap_or_else(|| panic!("thread {thread} lost key {key}"))
            })
            .collect();
        let expected: BTreeSet<u64> = (0..TOKENS_PER_THREAD).map(|t| thread * 100 + t).collect();
        assert_eq!(values, expected, "thread {thread} values corrupted");
        total += keys.len();
    }
    assert_eq!(map.len_quiescent(), total, "stray or missing keys remain");
}
