//! End-to-end integration of the vacation application over different
//! directory trees: the reservation invariants must hold after concurrent
//! client runs, whichever tree backs the tables.

use std::sync::Arc;

use speculation_friendly_tree::baselines::{NoRestructureTree, RedBlackTree, SeqMap};
use speculation_friendly_tree::prelude::*;
use speculation_friendly_tree::vacation::{run_vacation, DirectoryMap, VacationResult};

fn small_params(clients: usize) -> VacationParams {
    VacationParams {
        clients,
        queries_per_transaction: 4,
        query_range_percent: 70,
        percent_user: 85,
        num_relations: 96,
        num_transactions: 1_200,
        seed: 2024,
    }
}

fn run_on<D: DirectoryMap + Default>(clients: usize) -> (Arc<Manager<D>>, VacationResult) {
    let stm = Stm::default_config();
    let manager = Arc::new(Manager::<D>::new());
    let result = run_vacation(&stm, &manager, &small_params(clients));
    (manager, result)
}

#[test]
fn vacation_on_sequential_directories_is_consistent() {
    let (manager, result) = run_on::<SeqMap>(1);
    assert_eq!(result.transactions, 1_200);
    manager.check_consistency().unwrap();
}

#[test]
fn vacation_on_red_black_directories_is_consistent_under_concurrency() {
    let (manager, result) = run_on::<RedBlackTree>(3);
    assert_eq!(result.transactions, 1_200);
    assert!(result.stm.commits >= result.transactions);
    manager.check_consistency().unwrap();
}

#[test]
fn vacation_on_nr_directories_is_consistent_under_concurrency() {
    let (manager, _) = run_on::<NoRestructureTree>(3);
    manager.check_consistency().unwrap();
}

#[test]
fn vacation_on_speculation_friendly_directories_with_maintenance() {
    let stm = Stm::default_config();
    let manager = Arc::new(Manager::<OptSpecFriendlyTree>::new());
    let maintenance: Vec<_> = ReservationKind::ALL
        .iter()
        .map(|kind| manager.table(*kind).start_maintenance(stm.register()))
        .collect();
    let result = run_vacation(&stm, &manager, &small_params(3));
    drop(maintenance);
    assert_eq!(result.transactions, 1_200);
    manager.check_consistency().unwrap();
    // Every directory is still a valid BST after background restructuring.
    for kind in ReservationKind::ALL {
        manager.table(kind).inspect().check_consistency().unwrap();
    }
}

#[test]
fn identical_seeds_give_identical_sequential_outcomes_across_directory_types() {
    // With a single client the transaction stream is deterministic, so two
    // different tree types must end with exactly the same table contents.
    let (seq, _) = run_on::<SeqMap>(1);
    let (rb, _) = run_on::<RedBlackTree>(1);
    for kind in ReservationKind::ALL {
        let a: Vec<u64> = seq
            .table(kind)
            .entries_quiescent()
            .iter()
            .map(|(k, _)| *k)
            .collect();
        let b: Vec<u64> = rb
            .table(kind)
            .entries_quiescent()
            .iter()
            .map(|(k, _)| *k)
            .collect();
        assert_eq!(a, b, "{kind:?} directories diverged between tree types");
    }
}
