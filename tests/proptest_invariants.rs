//! Property-based tests over the core data structures: arbitrary operation
//! sequences must keep every tree equivalent to a model `BTreeMap`, and the
//! background maintenance must preserve the abstraction while restoring
//! balance.

use std::collections::BTreeMap;

use proptest::prelude::*;
use speculation_friendly_tree::baselines::{AvlTree, RedBlackTree};
use speculation_friendly_tree::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(u8, u8),
    Delete(u8),
    Contains(u8),
    Move(u8, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::Insert(k, v)),
        any::<u8>().prop_map(Op::Delete),
        any::<u8>().prop_map(Op::Contains),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Move(a, b)),
    ]
}

fn run_model(ops: &[Op]) -> (Vec<bool>, BTreeMap<u64, u64>) {
    let mut model = BTreeMap::new();
    let answers = ops
        .iter()
        .map(|op| match *op {
            Op::Insert(k, v) => {
                let (k, v) = (k as u64, v as u64);
                if let std::collections::btree_map::Entry::Vacant(e) = model.entry(k) {
                    e.insert(v);
                    true
                } else {
                    false
                }
            }
            Op::Delete(k) => model.remove(&(k as u64)).is_some(),
            Op::Contains(k) => model.contains_key(&(k as u64)),
            Op::Move(from, to) => {
                let (from, to) = (from as u64, to as u64);
                if from == to {
                    model.contains_key(&from)
                } else if model.contains_key(&from) && !model.contains_key(&to) {
                    let v = model.remove(&from).unwrap();
                    model.insert(to, v);
                    true
                } else {
                    false
                }
            }
        })
        .collect();
    (answers, model)
}

fn run_tree<M: TxMap>(tree: &M, ops: &[Op]) -> Vec<bool> {
    let stm = Stm::default_config();
    let mut handle = tree.register(stm.register());
    ops.iter()
        .map(|op| match *op {
            Op::Insert(k, v) => tree.insert(&mut handle, k as u64, v as u64),
            Op::Delete(k) => tree.delete(&mut handle, k as u64),
            Op::Contains(k) => tree.contains(&mut handle, k as u64),
            Op::Move(from, to) => tree.move_entry(&mut handle, from as u64, to as u64),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn optimized_sf_tree_is_sequentially_equivalent_to_a_map(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let (expected, model) = run_model(&ops);
        let tree = OptSpecFriendlyTree::new();
        let answers = run_tree(&tree, &ops);
        prop_assert_eq!(answers, expected);
        let live: BTreeMap<u64, u64> = tree.inspect().live_entries().into_iter().collect();
        prop_assert_eq!(live, model);
        prop_assert!(tree.inspect().check_consistency().is_ok());
    }

    #[test]
    fn portable_sf_tree_is_sequentially_equivalent_to_a_map(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let (expected, model) = run_model(&ops);
        let tree = SpecFriendlyTree::new();
        let answers = run_tree(&tree, &ops);
        prop_assert_eq!(answers, expected);
        let live: BTreeMap<u64, u64> = tree.inspect().live_entries().into_iter().collect();
        prop_assert_eq!(live, model);
    }

    #[test]
    fn red_black_tree_keeps_its_invariants(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let (expected, _) = run_model(&ops);
        let tree = RedBlackTree::new();
        let answers = run_tree(&tree, &ops);
        prop_assert_eq!(answers, expected);
        prop_assert!(tree.check_invariants().is_ok(), "{:?}", tree.check_invariants());
    }

    #[test]
    fn avl_tree_keeps_its_invariants(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let (expected, _) = run_model(&ops);
        let tree = AvlTree::new();
        let answers = run_tree(&tree, &ops);
        prop_assert_eq!(answers, expected);
        prop_assert!(tree.check_invariants().is_ok(), "{:?}", tree.check_invariants());
    }

    #[test]
    fn maintenance_preserves_the_abstraction_and_restores_balance(
        keys in proptest::collection::btree_set(0u16..4096, 16..200),
        deleted_stride in 2usize..5,
    ) {
        let stm = Stm::default_config();
        let tree = OptSpecFriendlyTree::new();
        let mut handle = tree.register(stm.register());
        let keys: Vec<u64> = keys.into_iter().map(u64::from).collect();
        for &k in &keys {
            tree.insert(&mut handle, k, k + 7);
        }
        let mut expected: BTreeMap<u64, u64> = keys.iter().map(|&k| (k, k + 7)).collect();
        for &k in keys.iter().step_by(deleted_stride) {
            tree.delete(&mut handle, k);
            expected.remove(&k);
        }
        let mut worker = tree.maintenance_worker(stm.register());
        worker.run_until_stable(4096);
        let live: BTreeMap<u64, u64> = tree.inspect().live_entries().into_iter().collect();
        prop_assert_eq!(&live, &expected);
        prop_assert!(tree.inspect().check_consistency().is_ok());
        // The balanced depth must be within a small factor of log2(n).
        let n = tree.inspect().reachable_nodes().max(2);
        let depth = tree.inspect().depth();
        let bound = 2 * (usize::BITS - (n - 1).leading_zeros()) as usize + 2;
        prop_assert!(depth <= bound, "depth {} exceeds bound {} for {} nodes", depth, bound, n);
    }
}
