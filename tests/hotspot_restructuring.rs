//! Hot-key self-adjusting restructuring, end to end.
//!
//! The maintenance thread's hotness-weighted pass must (a) keep the tree a
//! valid BST while mutators run, (b) actually lift hammered keys toward the
//! root, and (c) cost the application threads nothing in aborts relative to
//! the rotation-only maintenance it extends — the counters live outside the
//! STM's read/write sets by construction.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use speculation_friendly_tree::prelude::*;
use speculation_friendly_tree::workloads::{self, Backend};

/// Invariants + depth drop under concurrent load: four threads hammer a
/// small hot set (plus background churn) while a hotspot-enabled maintenance
/// thread restructures.
#[test]
fn hot_passes_preserve_invariants_and_lift_hot_keys_under_load() {
    let stm = Stm::default_config();
    let tree = Arc::new(OptSpecFriendlyTree::new());
    let mut handle = tree.register(stm.register());
    let n: u64 = 512;
    for key in 0..n {
        tree.insert(&mut handle, key, key);
    }
    // Let plain height balancing settle first so the depth comparison below
    // measures the hot lift, not leftover insertion imbalance.
    {
        let mut worker = tree.maintenance_worker(stm.register());
        worker.run_until_stable(256);
    }
    let hot_keys: Vec<u64> = (0..n)
        .max_by_key(|&k| tree.inspect().key_depth(k).unwrap())
        .into_iter()
        .chain([n / 3, 2 * n / 3])
        .collect();
    let depth_before: usize = hot_keys
        .iter()
        .map(|&k| tree.inspect().key_depth(k).unwrap())
        .sum();

    tree.set_hot_sample(1); // record every traversal: deterministic mass
    let maintenance = tree.start_maintenance_with(
        stm.register(),
        MaintenanceConfig {
            pass_delay: std::time::Duration::from_micros(20),
            hotspot_ratio: 2.0,
            hot_min_mass: 16,
            ..MaintenanceConfig::default()
        },
    );
    let stop = Arc::new(AtomicBool::new(false));
    let threads: Vec<_> = (0..4u64)
        .map(|t| {
            let tree = Arc::clone(&tree);
            let hot_keys = hot_keys.clone();
            let stop = Arc::clone(&stop);
            let mut handle = tree.register(stm.register());
            std::thread::spawn(move || {
                for i in 0..30_000u64 {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let k = hot_keys[(i % hot_keys.len() as u64) as usize];
                    tree.get(&mut handle, k);
                    if i % 64 == 0 {
                        // Background churn off the hot set keeps the
                        // maintenance thread busy with ordinary work too.
                        let cold = n + (t * 1_000) + (i % 97);
                        tree.insert(&mut handle, cold, cold);
                        tree.delete(&mut handle, cold);
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    // A few more passes while quiescent let pending lifts land.
    std::thread::sleep(std::time::Duration::from_millis(50));
    maintenance.stop();

    tree.inspect().check_consistency().unwrap();
    let rotations = tree
        .stats()
        .hot_rotations
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(rotations > 0, "hot pass never fired");
    let depth_after: usize = hot_keys
        .iter()
        .map(|&k| tree.inspect().key_depth(k).unwrap())
        .sum();
    assert!(
        depth_after < depth_before,
        "hammered keys did not rise: {depth_before} -> {depth_after}"
    );
    assert_eq!(tree.len_quiescent(), n as usize, "entries lost");
}

/// The `-hot` registry backend under a skewed workload: it must report hot
/// rotations, while its abort ratio stays within noise of the rotation-only
/// twin running the *same* operation streams (same seed, same shape).
#[test]
fn hot_backend_rotates_without_costing_mutator_aborts() {
    let config = WorkloadConfig::paper_default()
        .with_size(1 << 10)
        .with_threads(2)
        .with_update_ratio(0.10)
        .with_zipf_theta(Some(1.2))
        .with_seed(0xbeef)
        .with_run(RunLength::Ops(30_000));

    let plain_backend = Backend::build("sftree-opt", StmConfig::ctl()).unwrap();
    let plain = workloads::populate_and_run_backend(&plain_backend, &config);
    let hot_backend = Backend::build("sftree-opt-hot", StmConfig::ctl()).unwrap();
    let hot = workloads::populate_and_run_backend(&hot_backend, &config);

    assert_eq!(plain.hot.hot_rotations, 0, "rotation-only control");
    assert!(
        hot.hot.hot_rotations > 0,
        "skewed run produced no hot rotations: {:?}",
        hot.hot
    );
    // The access counters are plain relaxed atomics outside every STM read
    // and write set, and hot rotations ride the maintenance thread's usual
    // rotation transactions — so the mutators' abort ratio must not move
    // beyond scheduler noise.
    assert!(
        hot.abort_ratio() <= plain.abort_ratio() + 0.05,
        "hot restructuring cost aborts: {} vs {}",
        hot.abort_ratio(),
        plain.abort_ratio()
    );
    assert_eq!(hot.total_ops, plain.total_ops, "same op budget");
}
