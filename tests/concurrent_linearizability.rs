//! Concurrency integration tests: multi-threaded histories whose outcomes can
//! be checked without recording a full linearization — per-thread disjoint
//! key ranges, token-conservation under moves, and a counting argument for
//! same-key contention — with the background maintenance thread running.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use speculation_friendly_tree::baselines::{AvlTree, RedBlackTree};
use speculation_friendly_tree::prelude::*;

fn maintenance_config() -> MaintenanceConfig {
    MaintenanceConfig {
        pass_delay: Duration::from_micros(20),
        ..MaintenanceConfig::default()
    }
}

#[test]
fn disjoint_ranges_are_preserved_under_concurrency_and_maintenance() {
    let stm = Stm::default_config();
    let tree = Arc::new(OptSpecFriendlyTree::new());
    let maintenance = tree.start_maintenance_with(stm.register(), maintenance_config());
    let workers: Vec<_> = (0..4u64)
        .map(|t| {
            let tree = Arc::clone(&tree);
            let mut handle = tree.register(stm.register());
            std::thread::spawn(move || {
                let base = t * 100_000;
                for i in 0..1_000u64 {
                    assert!(tree.insert(&mut handle, base + i, i));
                }
                for i in (0..1_000u64).step_by(3) {
                    assert!(tree.delete(&mut handle, base + i));
                }
                for i in 0..1_000u64 {
                    let expect = i % 3 != 0;
                    assert_eq!(
                        tree.contains(&mut handle, base + i),
                        expect,
                        "key {}",
                        base + i
                    );
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    maintenance.stop();
    tree.inspect().check_consistency().unwrap();
    let per_thread = 1_000 - 1_000usize.div_ceil(3);
    assert_eq!(tree.len_quiescent(), 4 * per_thread);
}

#[test]
fn same_key_contention_counts_add_up() {
    // All threads fight over a tiny key range; the number of successful
    // inserts minus successful deletes must equal the final size.
    let stm = Stm::default_config();
    let tree = Arc::new(OptSpecFriendlyTree::new());
    let maintenance = tree.start_maintenance_with(stm.register(), maintenance_config());
    let workers: Vec<_> = (0..4u64)
        .map(|t| {
            let tree = Arc::clone(&tree);
            let mut handle = tree.register(stm.register());
            std::thread::spawn(move || {
                let mut inserted = 0i64;
                let mut deleted = 0i64;
                let mut state = 0xabcdef ^ (t + 1);
                let mut rng = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                for _ in 0..2_000 {
                    let key = rng() % 16;
                    if rng() % 2 == 0 {
                        if tree.insert(&mut handle, key, key) {
                            inserted += 1;
                        }
                    } else if tree.delete(&mut handle, key) {
                        deleted += 1;
                    }
                }
                (inserted, deleted)
            })
        })
        .collect();
    let (total_ins, total_del) = workers
        .into_iter()
        .map(|w| w.join().unwrap())
        .fold((0i64, 0i64), |(a, b), (i, d)| (a + i, b + d));
    maintenance.stop();
    tree.inspect().check_consistency().unwrap();
    assert_eq!(
        total_ins - total_del,
        tree.len_quiescent() as i64,
        "successful inserts minus deletes must equal the final size"
    );
}

#[test]
fn token_conservation_under_concurrent_moves() {
    let stm = Stm::default_config();
    let tree = Arc::new(SpecFriendlyTree::new());
    let maintenance = tree.start_maintenance_with(stm.register(), maintenance_config());
    {
        let mut handle = tree.register(stm.register());
        for slot in 0..32u64 {
            if slot % 2 == 0 {
                tree.insert(&mut handle, slot, slot);
            }
        }
    }
    let before = tree.len_quiescent();
    let workers: Vec<_> = (0..3u64)
        .map(|t| {
            let tree = Arc::clone(&tree);
            let mut handle = tree.register(stm.register());
            std::thread::spawn(move || {
                let mut state = 77 ^ t.wrapping_mul(0x9e3779b9);
                let mut rng = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                for _ in 0..1_500 {
                    let from = rng() % 32;
                    let to = rng() % 32;
                    tree.move_entry(&mut handle, from, to);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    maintenance.stop();
    assert_eq!(tree.len_quiescent(), before, "moves must conserve tokens");
    tree.inspect().check_consistency().unwrap();
}

/// Regression probe for the transient membership miss noted after PR 1: a
/// `contains` racing a rotation must never report `false` for a key that is
/// *proven present* (inserted before the probe started and never deleted).
///
/// One prober (the test thread) loops over anchor keys while a single
/// mutator churns the interleaved non-anchor keys with the maintenance
/// thread rotating underneath — 3 threads total, sized for a 1-core host.
/// Any false negative fails immediately.
fn probe_anchored_keys<M>(tree: Arc<M>, stm: &Arc<Stm>, mutator_ops: u64)
where
    M: TxMap + Send + Sync + 'static,
    M::Handle: Send + 'static,
{
    // Anchors occupy every 8th key; the mutator owns the rest.
    let anchors: Vec<u64> = (0..512u64).step_by(8).collect();
    let mut prober = tree.register(stm.register());
    for &k in &anchors {
        assert!(tree.insert(&mut prober, k, k));
    }
    let done = Arc::new(AtomicBool::new(false));
    let mutator = {
        let tree = Arc::clone(&tree);
        let done = Arc::clone(&done);
        let mut handle = tree.register(stm.register());
        std::thread::spawn(move || {
            let mut state = 0x0dd5_eed5_u64;
            let mut rng = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for _ in 0..mutator_ops {
                let key = {
                    let candidate = rng() % 512;
                    // Steer clear of the anchors.
                    if candidate % 8 == 0 {
                        candidate + 1
                    } else {
                        candidate
                    }
                };
                if rng() % 2 == 0 {
                    tree.insert(&mut handle, key, key);
                } else {
                    tree.delete(&mut handle, key);
                }
            }
            done.store(true, Ordering::Relaxed);
        })
    };
    // The prober races the mutator and the rotator until the churn ends,
    // then performs one final full sweep.
    let mut sweeps = 0u64;
    while !done.load(Ordering::Relaxed) || sweeps == 0 {
        for &k in &anchors {
            assert!(
                tree.contains(&mut prober, k),
                "false negative: anchored key {k} reported absent (sweep {sweeps})"
            );
        }
        sweeps += 1;
    }
    mutator.join().unwrap();
    for &k in &anchors {
        assert!(tree.contains(&mut prober, k), "post-churn miss of {k}");
    }
}

#[test]
fn membership_probe_never_misses_anchored_keys_during_rotations() {
    // Clone-based rotations (the optimized tree) are where the suspected
    // probe-vs-rotation race lives; the portable tree's in-place rotations
    // get the same treatment.
    {
        let stm = Stm::default_config();
        let tree = Arc::new(OptSpecFriendlyTree::new());
        let maintenance = tree.start_maintenance_with(
            stm.register(),
            MaintenanceConfig {
                pass_delay: Duration::from_micros(10),
                ..MaintenanceConfig::default()
            },
        );
        probe_anchored_keys(Arc::clone(&tree), &stm, 4_000);
        maintenance.stop();
        tree.inspect().check_consistency().unwrap();
    }
    {
        let stm = Stm::default_config();
        let tree = Arc::new(SpecFriendlyTree::new());
        let maintenance = tree.start_maintenance_with(
            stm.register(),
            MaintenanceConfig {
                pass_delay: Duration::from_micros(10),
                ..MaintenanceConfig::default()
            },
        );
        probe_anchored_keys(Arc::clone(&tree), &stm, 4_000);
        maintenance.stop();
        tree.inspect().check_consistency().unwrap();
    }
}

#[test]
fn baseline_trees_survive_same_key_contention() {
    for which in 0..2 {
        let stm = Stm::default_config();
        let rb = Arc::new(RedBlackTree::new());
        let avl = Arc::new(AvlTree::new());
        let workers: Vec<_> = (0..3u64)
            .map(|t| {
                let rb = Arc::clone(&rb);
                let avl = Arc::clone(&avl);
                let mut ctx = stm.register();
                std::thread::spawn(move || {
                    let mut net = 0i64;
                    let mut state = 0x1234 ^ (t + 1);
                    let mut rng = move || {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        state
                    };
                    for _ in 0..1_000 {
                        let key = rng() % 24;
                        let insert = rng() % 2 == 0;
                        let changed = if which == 0 {
                            if insert {
                                rb.insert(&mut ctx, key, key)
                            } else {
                                rb.delete(&mut ctx, key)
                            }
                        } else if insert {
                            avl.insert(&mut ctx, key, key)
                        } else {
                            avl.delete(&mut ctx, key)
                        };
                        if changed {
                            net += if insert { 1 } else { -1 };
                        }
                    }
                    net
                })
            })
            .collect();
        let net: i64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        if which == 0 {
            rb.check_invariants().unwrap();
            assert_eq!(net, rb.len_quiescent() as i64);
        } else {
            avl.check_invariants().unwrap();
            assert_eq!(net, avl.len_quiescent() as i64);
        }
    }
}
