//! Ordered-map subsystem integration tests: for random operation sequences,
//! `range_collect` on every registered backend (including the sharded
//! compositions) must equal `BTreeMap::range` on the sequential oracle at
//! quiescence, and range scans over a speculation-friendly tree must never
//! observe logically-deleted keys while the maintenance thread is paused
//! mid-backlog.

use std::collections::BTreeMap;

use proptest::prelude::*;
use speculation_friendly_tree::prelude::*;
use speculation_friendly_tree::workloads::Backend;

/// Every registry name the oracle equivalence must cover. Shard counts stay
/// small so one proptest case does not spin up dozens of rotator threads on
/// the 1-core host.
const BACKENDS: &[&str] = &[
    "rbtree",
    "avl",
    "nrtree",
    "seq",
    "ziptree",
    "sftree",
    "sftree-opt",
    "sftree-opt-hot",
    "sftree-sharded2",
    "sftree-opt-sharded3",
];

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u8, u8),
    Delete(u8),
    Move(u8, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::Insert(k, v)),
        any::<u8>().prop_map(Op::Delete),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Move(a, b)),
    ]
}

fn apply_to_oracle(ops: &[Op], oracle: &mut BTreeMap<u64, u64>) {
    for op in ops {
        match *op {
            Op::Insert(k, v) => {
                oracle.entry(k as u64).or_insert(v as u64);
            }
            Op::Delete(k) => {
                oracle.remove(&(k as u64));
            }
            Op::Move(from, to) => {
                let (from, to) = (from as u64, to as u64);
                if from != to && oracle.contains_key(&from) && !oracle.contains_key(&to) {
                    let v = oracle.remove(&from).unwrap();
                    oracle.insert(to, v);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn range_collect_matches_the_btreemap_oracle_on_every_backend(
        ops in proptest::collection::vec(op_strategy(), 1..160),
        lo in 0u64..200,
        width in 0u64..128,
    ) {
        let hi = lo + width;
        let mut oracle = BTreeMap::new();
        apply_to_oracle(&ops, &mut oracle);
        let expected: Vec<(u64, u64)> = oracle.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
        let expected_full: Vec<(u64, u64)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
        for name in BACKENDS {
            let backend = Backend::build(name, StmConfig::ctl()).unwrap();
            let mut session = backend.session();
            for op in &ops {
                match *op {
                    Op::Insert(k, v) => {
                        session.insert(k as u64, v as u64);
                    }
                    Op::Delete(k) => {
                        session.delete(k as u64);
                    }
                    Op::Move(from, to) => {
                        session.move_entry(from as u64, to as u64);
                    }
                }
            }
            prop_assert_eq!(
                session.range_collect(lo, hi),
                expected.clone(),
                "{} diverges from BTreeMap::range({}..={})",
                name,
                lo,
                hi
            );
            prop_assert_eq!(
                session.range_collect(0, u64::MAX),
                expected_full.clone(),
                "{} full scan diverges",
                name
            );
            prop_assert_eq!(session.len(), oracle.len(), "{} len diverges", name);
        }
    }
}

#[test]
fn scans_do_not_observe_logically_deleted_keys_mid_backlog() {
    // The paper-specific subtlety: a deleted key stays physically linked
    // until the maintenance thread removes it. Park the rotator so the
    // backlog cannot drain, then check scans filter every tombstone.
    let stm = Stm::default_config();
    let tree = OptSpecFriendlyTree::new();
    let maintenance = tree.start_maintenance_with(
        stm.register(),
        MaintenanceConfig {
            pass_delay: std::time::Duration::from_micros(20),
            ..MaintenanceConfig::default()
        },
    );
    let mut handle = tree.register(stm.register());
    for k in 0..64u64 {
        assert!(tree.insert(&mut handle, k, k + 100));
    }
    // Park the rotator mid-stream: from here on deletions stay logical.
    let pause = maintenance.pause();
    let reachable_before = tree.inspect().reachable_nodes();
    for k in (1..64u64).step_by(2) {
        assert!(tree.delete(&mut handle, k));
    }
    assert_eq!(
        tree.inspect().reachable_nodes(),
        reachable_before,
        "with the rotator parked, deletions must not unlink anything"
    );
    let expected: Vec<(u64, u64)> = (0..64u64)
        .filter(|k| k % 2 == 0)
        .map(|k| (k, k + 100))
        .collect();
    assert_eq!(tree.range_collect(&mut handle, 0..=u64::MAX), expected);
    assert_eq!(
        tree.range_collect(&mut handle, 10..=20),
        expected
            .iter()
            .copied()
            .filter(|&(k, _)| (10..=20).contains(&k))
            .collect::<Vec<_>>()
    );
    assert_eq!(TxMap::len(&tree, &mut handle), 32);
    // Min/max/successor must skip tombstones too.
    let (min, max, succ) = handle.ctx_mut().atomically(|tx| {
        Ok((
            tree.tx_min(tx)?,
            tree.tx_max(tx)?,
            tree.tx_successor(tx, 0)?,
        ))
    });
    assert_eq!(min, Some((0, 100)));
    assert_eq!(max, Some((62, 162)));
    assert_eq!(succ, Some((2, 102)), "successor of 0 skips deleted key 1");
    drop(pause);
    maintenance.stop();
}

#[test]
fn sharded_range_quiescent_is_exact_and_merge_is_sorted() {
    let map = ShardedMap::optimized(3, StmConfig::ctl());
    let mut handle = map.register_sharded();
    let mut oracle = BTreeMap::new();
    let mut state = 0x5eed_1234_u64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..800 {
        let key = rng() % 512;
        if rng() % 3 == 0 {
            map.delete(&mut handle, key);
            oracle.remove(&key);
        } else {
            let value = rng() % 1000;
            if map.insert(&mut handle, key, value) {
                oracle.insert(key, value);
            }
        }
    }
    let expected: Vec<(u64, u64)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
    assert_eq!(map.range_quiescent(&mut handle, 0..=u64::MAX), expected);
    // The per-shard-atomic mode agrees while no updates run, and sub-ranges
    // come back sorted and filtered.
    assert_eq!(map.range_collect(&mut handle, 0..=u64::MAX), expected);
    let window: Vec<(u64, u64)> = oracle.range(100..=300).map(|(&k, &v)| (k, v)).collect();
    assert_eq!(map.range_collect(&mut handle, 100..=300), window);
    assert_eq!(TxMap::len(&map, &mut handle), oracle.len());
}
