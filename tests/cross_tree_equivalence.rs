//! Cross-crate integration tests: every tree implementation must expose the
//! same abstraction. The same operation sequence applied to each tree and to
//! a `BTreeMap` oracle must produce identical answers and identical final
//! contents.

use std::collections::BTreeMap;
use std::sync::Arc;

use speculation_friendly_tree::baselines::{
    AvlTree, NoRestructureTree, RedBlackTree, SeqMap, ZipTree,
};
use speculation_friendly_tree::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u64, u64),
    Delete(u64),
    Contains(u64),
    Move(u64, u64),
}

fn op_sequence(seed: u64, len: usize, key_range: u64) -> Vec<Op> {
    let mut state = seed | 1;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..len)
        .map(|_| {
            let key = rng() % key_range;
            match rng() % 10 {
                0..=3 => Op::Insert(key, rng() % 1000),
                4..=6 => Op::Delete(key),
                7 => Op::Move(key, rng() % key_range),
                _ => Op::Contains(key),
            }
        })
        .collect()
}

fn apply_to_oracle(ops: &[Op], oracle: &mut BTreeMap<u64, u64>) -> Vec<bool> {
    ops.iter()
        .map(|op| match *op {
            Op::Insert(k, v) => {
                if let std::collections::btree_map::Entry::Vacant(e) = oracle.entry(k) {
                    e.insert(v);
                    true
                } else {
                    false
                }
            }
            Op::Delete(k) => oracle.remove(&k).is_some(),
            Op::Contains(k) => oracle.contains_key(&k),
            Op::Move(from, to) => {
                if from == to {
                    oracle.contains_key(&from)
                } else if oracle.contains_key(&from) && !oracle.contains_key(&to) {
                    let v = oracle.remove(&from).unwrap();
                    oracle.insert(to, v);
                    true
                } else {
                    false
                }
            }
        })
        .collect()
}

fn apply_to_tree<M: TxMap>(ops: &[Op], tree: &M, stm: &Arc<Stm>) -> (Vec<bool>, Vec<(u64, u64)>) {
    let mut handle = tree.register(stm.register());
    let answers = ops
        .iter()
        .map(|op| match *op {
            Op::Insert(k, v) => tree.insert(&mut handle, k, v),
            Op::Delete(k) => tree.delete(&mut handle, k),
            Op::Contains(k) => tree.contains(&mut handle, k),
            Op::Move(from, to) => tree.move_entry(&mut handle, from, to),
        })
        .collect();
    let mut contents = Vec::new();
    for k in 0..200u64 {
        if let Some(v) = tree.get(&mut handle, k) {
            contents.push((k, v));
        }
    }
    (answers, contents)
}

fn check_equivalence<M: TxMap>(tree: M, seed: u64) {
    let stm = Stm::default_config();
    let ops = op_sequence(seed, 800, 200);
    let mut oracle = BTreeMap::new();
    let expected_answers = apply_to_oracle(&ops, &mut oracle);
    let (answers, contents) = apply_to_tree(&ops, &tree, &stm);
    assert_eq!(answers, expected_answers, "{} answers diverge", tree.name());
    let expected_contents: Vec<(u64, u64)> = oracle.into_iter().collect();
    assert_eq!(
        contents,
        expected_contents,
        "{} contents diverge",
        tree.name()
    );
}

#[test]
fn spec_friendly_tree_matches_oracle() {
    check_equivalence(SpecFriendlyTree::new(), 0x1001);
}

#[test]
fn optimized_spec_friendly_tree_matches_oracle() {
    check_equivalence(OptSpecFriendlyTree::new(), 0x2002);
}

#[test]
fn red_black_tree_matches_oracle() {
    check_equivalence(RedBlackTree::new(), 0x3003);
}

#[test]
fn avl_tree_matches_oracle() {
    check_equivalence(AvlTree::new(), 0x4004);
}

#[test]
fn no_restructure_tree_matches_oracle() {
    check_equivalence(NoRestructureTree::new(), 0x5005);
}

#[test]
fn seq_map_matches_oracle() {
    check_equivalence(SeqMap::new(), 0x6006);
}

#[test]
fn zip_tree_matches_oracle() {
    check_equivalence(ZipTree::new(), 0x8008);
}

#[test]
fn optimized_tree_with_maintenance_matches_oracle() {
    // Same equivalence check, but with the background maintenance thread
    // restructuring the tree while the operations run.
    let stm = Stm::default_config();
    let tree = OptSpecFriendlyTree::new();
    let maintenance = tree.start_maintenance_with(
        stm.register(),
        MaintenanceConfig {
            pass_delay: std::time::Duration::from_micros(20),
            ..MaintenanceConfig::default()
        },
    );
    let ops = op_sequence(0x7007, 1_500, 128);
    let mut oracle = BTreeMap::new();
    let expected = apply_to_oracle(&ops, &mut oracle);
    let (answers, contents) = apply_to_tree(&ops, &tree, &stm);
    maintenance.stop();
    assert_eq!(answers, expected);
    let expected_contents: Vec<(u64, u64)> = oracle.into_iter().collect();
    assert_eq!(contents, expected_contents);
    tree.inspect().check_consistency().unwrap();
}
