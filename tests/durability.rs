//! Durability subsystem integration tests.
//!
//! The central property (the PR's acceptance oracle): for a random operation
//! sequence on any `+wal` backend — both speculation-friendly trees, the
//! red-black/AVL/no-restructuring baselines, and the sharded composition —
//! **crash-at-any-point recovery equals the `BTreeMap` oracle of all
//! committed operations**. Because every mutation is acknowledged durable
//! before it returns, "crash after op `i`" is simulated exactly by running
//! `recover` on the live directory after op `i`; the torn-tail tests then
//! cover crashes *inside* a log write by truncating and bit-flipping real
//! segment bytes.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;
use sf_persist::{
    checkpoint_sharded, recover, recover_sharded, sharded_optimized, DurableHandle, DurableMap,
    TempDir, WalOptions,
};
use sf_stm::{Stm, StmConfig};
use sf_tree::maintenance::MaintenanceHandle;
use sf_tree::{TxMap, TxMapVersioned};
use speculation_friendly_tree::baselines::{AvlTree, NoRestructureTree, RedBlackTree};
use speculation_friendly_tree::tree::{OptSpecFriendlyTree, SpecFriendlyTree};

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u8, u8),
    Delete(u8),
    DeleteIf(u8, u8),
    Move(u8, u8),
    Checkpoint,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::Insert(k, v)),
        any::<u8>().prop_map(Op::Delete),
        (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::DeleteIf(k, v)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Move(a, b)),
        (0u8..1).prop_map(|_| Op::Checkpoint),
    ]
}

/// Apply `op` to the oracle with exactly the `TxMap` semantics.
fn apply_to_oracle(op: Op, oracle: &mut BTreeMap<u64, u64>) {
    match op {
        Op::Insert(k, v) => {
            oracle.entry(k as u64).or_insert(v as u64);
        }
        Op::Delete(k) => {
            oracle.remove(&(k as u64));
        }
        Op::DeleteIf(k, v) => {
            if oracle.get(&(k as u64)) == Some(&(v as u64)) {
                oracle.remove(&(k as u64));
            }
        }
        Op::Move(from, to) => {
            let (from, to) = (from as u64, to as u64);
            if from != to && oracle.contains_key(&from) && !oracle.contains_key(&to) {
                let v = oracle.remove(&from).unwrap();
                oracle.insert(to, v);
            }
        }
        Op::Checkpoint => {}
    }
}

fn oracle_entries(oracle: &BTreeMap<u64, u64>) -> Vec<(u64, u64)> {
    oracle.iter().map(|(&k, &v)| (k, v)).collect()
}

/// Everything a plain (non-sharded) durable backend needs for one case.
struct PlainCase<M: TxMapVersioned + 'static> {
    _dir: TempDir,
    dir_path: std::path::PathBuf,
    map: DurableMap<M>,
    handle: DurableHandle<M>,
    _maintenance: Option<MaintenanceHandle>,
    _stm: Arc<Stm>,
}

fn plain_case<M: TxMapVersioned + 'static>(
    label: &str,
    make: impl FnOnce(&Arc<Stm>) -> (Arc<M>, Option<MaintenanceHandle>),
) -> PlainCase<M> {
    let dir = TempDir::new(label);
    let stm = Stm::new(StmConfig::ctl());
    let (inner, maintenance) = make(&stm);
    let (map, _) =
        DurableMap::open(inner, &stm, dir.path(), WalOptions::default()).expect("open WAL");
    let handle = map.register(stm.register());
    let dir_path = dir.path().to_path_buf();
    PlainCase {
        _dir: dir,
        dir_path,
        map,
        handle,
        _maintenance: maintenance,
        _stm: stm,
    }
}

/// Drive `ops` through a plain durable backend, recovering the directory
/// after **every** op and comparing against the oracle.
fn check_plain<M: TxMapVersioned + 'static>(
    label: &str,
    ops: &[Op],
    make: impl FnOnce(&Arc<Stm>) -> (Arc<M>, Option<MaintenanceHandle>),
) {
    let mut case = plain_case(label, make);
    let mut oracle = BTreeMap::new();
    for (i, &op) in ops.iter().enumerate() {
        match op {
            Op::Insert(k, v) => {
                case.map.insert(&mut case.handle, k as u64, v as u64);
            }
            Op::Delete(k) => {
                case.map.delete(&mut case.handle, k as u64);
            }
            Op::DeleteIf(k, v) => {
                case.map.delete_if(&mut case.handle, k as u64, v as u64);
            }
            Op::Move(from, to) => {
                case.map
                    .move_entry(&mut case.handle, from as u64, to as u64);
            }
            Op::Checkpoint => {
                case.map.checkpoint(&mut case.handle).expect("checkpoint");
            }
        }
        apply_to_oracle(op, &mut oracle);
        let recovered = recover(&case.dir_path).expect("recover");
        assert_eq!(
            recovered.entries,
            oracle_entries(&oracle),
            "{label}: crash after op {i} ({op:?}) diverges from the oracle"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]

    #[test]
    fn crash_at_any_point_recovery_matches_the_oracle_on_every_wal_backend(
        ops in proptest::collection::vec(op_strategy(), 1..36),
    ) {
        check_plain("dur-rbtree", &ops, |_| (Arc::new(RedBlackTree::new()), None));
        check_plain("dur-avl", &ops, |_| (Arc::new(AvlTree::new()), None));
        check_plain("dur-nrtree", &ops, |_| (Arc::new(NoRestructureTree::new()), None));
        check_plain("dur-sftree", &ops, |stm| {
            let map = Arc::new(SpecFriendlyTree::new());
            let maintenance = map.start_maintenance(stm.register());
            (map, Some(maintenance))
        });
        check_plain("dur-sftree-opt", &ops, |stm| {
            let map = Arc::new(OptSpecFriendlyTree::new());
            let maintenance = map.start_maintenance(stm.register());
            (map, Some(maintenance))
        });

        // The sharded composition: one log per shard, merged recovery.
        let dir = TempDir::new("dur-sharded");
        let (map, _) = sharded_optimized(2, StmConfig::ctl(), dir.path(), WalOptions::default())
            .expect("open sharded WAL");
        let mut handle = map.register_sharded();
        let mut oracle = BTreeMap::new();
        for (i, &op) in ops.iter().enumerate() {
            match op {
                Op::Insert(k, v) => { map.insert(&mut handle, k as u64, v as u64); }
                Op::Delete(k) => { map.delete(&mut handle, k as u64); }
                Op::DeleteIf(k, v) => { map.delete_if(&mut handle, k as u64, v as u64); }
                Op::Move(from, to) => { map.move_entry(&mut handle, from as u64, to as u64); }
                Op::Checkpoint => { checkpoint_sharded(&map, &mut handle).expect("checkpoint"); }
            }
            apply_to_oracle(op, &mut oracle);
            let recovered = recover_sharded(dir.path(), 2).expect("recover sharded");
            prop_assert_eq!(
                &recovered.entries,
                &oracle_entries(&oracle),
                "sharded: crash after op {} ({:?}) diverges from the oracle",
                i,
                op
            );
        }
    }
}

/// Crash *inside* a log write: truncate and bit-flip a real segment. The
/// recovered state must always be a state the committed history passed
/// through (a prefix of the single-threaded op sequence), never a panic and
/// never a half-applied move.
#[test]
fn torn_tail_recovers_cleanly_to_a_committed_prefix() {
    let mut case = plain_case("dur-torn", |stm| {
        let map = Arc::new(OptSpecFriendlyTree::new());
        let maintenance = map.start_maintenance(stm.register());
        (map, Some(maintenance))
    });
    // A fixed history whose every prefix is distinct, including moves (whose
    // single-record encoding the truncations exercise).
    let ops = [
        Op::Insert(1, 10),
        Op::Insert(2, 20),
        Op::Move(1, 3),
        Op::Insert(1, 11),
        Op::Delete(2),
        Op::Move(3, 2),
        Op::Insert(4, 40),
        Op::DeleteIf(1, 11),
    ];
    let mut oracle = BTreeMap::new();
    let mut snapshots: Vec<Vec<(u64, u64)>> = vec![Vec::new()];
    for &op in &ops {
        match op {
            Op::Insert(k, v) => {
                assert!(case.map.insert(&mut case.handle, k as u64, v as u64));
            }
            Op::Delete(k) => {
                assert!(case.map.delete(&mut case.handle, k as u64));
            }
            Op::DeleteIf(k, v) => {
                assert!(case.map.delete_if(&mut case.handle, k as u64, v as u64));
            }
            Op::Move(from, to) => {
                assert!(case
                    .map
                    .move_entry(&mut case.handle, from as u64, to as u64));
            }
            Op::Checkpoint => unreachable!(),
        }
        apply_to_oracle(op, &mut oracle);
        snapshots.push(oracle_entries(&oracle));
    }
    let segment = case.dir_path.join("segment-00000001.wal");
    let bytes = std::fs::read(&segment).expect("read segment");

    let recovers_to_snapshot = |mutated: &[u8], what: &str| {
        let crash_dir = TempDir::new("dur-torn-crash");
        std::fs::write(crash_dir.path().join("segment-00000001.wal"), mutated)
            .expect("write mutated segment");
        let recovered = recover(crash_dir.path()).expect("recovery must not fail");
        assert!(
            snapshots.contains(&recovered.entries),
            "{what}: recovered {:?} is not a committed prefix state",
            recovered.entries
        );
        recovered
    };

    // Every truncation point (short write at crash).
    let mut shorter_than_full = 0u32;
    for cut in 0..bytes.len() {
        let recovered = recovers_to_snapshot(&bytes[..cut], "truncate");
        if recovered.entries != *snapshots.last().unwrap() {
            shorter_than_full += 1;
        }
    }
    assert!(
        shorter_than_full > 0,
        "some truncation must actually lose a suffix"
    );

    // Bit flips sprinkled through the file (media corruption): recovery
    // stops cleanly at the last valid record before the flip.
    for offset in (0..bytes.len()).step_by(7) {
        let mut mutated = bytes.clone();
        mutated[offset] ^= 0x20;
        recovers_to_snapshot(&mutated, "bit-flip");
    }
}

/// Checkpoint + truncate racing live writers: no committed record may be
/// lost between the snapshot and the log truncation. Every mutation is
/// acknowledged durable, so whatever interleaving the scheduler picks, the
/// final recovery must equal the final live contents exactly.
#[test]
fn checkpoint_truncate_races_concurrent_writers_losslessly() {
    let dir = TempDir::new("dur-ckpt-race");
    let stm = Stm::new(StmConfig::ctl());
    let tree = Arc::new(OptSpecFriendlyTree::new());
    let maintenance = tree.start_maintenance(stm.register());
    let (map, _) = DurableMap::open(
        Arc::clone(&tree),
        &stm,
        dir.path(),
        WalOptions {
            group: 32,
            auto_checkpoint: 0,
        },
    )
    .expect("open WAL");
    let map = Arc::new(map);

    // Memory note: 1-core host — keep this at 2 writers with modest op
    // counts; the interleaving pressure comes from the checkpoint loop.
    let checkpoints = std::thread::scope(|scope| {
        let writers: Vec<_> = (0..2u64)
            .map(|t| {
                let map = Arc::clone(&map);
                let mut handle = map.register(stm.register());
                scope.spawn(move || {
                    let mut state = 0x0dd_b1a5 + t;
                    for _ in 0..250 {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        let key = state % 64;
                        if state % 3 == 0 {
                            map.delete(&mut handle, key);
                        } else {
                            map.insert(&mut handle, key, state);
                        }
                    }
                })
            })
            .collect();
        let mut ckpt_handle = map.register(stm.register());
        let mut checkpoints = 0u32;
        while writers.iter().any(|w| !w.is_finished()) {
            map.checkpoint(&mut ckpt_handle).expect("checkpoint");
            checkpoints += 1;
            std::thread::yield_now();
        }
        for w in writers {
            w.join().expect("writer panicked");
        }
        checkpoints
    });
    assert!(checkpoints > 0);

    let mut handle = map.register(stm.register());
    let live = map.range_collect(&mut handle, 0..=u64::MAX);
    let recovered = recover(dir.path()).expect("recover");
    assert_eq!(
        recovered.entries, live,
        "a committed record was lost between snapshot and truncation"
    );
    assert!(
        recovered.checkpoint_version > 0,
        "at least one checkpoint must have been installed"
    );
    maintenance.stop();
}

/// Automatic checkpoints (SF_WAL_CKPT-style threshold) keep the log short
/// without losing anything.
#[test]
fn auto_checkpoint_truncates_the_log_and_loses_nothing() {
    let dir = TempDir::new("dur-auto-ckpt");
    let stm = Stm::new(StmConfig::ctl());
    let (map, _) = DurableMap::open(
        Arc::new(RedBlackTree::new()),
        &stm,
        dir.path(),
        WalOptions {
            group: 16,
            auto_checkpoint: 25,
        },
    )
    .expect("open WAL");
    let mut handle = map.register(stm.register());
    let mut oracle = BTreeMap::new();
    for k in 0..120u64 {
        map.insert(&mut handle, k % 40, k);
        oracle.entry(k % 40).or_insert(k);
    }
    let recovered = recover(dir.path()).expect("recover");
    assert_eq!(recovered.entries, oracle_entries(&oracle));
    assert!(
        recovered.checkpoint_version > 0,
        "the threshold must have fired at least once"
    );
    assert!(
        map.records_since_checkpoint() < 120,
        "auto-checkpoints must reset the record counter"
    );
}

/// Crash–restart–crash: a torn tail left by the first crash must be
/// *durably* discarded when the directory is reopened, otherwise the second
/// recovery would stumble over the stale corruption and throw away every
/// segment — and every acknowledged write — of the restarted incarnation.
#[test]
fn reopen_repairs_the_torn_tail_so_later_acks_survive_a_second_crash() {
    let dir = TempDir::new("dur-torn-reopen");

    // Incarnation 1 writes two records, then "crashes" mid-append: we chop
    // bytes off the live segment to fabricate the torn tail.
    {
        let stm = Stm::new(StmConfig::ctl());
        let (map, _) = DurableMap::open(
            Arc::new(RedBlackTree::new()),
            &stm,
            dir.path(),
            WalOptions::default(),
        )
        .expect("open");
        let mut handle = map.register(stm.register());
        map.insert(&mut handle, 1, 10);
        map.insert(&mut handle, 2, 20);
    }
    let segment = dir.path().join("segment-00000001.wal");
    let bytes = std::fs::read(&segment).expect("read segment");
    std::fs::write(&segment, &bytes[..bytes.len() - 5]).expect("tear the tail");

    // Incarnation 2: the reopen must repair the tear (key 2's record is
    // gone for good) and resume appending; its mutations are acknowledged.
    {
        let stm = Stm::new(StmConfig::ctl());
        let (map, resumed) = DurableMap::open(
            Arc::new(RedBlackTree::new()),
            &stm,
            dir.path(),
            WalOptions::default(),
        )
        .expect("reopen");
        assert_eq!(resumed.entries, vec![(1, 10)]);
        assert!(resumed.torn_bytes > 0);
        let mut handle = map.register(stm.register());
        assert!(map.insert(&mut handle, 3, 30));
    }

    // Second crash (drop without checkpoint). Recovery must see incarnation
    // 2's acknowledged insert — before the repair fix, the stale torn frame
    // in segment 1 made recovery discard segment 2 wholesale.
    let after = recover(dir.path()).expect("recover after second crash");
    assert_eq!(after.entries, vec![(1, 10), (3, 30)]);
    assert_eq!(after.torn_bytes, 0, "the tear was repaired on reopen");
}

/// A restart continues where the crash left off: recovered contents are
/// loaded, the clock resumes above every logged version (so post-restart
/// mutations replay *after* pre-restart ones), and a second recovery sees
/// the union.
#[test]
fn reopen_resumes_versions_and_contents_across_restarts() {
    let dir = TempDir::new("dur-reopen");

    // Incarnation 1: a few mutations, a checkpoint, one post-checkpoint op.
    {
        let stm = Stm::new(StmConfig::ctl());
        let tree = Arc::new(OptSpecFriendlyTree::new());
        let maintenance = tree.start_maintenance(stm.register());
        let (map, first) =
            DurableMap::open(tree, &stm, dir.path(), WalOptions::default()).expect("open");
        assert_eq!(first.entries.len(), 0, "fresh directory recovers empty");
        let mut handle = map.register(stm.register());
        map.insert(&mut handle, 1, 10);
        map.insert(&mut handle, 2, 20);
        map.checkpoint(&mut handle).expect("checkpoint");
        map.delete(&mut handle, 2);
        maintenance.stop();
    } // clean shutdown: the WAL flushes on drop

    let before = recover(dir.path()).expect("recover");
    assert_eq!(before.entries, vec![(1, 10)]);
    let v1 = before.last_version;
    assert!(v1 > 0);

    // Incarnation 2: reopen over a *fresh* tree and STM.
    let stm = Stm::new(StmConfig::ctl());
    let tree = Arc::new(OptSpecFriendlyTree::new());
    let maintenance = tree.start_maintenance(stm.register());
    let (map, resumed) =
        DurableMap::open(tree, &stm, dir.path(), WalOptions::default()).expect("reopen");
    assert_eq!(resumed.entries, vec![(1, 10)]);
    assert!(
        stm.clock().now() >= v1,
        "the clock must resume above every recovered version"
    );
    let mut handle = map.register(stm.register());
    assert_eq!(map.get(&mut handle, 1), Some(10), "recovered into the tree");
    // This delete must serialize (and log) above v1, or replay would
    // resurrect key 1.
    assert!(map.delete(&mut handle, 1));
    assert!(map.insert(&mut handle, 9, 90));
    let after = recover(dir.path()).expect("recover again");
    assert_eq!(after.entries, vec![(9, 90)]);
    assert!(after.last_version > v1);
    maintenance.stop();
}
