//! Durability subsystem integration tests.
//!
//! The central property (the PR's acceptance oracle): for a random operation
//! sequence on any `+wal` backend — both speculation-friendly trees, the
//! red-black/AVL/no-restructuring baselines, and the sharded composition —
//! **crash-at-any-point recovery equals the `BTreeMap` oracle of all
//! committed operations**. Because every mutation is acknowledged durable
//! before it returns, "crash after op `i`" is simulated exactly by running
//! `recover` on the live directory after op `i`; the torn-tail tests then
//! cover crashes *inside* a log write by truncating and bit-flipping real
//! segment bytes.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;
use sf_persist::record::{read_frame, scan_segment, WalOp};
use sf_persist::{
    checkpoint_sharded, recover, recover_sharded, shard_dir, sharded_optimized, DurableHandle,
    DurableMap, TempDir, WalOptions,
};
use sf_stm::{Stm, StmConfig};
use sf_tree::maintenance::MaintenanceHandle;
use sf_tree::{TxMap, TxMapVersioned};
use speculation_friendly_tree::baselines::{AvlTree, NoRestructureTree, RedBlackTree};
use speculation_friendly_tree::tree::{OptSpecFriendlyTree, SpecFriendlyTree};

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u8, u8),
    Delete(u8),
    DeleteIf(u8, u8),
    Move(u8, u8),
    Checkpoint,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::Insert(k, v)),
        any::<u8>().prop_map(Op::Delete),
        (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::DeleteIf(k, v)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Move(a, b)),
        (0u8..1).prop_map(|_| Op::Checkpoint),
    ]
}

/// Apply `op` to the oracle with exactly the `TxMap` semantics.
fn apply_to_oracle(op: Op, oracle: &mut BTreeMap<u64, u64>) {
    match op {
        Op::Insert(k, v) => {
            oracle.entry(k as u64).or_insert(v as u64);
        }
        Op::Delete(k) => {
            oracle.remove(&(k as u64));
        }
        Op::DeleteIf(k, v) => {
            if oracle.get(&(k as u64)) == Some(&(v as u64)) {
                oracle.remove(&(k as u64));
            }
        }
        Op::Move(from, to) => {
            let (from, to) = (from as u64, to as u64);
            if from != to && oracle.contains_key(&from) && !oracle.contains_key(&to) {
                let v = oracle.remove(&from).unwrap();
                oracle.insert(to, v);
            }
        }
        Op::Checkpoint => {}
    }
}

fn oracle_entries(oracle: &BTreeMap<u64, u64>) -> Vec<(u64, u64)> {
    oracle.iter().map(|(&k, &v)| (k, v)).collect()
}

/// Everything a plain (non-sharded) durable backend needs for one case.
struct PlainCase<M: TxMapVersioned + 'static> {
    _dir: TempDir,
    dir_path: std::path::PathBuf,
    map: DurableMap<M>,
    handle: DurableHandle<M>,
    _maintenance: Option<MaintenanceHandle>,
    _stm: Arc<Stm>,
}

fn plain_case<M: TxMapVersioned + 'static>(
    label: &str,
    make: impl FnOnce(&Arc<Stm>) -> (Arc<M>, Option<MaintenanceHandle>),
) -> PlainCase<M> {
    let dir = TempDir::new(label);
    let stm = Stm::new(StmConfig::ctl());
    let (inner, maintenance) = make(&stm);
    let (map, _) =
        DurableMap::open(inner, &stm, dir.path(), WalOptions::default()).expect("open WAL");
    let handle = map.register(stm.register());
    let dir_path = dir.path().to_path_buf();
    PlainCase {
        _dir: dir,
        dir_path,
        map,
        handle,
        _maintenance: maintenance,
        _stm: stm,
    }
}

/// Drive `ops` through a plain durable backend, recovering the directory
/// after **every** op and comparing against the oracle.
fn check_plain<M: TxMapVersioned + 'static>(
    label: &str,
    ops: &[Op],
    make: impl FnOnce(&Arc<Stm>) -> (Arc<M>, Option<MaintenanceHandle>),
) {
    let mut case = plain_case(label, make);
    let mut oracle = BTreeMap::new();
    for (i, &op) in ops.iter().enumerate() {
        match op {
            Op::Insert(k, v) => {
                case.map.insert(&mut case.handle, k as u64, v as u64);
            }
            Op::Delete(k) => {
                case.map.delete(&mut case.handle, k as u64);
            }
            Op::DeleteIf(k, v) => {
                case.map.delete_if(&mut case.handle, k as u64, v as u64);
            }
            Op::Move(from, to) => {
                case.map
                    .move_entry(&mut case.handle, from as u64, to as u64);
            }
            Op::Checkpoint => {
                case.map.checkpoint(&mut case.handle).expect("checkpoint");
            }
        }
        apply_to_oracle(op, &mut oracle);
        let recovered = recover(&case.dir_path).expect("recover");
        assert_eq!(
            recovered.entries,
            oracle_entries(&oracle),
            "{label}: crash after op {i} ({op:?}) diverges from the oracle"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]

    #[test]
    fn crash_at_any_point_recovery_matches_the_oracle_on_every_wal_backend(
        ops in proptest::collection::vec(op_strategy(), 1..36),
    ) {
        check_plain("dur-rbtree", &ops, |_| (Arc::new(RedBlackTree::new()), None));
        check_plain("dur-avl", &ops, |_| (Arc::new(AvlTree::new()), None));
        check_plain("dur-nrtree", &ops, |_| (Arc::new(NoRestructureTree::new()), None));
        check_plain("dur-sftree", &ops, |stm| {
            let map = Arc::new(SpecFriendlyTree::new());
            let maintenance = map.start_maintenance(stm.register());
            (map, Some(maintenance))
        });
        check_plain("dur-sftree-opt", &ops, |stm| {
            let map = Arc::new(OptSpecFriendlyTree::new());
            let maintenance = map.start_maintenance(stm.register());
            (map, Some(maintenance))
        });

        // The sharded composition: one log per shard, merged recovery.
        let dir = TempDir::new("dur-sharded");
        let (map, _) = sharded_optimized(2, StmConfig::ctl(), dir.path(), WalOptions::default())
            .expect("open sharded WAL");
        let mut handle = map.register_sharded();
        let mut oracle = BTreeMap::new();
        for (i, &op) in ops.iter().enumerate() {
            match op {
                Op::Insert(k, v) => { map.insert(&mut handle, k as u64, v as u64); }
                Op::Delete(k) => { map.delete(&mut handle, k as u64); }
                Op::DeleteIf(k, v) => { map.delete_if(&mut handle, k as u64, v as u64); }
                Op::Move(from, to) => { map.move_entry(&mut handle, from as u64, to as u64); }
                Op::Checkpoint => { checkpoint_sharded(&map, &mut handle).expect("checkpoint"); }
            }
            apply_to_oracle(op, &mut oracle);
            let recovered = recover_sharded(dir.path(), 2).expect("recover sharded");
            prop_assert_eq!(
                &recovered.entries,
                &oracle_entries(&oracle),
                "sharded: crash after op {} ({:?}) diverges from the oracle",
                i,
                op
            );
            // The cross-log move resolution is read-only on committed
            // histories and idempotent: a second recovery sees the same
            // state (completed moves carry their commit markers, so the
            // join never re-judges them).
            let again = recover_sharded(dir.path(), 2).expect("recover sharded again");
            prop_assert_eq!(&again.entries, &recovered.entries);
        }
    }
}

/// Crash *inside* a log write: truncate and bit-flip a real segment. The
/// recovered state must always be a state the committed history passed
/// through (a prefix of the single-threaded op sequence), never a panic and
/// never a half-applied move.
#[test]
fn torn_tail_recovers_cleanly_to_a_committed_prefix() {
    let mut case = plain_case("dur-torn", |stm| {
        let map = Arc::new(OptSpecFriendlyTree::new());
        let maintenance = map.start_maintenance(stm.register());
        (map, Some(maintenance))
    });
    // A fixed history whose every prefix is distinct, including moves (whose
    // single-record encoding the truncations exercise).
    let ops = [
        Op::Insert(1, 10),
        Op::Insert(2, 20),
        Op::Move(1, 3),
        Op::Insert(1, 11),
        Op::Delete(2),
        Op::Move(3, 2),
        Op::Insert(4, 40),
        Op::DeleteIf(1, 11),
    ];
    let mut oracle = BTreeMap::new();
    let mut snapshots: Vec<Vec<(u64, u64)>> = vec![Vec::new()];
    for &op in &ops {
        match op {
            Op::Insert(k, v) => {
                assert!(case.map.insert(&mut case.handle, k as u64, v as u64));
            }
            Op::Delete(k) => {
                assert!(case.map.delete(&mut case.handle, k as u64));
            }
            Op::DeleteIf(k, v) => {
                assert!(case.map.delete_if(&mut case.handle, k as u64, v as u64));
            }
            Op::Move(from, to) => {
                assert!(case
                    .map
                    .move_entry(&mut case.handle, from as u64, to as u64));
            }
            Op::Checkpoint => unreachable!(),
        }
        apply_to_oracle(op, &mut oracle);
        snapshots.push(oracle_entries(&oracle));
    }
    let segment = case.dir_path.join("segment-00000001.wal");
    let bytes = std::fs::read(&segment).expect("read segment");

    let recovers_to_snapshot = |mutated: &[u8], what: &str| {
        let crash_dir = TempDir::new("dur-torn-crash");
        std::fs::write(crash_dir.path().join("segment-00000001.wal"), mutated)
            .expect("write mutated segment");
        let recovered = recover(crash_dir.path()).expect("recovery must not fail");
        assert!(
            snapshots.contains(&recovered.entries),
            "{what}: recovered {:?} is not a committed prefix state",
            recovered.entries
        );
        recovered
    };

    // Every truncation point (short write at crash).
    let mut shorter_than_full = 0u32;
    for cut in 0..bytes.len() {
        let recovered = recovers_to_snapshot(&bytes[..cut], "truncate");
        if recovered.entries != *snapshots.last().unwrap() {
            shorter_than_full += 1;
        }
    }
    assert!(
        shorter_than_full > 0,
        "some truncation must actually lose a suffix"
    );

    // Bit flips sprinkled through the file (media corruption): recovery
    // stops cleanly at the last valid record before the flip.
    for offset in (0..bytes.len()).step_by(7) {
        let mut mutated = bytes.clone();
        mutated[offset] ^= 0x20;
        recovers_to_snapshot(&mutated, "bit-flip");
    }
}

/// Checkpoint + truncate racing live writers: no committed record may be
/// lost between the snapshot and the log truncation. Every mutation is
/// acknowledged durable, so whatever interleaving the scheduler picks, the
/// final recovery must equal the final live contents exactly.
#[test]
fn checkpoint_truncate_races_concurrent_writers_losslessly() {
    let dir = TempDir::new("dur-ckpt-race");
    let stm = Stm::new(StmConfig::ctl());
    let tree = Arc::new(OptSpecFriendlyTree::new());
    let maintenance = tree.start_maintenance(stm.register());
    let (map, _) = DurableMap::open(
        Arc::clone(&tree),
        &stm,
        dir.path(),
        WalOptions {
            group: 32,
            auto_checkpoint: 0,
            ..WalOptions::default()
        },
    )
    .expect("open WAL");
    let map = Arc::new(map);

    // Memory note: 1-core host — keep this at 2 writers with modest op
    // counts; the interleaving pressure comes from the checkpoint loop.
    let checkpoints = std::thread::scope(|scope| {
        let writers: Vec<_> = (0..2u64)
            .map(|t| {
                let map = Arc::clone(&map);
                let mut handle = map.register(stm.register());
                scope.spawn(move || {
                    let mut state = 0x0dd_b1a5 + t;
                    for _ in 0..250 {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        let key = state % 64;
                        if state % 3 == 0 {
                            map.delete(&mut handle, key);
                        } else {
                            map.insert(&mut handle, key, state);
                        }
                    }
                })
            })
            .collect();
        let mut ckpt_handle = map.register(stm.register());
        let mut checkpoints = 0u32;
        while writers.iter().any(|w| !w.is_finished()) {
            map.checkpoint(&mut ckpt_handle).expect("checkpoint");
            checkpoints += 1;
            std::thread::yield_now();
        }
        for w in writers {
            w.join().expect("writer panicked");
        }
        checkpoints
    });
    assert!(checkpoints > 0);

    let mut handle = map.register(stm.register());
    let live = map.range_collect(&mut handle, 0..=u64::MAX);
    let recovered = recover(dir.path()).expect("recover");
    assert_eq!(
        recovered.entries, live,
        "a committed record was lost between snapshot and truncation"
    );
    assert!(
        recovered.checkpoint_version > 0,
        "at least one checkpoint must have been installed"
    );
    maintenance.stop();
}

/// Automatic checkpoints (SF_WAL_CKPT-style threshold) keep the log short
/// without losing anything.
#[test]
fn auto_checkpoint_truncates_the_log_and_loses_nothing() {
    let dir = TempDir::new("dur-auto-ckpt");
    let stm = Stm::new(StmConfig::ctl());
    let (map, _) = DurableMap::open(
        Arc::new(RedBlackTree::new()),
        &stm,
        dir.path(),
        WalOptions {
            group: 16,
            auto_checkpoint: 25,
            ..WalOptions::default()
        },
    )
    .expect("open WAL");
    let mut handle = map.register(stm.register());
    let mut oracle = BTreeMap::new();
    for k in 0..120u64 {
        map.insert(&mut handle, k % 40, k);
        oracle.entry(k % 40).or_insert(k);
    }
    // The trigger runs in the log's writer thread; wait for it to quiesce
    // (counter back under the threshold means the last install completed)
    // before reading the directory underneath the live map.
    wait_until("the size trigger quiesces", || {
        map.records_since_checkpoint() < 25
    });
    let recovered = recover(dir.path()).expect("recover");
    assert_eq!(recovered.entries, oracle_entries(&oracle));
    assert!(
        recovered.checkpoint_version > 0,
        "the threshold must have fired at least once"
    );
    assert!(
        map.records_since_checkpoint() < 120,
        "auto-checkpoints must reset the record counter"
    );
}

/// Poll `condition` for a few seconds, panicking with `what` on timeout.
/// Used for assertions about the asynchronous writer-thread triggers.
fn wait_until(what: &str, mut condition: impl FnMut() -> bool) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !condition() {
        assert!(
            std::time::Instant::now() < deadline,
            "timed out waiting until {what}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}

/// Regression for the PR 5 liveness note: a **pure `move_entry` workload**
/// past the auto-checkpoint threshold must still checkpoint. The move
/// protocol holds both shards' checkpoint locks for the whole move, so the
/// trigger can never run inside it — but the writer thread keeps the
/// trigger *deferred* and retries with a `try_lock` on every wakeup, so the
/// checkpoint fires as soon as the move scope releases the lock.
#[test]
fn pure_move_workload_auto_checkpoints_via_the_deferred_trigger() {
    let dir = TempDir::new("dur-move-auto-ckpt");
    let options = WalOptions {
        group: 8,
        auto_checkpoint: 12,
        ..WalOptions::default()
    };
    let (map, _) =
        sharded_optimized(2, StmConfig::ctl(), dir.path(), options).expect("open sharded WAL");
    let mut handle = map.register_sharded();
    let a = 1u64;
    let b = (2..1000u64)
        .find(|&k| map.shard_of(k) != map.shard_of(a))
        .expect("some key lands on the other shard");
    assert!(map.insert(&mut handle, a, 7));
    // Pure move traffic from here on: bounce the entry between the shards
    // until both logs are far past the size threshold (each move logs an
    // intent + delete + commit marker on the source and an insert on the
    // destination).
    for _ in 0..40 {
        assert!(map.move_entry(&mut handle, a, b));
        assert!(map.move_entry(&mut handle, b, a));
    }
    wait_until("the deferred trigger checkpoints every shard", || {
        (0..2).all(|s| map.shard_map(s).records_since_checkpoint() < 12)
    });
    // The checkpoints truncated the logs without losing the entry.
    let recovered = recover_sharded(dir.path(), 2).expect("recover");
    assert_eq!(recovered.entries, vec![(a, 7)]);
}

/// Crash–restart–crash: a torn tail left by the first crash must be
/// *durably* discarded when the directory is reopened, otherwise the second
/// recovery would stumble over the stale corruption and throw away every
/// segment — and every acknowledged write — of the restarted incarnation.
#[test]
fn reopen_repairs_the_torn_tail_so_later_acks_survive_a_second_crash() {
    let dir = TempDir::new("dur-torn-reopen");

    // Incarnation 1 writes two records, then "crashes" mid-append: we chop
    // bytes off the live segment to fabricate the torn tail.
    {
        let stm = Stm::new(StmConfig::ctl());
        let (map, _) = DurableMap::open(
            Arc::new(RedBlackTree::new()),
            &stm,
            dir.path(),
            WalOptions::default(),
        )
        .expect("open");
        let mut handle = map.register(stm.register());
        map.insert(&mut handle, 1, 10);
        map.insert(&mut handle, 2, 20);
    }
    let segment = dir.path().join("segment-00000001.wal");
    let bytes = std::fs::read(&segment).expect("read segment");
    std::fs::write(&segment, &bytes[..bytes.len() - 5]).expect("tear the tail");

    // Incarnation 2: the reopen must repair the tear (key 2's record is
    // gone for good) and resume appending; its mutations are acknowledged.
    {
        let stm = Stm::new(StmConfig::ctl());
        let (map, resumed) = DurableMap::open(
            Arc::new(RedBlackTree::new()),
            &stm,
            dir.path(),
            WalOptions::default(),
        )
        .expect("reopen");
        assert_eq!(resumed.entries, vec![(1, 10)]);
        assert!(resumed.torn_bytes > 0);
        let mut handle = map.register(stm.register());
        assert!(map.insert(&mut handle, 3, 30));
    }

    // Second crash (drop without checkpoint). Recovery must see incarnation
    // 2's acknowledged insert — before the repair fix, the stale torn frame
    // in segment 1 made recovery discard segment 2 wholesale.
    let after = recover(dir.path()).expect("recover after second crash");
    assert_eq!(after.entries, vec![(1, 10), (3, 30)]);
    assert_eq!(after.torn_bytes, 0, "the tear was repaired on reopen");
}

/// A restart continues where the crash left off: recovered contents are
/// loaded, the clock resumes above every logged version (so post-restart
/// mutations replay *after* pre-restart ones), and a second recovery sees
/// the union.
#[test]
fn reopen_resumes_versions_and_contents_across_restarts() {
    let dir = TempDir::new("dur-reopen");

    // Incarnation 1: a few mutations, a checkpoint, one post-checkpoint op.
    {
        let stm = Stm::new(StmConfig::ctl());
        let tree = Arc::new(OptSpecFriendlyTree::new());
        let maintenance = tree.start_maintenance(stm.register());
        let (map, first) =
            DurableMap::open(tree, &stm, dir.path(), WalOptions::default()).expect("open");
        assert_eq!(first.entries.len(), 0, "fresh directory recovers empty");
        let mut handle = map.register(stm.register());
        map.insert(&mut handle, 1, 10);
        map.insert(&mut handle, 2, 20);
        map.checkpoint(&mut handle).expect("checkpoint");
        map.delete(&mut handle, 2);
        maintenance.stop();
    } // clean shutdown: the WAL flushes on drop

    let before = recover(dir.path()).expect("recover");
    assert_eq!(before.entries, vec![(1, 10)]);
    let v1 = before.last_version;
    assert!(v1 > 0);

    // Incarnation 2: reopen over a *fresh* tree and STM.
    let stm = Stm::new(StmConfig::ctl());
    let tree = Arc::new(OptSpecFriendlyTree::new());
    let maintenance = tree.start_maintenance(stm.register());
    let (map, resumed) =
        DurableMap::open(tree, &stm, dir.path(), WalOptions::default()).expect("reopen");
    assert_eq!(resumed.entries, vec![(1, 10)]);
    assert!(
        stm.clock().now() >= v1,
        "the clock must resume above every recovered version"
    );
    let mut handle = map.register(stm.register());
    assert_eq!(map.get(&mut handle, 1), Some(10), "recovered into the tree");
    // This delete must serialize (and log) above v1, or replay would
    // resurrect key 1.
    assert!(map.delete(&mut handle, 1));
    assert!(map.insert(&mut handle, 9, 90));
    let after = recover(dir.path()).expect("recover again");
    assert_eq!(after.entries, vec![(9, 90)]);
    assert!(after.last_version > v1);
    maintenance.stop();
}

/// A committed cross-shard move fixture: two shard logs captured right
/// after `insert(anchors); insert(a, 7777); move_entry(a, b)` on a fresh
/// 2-shard durable map, with `a` and `b` on different shards.
struct CrossMoveFixture {
    src_shard: usize,
    dst_shard: usize,
    a: u64,
    b: u64,
    anchor_src: u64,
    anchor_dst: u64,
    src_bytes: Vec<u8>,
    dst_bytes: Vec<u8>,
}

const MOVED_VALUE: u64 = 7777;
const ANCHOR_VALUE: u64 = 4242;

fn cross_move_fixture() -> CrossMoveFixture {
    let dir = TempDir::new("dur-xmove-fixture");
    let (map, _) = sharded_optimized(2, StmConfig::ctl(), dir.path(), WalOptions::default())
        .expect("open sharded WAL");
    let mut handle = map.register_sharded();
    let a = 1u64;
    let b = (2..1000u64)
        .find(|&k| map.shard_of(k) != map.shard_of(a))
        .expect("some key lands on the other shard");
    let anchor_src = (b + 1..2000u64)
        .find(|&k| map.shard_of(k) == map.shard_of(a))
        .unwrap();
    let anchor_dst = (b + 1..2000u64)
        .find(|&k| map.shard_of(k) == map.shard_of(b))
        .unwrap();
    // Anchors first, so every interesting cut point keeps them.
    assert!(map.insert(&mut handle, anchor_src, ANCHOR_VALUE));
    assert!(map.insert(&mut handle, anchor_dst, ANCHOR_VALUE));
    assert!(map.insert(&mut handle, a, MOVED_VALUE));
    assert!(map.move_entry(&mut handle, a, b));
    let (src_shard, dst_shard) = (map.shard_of(a), map.shard_of(b));
    drop(handle);
    drop(map);
    let read_segment = |shard: usize| {
        std::fs::read(shard_dir(dir.path(), shard).join("segment-00000001.wal"))
            .expect("read shard segment")
    };
    CrossMoveFixture {
        src_shard,
        dst_shard,
        a,
        b,
        anchor_src,
        anchor_dst,
        src_bytes: read_segment(src_shard),
        dst_bytes: read_segment(dst_shard),
    }
}

/// Frame-boundary offsets of a segment (0, end-of-frame-1, ...).
fn frame_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut boundaries = vec![0usize];
    let mut offset = 0;
    while let Some((_, next)) = read_frame(bytes, offset) {
        boundaries.push(next);
        offset = next;
    }
    boundaries
}

/// Write a fabricated two-shard log state and recover it.
fn recover_fabricated(
    fixture: &CrossMoveFixture,
    src_cut: &[u8],
    dst_cut: &[u8],
) -> std::io::Result<sf_persist::Recovery> {
    let crash = TempDir::new("dur-xmove-crash");
    for (shard, bytes) in [(fixture.src_shard, src_cut), (fixture.dst_shard, dst_cut)] {
        let dir = shard_dir(crash.path(), shard);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("segment-00000001.wal"), bytes).unwrap();
    }
    recover_sharded(crash.path(), 2)
}

/// Crash at any pair of points in the two shard logs: for every
/// *crash-consistent* combination of a source-log cut and a destination-log
/// cut (the protocol fsyncs intent → destination insert → source delete, so
/// a real crash can never keep a later record while losing an earlier one
/// across the logs), the recovered state must hold the moved value at
/// **exactly one** of the two keys — never duplicated, never vanished —
/// and must keep every unrelated committed entry whose record survived.
#[test]
fn cross_shard_move_crash_cuts_recover_exactly_one_copy() {
    let fixture = cross_move_fixture();
    let src_frames = frame_boundaries(&fixture.src_bytes);
    let dst_frames = frame_boundaries(&fixture.dst_bytes);

    // Survival probes for the protocol records of one cut.
    let survived = |bytes: &[u8]| {
        let scan = scan_segment(bytes);
        let mut intent = false;
        let mut insert_half = false;
        let mut delete_half = false;
        for r in &scan.records {
            match r.op {
                WalOp::MoveIntent { .. } => intent = true,
                WalOp::MoveInsert { .. } => insert_half = true,
                WalOp::MoveDelete { .. } => delete_half = true,
                _ => {}
            }
        }
        (intent, insert_half, delete_half)
    };

    // Byte-granular cuts on the source log (torn tails land mid-frame too)
    // against frame-boundary cuts of the destination log, and vice versa.
    let mut cases = 0u32;
    let mut duplicate_window_hit = 0u32;
    let mut check = |src_cut: usize, dst_cut: usize| {
        let src = &fixture.src_bytes[..src_cut];
        let dst = &fixture.dst_bytes[..dst_cut];
        let (src_intent, _, src_delete) = survived(src);
        let (_, dst_insert, _) = survived(dst);
        // Crash consistency: the fsync ordering makes these implications
        // physical law; other combinations cannot come out of a crash.
        if (dst_insert && !src_intent) || (src_delete && !dst_insert) {
            return;
        }
        cases += 1;
        if dst_insert && !src_delete {
            duplicate_window_hit += 1;
        }
        let recovery = recover_fabricated(&fixture, src, dst)
            .unwrap_or_else(|e| panic!("recovery failed at cut ({src_cut},{dst_cut}): {e}"));
        let entries: BTreeMap<u64, u64> = recovery.entries.iter().copied().collect();
        let at_a = entries.get(&fixture.a) == Some(&MOVED_VALUE);
        let at_b = entries.get(&fixture.b) == Some(&MOVED_VALUE);
        // A cut so early that even the original `insert(a)` record is gone
        // simulates a crash before that insert was acknowledged: the value
        // then legitimately exists nowhere. From the moment the insert is
        // durable, the move protocol owes us exactly one copy.
        let insert_a_durable = scan_segment(src)
            .records
            .iter()
            .any(|r| matches!(r.op, WalOp::Insert { key, .. } if key == fixture.a));
        if insert_a_durable || dst_insert {
            assert!(
                at_a ^ at_b,
                "cut ({src_cut},{dst_cut}): moved value at {} of its keys",
                if at_a && at_b { "both" } else { "neither" },
            );
        } else {
            assert!(!at_a && !at_b, "cut ({src_cut},{dst_cut}): ghost value");
        }
        // Unrelated committed entries survive cuts that kept their records.
        if scan_segment(src)
            .records
            .iter()
            .any(|r| matches!(r.op, WalOp::Insert { key, .. } if key == fixture.anchor_src))
        {
            assert_eq!(entries.get(&fixture.anchor_src), Some(&ANCHOR_VALUE));
        }
        if scan_segment(dst)
            .records
            .iter()
            .any(|r| matches!(r.op, WalOp::Insert { key, .. } if key == fixture.anchor_dst))
        {
            assert_eq!(entries.get(&fixture.anchor_dst), Some(&ANCHOR_VALUE));
        }
    };
    for src_cut in 0..=fixture.src_bytes.len() {
        for &dst_cut in &dst_frames {
            check(src_cut, dst_cut);
        }
    }
    for &src_cut in &src_frames {
        for dst_cut in 0..=fixture.dst_bytes.len() {
            check(src_cut, dst_cut);
        }
    }
    assert!(cases > 0, "the sweep must exercise real cut pairs");
    assert!(
        duplicate_window_hit > 0,
        "the sweep must hit the insert-durable/delete-lost window the \
         intent protocol exists for"
    );
}

/// Media corruption (bit flips) anywhere in either log — including inside
/// the `MoveIntent` / `MoveCommit` frames — must never make sharded
/// recovery panic or error: the checksum stops the scan at the corrupted
/// frame and the resolution join copes with whatever prefix survives.
#[test]
fn cross_shard_move_bit_flips_recover_cleanly() {
    let fixture = cross_move_fixture();
    for offset in 0..fixture.src_bytes.len() {
        let mut mutated = fixture.src_bytes.clone();
        mutated[offset] ^= 0x10;
        let recovery = recover_fabricated(&fixture, &mutated, &fixture.dst_bytes)
            .unwrap_or_else(|e| panic!("src flip at {offset}: {e}"));
        // The per-log prefix contract still bounds the result.
        assert!(recovery.entries.len() <= 4);
    }
    for offset in 0..fixture.dst_bytes.len() {
        let mut mutated = fixture.dst_bytes.clone();
        mutated[offset] ^= 0x10;
        recover_fabricated(&fixture, &fixture.src_bytes, &mutated)
            .unwrap_or_else(|e| panic!("dst flip at {offset}: {e}"));
    }
}

/// Reopening a sharded durable map after a crash mid-cross-shard-move must
/// *durably* neutralize the orphaned intent: the resolution's records are
/// appended to the logs before new mutations, so a later crash — after the
/// moved keys have been legitimately rewritten — replays to the resolved
/// state instead of re-judging the stale intent against a log that moved on
/// (which would destroy the completed move's destination entry).
#[test]
fn reopen_durably_neutralizes_an_interrupted_cross_shard_move() {
    let fixture = cross_move_fixture();
    let base = TempDir::new("dur-xmove-reopen");
    // Fabricate the duplicate window on disk: the source log ends right
    // after the intent (its delete half and commit marker never became
    // durable), the destination log holds the stamped insert.
    let src_frames = frame_boundaries(&fixture.src_bytes);
    // Source frames: anchor insert, insert(a), intent, delete half, commit.
    let cut_after_intent = src_frames[3];
    {
        let scan = scan_segment(&fixture.src_bytes[..cut_after_intent]);
        assert!(
            matches!(scan.records.last().unwrap().op, WalOp::MoveIntent { .. }),
            "fixture layout: the third frame is the move intent"
        );
    }
    for (shard, bytes) in [
        (fixture.src_shard, &fixture.src_bytes[..cut_after_intent]),
        (fixture.dst_shard, &fixture.dst_bytes[..]),
    ] {
        let dir = shard_dir(base.path(), shard);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("segment-00000001.wal"), bytes).unwrap();
    }

    // Incarnation 2: the reopen resolves the orphan (rolling the move
    // forward — the source still held the value) and appends the fix.
    {
        let (map, resumed) =
            sharded_optimized(2, StmConfig::ctl(), base.path(), WalOptions::default())
                .expect("reopen sharded");
        assert_eq!(resumed.moves_resolved, 1);
        let recovered: BTreeMap<u64, u64> = resumed.entries.iter().copied().collect();
        assert_eq!(recovered.get(&fixture.b), Some(&MOVED_VALUE));
        assert!(!recovered.contains_key(&fixture.a), "rolled forward");
        // New committed work touches the very key the stale intent names.
        let mut handle = map.register_sharded();
        assert!(map.insert(&mut handle, fixture.a, 8888));
    } // drop = clean shutdown; every record is already fsynced anyway

    // Second crash. Without durable neutralization the stale intent would
    // now judge `a != 7777` as "roll back" and delete the completed move's
    // destination copy.
    let after = recover_sharded(base.path(), 2).expect("recover after second crash");
    assert_eq!(after.moves_resolved, 0, "the intent is committed on disk");
    let entries: BTreeMap<u64, u64> = after.entries.iter().copied().collect();
    assert_eq!(entries.get(&fixture.a), Some(&8888));
    assert_eq!(entries.get(&fixture.b), Some(&MOVED_VALUE));
}

/// A rolled-back move whose retraction is durable but whose commit marker
/// is not — with the destination key since re-occupied by an acknowledged
/// client insert of the *same value*. The reopen's join must honor the
/// stamped retraction (not re-judge by value), and its own commit marker
/// must be crash-safe: losing the marker to a second crash just makes the
/// next join short-circuit on the durable retraction again.
#[test]
fn reopen_honors_a_durable_rollback_retraction() {
    use sf_persist::{Wal, WalOp, WalRecord};
    use sf_tree::ShardedMap;

    // Shard routing is a pure function of the key and shard count; a
    // throwaway in-memory map computes it.
    let probe = ShardedMap::optimized(2, StmConfig::ctl());
    let a = 1u64;
    let b = (2..1000u64)
        .find(|&k| probe.shard_of(k) != probe.shard_of(a))
        .unwrap();
    let (s, d) = (probe.shard_of(a), probe.shard_of(b));
    drop(probe);

    let base = TempDir::new("dur-xmove-retract");
    let record = |version, op| WalRecord { version, op };
    {
        let src = Wal::open(
            shard_dir(base.path(), s),
            1,
            WalOptions {
                group: 8,
                ..WalOptions::default()
            },
        )
        .unwrap();
        src.enqueue(record(1, WalOp::Insert { key: a, value: 77 }));
        src.enqueue(record(
            0,
            WalOp::MoveIntent {
                move_id: 999,
                peer_shard: d as u64,
                from: a,
                to: b,
                value: 77,
            },
        ));
        // The concurrent committed delete that failed the live move.
        src.enqueue(record(2, WalOp::Delete { key: a }));
        src.flush().unwrap();
        let dst = Wal::open(
            shard_dir(base.path(), d),
            1,
            WalOptions {
                group: 8,
                ..WalOptions::default()
            },
        )
        .unwrap();
        dst.enqueue(record(
            1,
            WalOp::MoveInsert {
                move_id: 999,
                key: b,
                value: 77,
            },
        ));
        // The live rollback's retraction, durable before the crash...
        dst.enqueue(record(
            2,
            WalOp::MoveDelete {
                move_id: 999,
                key: b,
            },
        ));
        // ...and an acknowledged client re-insert of the same value.
        dst.enqueue(record(3, WalOp::Insert { key: b, value: 77 }));
        dst.flush().unwrap();
    }

    let expected = vec![(b, 77)];
    {
        let (_map, resumed) =
            sharded_optimized(2, StmConfig::ctl(), base.path(), WalOptions::default())
                .expect("reopen sharded");
        assert_eq!(resumed.moves_resolved, 1);
        assert_eq!(resumed.entries, expected, "the client insert survives");
    }

    // Second crash that additionally loses the reopen's commit marker (the
    // source shard's fresh segment holds nothing else): the join re-runs
    // and must short-circuit on the durable retraction, converging to the
    // same state.
    let marker_segment = shard_dir(base.path(), s).join("segment-00000002.wal");
    assert!(marker_segment.exists());
    std::fs::remove_file(&marker_segment).unwrap();
    let again = recover_sharded(base.path(), 2).expect("recover after marker loss");
    assert_eq!(again.entries, expected);
    assert_eq!(again.moves_resolved, 1, "re-resolved, not re-judged");
}

/// A crash during the very first sharded open — after the layout marker
/// and some (but not all) shard directories exist — must not brick the
/// directory: the marker declares the layout, so the matching count
/// reopens (missing shards recover empty) while a mismatched count still
/// fails loudly.
#[test]
fn crashed_first_open_does_not_brick_the_directory() {
    let base = TempDir::new("dur-first-crash");
    {
        let _ = sharded_optimized(2, StmConfig::ctl(), base.path(), WalOptions::default())
            .expect("first open");
    }
    // Simulate the crash having hit before shard 1 was created (its empty
    // segment file and directory never made it to disk).
    std::fs::remove_dir_all(shard_dir(base.path(), 1)).unwrap();
    let (_map, resumed) =
        sharded_optimized(2, StmConfig::ctl(), base.path(), WalOptions::default())
            .expect("the declared layout reopens");
    assert!(resumed.entries.is_empty());
    assert!(
        sharded_optimized(4, StmConfig::ctl(), base.path(), WalOptions::default()).is_err(),
        "the marker keeps count mismatches loud"
    );
}

/// The shard-count validation at the composition level: a 2-shard base
/// refuses to open (or recover) as anything but 2 shards.
#[test]
fn sharded_open_rejects_a_mismatched_shard_count() {
    let base = TempDir::new("dur-shardcount");
    {
        let (map, _) = sharded_optimized(2, StmConfig::ctl(), base.path(), WalOptions::default())
            .expect("open sharded WAL");
        let mut handle = map.register_sharded();
        for key in 0..32u64 {
            map.insert(&mut handle, key, key);
        }
    }
    let err = recover_sharded(base.path(), 1).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    assert!(
        sharded_optimized(3, StmConfig::ctl(), base.path(), WalOptions::default()).is_err(),
        "reopening with a different shard count must fail loudly"
    );
    let (map, resumed) = sharded_optimized(2, StmConfig::ctl(), base.path(), WalOptions::default())
        .expect("matching count reopens");
    assert_eq!(resumed.entries.len(), 32);
    drop(map);
}
