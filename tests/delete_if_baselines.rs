//! Compare-and-delete coverage for the baselines. PR 1 added
//! `TxMap::delete_if` / `TxMapInTx::tx_delete_if` to every structure but
//! only stress-tested them through `ShardedMap`; these tests pin the
//! semantics directly on the red-black tree, the AVL tree, the
//! no-restructuring tree, the sequential map, and the zip tree.

use std::collections::BTreeMap;
use std::sync::Arc;

use speculation_friendly_tree::baselines::{
    AvlTree, NoRestructureTree, RedBlackTree, SeqMap, ZipTree,
};
use speculation_friendly_tree::prelude::*;

/// The point semantics every implementation must share: value-checked
/// deletion, no effect on mismatch or absence.
fn check_delete_if_semantics<M: TxMap>(map: M) {
    let stm = Stm::default_config();
    let mut handle = map.register(stm.register());
    let name = map.name();

    // Absent key: no effect.
    assert!(!map.delete_if(&mut handle, 7, 70), "{name}: absent key");

    map.insert(&mut handle, 7, 70);
    map.insert(&mut handle, 9, 90);

    // Wrong expected value: the entry survives untouched.
    assert!(!map.delete_if(&mut handle, 7, 71), "{name}: wrong value");
    assert_eq!(map.get(&mut handle, 7), Some(70), "{name}: entry kept");

    // Matching value: the entry goes.
    assert!(map.delete_if(&mut handle, 7, 70), "{name}: matching value");
    assert!(!map.contains(&mut handle, 7), "{name}: entry removed");

    // Second attempt finds nothing.
    assert!(!map.delete_if(&mut handle, 7, 70), "{name}: double delete");

    // The other entry was never disturbed.
    assert_eq!(map.get(&mut handle, 9), Some(90), "{name}: bystander kept");
    assert_eq!(map.len_quiescent(), 1, "{name}: final size");
}

/// The in-transaction form must compose atomically with other operations:
/// a failed compare-and-delete plus a re-insert in one transaction leaves
/// exactly the committed state, never an intermediate one.
fn check_tx_delete_if_composes<M: TxMap + TxMapInTx>(map: M) {
    let stm = Stm::default_config();
    let mut handle = map.register(stm.register());
    let name = map.name();
    map.insert(&mut handle, 1, 10);
    map.insert(&mut handle, 2, 20);

    let mut ctx = stm.register();
    let (miss, hit, moved) = ctx.atomically(|tx| {
        let miss = map.tx_delete_if(tx, 1, 999)?; // wrong value: no-op
        let hit = map.tx_delete_if(tx, 2, 20)?; // removes 2
        let moved = map.tx_insert(tx, 3, 30)?; // and re-targets it
        Ok((miss, hit, moved))
    });
    assert!(!miss, "{name}: wrong-value tx_delete_if");
    assert!(hit, "{name}: matching tx_delete_if");
    assert!(moved, "{name}: insert in the same transaction");
    assert_eq!(map.get(&mut handle, 1), Some(10), "{name}");
    assert!(!map.contains(&mut handle, 2), "{name}");
    assert_eq!(map.get(&mut handle, 3), Some(30), "{name}");
}

#[test]
fn delete_if_semantics_hold_on_all_baselines() {
    check_delete_if_semantics(RedBlackTree::new());
    check_delete_if_semantics(AvlTree::new());
    check_delete_if_semantics(NoRestructureTree::new());
    check_delete_if_semantics(SeqMap::new());
    check_delete_if_semantics(ZipTree::new());
}

#[test]
fn tx_delete_if_composes_on_all_baselines() {
    check_tx_delete_if_composes(RedBlackTree::new());
    check_tx_delete_if_composes(AvlTree::new());
    check_tx_delete_if_composes(NoRestructureTree::new());
    check_tx_delete_if_composes(SeqMap::new());
    check_tx_delete_if_composes(ZipTree::new());
}

#[test]
fn delete_if_matches_a_btreemap_oracle_under_random_sequences() {
    fn run<M: TxMap>(map: M, seed: u64) {
        let stm = Stm::default_config();
        let mut handle = map.register(stm.register());
        let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
        let mut state = seed | 1;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..2_000 {
            let key = rng() % 64;
            match rng() % 3 {
                0 => {
                    let value = rng() % 8;
                    let expected =
                        if let std::collections::btree_map::Entry::Vacant(e) = oracle.entry(key) {
                            e.insert(value);
                            true
                        } else {
                            false
                        };
                    assert_eq!(map.insert(&mut handle, key, value), expected);
                }
                1 => {
                    // Half the guesses are wrong on purpose.
                    let guess = rng() % 8;
                    let expected = oracle.get(&key) == Some(&guess);
                    if expected {
                        oracle.remove(&key);
                    }
                    assert_eq!(
                        map.delete_if(&mut handle, key, guess),
                        expected,
                        "{} delete_if({key}, {guess})",
                        map.name()
                    );
                }
                _ => {
                    assert_eq!(map.get(&mut handle, key), oracle.get(&key).copied());
                }
            }
        }
        assert_eq!(map.len_quiescent(), oracle.len(), "{}", map.name());
    }
    run(RedBlackTree::new(), 0xa001);
    run(AvlTree::new(), 0xa002);
    run(NoRestructureTree::new(), 0xa003);
    run(SeqMap::new(), 0xa004);
    run(ZipTree::new(), 0xa005);
}

#[test]
fn concurrent_delete_if_never_destroys_a_foreign_value() {
    // Two threads race compare-and-deletes against re-inserts of *distinct*
    // values on one key: a delete_if may only ever remove the value it was
    // given, so the surviving value (if any) must belong to one of the
    // writers' committed inserts.
    let stm = Stm::default_config();
    let tree = Arc::new(RedBlackTree::new());
    let threads: Vec<_> = (0..2u64)
        .map(|t| {
            let tree = Arc::clone(&tree);
            let mut ctx = stm.register();
            std::thread::spawn(move || {
                let my_value = 100 + t;
                let other = 100 + (1 - t);
                for _ in 0..1_000 {
                    tree.insert(&mut ctx, 5, my_value);
                    // Only ever delete what this thread (or the peer) wrote;
                    // a mismatch must leave the entry alone.
                    if !tree.delete_if(&mut ctx, 5, my_value) {
                        let observed = tree.get(&mut ctx, 5);
                        assert!(
                            observed.is_none() || observed == Some(other),
                            "unexpected value {observed:?}"
                        );
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    tree.check_invariants().unwrap();
    let mut ctx = stm.register();
    let leftover = tree.get(&mut ctx, 5);
    assert!(
        leftover.is_none() || leftover == Some(100) || leftover == Some(101),
        "final value must come from a committed insert: {leftover:?}"
    );
}
