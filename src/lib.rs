//! # speculation-friendly-tree
//!
//! Umbrella crate of the reproduction of *A Speculation-Friendly Binary
//! Search Tree* (Tyler Crain, Vincent Gramoli, Michel Raynal — PPoPP 2012).
//! It re-exports the individual crates of the workspace so applications can
//! depend on a single crate:
//!
//! * [`stm`] — the word-based STM substrate (TinySTM/E-STM style),
//! * [`tree`] — the speculation-friendly binary search tree (portable and
//!   optimized variants) with its background maintenance thread,
//! * [`baselines`] — the transaction-encapsulated red-black tree, AVL tree,
//!   no-restructuring tree and a sequential reference map,
//! * [`workloads`] — the synchrobench-style integer-set micro-benchmark,
//! * [`vacation`] — the STAMP vacation travel-reservation application.
//!
//! See `examples/` for runnable end-to-end programs and `EXPERIMENTS.md` for
//! the benchmark harnesses that regenerate the paper's tables and figures.
//!
//! ## Quickstart
//!
//! A single optimized speculation-friendly tree with its background
//! maintenance (rotator) thread:
//!
//! ```
//! use speculation_friendly_tree::prelude::*;
//!
//! let stm = Stm::default_config();
//! let tree = OptSpecFriendlyTree::new();
//! let _maintenance = tree.start_maintenance(stm.register());
//! let mut handle = tree.register(stm.register());
//! assert!(tree.insert(&mut handle, 1, 100));
//! assert_eq!(tree.get(&mut handle, 1), Some(100));
//! ```
//!
//! ## Scaling out: the sharded backend
//!
//! [`ShardedMap`](tree::ShardedMap) hash-partitions the key space over `N`
//! inner trees, each with its **own STM instance** (no shared version clock)
//! and its **own maintenance thread**, while keeping the same [`TxMap`]
//! interface — including atomic cross-shard `move_entry`:
//!
//! ```
//! use speculation_friendly_tree::prelude::*;
//!
//! // 8 shards, TinySTM-CTL-style STM per shard, one rotator per shard.
//! let map = ShardedMap::optimized(8, StmConfig::ctl());
//! let mut handle = map.register_sharded();
//! assert!(map.insert(&mut handle, 7, 700));
//! assert!(map.move_entry(&mut handle, 7, 1_000_000)); // may cross shards
//! assert_eq!(map.get(&mut handle, 1_000_000), Some(700));
//! ```
//!
//! ## Ordered scans
//!
//! Every backend also exposes the *ordered* structure of the map:
//! [`TxMap::range_collect`](tree::TxMap::range_collect) /
//! [`TxMap::len`](tree::TxMap::len) run as read-only scan transactions at
//! the top level, and the single-STM backends additionally implement the
//! in-transaction extension ([`TxOrderedMapInTx`](tree::TxOrderedMapInTx):
//! min/max, successor, range folds — not the sharded compositions, whose
//! per-shard STM instances cannot share one transaction). On the
//! speculation-friendly trees the scan skips nodes that are logically
//! deleted but not yet removed by the maintenance thread:
//!
//! ```
//! use speculation_friendly_tree::prelude::*;
//!
//! let stm = Stm::default_config();
//! let tree = OptSpecFriendlyTree::new();
//! let mut handle = tree.register(stm.register());
//! for k in [1u64, 2, 5, 9] {
//!     tree.insert(&mut handle, k, k * 10);
//! }
//! tree.delete(&mut handle, 2); // logical delete: scans must skip it
//! assert_eq!(tree.range_collect(&mut handle, 1..=5), vec![(1, 10), (5, 50)]);
//! assert_eq!(TxMap::len(&tree, &mut handle), 3);
//! ```
//!
//! ## Durability
//!
//! [`DurableMap`](persist::DurableMap) wraps any versioned backend in a
//! commit-ordered write-ahead log with group commit, checkpoints, and crash
//! recovery — a mutation is durable when it returns:
//!
//! ```
//! use std::sync::Arc;
//! use speculation_friendly_tree::prelude::*;
//! use speculation_friendly_tree::persist::recover;
//!
//! let dir = TempDir::new("umbrella-durability");
//! let stm = Stm::new(StmConfig::ctl());
//! let tree = Arc::new(OptSpecFriendlyTree::new());
//! let (map, _) = DurableMap::open(tree, &stm, dir.path(), WalOptions::default()).unwrap();
//! let mut handle = map.register(stm.register());
//! map.insert(&mut handle, 7, 700);            // on disk when this returns
//! let recovered = recover(dir.path()).unwrap(); // what a restart would see
//! assert_eq!(recovered.entries, vec![(7, 700)]);
//! ```
//!
//! Benchmarks and applications resolve backends by name through the
//! [`workloads::backend`] registry (`rbtree`, `avl`, `nrtree`, `sftree`,
//! `sftree-opt`, `sftree-opt-sharded<N>`, any of them with a `+wal`
//! suffix for durability, ...), which is what the `SF_STRUCTURES`
//! environment variable of the harnesses feeds into:
//!
//! ```
//! use speculation_friendly_tree::stm::StmConfig;
//! use speculation_friendly_tree::workloads::Backend;
//!
//! let backend = Backend::build("sftree-opt-sharded4", StmConfig::ctl()).unwrap();
//! let mut session = backend.session();
//! assert!(session.insert(1, 10));
//! assert!(session.contains(1));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use sf_baselines as baselines;
pub use sf_persist as persist;
pub use sf_stm as stm;
pub use sf_tree as tree;
pub use sf_vacation as vacation;
pub use sf_workloads as workloads;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use sf_baselines::{AvlTree, NoRestructureTree, RedBlackTree, SeqMap, ZipTree};
    pub use sf_persist::{DurableMap, Recovery, TempDir, WalOptions};
    pub use sf_stm::{Stm, StmConfig, TCell, ThreadCtx, Transaction, TxKind, TxResult};
    pub use sf_tree::{
        MaintenanceConfig, OptSpecFriendlyTree, ScanOrder, ShardedHandle, ShardedMap,
        SpecFriendlyTree, TxMap, TxMapInTx, TxMapVersioned, TxOrderedMapInTx,
    };
    pub use sf_vacation::{Manager, ReservationKind, VacationParams};
    pub use sf_workloads::{RunLength, WorkloadConfig};
}
