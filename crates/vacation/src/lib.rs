//! # sf-vacation — the STAMP vacation travel-reservation application
//!
//! The paper's application-scale experiment (§5.5, Figure 6) runs STAMP's
//! *vacation* benchmark — an in-memory travel-reservation database whose four
//! tables (cars, rooms, flights, customers) are tree directories — on top of
//! the Oracle red-black tree, the optimized speculation-friendly tree and the
//! no-restructuring tree. This crate rebuilds that application on the
//! transactional trees of this repository:
//!
//! * [`Manager`] — the reservation system: resource records, customer
//!   records, and the composed in-transaction operations (`reserve`,
//!   `delete_customer`, `add_resource`, ...).
//! * [`DirectoryMap`] — the capability a tree needs to serve as a table
//!   (implemented for every tree in `sf-tree` / `sf-baselines`).
//! * [`VacationParams`] / [`run_vacation`] — the client driver with STAMP's
//!   low- and high-contention presets and the 1×/8×/16× transaction scaling.
//!
//! ```
//! use std::sync::Arc;
//! use sf_stm::Stm;
//! use sf_tree::OptSpecFriendlyTree;
//! use sf_vacation::{Manager, VacationParams, run_vacation};
//!
//! let stm = Stm::default_config();
//! let manager = Arc::new(Manager::<OptSpecFriendlyTree>::new());
//! let params = VacationParams::smoke_test().with_clients(1);
//! let result = run_vacation(&stm, &manager, &params);
//! assert!(result.transactions > 0);
//! manager.check_consistency().unwrap();
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod client;
mod directory;
mod manager;

pub use client::{initialize, run_clients, run_vacation, VacationParams, VacationResult};
pub use directory::DirectoryMap;
pub use manager::{Customer, Manager, Reservation, ReservationKind, CUSTOMER_RESERVATION_CAPACITY};
