//! The reservation-system manager: four tree directories (cars, rooms,
//! flights, customers) plus the reservation and customer records they index.
//!
//! This mirrors STAMP vacation's `manager.c`: every public operation is an
//! *in-transaction* operation (it takes the caller's [`Transaction`]), so a
//! client action composes several of them — queries over the three resource
//! tables, customer updates, reservations — into one atomic transaction, the
//! exact workload the paper uses to evaluate the trees at application scale
//! (Figure 6).

use std::sync::Arc;

use sf_stm::{TCell, Transaction, TxResult};

use sf_tree::{NodeId, TxArena};

use crate::directory::DirectoryMap;

/// Maximum number of simultaneous reservations one customer can hold.
///
/// STAMP stores them in an unbounded linked list; a bounded, count-prefixed
/// slot array preserves the access pattern (the list is short in every STAMP
/// configuration) while keeping the record a flat transactional object.
pub const CUSTOMER_RESERVATION_CAPACITY: usize = 64;

/// The three resource kinds plus the customer table selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReservationKind {
    /// Rental cars.
    Car,
    /// Hotel rooms.
    Room,
    /// Flight seats.
    Flight,
}

impl ReservationKind {
    /// All resource kinds, in a fixed order.
    pub const ALL: [ReservationKind; 3] = [
        ReservationKind::Car,
        ReservationKind::Room,
        ReservationKind::Flight,
    ];

    fn index(self) -> u64 {
        match self {
            ReservationKind::Car => 0,
            ReservationKind::Room => 1,
            ReservationKind::Flight => 2,
        }
    }

    fn from_index(i: u64) -> Self {
        match i {
            0 => ReservationKind::Car,
            1 => ReservationKind::Room,
            _ => ReservationKind::Flight,
        }
    }
}

/// A resource reservation record (cars/rooms/flights table entry).
#[derive(Debug)]
pub struct Reservation {
    num_used: TCell<u64>,
    num_free: TCell<u64>,
    num_total: TCell<u64>,
    price: TCell<u64>,
}

impl Default for Reservation {
    fn default() -> Self {
        Reservation {
            num_used: TCell::new(0),
            num_free: TCell::new(0),
            num_total: TCell::new(0),
            price: TCell::new(0),
        }
    }
}

/// A customer record: a count-prefixed array of packed reservation
/// descriptors `(kind, resource id, price)`.
#[derive(Debug)]
pub struct Customer {
    count: TCell<u64>,
    slots: Vec<TCell<u64>>,
}

impl Default for Customer {
    fn default() -> Self {
        Customer {
            count: TCell::new(0),
            slots: (0..CUSTOMER_RESERVATION_CAPACITY)
                .map(|_| TCell::new(0))
                .collect(),
        }
    }
}

fn pack_info(kind: ReservationKind, id: u64, price: u64) -> u64 {
    debug_assert!(id < (1 << 30));
    debug_assert!(price < (1 << 32));
    (price << 32) | (kind.index() << 30) | id
}

fn unpack_info(packed: u64) -> (ReservationKind, u64, u64) {
    let id = packed & ((1 << 30) - 1);
    let kind = ReservationKind::from_index((packed >> 30) & 0b11);
    let price = packed >> 32;
    (kind, id, price)
}

/// The travel-reservation database.
#[derive(Debug)]
pub struct Manager<D: DirectoryMap> {
    cars: D,
    rooms: D,
    flights: D,
    customers: D,
    reservations: Arc<TxArena<Reservation>>,
    customer_records: Arc<TxArena<Customer>>,
}

impl<D: DirectoryMap + Default> Manager<D> {
    /// Create an empty manager with default-constructed directories.
    pub fn new() -> Self {
        Self::with_directories(D::default(), D::default(), D::default(), D::default())
    }
}

impl<D: DirectoryMap + Default> Default for Manager<D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<D: DirectoryMap> Manager<D> {
    /// Create a manager from explicitly constructed directories.
    pub fn with_directories(cars: D, rooms: D, flights: D, customers: D) -> Self {
        Manager {
            cars,
            rooms,
            flights,
            customers,
            reservations: Arc::new(TxArena::new()),
            customer_records: Arc::new(TxArena::new()),
        }
    }

    /// The directory holding the given resource kind.
    pub fn table(&self, kind: ReservationKind) -> &D {
        match kind {
            ReservationKind::Car => &self.cars,
            ReservationKind::Room => &self.rooms,
            ReservationKind::Flight => &self.flights,
        }
    }

    /// The customer directory.
    pub fn customer_table(&self) -> &D {
        &self.customers
    }

    /// Activity handles for every directory that participates in a
    /// reclamation protocol; clients take one operation guard per handle
    /// around each transaction.
    pub fn register_activity(&self) -> Vec<sf_tree::ActivityHandle> {
        [&self.cars, &self.rooms, &self.flights, &self.customers]
            .into_iter()
            .filter_map(|d| d.register_activity())
            .collect()
    }

    /// Total rotations performed across the four directories (§5.5).
    pub fn total_rotations(&self) -> u64 {
        self.cars.rotations_performed()
            + self.rooms.rotations_performed()
            + self.flights.rotations_performed()
            + self.customers.rotations_performed()
    }

    fn reservation(&self, slot: u64) -> &Reservation {
        self.reservations.get(NodeId(slot as u32))
    }

    fn customer(&self, slot: u64) -> &Customer {
        self.customer_records.get(NodeId(slot as u32))
    }

    /// Add `num` units of resource `id` at the given price (creating the
    /// reservation record if needed). Mirrors `manager_add{Car,Room,Flight}`.
    pub fn add_resource<'env>(
        &'env self,
        tx: &mut Transaction<'env>,
        kind: ReservationKind,
        id: u64,
        num: u64,
        price: u64,
    ) -> TxResult<bool> {
        let table = self.table(kind);
        if let Some(slot) = table.tx_get(tx, id)? {
            let res = self.reservation(slot);
            let total = tx.read(&res.num_total)?;
            let free = tx.read(&res.num_free)?;
            tx.write(&res.num_total, total + num)?;
            tx.write(&res.num_free, free + num)?;
            tx.write(&res.price, price)?;
            return Ok(true);
        }
        let slot = self.reservations.alloc();
        let res = self.reservations.get(slot);
        res.num_used.unsync_store(0);
        res.num_free.unsync_store(num);
        res.num_total.unsync_store(num);
        res.price.unsync_store(price);
        let arena = Arc::clone(&self.reservations);
        tx.on_abort(move || arena.recycle(slot));
        table.tx_insert(tx, id, slot.0 as u64)?;
        Ok(true)
    }

    /// Remove `num` units of resource `id`; fails when fewer than `num` units
    /// are free. Mirrors `manager_delete{Car,Room,Flight}`.
    pub fn delete_resource<'env>(
        &'env self,
        tx: &mut Transaction<'env>,
        kind: ReservationKind,
        id: u64,
        num: u64,
    ) -> TxResult<bool> {
        let table = self.table(kind);
        let slot = match table.tx_get(tx, id)? {
            Some(slot) => slot,
            None => return Ok(false),
        };
        let res = self.reservation(slot);
        let free = tx.read(&res.num_free)?;
        let total = tx.read(&res.num_total)?;
        if free < num || total < num {
            return Ok(false);
        }
        tx.write(&res.num_free, free - num)?;
        tx.write(&res.num_total, total - num)?;
        if total - num == 0 {
            table.tx_delete(tx, id)?;
        }
        Ok(true)
    }

    /// Price of resource `id`, or `None` when it does not exist.
    pub fn query_price<'env>(
        &'env self,
        tx: &mut Transaction<'env>,
        kind: ReservationKind,
        id: u64,
    ) -> TxResult<Option<u64>> {
        match self.table(kind).tx_get(tx, id)? {
            Some(slot) => Ok(Some(tx.read(&self.reservation(slot).price)?)),
            None => Ok(None),
        }
    }

    /// Free units of resource `id`, or `None` when it does not exist.
    pub fn query_free<'env>(
        &'env self,
        tx: &mut Transaction<'env>,
        kind: ReservationKind,
        id: u64,
    ) -> TxResult<Option<u64>> {
        match self.table(kind).tx_get(tx, id)? {
            Some(slot) => Ok(Some(tx.read(&self.reservation(slot).num_free)?)),
            None => Ok(None),
        }
    }

    /// Add a customer; `false` when the id is already taken.
    pub fn add_customer<'env>(&'env self, tx: &mut Transaction<'env>, id: u64) -> TxResult<bool> {
        if self.customers.tx_get(tx, id)?.is_some() {
            return Ok(false);
        }
        let slot = self.customer_records.alloc();
        let record = self.customer_records.get(slot);
        record.count.unsync_store(0);
        for cell in &record.slots {
            cell.unsync_store(0);
        }
        let arena = Arc::clone(&self.customer_records);
        tx.on_abort(move || arena.recycle(slot));
        self.customers.tx_insert(tx, id, slot.0 as u64)?;
        Ok(true)
    }

    /// Sum of the prices of the customer's reservations, or `None` when the
    /// customer does not exist. Mirrors `manager_queryCustomerBill`.
    pub fn query_customer_bill<'env>(
        &'env self,
        tx: &mut Transaction<'env>,
        id: u64,
    ) -> TxResult<Option<u64>> {
        let slot = match self.customers.tx_get(tx, id)? {
            Some(slot) => slot,
            None => return Ok(None),
        };
        let record = self.customer(slot);
        let count = tx.read(&record.count)? as usize;
        let mut bill = 0u64;
        for cell in record
            .slots
            .iter()
            .take(count.min(CUSTOMER_RESERVATION_CAPACITY))
        {
            let (_, _, price) = unpack_info(tx.read(cell)?);
            bill += price;
        }
        Ok(Some(bill))
    }

    /// Delete a customer and release every resource it had reserved; returns
    /// the customer's bill, or `None` when the customer does not exist.
    /// Mirrors `manager_deleteCustomer`.
    pub fn delete_customer<'env>(
        &'env self,
        tx: &mut Transaction<'env>,
        id: u64,
    ) -> TxResult<Option<u64>> {
        let slot = match self.customers.tx_get(tx, id)? {
            Some(slot) => slot,
            None => return Ok(None),
        };
        let record = self.customer(slot);
        let count = tx.read(&record.count)? as usize;
        let mut bill = 0u64;
        for cell in record
            .slots
            .iter()
            .take(count.min(CUSTOMER_RESERVATION_CAPACITY))
        {
            let (kind, res_id, price) = unpack_info(tx.read(cell)?);
            bill += price;
            // Release the unit back to the resource pool.
            if let Some(res_slot) = self.table(kind).tx_get(tx, res_id)? {
                let res = self.reservation(res_slot);
                let used = tx.read(&res.num_used)?;
                let free = tx.read(&res.num_free)?;
                tx.write(&res.num_used, used.saturating_sub(1))?;
                tx.write(&res.num_free, free + 1)?;
            }
        }
        self.customers.tx_delete(tx, id)?;
        Ok(Some(bill))
    }

    /// Reserve one unit of resource `id` for `customer_id`. Mirrors
    /// `manager_reserve{Car,Room,Flight}`.
    pub fn reserve<'env>(
        &'env self,
        tx: &mut Transaction<'env>,
        kind: ReservationKind,
        customer_id: u64,
        id: u64,
    ) -> TxResult<bool> {
        let customer_slot = match self.customers.tx_get(tx, customer_id)? {
            Some(slot) => slot,
            None => return Ok(false),
        };
        let res_slot = match self.table(kind).tx_get(tx, id)? {
            Some(slot) => slot,
            None => return Ok(false),
        };
        let record = self.customer(customer_slot);
        let count = tx.read(&record.count)? as usize;
        if count >= CUSTOMER_RESERVATION_CAPACITY {
            return Ok(false);
        }
        let res = self.reservation(res_slot);
        let free = tx.read(&res.num_free)?;
        if free == 0 {
            return Ok(false);
        }
        let used = tx.read(&res.num_used)?;
        let price = tx.read(&res.price)?;
        tx.write(&res.num_free, free - 1)?;
        tx.write(&res.num_used, used + 1)?;
        tx.write(&record.slots[count], pack_info(kind, id, price))?;
        tx.write(&record.count, (count + 1) as u64)?;
        Ok(true)
    }

    /// Cancel a previous reservation of resource `id` by `customer_id`.
    pub fn cancel<'env>(
        &'env self,
        tx: &mut Transaction<'env>,
        kind: ReservationKind,
        customer_id: u64,
        id: u64,
    ) -> TxResult<bool> {
        let customer_slot = match self.customers.tx_get(tx, customer_id)? {
            Some(slot) => slot,
            None => return Ok(false),
        };
        let record = self.customer(customer_slot);
        let count = tx.read(&record.count)? as usize;
        let mut found = None;
        for (i, cell) in record
            .slots
            .iter()
            .take(count.min(CUSTOMER_RESERVATION_CAPACITY))
            .enumerate()
        {
            let (k, rid, _) = unpack_info(tx.read(cell)?);
            if k == kind && rid == id {
                found = Some(i);
                break;
            }
        }
        let index = match found {
            Some(i) => i,
            None => return Ok(false),
        };
        // Swap-remove the entry.
        let last = tx.read(&record.slots[count - 1])?;
        tx.write(&record.slots[index], last)?;
        tx.write(&record.count, (count - 1) as u64)?;
        // Give the unit back.
        if let Some(res_slot) = self.table(kind).tx_get(tx, id)? {
            let res = self.reservation(res_slot);
            let used = tx.read(&res.num_used)?;
            let free = tx.read(&res.num_free)?;
            tx.write(&res.num_used, used.saturating_sub(1))?;
            tx.write(&res.num_free, free + 1)?;
        }
        Ok(true)
    }

    /// Quiescent consistency check, the analogue of STAMP's `checkTables`:
    /// every reservation satisfies `used + free == total`, and the number of
    /// used units per resource matches the customers' reservation records.
    pub fn check_consistency(&self) -> Result<(), String> {
        use std::collections::HashMap;
        let mut used_by_customers: HashMap<(u64, u64), u64> = HashMap::new();
        for (customer_id, slot) in self.customers.entries_quiescent() {
            let record = self.customer(slot);
            let count = record.count.unsync_load() as usize;
            if count > CUSTOMER_RESERVATION_CAPACITY {
                return Err(format!("customer {customer_id} has corrupt count {count}"));
            }
            for cell in record.slots.iter().take(count) {
                let (kind, id, _) = unpack_info(cell.unsync_load());
                *used_by_customers.entry((kind.index(), id)).or_default() += 1;
            }
        }
        for kind in ReservationKind::ALL {
            for (id, slot) in self.table(kind).entries_quiescent() {
                let res = self.reservation(slot);
                let used = res.num_used.unsync_load();
                let free = res.num_free.unsync_load();
                let total = res.num_total.unsync_load();
                if used + free != total {
                    return Err(format!(
                        "{kind:?} {id}: used {used} + free {free} != total {total}"
                    ));
                }
                let by_customers = used_by_customers
                    .get(&(kind.index(), id))
                    .copied()
                    .unwrap_or(0);
                if by_customers != used {
                    return Err(format!(
                        "{kind:?} {id}: {used} units marked used but customers hold {by_customers}"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_baselines::SeqMap;
    use sf_stm::Stm;
    use sf_tree::OptSpecFriendlyTree;

    fn with_manager<D: DirectoryMap + Default>(
        f: impl FnOnce(&Manager<D>, &mut sf_stm::ThreadCtx),
    ) {
        let stm = Stm::default_config();
        let mut ctx = stm.register();
        let manager = Manager::<D>::new();
        f(&manager, &mut ctx);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        for kind in ReservationKind::ALL {
            let packed = pack_info(kind, 12345, 678);
            assert_eq!(unpack_info(packed), (kind, 12345, 678));
        }
    }

    #[test]
    fn add_query_delete_resource() {
        with_manager::<OptSpecFriendlyTree>(|m, ctx| {
            ctx.atomically(|tx| m.add_resource(tx, ReservationKind::Car, 1, 100, 50));
            assert_eq!(
                ctx.atomically(|tx| m.query_free(tx, ReservationKind::Car, 1)),
                Some(100)
            );
            assert_eq!(
                ctx.atomically(|tx| m.query_price(tx, ReservationKind::Car, 1)),
                Some(50)
            );
            // Adding more units updates the record in place.
            ctx.atomically(|tx| m.add_resource(tx, ReservationKind::Car, 1, 10, 75));
            assert_eq!(
                ctx.atomically(|tx| m.query_free(tx, ReservationKind::Car, 1)),
                Some(110)
            );
            assert_eq!(
                ctx.atomically(|tx| m.query_price(tx, ReservationKind::Car, 1)),
                Some(75)
            );
            // Deleting more than available fails, exact amount empties and
            // removes the record.
            assert!(!ctx.atomically(|tx| m.delete_resource(tx, ReservationKind::Car, 1, 200)));
            assert!(ctx.atomically(|tx| m.delete_resource(tx, ReservationKind::Car, 1, 110)));
            assert_eq!(
                ctx.atomically(|tx| m.query_price(tx, ReservationKind::Car, 1)),
                None
            );
            m.check_consistency().unwrap();
        });
    }

    #[test]
    fn reserve_bill_cancel_and_delete_customer() {
        with_manager::<OptSpecFriendlyTree>(|m, ctx| {
            ctx.atomically(|tx| {
                m.add_resource(tx, ReservationKind::Flight, 7, 2, 300)?;
                m.add_resource(tx, ReservationKind::Room, 9, 1, 120)?;
                m.add_customer(tx, 42)
            });
            assert!(ctx.atomically(|tx| m.reserve(tx, ReservationKind::Flight, 42, 7)));
            assert!(ctx.atomically(|tx| m.reserve(tx, ReservationKind::Room, 42, 9)));
            // The room is now fully booked.
            assert!(!ctx.atomically(|tx| m.reserve(tx, ReservationKind::Room, 42, 9)));
            assert_eq!(
                ctx.atomically(|tx| m.query_customer_bill(tx, 42)),
                Some(420)
            );
            m.check_consistency().unwrap();
            // Cancel the flight, bill drops.
            assert!(ctx.atomically(|tx| m.cancel(tx, ReservationKind::Flight, 42, 7)));
            assert_eq!(
                ctx.atomically(|tx| m.query_customer_bill(tx, 42)),
                Some(120)
            );
            // Deleting the customer releases the room.
            assert_eq!(ctx.atomically(|tx| m.delete_customer(tx, 42)), Some(120));
            assert_eq!(
                ctx.atomically(|tx| m.query_free(tx, ReservationKind::Room, 9)),
                Some(1)
            );
            assert_eq!(ctx.atomically(|tx| m.query_customer_bill(tx, 42)), None);
            m.check_consistency().unwrap();
        });
    }

    #[test]
    fn reserve_fails_for_missing_customer_or_resource() {
        with_manager::<SeqMap>(|m, ctx| {
            ctx.atomically(|tx| m.add_resource(tx, ReservationKind::Car, 1, 5, 10));
            assert!(!ctx.atomically(|tx| m.reserve(tx, ReservationKind::Car, 99, 1)));
            ctx.atomically(|tx| m.add_customer(tx, 99));
            assert!(!ctx.atomically(|tx| m.reserve(tx, ReservationKind::Car, 99, 77)));
            assert!(ctx.atomically(|tx| m.reserve(tx, ReservationKind::Car, 99, 1)));
            m.check_consistency().unwrap();
        });
    }

    #[test]
    fn composed_client_transaction_is_atomic() {
        // A reservation action touching several tables either applies
        // completely or not at all, even under concurrent clients.
        let stm = Stm::default_config();
        let manager = Arc::new(Manager::<OptSpecFriendlyTree>::new());
        {
            let mut ctx = stm.register();
            ctx.atomically(|tx| {
                for id in 1..=8u64 {
                    manager.add_resource(tx, ReservationKind::Car, id, 4, 100)?;
                    manager.add_resource(tx, ReservationKind::Room, id, 4, 100)?;
                    manager.add_resource(tx, ReservationKind::Flight, id, 4, 100)?;
                    manager.add_customer(tx, id)?;
                }
                Ok(())
            });
        }
        let threads: Vec<_> = (0..3u64)
            .map(|t| {
                let manager = Arc::clone(&manager);
                let mut ctx = stm.register();
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        let customer = (t * 37 + i) % 8 + 1;
                        let resource = (i * 13 + t) % 8 + 1;
                        ctx.atomically(|tx| {
                            if manager.reserve(tx, ReservationKind::Car, customer, resource)? {
                                manager.reserve(tx, ReservationKind::Flight, customer, resource)?;
                            }
                            Ok(())
                        });
                        if i % 5 == 0 {
                            ctx.atomically(|tx| manager.delete_customer(tx, customer));
                            ctx.atomically(|tx| manager.add_customer(tx, customer));
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        manager.check_consistency().unwrap();
    }
}
