//! The directory abstraction used by the travel-reservation database.
//!
//! STAMP's vacation represents each of its four tables (cars, rooms, flights,
//! customers) as a tree-based directory. The benchmark swaps the tree
//! implementation (Oracle red-black tree, speculation-friendly tree,
//! no-restructuring tree); [`DirectoryMap`] is the small capability bundle a
//! tree must provide to play that role: the in-transaction map operations,
//! plus hooks for the reclamation protocol and the §5.5 rotation accounting.

use sf_tree::map::TxMapInTx;
use sf_tree::{ActivityHandle, Key, Value};

/// A tree usable as a vacation table.
pub trait DirectoryMap: TxMapInTx + Send + Sync + 'static {
    /// Register the calling client thread with the structure's reclamation
    /// protocol, when it has one. The returned handle must be kept alive by
    /// the client and an operation guard taken around every client
    /// transaction.
    fn register_activity(&self) -> Option<ActivityHandle> {
        None
    }

    /// Number of structural rotations performed so far (background rotations
    /// for the speculation-friendly trees, in-transaction rotations for the
    /// baselines). Regenerates the §5.5 rotation-count observation.
    fn rotations_performed(&self) -> u64 {
        0
    }

    /// Quiescent dump of the directory contents (consistency checking).
    fn entries_quiescent(&self) -> Vec<(Key, Value)>;

    /// Display label of the structure.
    fn label(&self) -> &'static str;
}

impl DirectoryMap for sf_tree::OptSpecFriendlyTree {
    fn register_activity(&self) -> Option<ActivityHandle> {
        Some(self.arena().register_activity())
    }
    fn rotations_performed(&self) -> u64 {
        self.stats().rotations()
    }
    fn entries_quiescent(&self) -> Vec<(Key, Value)> {
        self.inspect().live_entries()
    }
    fn label(&self) -> &'static str {
        "OptSFtree"
    }
}

impl DirectoryMap for sf_tree::SpecFriendlyTree {
    fn register_activity(&self) -> Option<ActivityHandle> {
        Some(self.arena().register_activity())
    }
    fn rotations_performed(&self) -> u64 {
        self.stats().rotations()
    }
    fn entries_quiescent(&self) -> Vec<(Key, Value)> {
        self.inspect().live_entries()
    }
    fn label(&self) -> &'static str {
        "SFtree"
    }
}

impl DirectoryMap for sf_baselines::RedBlackTree {
    fn rotations_performed(&self) -> u64 {
        self.rotation_attempts()
    }
    fn entries_quiescent(&self) -> Vec<(Key, Value)> {
        RedBlackTreeEntries::entries(self)
    }
    fn label(&self) -> &'static str {
        "RBtree"
    }
}

impl DirectoryMap for sf_baselines::AvlTree {
    fn rotations_performed(&self) -> u64 {
        self.rotation_attempts()
    }
    fn entries_quiescent(&self) -> Vec<(Key, Value)> {
        self.entries_quiescent()
    }
    fn label(&self) -> &'static str {
        "AVLtree"
    }
}

impl DirectoryMap for sf_baselines::NoRestructureTree {
    fn register_activity(&self) -> Option<ActivityHandle> {
        None // the NRtree never removes nodes, so no reclamation protocol
    }
    fn entries_quiescent(&self) -> Vec<(Key, Value)> {
        self.inspect().live_entries()
    }
    fn label(&self) -> &'static str {
        "NRtree"
    }
}

impl DirectoryMap for sf_baselines::SeqMap {
    fn entries_quiescent(&self) -> Vec<(Key, Value)> {
        self.entries()
    }
    fn label(&self) -> &'static str {
        "Sequential"
    }
}

/// Helper to disambiguate the inherent `entries_quiescent` of the red-black
/// tree from the trait method.
trait RedBlackTreeEntries {
    fn entries(&self) -> Vec<(Key, Value)>;
}

impl RedBlackTreeEntries for sf_baselines::RedBlackTree {
    fn entries(&self) -> Vec<(Key, Value)> {
        self.entries_quiescent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let labels = [
            sf_tree::OptSpecFriendlyTree::new().label(),
            sf_tree::SpecFriendlyTree::new().label(),
            sf_baselines::RedBlackTree::new().label(),
            sf_baselines::AvlTree::new().label(),
            sf_baselines::NoRestructureTree::new().label(),
            sf_baselines::SeqMap::new().label(),
        ];
        let unique: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), labels.len());
    }

    #[test]
    fn sf_trees_provide_activity_handles() {
        assert!(sf_tree::OptSpecFriendlyTree::new()
            .register_activity()
            .is_some());
        assert!(sf_baselines::RedBlackTree::new()
            .register_activity()
            .is_none());
    }
}
