//! The vacation client driver: the transaction mix of STAMP's `client.c`
//! (make-reservation, delete-customer, update-tables) executed by N client
//! threads against a [`Manager`], with the low/high-contention presets and
//! the 1×/8×/16× transaction-count scaling used in Figure 6.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sf_stm::{StatsSnapshot, Stm};

use crate::directory::DirectoryMap;
use crate::manager::{Manager, ReservationKind};

/// Parameters of a vacation run (STAMP's command-line flags).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VacationParams {
    /// Number of client threads (`-c`).
    pub clients: usize,
    /// Maximum queries composed into one reservation transaction (`-n`).
    pub queries_per_transaction: usize,
    /// Percentage of the relations that queries may touch (`-q`).
    pub query_range_percent: u64,
    /// Percentage of client transactions that are user reservations (`-u`);
    /// the remainder splits between customer deletions and table updates.
    pub percent_user: u64,
    /// Number of rows in each relation (`-r`).
    pub num_relations: u64,
    /// Total number of client transactions across all threads (`-t`).
    pub num_transactions: u64,
    /// Workload seed.
    pub seed: u64,
}

impl VacationParams {
    /// STAMP's "low contention" configuration, scaled down so it runs in
    /// seconds on a laptop-class host (the shape -n2 -q90 -u98 is preserved;
    /// relations and transaction counts shrink proportionally).
    pub fn low_contention() -> Self {
        VacationParams {
            clients: 1,
            queries_per_transaction: 2,
            query_range_percent: 90,
            percent_user: 98,
            num_relations: 1 << 12,
            num_transactions: 1 << 15,
            seed: 0xacaca,
        }
    }

    /// STAMP's "high contention" configuration (-n4 -q60 -u90), scaled like
    /// [`VacationParams::low_contention`].
    pub fn high_contention() -> Self {
        VacationParams {
            clients: 1,
            queries_per_transaction: 4,
            query_range_percent: 60,
            percent_user: 90,
            num_relations: 1 << 12,
            num_transactions: 1 << 15,
            seed: 0xacaca,
        }
    }

    /// A tiny configuration for unit and integration tests.
    pub fn smoke_test() -> Self {
        VacationParams {
            clients: 2,
            queries_per_transaction: 3,
            query_range_percent: 80,
            percent_user: 90,
            num_relations: 128,
            num_transactions: 600,
            seed: 7,
        }
    }

    /// Builder-style helper: set the number of client threads.
    pub fn with_clients(mut self, clients: usize) -> Self {
        self.clients = clients;
        self
    }

    /// Builder-style helper: multiply the transaction count (the 1×/8×/16×
    /// scaling of Figure 6).
    pub fn with_transaction_multiplier(mut self, multiplier: u64) -> Self {
        self.num_transactions *= multiplier;
        self
    }

    fn query_range(&self) -> u64 {
        ((self.num_relations * self.query_range_percent) / 100).max(1)
    }
}

/// Outcome of one vacation run.
#[derive(Debug, Clone)]
pub struct VacationResult {
    /// Label of the directory structure used for the four tables.
    pub structure: &'static str,
    /// Number of client threads.
    pub clients: usize,
    /// Client transactions executed.
    pub transactions: u64,
    /// Wall-clock duration of the client phase (setup excluded).
    pub elapsed: Duration,
    /// STM statistics accumulated during the client phase.
    pub stm: StatsSnapshot,
    /// Rotations performed across the four directories (§5.5).
    pub rotations: u64,
}

impl VacationResult {
    /// Client transactions per second.
    pub fn transactions_per_second(&self) -> f64 {
        self.transactions as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Speedup of this run over a reference (typically the sequential run).
    pub fn speedup_over(&self, baseline: &VacationResult) -> f64 {
        baseline.elapsed.as_secs_f64() / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Populate the four tables exactly like STAMP's `manager_initialize`: every
/// relation row gets a random number of units at a random price, and one
/// customer record per row.
pub fn initialize<D: DirectoryMap>(stm: &Arc<Stm>, manager: &Manager<D>, params: &VacationParams) {
    let mut ctx = stm.register();
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x1111);
    for id in 1..=params.num_relations {
        let units = 100 * (rng.gen_range(1..=5u64));
        ctx.atomically(|tx| {
            for kind in ReservationKind::ALL {
                let price = 50 * rng.gen_range(1..=5u64) + 50;
                manager.add_resource(tx, kind, id, units, price)?;
            }
            manager.add_customer(tx, id)
        });
    }
}

/// Run the client phase: `params.num_transactions` client transactions spread
/// over `params.clients` threads.
pub fn run_clients<D: DirectoryMap>(
    stm: &Arc<Stm>,
    manager: &Arc<Manager<D>>,
    params: &VacationParams,
) -> VacationResult {
    stm.reset_stats();
    let per_client = (params.num_transactions / params.clients as u64).max(1);
    let started = Instant::now();
    let workers: Vec<_> = (0..params.clients)
        .map(|client_index| {
            let manager = Arc::clone(manager);
            let params = params.clone();
            let mut ctx = stm.register();
            let activity = manager.register_activity();
            std::thread::spawn(move || {
                let mut rng =
                    StdRng::seed_from_u64(params.seed ^ ((client_index as u64 + 1) * 0x9e37));
                for _ in 0..per_client {
                    let guards: Vec<_> = activity.iter().map(|a| a.begin()).collect();
                    run_one_transaction(&mut ctx, &manager, &params, &mut rng);
                    drop(guards);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("vacation client panicked");
    }
    let elapsed = started.elapsed();
    VacationResult {
        structure: manager.table(ReservationKind::Car).label(),
        clients: params.clients,
        transactions: per_client * params.clients as u64,
        elapsed,
        stm: stm.stats(),
        rotations: manager.total_rotations(),
    }
}

/// One client transaction, following STAMP's action mix.
fn run_one_transaction<D: DirectoryMap>(
    ctx: &mut sf_stm::ThreadCtx,
    manager: &Manager<D>,
    params: &VacationParams,
    rng: &mut StdRng,
) {
    let action = rng.gen_range(0..100u64);
    let query_range = params.query_range();
    if action < params.percent_user {
        // Make-reservation: query up to n random resources, remember the
        // most expensive available one per kind, then reserve them for a
        // random customer.
        let num_queries = rng.gen_range(1..=params.queries_per_transaction);
        let customer_id = rng.gen_range(1..=params.num_relations);
        let queries: Vec<(ReservationKind, u64)> = (0..num_queries)
            .map(|_| {
                (
                    ReservationKind::ALL[rng.gen_range(0..3usize)],
                    rng.gen_range(1..=query_range),
                )
            })
            .collect();
        ctx.atomically(|tx| {
            let mut best: [Option<(u64, u64)>; 3] = [None; 3]; // (price, id) per kind
            for &(kind, id) in &queries {
                let slot = match kind {
                    ReservationKind::Car => 0,
                    ReservationKind::Room => 1,
                    ReservationKind::Flight => 2,
                };
                if let (Some(price), Some(free)) = (
                    manager.query_price(tx, kind, id)?,
                    manager.query_free(tx, kind, id)?,
                ) {
                    if free > 0 && best[slot].is_none_or(|(p, _)| price > p) {
                        best[slot] = Some((price, id));
                    }
                }
            }
            if best.iter().any(Option::is_some) {
                manager.add_customer(tx, customer_id)?;
                for (slot, kind) in ReservationKind::ALL.iter().enumerate() {
                    if let Some((_, id)) = best[slot] {
                        manager.reserve(tx, *kind, customer_id, id)?;
                    }
                }
            }
            Ok(())
        });
    } else if action % 2 == 0 {
        // Delete-customer: bill then remove.
        let customer_id = rng.gen_range(1..=params.num_relations);
        ctx.atomically(|tx| {
            if manager.query_customer_bill(tx, customer_id)?.is_some() {
                manager.delete_customer(tx, customer_id)?;
            }
            Ok(())
        });
    } else {
        // Update-tables: add or remove units of random resources.
        let num_updates = rng.gen_range(1..=params.queries_per_transaction);
        let updates: Vec<(ReservationKind, u64, bool, u64)> = (0..num_updates)
            .map(|_| {
                (
                    ReservationKind::ALL[rng.gen_range(0..3usize)],
                    rng.gen_range(1..=query_range),
                    rng.gen_bool(0.5),
                    50 * rng.gen_range(1..=5u64) + 50,
                )
            })
            .collect();
        ctx.atomically(|tx| {
            for &(kind, id, add, price) in &updates {
                if add {
                    manager.add_resource(tx, kind, id, 100, price)?;
                } else {
                    manager.delete_resource(tx, kind, id, 100)?;
                }
            }
            Ok(())
        });
    }
}

/// Convenience: initialize the tables and run the clients in one call.
pub fn run_vacation<D: DirectoryMap>(
    stm: &Arc<Stm>,
    manager: &Arc<Manager<D>>,
    params: &VacationParams,
) -> VacationResult {
    initialize(stm, manager, params);
    run_clients(stm, manager, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_baselines::{RedBlackTree, SeqMap};
    use sf_tree::OptSpecFriendlyTree;

    #[test]
    fn params_presets_match_stamp_shape() {
        let low = VacationParams::low_contention();
        let high = VacationParams::high_contention();
        assert_eq!(low.queries_per_transaction, 2);
        assert_eq!(low.query_range_percent, 90);
        assert_eq!(low.percent_user, 98);
        assert_eq!(high.queries_per_transaction, 4);
        assert_eq!(high.query_range_percent, 60);
        assert_eq!(high.percent_user, 90);
        assert_eq!(
            low.clone().with_transaction_multiplier(8).num_transactions,
            low.num_transactions * 8
        );
    }

    #[test]
    fn smoke_run_on_sequential_directories() {
        let stm = Stm::default_config();
        let manager = Arc::new(Manager::<SeqMap>::new());
        let params = VacationParams::smoke_test().with_clients(1);
        let result = run_vacation(&stm, &manager, &params);
        assert_eq!(result.transactions, 600);
        assert!(result.elapsed > Duration::ZERO);
        manager.check_consistency().unwrap();
    }

    #[test]
    fn smoke_run_on_speculation_friendly_directories_with_maintenance() {
        let stm = Stm::default_config();
        let manager = Arc::new(Manager::<OptSpecFriendlyTree>::new());
        let maintenance: Vec<_> = ReservationKind::ALL
            .iter()
            .map(|k| manager.table(*k).start_maintenance(stm.register()))
            .collect();
        let params = VacationParams::smoke_test();
        let result = run_vacation(&stm, &manager, &params);
        drop(maintenance);
        assert_eq!(result.transactions, 600);
        assert_eq!(result.structure, "OptSFtree");
        manager.check_consistency().unwrap();
    }

    #[test]
    fn smoke_run_on_red_black_directories() {
        let stm = Stm::default_config();
        let manager = Arc::new(Manager::<RedBlackTree>::new());
        let params = VacationParams::smoke_test();
        let result = run_vacation(&stm, &manager, &params);
        assert_eq!(result.structure, "RBtree");
        assert!(result.stm.commits >= result.transactions);
        manager.check_consistency().unwrap();
    }
}
