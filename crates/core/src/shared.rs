//! State and helpers shared by the portable (Algorithm 1) and optimized
//! (Algorithm 2) speculation-friendly trees.
//!
//! Both variants store the same [`Node`] layout in the same arena, create the
//! tree with a sentinel root of key ∞ (every real key lives in the root's
//! left subtree, so the root is never rotated or removed — see the paper's
//! correctness proof §4), and share the post-find logic of the abstract
//! operations (contains / insert / logical delete). Only the `find` routine
//! differs, so it is abstracted behind [`FindSpec`].

use std::ops::{ControlFlow, RangeInclusive};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sf_stm::{TCell, ThreadCtx, Transaction, TxResult};

use crate::arena::{ActivityHandle, NodeId, TxArena};
use crate::map::ScanOrder;
use crate::node::{Key, Node, Side, Value, SENTINEL_KEY};
use crate::scan::{bst_range_visit, ScanNode};

/// Counters describing the work performed on a tree, both by abstract
/// operations and by the background maintenance thread. §5.5 of the paper
/// compares rotation counts between trees; these counters regenerate that
/// observation.
#[derive(Debug, Default)]
pub struct TreeStats {
    /// Successful right rotations.
    pub right_rotations: AtomicU64,
    /// Successful left rotations.
    pub left_rotations: AtomicU64,
    /// Successful physical removals of logically deleted nodes.
    pub removals: AtomicU64,
    /// Height propagations that changed at least one stored height.
    pub propagations: AtomicU64,
    /// Completed maintenance traversals.
    pub maintenance_passes: AtomicU64,
    /// Nodes recycled after quiescence.
    pub recycled: AtomicU64,
    /// Rotations performed because a subtree's decayed access mass dominated
    /// its sibling's (hot-key restructuring), a subset of the left/right
    /// rotation totals.
    pub hot_rotations: AtomicU64,
}

impl TreeStats {
    /// Total number of successful rotations (left + right).
    pub fn rotations(&self) -> u64 {
        // sf-lint: allow(relaxed-atomic, rotation telemetry reads for the end-of-run report; staleness is harmless)
        self.right_rotations.load(Ordering::Relaxed) + self.left_rotations.load(Ordering::Relaxed)
    }
}

/// Default access-sampling rate: one in `DEFAULT_HOT_SAMPLE` traversals
/// records its endpoint (weighted by the rate, so masses approximate true
/// access counts). Overridden by `SF_HOT_SAMPLE`; `0` disables recording.
pub const DEFAULT_HOT_SAMPLE: u64 = 64;

fn hot_sample_from_env() -> u64 {
    std::env::var("SF_HOT_SAMPLE")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(DEFAULT_HOT_SAMPLE)
}

thread_local! {
    /// Per-thread traversal tick driving the access-sampling decision. Plain
    /// thread-local arithmetic: no atomics, no STM interaction.
    static HOT_TICK: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Shared interior of a speculation-friendly tree.
#[derive(Debug, Clone)]
pub(crate) struct TreeCore {
    pub arena: Arc<TxArena<Node>>,
    pub root: NodeId,
    pub stats: Arc<TreeStats>,
    /// Access-sampling rate (`SF_HOT_SAMPLE`): every `rate`-th traversal on a
    /// thread records its endpoint with weight `rate`; `0` disables.
    pub hot_sample: Arc<AtomicU64>,
}

impl TreeCore {
    /// Create a tree interior with its sentinel root (key ∞).
    pub fn new(arena: Arc<TxArena<Node>>) -> Self {
        let root = arena.alloc();
        arena.get(root).init_fresh(SENTINEL_KEY, 0);
        // The sentinel is "logically deleted" so it never shows up as a
        // member of the abstraction.
        arena.get(root).del.unsync_store(true);
        TreeCore {
            arena,
            root,
            stats: Arc::new(TreeStats::default()),
            hot_sample: Arc::new(AtomicU64::new(hot_sample_from_env())),
        }
    }

    /// Record one traversal ending at `id`, subject to the sampling rate.
    /// The counter bump is a relaxed add on a plain atomic — it never joins
    /// the transaction's read/write sets, so hot-key tracking is invisible
    /// to conflict detection.
    #[inline]
    pub fn record_access_sampled(&self, id: NodeId) {
        // sf-lint: allow(relaxed-atomic, sampling-rate read; staleness only shifts which accesses get sampled)
        let rate = self.hot_sample.load(Ordering::Relaxed);
        if rate == 0 {
            return;
        }
        let due = HOT_TICK.with(|tick| {
            let t = tick.get() + 1;
            if t >= rate {
                tick.set(0);
                true
            } else {
                tick.set(t);
                false
            }
        });
        if due {
            self.node(id).record_access(rate);
        }
    }

    /// Allocate and initialize a node that is not yet linked into the tree.
    pub fn alloc_fresh(&self, key: Key, value: Value) -> NodeId {
        let id = self.arena.alloc();
        self.arena.get(id).init_fresh(key, value);
        id
    }

    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        self.arena.get(id)
    }
}

/// The traversal strategy distinguishing Algorithm 1 from Algorithm 2.
///
/// `find` returns a node that is either (a) the node carrying `key`, with its
/// membership-relevant fields protected by transactional reads, or (b) the
/// node under which `key` would have to be inserted, with the corresponding
/// (⊥) child pointer protected by a transactional read. Everything else
/// (contains/insert/delete logic) is common code.
pub(crate) trait FindSpec {
    /// Descend from the root towards `key`.
    fn find<'env>(core: &'env TreeCore, tx: &mut Transaction<'env>, key: Key) -> TxResult<NodeId>;
}

/// Common lookup: `Some(value)` when the key is present (not logically
/// deleted).
pub(crate) fn tx_get_common<'env, F: FindSpec>(
    core: &'env TreeCore,
    tx: &mut Transaction<'env>,
    key: Key,
) -> TxResult<Option<Value>> {
    let found = F::find(core, tx, key)?;
    core.record_access_sampled(found);
    let node = core.node(found);
    if node.key() == key && !tx.read(&node.del)? {
        Ok(Some(tx.read(&node.value)?))
    } else {
        Ok(None)
    }
}

/// Common insert (paper Algorithm 1, `insert(k, v)`): revive a logically
/// deleted node or link a fresh node below the returned parent.
pub(crate) fn tx_insert_common<'env, F: FindSpec>(
    core: &'env TreeCore,
    tx: &mut Transaction<'env>,
    key: Key,
    value: Value,
) -> TxResult<bool> {
    assert!(key != SENTINEL_KEY, "the sentinel key is reserved");
    let found = F::find(core, tx, key)?;
    core.record_access_sampled(found);
    let node = core.node(found);
    if node.key() == key {
        if tx.read(&node.del)? {
            // The key was logically deleted: revive it. This is the only
            // insert path that does not touch the tree structure.
            tx.write(&node.del, false)?;
            tx.write(&node.value, value)?;
            Ok(true)
        } else {
            Ok(false)
        }
    } else {
        // The find ended on a leaf-side ⊥ pointer that it read
        // transactionally, so linking the new node is conflict-checked.
        let new_id = core.alloc_fresh(key, value);
        let arena = Arc::clone(&core.arena);
        tx.on_abort(move || arena.recycle(new_id));
        let side = Side::for_key(key, node.key());
        tx.write(node.child(side), new_id)?;
        Ok(true)
    }
}

/// Common logical delete (paper Algorithm 1, `delete(k)`): flip the deleted
/// flag; the physical unlink is left to the maintenance thread.
pub(crate) fn tx_delete_common<'env, F: FindSpec>(
    core: &'env TreeCore,
    tx: &mut Transaction<'env>,
    key: Key,
) -> TxResult<bool> {
    let found = F::find(core, tx, key)?;
    core.record_access_sampled(found);
    let node = core.node(found);
    if node.key() != key {
        return Ok(false);
    }
    if tx.read(&node.del)? {
        Ok(false)
    } else {
        tx.write(&node.del, true)?;
        Ok(true)
    }
}

/// The scan hooks of the speculation-friendly node layout, feeding the
/// generic walker of [`crate::scan`]. Two paper-specific subtleties live
/// here:
///
/// * **Logically-deleted nodes are skipped.** A deleted key stays physically
///   linked (`del = true`) until the maintenance thread removes it, so
///   [`scan_entry`](ScanNode::scan_entry) reads `del` inside the transaction
///   and reports tombstones as absent — which also makes a racing
///   revive-insert (`del` flipped back to `false`) conflict with the scan
///   instead of being missed.
/// * **Keys are immutable per node incarnation** (slots recycle only after
///   quiescence), so routing reads them with a plain atomic load, exactly
///   like the point `find`.
impl ScanNode for Node {
    fn scan_key<'env>(&'env self, _tx: &mut Transaction<'env>) -> TxResult<Key> {
        Ok(self.key())
    }

    fn scan_entry<'env>(&'env self, tx: &mut Transaction<'env>) -> TxResult<Option<(Key, Value)>> {
        // The sentinel root carries `del = true` from birth, so it can
        // never leak into a scan even when the range ends at `Key::MAX`.
        if tx.read(&self.del)? {
            Ok(None)
        } else {
            Ok(Some((self.key(), tx.read(&self.value)?)))
        }
    }

    fn left_child(&self) -> &TCell<NodeId> {
        &self.left
    }

    fn right_child(&self) -> &TCell<NodeId> {
        &self.right
    }
}

/// Common ordered range walk shared by both speculation-friendly variants.
///
/// Note that the optimized traversal shortcut does **not** apply here:
/// Algorithm 2's point `find` can use unit reads because it only needs to
/// pin one node, but a range scan's *result set* must be an atomic
/// snapshot, so every hop stays in the read set and is revalidated at
/// commit. The scan read-set cost is therefore `O(path + range)` on both
/// variants — exactly what `max_scan_read_set` in
/// [`sf_stm::StatsSnapshot`] measures.
pub(crate) fn tx_range_visit_common<'env>(
    core: &'env TreeCore,
    tx: &mut Transaction<'env>,
    range: RangeInclusive<Key>,
    order: ScanOrder,
    visit: &mut dyn FnMut(Key, Value) -> ControlFlow<()>,
) -> TxResult<()> {
    bst_range_visit(|id| core.node(id), core.root, tx, range, order, visit)
}

/// Per-thread handle of a speculation-friendly tree: the STM context plus the
/// activity slot used by the quiescence-based reclamation protocol (§3.4).
#[derive(Debug)]
pub struct SfHandle {
    pub(crate) ctx: ThreadCtx,
    pub(crate) activity: ActivityHandle,
}

impl SfHandle {
    /// Access the underlying STM thread context (e.g. to compose tree
    /// operations with other transactional state in one transaction).
    pub fn ctx_mut(&mut self) -> &mut ThreadCtx {
        &mut self.ctx
    }

    /// Borrow the context and the activity handle at the same time.
    pub(crate) fn parts(&mut self) -> (&mut ThreadCtx, &ActivityHandle) {
        (&mut self.ctx, &self.activity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_core_creates_sentinel_root() {
        let core = TreeCore::new(Arc::new(TxArena::with_capacity(1024)));
        let root = core.node(core.root);
        assert_eq!(root.key(), SENTINEL_KEY);
        assert!(root.del.unsync_load());
        assert!(root.left.unsync_load().is_nil());
        assert!(root.right.unsync_load().is_nil());
    }

    #[test]
    fn alloc_fresh_initializes_node() {
        let core = TreeCore::new(Arc::new(TxArena::with_capacity(1024)));
        let id = core.alloc_fresh(5, 50);
        let n = core.node(id);
        assert_eq!(n.key(), 5);
        assert_eq!(n.value.unsync_load(), 50);
        assert!(!n.del.unsync_load());
    }

    #[test]
    fn stats_rotation_total() {
        let stats = TreeStats::default();
        stats.left_rotations.store(3, Ordering::Relaxed);
        stats.right_rotations.store(4, Ordering::Relaxed);
        assert_eq!(stats.rotations(), 7);
    }

    #[test]
    fn sampled_recording_weights_by_rate() {
        let core = TreeCore::new(Arc::new(TxArena::with_capacity(1024)));
        core.hot_sample.store(4, Ordering::Relaxed);
        let id = core.alloc_fresh(1, 1);
        // Whatever tick offset earlier tests on this thread left behind,
        // 8 calls at rate 4 fire exactly 2 samples of weight 4 each.
        for _ in 0..8 {
            core.record_access_sampled(id);
        }
        assert_eq!(core.node(id).access_mass(), 8);
    }

    #[test]
    fn sampling_rate_zero_disables_recording() {
        let core = TreeCore::new(Arc::new(TxArena::with_capacity(1024)));
        core.hot_sample.store(0, Ordering::Relaxed);
        let id = core.alloc_fresh(2, 2);
        for _ in 0..256 {
            core.record_access_sampled(id);
        }
        assert_eq!(core.node(id).access_mass(), 0);
    }
}
