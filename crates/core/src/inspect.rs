//! Quiescent inspection of a speculation-friendly tree.
//!
//! These helpers walk the structure with plain (non-transactional) loads and
//! are therefore only meaningful while no concurrent updates are running:
//! they back the test oracles, the invariant checks of the property-based
//! tests, and the size/depth reporting of the benchmark harness.

use std::collections::HashSet;

use crate::arena::NodeId;
use crate::map::HotReport;
use crate::node::{Key, Value, SENTINEL_KEY};
use crate::shared::TreeCore;

/// Read-only view over a tree for verification and reporting.
#[derive(Debug, Clone, Copy)]
pub struct TreeInspect<'a> {
    core: &'a TreeCore,
}

impl<'a> TreeInspect<'a> {
    pub(crate) fn new(core: &'a TreeCore) -> Self {
        TreeInspect { core }
    }

    /// All `(key, value)` pairs that are present in the abstraction (reachable
    /// and not logically deleted), in ascending key order.
    pub fn live_entries(&self) -> Vec<(Key, Value)> {
        let mut out = Vec::new();
        self.walk_in_order(self.core.root, &mut |id| {
            let n = self.core.node(id);
            if !n.del.unsync_load() && n.key() != SENTINEL_KEY {
                out.push((n.key(), n.value.unsync_load()));
            }
        });
        out
    }

    /// Number of reachable nodes, including logically deleted ones and the
    /// sentinel root.
    pub fn reachable_nodes(&self) -> usize {
        let mut count = 0usize;
        self.walk_in_order(self.core.root, &mut |_| count += 1);
        count
    }

    /// Length of the longest root-to-leaf path (number of nodes), excluding
    /// the sentinel root.
    pub fn depth(&self) -> usize {
        fn rec(inspect: &TreeInspect<'_>, id: NodeId) -> usize {
            if id.is_nil() {
                return 0;
            }
            let n = inspect.core.node(id);
            1 + rec(inspect, n.left.unsync_load()).max(rec(inspect, n.right.unsync_load()))
        }
        let root_left = self.core.node(self.core.root).left.unsync_load();
        rec(self, root_left)
    }

    /// Depth (1-based number of nodes on the path, excluding the sentinel
    /// root) at which `key` sits, or `None` when it is not reachable as a
    /// live entry.
    pub fn key_depth(&self, key: Key) -> Option<usize> {
        let mut id = self.core.node(self.core.root).left.unsync_load();
        let mut depth = 0usize;
        while !id.is_nil() {
            depth += 1;
            let n = self.core.node(id);
            let k = n.key();
            if k == key {
                return (!n.del.unsync_load()).then_some(depth);
            }
            id = if key < k {
                n.left.unsync_load()
            } else {
                n.right.unsync_load()
            };
        }
        None
    }

    /// Summarize the sampled access-frequency counters over the reachable
    /// tree: total sampled mass, the mass-weighted average depth of accesses,
    /// and the hottest single node with its depth. `hot_rotations` is left
    /// zero — the owning tree fills it in from its [`crate::TreeStats`].
    pub fn hot_summary(&self) -> HotReport {
        let mut report = HotReport::default();
        let mut weighted = 0f64;
        fn rec(
            inspect: &TreeInspect<'_>,
            id: NodeId,
            depth: u64,
            report: &mut HotReport,
            weighted: &mut f64,
        ) {
            if id.is_nil() {
                return;
            }
            let n = inspect.core.node(id);
            let mass = n.access_mass();
            report.sampled_mass += mass;
            *weighted += mass as f64 * depth as f64;
            if mass > report.hottest_mass {
                report.hottest_mass = mass;
                report.hottest_key = n.key();
                report.hottest_depth = depth;
            }
            rec(inspect, n.left.unsync_load(), depth + 1, report, weighted);
            rec(inspect, n.right.unsync_load(), depth + 1, report, weighted);
        }
        let root_left = self.core.node(self.core.root).left.unsync_load();
        rec(self, root_left, 1, &mut report, &mut weighted);
        if report.sampled_mass > 0 {
            report.avg_depth = weighted / report.sampled_mass as f64;
        }
        report
    }

    /// Verify the structural invariants that must hold while the tree is
    /// quiescent:
    ///
    /// * every reachable node is within its ancestors' key range (valid BST),
    /// * no key appears on two reachable, non-removed nodes,
    /// * no reachable node carries a removed flag,
    /// * no cycles among reachable nodes.
    pub fn check_consistency(&self) -> Result<(), String> {
        let mut seen_ids = HashSet::new();
        let mut seen_keys = HashSet::new();
        self.check_rec(
            self.core.node(self.core.root).left.unsync_load(),
            0,
            SENTINEL_KEY,
            &mut seen_ids,
            &mut seen_keys,
        )?;
        Ok(())
    }

    fn check_rec(
        &self,
        id: NodeId,
        low: Key,
        high: Key,
        seen_ids: &mut HashSet<NodeId>,
        seen_keys: &mut HashSet<Key>,
    ) -> Result<(), String> {
        if id.is_nil() {
            return Ok(());
        }
        if !seen_ids.insert(id) {
            return Err(format!("cycle or shared node detected at {id:?}"));
        }
        let n = self.core.node(id);
        let k = n.key();
        if n.rem.unsync_load().is_removed() {
            return Err(format!("reachable node {id:?} (key {k}) is marked removed"));
        }
        if !(low <= k && k < high) {
            return Err(format!(
                "BST violation: key {k} outside range [{low}, {high}) at {id:?}"
            ));
        }
        if !seen_keys.insert(k) {
            return Err(format!("duplicate reachable key {k}"));
        }
        self.check_rec(n.left.unsync_load(), low, k, seen_ids, seen_keys)?;
        self.check_rec(
            n.right.unsync_load(),
            k.saturating_add(1),
            high,
            seen_ids,
            seen_keys,
        )
    }

    fn walk_in_order(&self, root: NodeId, visit: &mut impl FnMut(NodeId)) {
        fn rec(inspect: &TreeInspect<'_>, id: NodeId, visit: &mut impl FnMut(NodeId)) {
            if id.is_nil() {
                return;
            }
            let n = inspect.core.node(id);
            rec(inspect, n.left.unsync_load(), visit);
            visit(id);
            rec(inspect, n.right.unsync_load(), visit);
        }
        rec(self, root, visit);
    }
}

#[cfg(test)]
mod tests {

    use crate::map::TxMap;
    use crate::portable::SpecFriendlyTree;
    use sf_stm::Stm;

    #[test]
    fn empty_tree_is_consistent_and_empty() {
        let tree = SpecFriendlyTree::new();
        assert!(tree.inspect().live_entries().is_empty());
        assert_eq!(tree.inspect().depth(), 0);
        tree.inspect().check_consistency().unwrap();
    }

    #[test]
    fn entries_are_sorted_and_depth_reasonable() {
        let stm = Stm::default_config();
        let tree = SpecFriendlyTree::new();
        let mut h = tree.register(stm.register());
        for k in [8u64, 3, 10, 1, 6, 14, 4, 7, 13] {
            tree.insert(&mut h, k, k + 100);
        }
        let entries = tree.inspect().live_entries();
        let keys: Vec<u64> = entries.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 3, 4, 6, 7, 8, 10, 13, 14]);
        assert!(tree.inspect().depth() >= 4);
        assert!(tree.inspect().reachable_nodes() >= 10); // 9 keys + sentinel
    }

    #[test]
    fn bst_violation_is_detected() {
        let stm = Stm::default_config();
        let tree = SpecFriendlyTree::new();
        let mut h = tree.register(stm.register());
        for k in [5u64, 2, 8] {
            tree.insert(&mut h, k, k);
        }
        // Corrupt the structure on purpose: put a large key into the left
        // subtree of the node holding 5.
        let entries = tree.inspect();
        let root_left = entries.core.node(entries.core.root).left.unsync_load();
        let node5 = entries.core.node(root_left);
        assert_eq!(node5.key(), 5);
        let bogus = entries.core.alloc_fresh(999, 0);
        let two = node5.left.unsync_load();
        entries.core.node(two).left.unsync_store(bogus);
        assert!(tree.inspect().check_consistency().is_err());
    }
}
