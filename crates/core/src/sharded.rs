//! Hash-partitioned composition of transactional maps.
//!
//! [`ShardedMap`] splits the key space across `N` inner maps ("shards") by
//! hashing each key. Every shard is fully independent: it has its **own STM
//! instance** (so shards never contend on a shared version clock) and — for
//! the speculation-friendly trees — its **own background
//! [`MaintenanceWorker`](crate::maintenance::MaintenanceWorker) thread**.
//! Single-key operations route to one shard and inherit that shard's
//! transactional guarantees unchanged; the scalability win is that `N` shards
//! multiply the commit bandwidth of the global clock and spread rotation work
//! over `N` rotator threads.
//!
//! ## Cross-shard `move`
//!
//! The composed `move` of §5.4 spans two STM domains when its keys hash to
//! different shards, so it cannot run as one transaction. [`ShardedMap`]
//! makes it atomic with a two-phase protocol:
//!
//! 1. take the *move locks* of both shards in global (index) order — moves
//!    touching a common shard serialize (same-shard moves take their single
//!    shard lock too), and the ordering rules out deadlock;
//! 2. read the source value `v`, insert it at the destination (failing if
//!    the destination key is occupied), then **compare-and-delete** the
//!    source ([`TxMap::delete_if`]): the source entry is removed only if it
//!    still holds `v`, so a concurrent delete-then-reinsert of a different
//!    value is never destroyed blindly;
//! 3. if the compare-and-delete fails — a concurrent update consumed or
//!    replaced the source after step 2's read — retract the destination
//!    copy with another compare-and-delete and report failure, which
//!    linearizes the competing update before this move.
//!
//! **Guarantees.** A completed move leaves exactly one copy; a failed move
//! leaves the map as if it never ran; no *committed* concurrent insert or
//! delete is ever silently destroyed (value-checked deletes make the
//! protocol's writes touch only the value it copied). The relaxation
//! relative to a single-STM map is visibility: between steps 2 and 3 a
//! concurrent reader may observe the value at *both* keys, and a concurrent
//! `delete(to)` may consume the in-flight copy (the move then still reports
//! by the compare-and-delete outcome, so the global key/value accounting
//! stays linear — see the conservation tests in `tests/sharded_map.rs`).
//! In-transaction composition ([`TxMapInTx`]) is supported per shard; a
//! cross-shard `tx_move` inside a caller-supplied transaction is rejected
//! because no single transaction can span two STM instances — use the
//! top-level [`TxMap::move_entry`] instead.
//!
//! **Durability.** Steps 2 and 3 are driven through the [`TxMap`] move
//! hooks ([`TxMap::move_source_scope`], [`TxMap::move_peer_scope`],
//! [`TxMap::move_insert`], [`TxMap::move_delete_if`]) with a fresh
//! process-unique move id. On plain in-memory shards the hooks are
//! passthroughs; when the shards are durable (`sf-persist`'s
//! `ShardedMap<DurableMap<_>>` composition), they implement a two-phase
//! intent protocol — a *move intent* is fsynced to the source shard's log
//! before either half commits, both halves are logged stamped with the
//! move id, and recovery joins the two shards' logs to deterministically
//! complete or roll back a move interrupted by a crash. A crash can
//! therefore never surface the in-flight transient (value at both keys or
//! at neither) after recovery, even though concurrent *readers* of the
//! live map may still observe it.
//!
//! ## Range scans: the consistency contract
//!
//! An ordered scan ([`TxMap::range_collect`] / [`TxMap::len`]) cannot run as
//! one transaction either — the range spans every shard (keys are *hashed*
//! across shards, so each shard holds a scattering of the whole key space).
//! Two modes are offered:
//!
//! * **`range_collect` — per-shard-atomic.** Each shard contributes the
//!   in-range entries of one atomic read-only scan transaction on its own
//!   STM, executed shard by shard in index order; the sorted per-shard
//!   results are then k-way merged into one ascending sequence. Every
//!   *entry* observed is a committed value, and all entries from the same
//!   shard belong to one consistent snapshot — but the snapshots of
//!   different shards are taken at different times. Concretely: an update
//!   that lands on a not-yet-scanned shard while an earlier shard is being
//!   scanned may or may not appear, and a cross-shard [`TxMap::move_entry`]
//!   racing the scan may be observed at both keys or at neither (the same
//!   transient visibility the move protocol itself allows).
//! * **[`ShardedMap::range_quiescent`] — exact.** Parks every shard's
//!   rotator thread (via [`ShardedMap::pause_maintenance`]) before scanning,
//!   so no restructuring runs underneath; with no concurrent updaters the
//!   result is exactly the map's contents (the oracle mode used by the
//!   equivalence tests). Under concurrent updates it degrades to the
//!   per-shard-atomic contract above.

use std::ops::RangeInclusive;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use sf_stm::{StatsSnapshot, Stm, StmConfig, ThreadCtx, Transaction, TxResult};

use crate::maintenance::{MaintenanceConfig, MaintenanceHandle, MaintenancePause};
use crate::map::{intern_label, TxMap, TxMapInTx};
use crate::node::{Key, Value};
use crate::optimized::OptSpecFriendlyTree;
use crate::portable::SpecFriendlyTree;

/// Everything one shard needs: the inner map, its private STM instance, and
/// (optionally) a running maintenance thread for it.
pub struct ShardParts<M> {
    /// The shard's STM instance.
    pub stm: Arc<Stm>,
    /// The shard's inner map.
    pub map: Arc<M>,
    /// A background maintenance thread bound to the shard, if the inner map
    /// uses one. Held for the lifetime of the [`ShardedMap`]; dropping the
    /// sharded map stops every shard's maintenance thread.
    pub maintenance: Option<MaintenanceHandle>,
}

struct Shard<M> {
    stm: Arc<Stm>,
    map: Arc<M>,
    /// Serializes cross-shard moves that involve this shard (see the module
    /// docs). Plain single-key operations never touch it. Goes through the
    /// `parking_lot` shim under a stable class name so checked builds run
    /// the pairwise (lo, hi) acquisition order through the inversion
    /// detector.
    move_lock: parking_lot::Mutex<()>,
    /// The shard's rotator thread; paused during quiescent inspection,
    /// stopped on drop.
    maintenance: Option<MaintenanceHandle>,
}

/// A map hash-partitioned over `N` independent inner maps.
///
/// See the [module documentation](self) for the design and the cross-shard
/// `move` protocol.
pub struct ShardedMap<M: TxMap> {
    shards: Vec<Shard<M>>,
    label: &'static str,
}

/// Per-thread handle of a [`ShardedMap`]: one inner handle per shard, each
/// registered with that shard's own STM instance.
pub struct ShardedHandle<M: TxMap> {
    handles: Vec<M::Handle>,
}

impl<M: TxMap> ShardedHandle<M> {
    /// Number of per-shard handles (= the map's shard count).
    pub fn shard_count(&self) -> usize {
        self.handles.len()
    }

    /// The inner handle registered with shard `index`, for operations that
    /// address one shard directly (e.g. a durability layer checkpointing
    /// every shard's inner map in turn).
    pub fn shard_handle_mut(&mut self, index: usize) -> &mut M::Handle {
        &mut self.handles[index]
    }
}

/// The process-wide cross-shard move-id counter, seeded from the wall
/// clock and the pid so two incarnations are unlikely to collide even
/// before [`advance_move_ids`] makes it certain.
fn move_id_counter() -> &'static AtomicU64 {
    static NEXT: OnceLock<AtomicU64> = OnceLock::new();
    NEXT.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        AtomicU64::new((nanos ^ ((std::process::id() as u64) << 48)) | 1)
    })
}

/// Allocate a cross-shard move id: unique within the process, and unique
/// against everything a recovered log contains once the durable layer has
/// called [`advance_move_ids`] with its recovery's floor.
fn next_move_id() -> u64 {
    // sf-lint: allow(relaxed-atomic, move ids need atomicity (uniqueness), not ordering; durability ordering comes from the WAL records)
    move_id_counter().fetch_add(1, Ordering::Relaxed)
}

/// Raise the move-id counter to at least `floor`. The durable layer calls
/// this after recovery with one past the highest move id found in any
/// shard log, making id reuse across restarts of a log directory
/// *impossible* rather than merely improbable — recovery's cross-log join
/// matches protocol records by id, so a reissued id could mis-join a stale
/// record left by a previous incarnation.
pub fn advance_move_ids(floor: u64) {
    // sf-lint: allow(relaxed-atomic, monotone floor advance; recovery runs single-threaded before mutators start)
    move_id_counter().fetch_max(floor, Ordering::Relaxed);
}

/// K-way merge of per-shard range results. Each input is sorted ascending
/// and the hash partition makes keys unique across shards, so repeatedly
/// taking the smallest head yields the globally sorted sequence (shard
/// counts are small, so a linear head scan beats a heap).
fn merge_sorted(per_shard: Vec<Vec<(Key, Value)>>) -> Vec<(Key, Value)> {
    let total = per_shard.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut heads = vec![0usize; per_shard.len()];
    loop {
        let mut best: Option<(usize, Key)> = None;
        for (shard, entries) in per_shard.iter().enumerate() {
            if let Some(&(key, _)) = entries.get(heads[shard]) {
                if best.is_none_or(|(_, best_key)| key < best_key) {
                    best = Some((shard, key));
                }
            }
        }
        match best {
            Some((shard, _)) => {
                out.push(per_shard[shard][heads[shard]]);
                heads[shard] += 1;
            }
            None => return out,
        }
    }
}

impl<M: TxMap> ShardedMap<M> {
    /// Build a sharded map from `shard_count` shards produced by `make_shard`
    /// (called with the shard index).
    pub fn new_with(
        shard_count: usize,
        mut make_shard: impl FnMut(usize) -> ShardParts<M>,
    ) -> Self {
        assert!(shard_count >= 1, "a sharded map needs at least one shard");
        let shards: Vec<Shard<M>> = (0..shard_count)
            .map(|index| {
                let parts = make_shard(index);
                Shard {
                    stm: parts.stm,
                    map: parts.map,
                    move_lock: parking_lot::Mutex::named((), "shard.move_lock"),
                    maintenance: parts.maintenance,
                }
            })
            .collect();
        let label = intern_label(format!("{}-sharded{}", shards[0].map.name(), shard_count));
        ShardedMap { shards, label }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index a key routes to (Fibonacci hashing over the key).
    pub fn shard_of(&self, key: Key) -> usize {
        let h = (key ^ (key >> 33)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        ((h >> 32) as usize) % self.shards.len()
    }

    /// The STM instance of shard `index` (e.g. to build a [`Transaction`]
    /// that composes with this shard through [`TxMapInTx`]).
    pub fn shard_stm(&self, index: usize) -> &Arc<Stm> {
        &self.shards[index].stm
    }

    /// The STM instance owning `key`'s shard.
    pub fn stm_for(&self, key: Key) -> &Arc<Stm> {
        self.shard_stm(self.shard_of(key))
    }

    /// The inner map of shard `index`.
    pub fn shard_map(&self, index: usize) -> &Arc<M> {
        &self.shards[index].map
    }

    /// Register a worker thread with every shard. Unlike
    /// [`TxMap::register`], no external [`ThreadCtx`] is needed: each
    /// per-shard handle registers with that shard's own STM.
    pub fn register_sharded(&self) -> ShardedHandle<M> {
        ShardedHandle {
            handles: self
                .shards
                .iter()
                .map(|shard| shard.map.register(shard.stm.register()))
                .collect(),
        }
    }

    /// STM statistics aggregated over every shard (sums of counters, maxima
    /// of high-water marks).
    pub fn stats(&self) -> StatsSnapshot {
        let mut total = StatsSnapshot::default();
        for shard in &self.shards {
            total.merge(&shard.stm.stats());
        }
        total
    }

    /// Reset the statistics of every shard's STM instance.
    pub fn reset_stats(&self) {
        for shard in &self.shards {
            shard.stm.reset_stats();
        }
    }

    /// Park every shard's rotator thread between passes and wait until all
    /// are parked. While the returned guards live, no restructuring runs on
    /// any shard, so quiescent inspections (counting scans, consistency
    /// checks) observe a stable structure. Maintenance resumes when the
    /// guards drop.
    pub fn pause_maintenance(&self) -> Vec<MaintenancePause<'_>> {
        self.shards
            .iter()
            .filter_map(|shard| shard.maintenance.as_ref().map(|m| m.pause()))
            .collect()
    }

    /// Exact-mode range scan: park every shard's rotator, then collect the
    /// in-range entries shard by shard and k-way merge them. See the
    /// [module docs](self) for the contract relative to the default
    /// per-shard-atomic [`TxMap::range_collect`].
    pub fn range_quiescent(
        &self,
        handle: &mut ShardedHandle<M>,
        range: RangeInclusive<Key>,
    ) -> Vec<(Key, Value)> {
        let _paused = self.pause_maintenance();
        TxMap::range_collect(self, handle, range)
    }
}

impl ShardedMap<OptSpecFriendlyTree> {
    /// A sharded optimized speculation-friendly tree: per shard, one STM
    /// instance built from `stm_config` and one clone-based maintenance
    /// thread.
    pub fn optimized(shard_count: usize, stm_config: StmConfig) -> Self {
        Self::optimized_with(
            shard_count,
            stm_config,
            MaintenanceConfig {
                pass_delay: Duration::from_micros(200),
                ..MaintenanceConfig::default()
            },
        )
    }

    /// Like [`ShardedMap::optimized`] with explicit maintenance tuning.
    pub fn optimized_with(
        shard_count: usize,
        stm_config: StmConfig,
        maintenance_config: MaintenanceConfig,
    ) -> Self {
        Self::new_with(shard_count, |_| {
            let stm = Stm::new(stm_config.clone());
            let map = Arc::new(OptSpecFriendlyTree::new());
            let maintenance =
                map.start_maintenance_with(stm.register(), maintenance_config.clone());
            ShardParts {
                stm,
                map,
                maintenance: Some(maintenance),
            }
        })
    }
}

impl ShardedMap<SpecFriendlyTree> {
    /// A sharded portable speculation-friendly tree: per shard, one STM
    /// instance built from `stm_config` and one classic-rotation maintenance
    /// thread.
    pub fn portable(shard_count: usize, stm_config: StmConfig) -> Self {
        Self::portable_with(
            shard_count,
            stm_config,
            MaintenanceConfig {
                pass_delay: Duration::from_micros(200),
                ..MaintenanceConfig::default()
            },
        )
    }

    /// Like [`ShardedMap::portable`] with explicit maintenance tuning.
    pub fn portable_with(
        shard_count: usize,
        stm_config: StmConfig,
        maintenance_config: MaintenanceConfig,
    ) -> Self {
        Self::new_with(shard_count, |_| {
            let stm = Stm::new(stm_config.clone());
            let map = Arc::new(SpecFriendlyTree::new());
            let maintenance =
                map.start_maintenance_with(stm.register(), maintenance_config.clone());
            ShardParts {
                stm,
                map,
                maintenance: Some(maintenance),
            }
        })
    }
}

impl<M: TxMap> TxMap for ShardedMap<M>
where
    M::Handle: Send,
{
    type Handle = ShardedHandle<M>;

    /// Register a worker thread. The passed context is dropped: a sharded map
    /// owns one STM instance per shard, so per-shard contexts are created
    /// internally (see [`ShardedMap::register_sharded`]).
    fn register(&self, _ctx: ThreadCtx) -> ShardedHandle<M> {
        self.register_sharded()
    }

    fn contains(&self, handle: &mut ShardedHandle<M>, key: Key) -> bool {
        let shard = self.shard_of(key);
        self.shards[shard]
            .map
            .contains(&mut handle.handles[shard], key)
    }

    fn get(&self, handle: &mut ShardedHandle<M>, key: Key) -> Option<Value> {
        let shard = self.shard_of(key);
        self.shards[shard].map.get(&mut handle.handles[shard], key)
    }

    fn insert(&self, handle: &mut ShardedHandle<M>, key: Key, value: Value) -> bool {
        let shard = self.shard_of(key);
        self.shards[shard]
            .map
            .insert(&mut handle.handles[shard], key, value)
    }

    fn delete(&self, handle: &mut ShardedHandle<M>, key: Key) -> bool {
        let shard = self.shard_of(key);
        self.shards[shard]
            .map
            .delete(&mut handle.handles[shard], key)
    }

    fn delete_if(&self, handle: &mut ShardedHandle<M>, key: Key, expected: Value) -> bool {
        let shard = self.shard_of(key);
        self.shards[shard]
            .map
            .delete_if(&mut handle.handles[shard], key, expected)
    }

    fn move_entry(&self, handle: &mut ShardedHandle<M>, from: Key, to: Key) -> bool {
        let (src, dst) = (self.shard_of(from), self.shard_of(to));
        if src == dst {
            // Same shard: the inner map's own atomic move applies. The
            // shard's move lock is still taken so a cross-shard move's
            // rollback can never race a same-shard relocation of the copy it
            // is about to retract.
            let _lock = self.shards[src].move_lock.lock();
            return self.shards[src]
                .map
                .move_entry(&mut handle.handles[src], from, to);
        }

        // Cross-shard: serialize against other moves touching either shard,
        // acquiring the two move locks in index order to rule out deadlock.
        let (lo, hi) = (src.min(dst), src.max(dst));
        crate::chk::sched_point(crate::chk::SchedEvent::Move);
        let _lock_lo = self.shards[lo]
            .move_lock
            // sf-lint: allow(lock-order, same-shard branch above returned; this is the first move lock of the cross-shard pair)
            .lock();
        let _lock_hi = self.shards[hi]
            .move_lock
            // sf-lint: allow(lock-order, second move lock of the pair, taken in ascending shard-index order (lo < hi) to rule out deadlock)
            .lock();

        let (head, tail) = handle.handles.split_at_mut(hi);
        let (handle_lo, handle_hi) = (&mut head[lo], &mut tail[0]);
        let (handle_src, handle_dst) = if src < dst {
            (handle_lo, handle_hi)
        } else {
            (handle_hi, handle_lo)
        };

        let src_map = &self.shards[src].map;
        let dst_map = &self.shards[dst].map;
        let value = match src_map.get(handle_src, from) {
            Some(value) => value,
            None => return false,
        };

        // Two-phase protocol, driven through the move hooks so a durable
        // wrapper can (a) fsync a move intent to the source shard's log
        // before either half commits, (b) stamp both halves with the shared
        // move id, and (c) fence both shards' logs against checkpoint
        // truncation until the resolution marker lands. On plain in-memory
        // maps every hook is a passthrough and this is exactly the old
        // insert / compare-and-delete / rollback sequence.
        let move_id = next_move_id();
        src_map.move_source_scope(move_id, dst, from, to, value, &mut || {
            dst_map.move_peer_scope(move_id, &mut || {
                if !dst_map.move_insert(handle_dst, move_id, to, value) {
                    // Destination occupied: nothing was changed.
                    return false;
                }
                // Compare-and-delete: a concurrent delete+reinsert may have
                // replaced the source with a different value since the read
                // above; deleting blindly would destroy that committed
                // update.
                if !src_map.move_delete_if(handle_src, move_id, from, value) {
                    // The source no longer holds the value that was copied:
                    // undo the destination insert (again value-checked — a
                    // concurrent delete may already have consumed the
                    // transient copy, and a later insert at `to` must not be
                    // destroyed) so the outcome linearizes as "their update
                    // first, this move found no source".
                    dst_map.move_delete_if(handle_dst, move_id, to, value);
                    return false;
                }
                true
            })
        })
    }

    /// Per-shard-atomic range scan (see the [module docs](self)): one atomic
    /// read-only scan per shard, k-way merged. For an exact snapshot at
    /// quiescence use [`ShardedMap::range_quiescent`].
    fn range_collect(
        &self,
        handle: &mut ShardedHandle<M>,
        range: RangeInclusive<Key>,
    ) -> Vec<(Key, Value)> {
        let per_shard: Vec<Vec<(Key, Value)>> = self
            .shards
            .iter()
            .zip(handle.handles.iter_mut())
            .map(|(shard, h)| shard.map.range_collect(h, range.clone()))
            .collect();
        merge_sorted(per_shard)
    }

    /// Per-shard-atomic size: the sum of one atomic scan count per shard.
    fn len(&self, handle: &mut ShardedHandle<M>) -> usize {
        self.shards
            .iter()
            .zip(handle.handles.iter_mut())
            .map(|(shard, h)| shard.map.len(h))
            .sum()
    }

    fn len_quiescent(&self) -> usize {
        // Park every shard's rotator between passes first: the inner
        // counting traversal is only accurate while no restructuring runs.
        let _paused = self.pause_maintenance();
        self.shards
            .iter()
            .map(|shard| shard.map.len_quiescent())
            .sum()
    }

    fn hot_report(&self) -> Option<crate::map::HotReport> {
        // Same quiescence requirement as `len_quiescent`: the per-shard
        // traversals read plain node fields.
        let _paused = self.pause_maintenance();
        let mut merged: Option<crate::map::HotReport> = None;
        for shard in self.shards.iter() {
            if let Some(report) = shard.map.hot_report() {
                match merged.as_mut() {
                    Some(acc) => acc.merge(&report),
                    None => merged = Some(report),
                }
            }
        }
        merged
    }

    fn name(&self) -> &'static str {
        self.label
    }
}

impl<M: TxMap + TxMapInTx> TxMapInTx for ShardedMap<M> {
    /// Compose with the shard owning `key`. The transaction **must** have
    /// been started on that shard's STM instance
    /// ([`ShardedMap::stm_for`]`(key)`); transactions cannot span shards.
    fn tx_get<'env>(&'env self, tx: &mut Transaction<'env>, key: Key) -> TxResult<Option<Value>> {
        self.shards[self.shard_of(key)].map.tx_get(tx, key)
    }

    /// See [`ShardedMap::tx_get`] for the single-shard transaction contract.
    fn tx_insert<'env>(
        &'env self,
        tx: &mut Transaction<'env>,
        key: Key,
        value: Value,
    ) -> TxResult<bool> {
        self.shards[self.shard_of(key)]
            .map
            .tx_insert(tx, key, value)
    }

    /// See [`ShardedMap::tx_get`] for the single-shard transaction contract.
    fn tx_delete<'env>(&'env self, tx: &mut Transaction<'env>, key: Key) -> TxResult<bool> {
        self.shards[self.shard_of(key)].map.tx_delete(tx, key)
    }

    /// In-transaction move, supported only when both keys hash to the same
    /// shard.
    ///
    /// # Panics
    /// Panics when `from` and `to` live on different shards: a single
    /// transaction cannot span two STM instances. Use the top-level
    /// [`TxMap::move_entry`], which runs the two-phase cross-shard protocol.
    fn tx_move<'env>(&'env self, tx: &mut Transaction<'env>, from: Key, to: Key) -> TxResult<bool> {
        let (src, dst) = (self.shard_of(from), self.shard_of(to));
        assert_eq!(
            src, dst,
            "cross-shard tx_move cannot run inside one transaction; \
             use ShardedMap::move_entry"
        );
        self.shards[src].map.tx_move(tx, from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn sharded(shards: usize) -> ShardedMap<OptSpecFriendlyTree> {
        ShardedMap::optimized(shards, StmConfig::ctl())
    }

    #[test]
    fn routes_every_key_to_a_stable_shard_in_range() {
        let map = sharded(5);
        for key in 0..10_000u64 {
            let shard = map.shard_of(key);
            assert!(shard < 5);
            assert_eq!(shard, map.shard_of(key), "routing must be stable");
        }
    }

    #[test]
    fn shards_are_reasonably_balanced() {
        let map = sharded(8);
        let mut counts = [0usize; 8];
        for key in 0..80_000u64 {
            counts[map.shard_of(key)] += 1;
        }
        for (shard, &count) in counts.iter().enumerate() {
            assert!(
                (7_000..13_000).contains(&count),
                "shard {shard} got {count} of 80k keys"
            );
        }
    }

    #[test]
    fn basic_map_operations_route_through_shards() {
        let map = sharded(4);
        let mut handle = map.register_sharded();
        for key in 0..512u64 {
            assert!(map.insert(&mut handle, key, key * 10));
            assert!(!map.insert(&mut handle, key, 0));
        }
        assert_eq!(map.len_quiescent(), 512);
        for key in 0..512u64 {
            assert_eq!(map.get(&mut handle, key), Some(key * 10));
        }
        for key in (0..512u64).step_by(2) {
            assert!(map.delete(&mut handle, key));
            assert!(!map.delete(&mut handle, key));
        }
        assert_eq!(map.len_quiescent(), 256);
    }

    #[test]
    fn cross_shard_move_semantics_match_single_map_semantics() {
        let map = sharded(4);
        let mut handle = map.register_sharded();
        // Pick two keys that land on different shards.
        let from = 1u64;
        let to = (2..1000u64)
            .find(|&k| map.shard_of(k) != map.shard_of(from))
            .expect("some key must land on another shard");

        // Source missing.
        assert!(!map.move_entry(&mut handle, from, to));
        // Plain move.
        assert!(map.insert(&mut handle, from, 77));
        assert!(map.move_entry(&mut handle, from, to));
        assert!(!map.contains(&mut handle, from));
        assert_eq!(map.get(&mut handle, to), Some(77));
        // Destination occupied.
        assert!(map.insert(&mut handle, from, 88));
        assert!(!map.move_entry(&mut handle, from, to));
        assert_eq!(map.get(&mut handle, from), Some(88));
        assert_eq!(map.get(&mut handle, to), Some(77));
        // Move onto itself is a membership test.
        assert!(map.move_entry(&mut handle, to, to));
        assert_eq!(map.len_quiescent(), 2);
    }

    #[test]
    fn same_shard_move_delegates_to_the_inner_map() {
        let map = sharded(3);
        let mut handle = map.register_sharded();
        let from = 10u64;
        let to = (11..1000u64)
            .find(|&k| map.shard_of(k) == map.shard_of(from))
            .expect("some key must land on the same shard");
        assert!(map.insert(&mut handle, from, 5));
        assert!(map.move_entry(&mut handle, from, to));
        assert_eq!(map.get(&mut handle, to), Some(5));
        assert!(!map.contains(&mut handle, from));
    }

    #[test]
    fn single_shard_degenerates_to_the_inner_map() {
        let map = sharded(1);
        let mut handle = map.register_sharded();
        assert!(map.insert(&mut handle, 1, 10));
        assert!(map.move_entry(&mut handle, 1, 2));
        assert_eq!(map.get(&mut handle, 2), Some(10));
        assert_eq!(map.len_quiescent(), 1);
    }

    #[test]
    fn name_reflects_inner_map_and_shard_count() {
        assert_eq!(sharded(8).name(), "OptSFtree-sharded8");
        assert_eq!(sharded(2).name(), "OptSFtree-sharded2");
        // Interning returns the same static str for equal labels.
        assert!(std::ptr::eq(sharded(8).name(), sharded(8).name()));
        assert_eq!(
            ShardedMap::portable(2, StmConfig::ctl()).name(),
            "SFtree-sharded2"
        );
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let map = sharded(4);
        let mut handle = map.register_sharded();
        map.reset_stats();
        for key in 0..64u64 {
            map.insert(&mut handle, key, key);
        }
        let stats = map.stats();
        assert!(
            stats.commits >= 64,
            "expected at least one commit per insert, got {}",
            stats.commits
        );
        map.reset_stats();
        assert_eq!(map.stats().commits, 0);
    }

    #[test]
    fn in_transaction_composition_works_per_shard() {
        let map = sharded(4);
        let mut handle = map.register_sharded();
        map.insert(&mut handle, 3, 30);
        let shard = map.shard_of(3);
        let mut ctx = map.shard_stm(shard).register();
        let (got, inserted) = ctx.atomically(|tx| {
            let got = map.tx_get(tx, 3)?;
            let inserted = map.tx_insert(tx, 3, 99)?;
            Ok((got, inserted))
        });
        assert_eq!(got, Some(30));
        assert!(!inserted);
    }

    #[test]
    #[should_panic(expected = "cross-shard tx_move")]
    fn cross_shard_tx_move_is_rejected() {
        let map = sharded(4);
        let from = 1u64;
        let to = (2..1000u64)
            .find(|&k| map.shard_of(k) != map.shard_of(from))
            .unwrap();
        let mut ctx = map.stm_for(from).register();
        ctx.atomically(|tx| map.tx_move(tx, from, to));
    }

    #[test]
    fn range_collect_merges_shards_in_ascending_order() {
        let map = sharded(4);
        let mut handle = map.register_sharded();
        let keys: Vec<u64> = (0..256u64).map(|i| (i * 37) % 509).collect();
        for &k in &keys {
            map.insert(&mut handle, k, k + 1);
        }
        let mut expected: Vec<(u64, u64)> = keys.iter().map(|&k| (k, k + 1)).collect();
        expected.sort_unstable();
        expected.dedup();
        let full = map.range_collect(&mut handle, 0..=u64::MAX);
        assert_eq!(full, expected);
        // Sub-range.
        let want: Vec<(u64, u64)> = expected
            .iter()
            .copied()
            .filter(|&(k, _)| (100..=200).contains(&k))
            .collect();
        assert_eq!(map.range_collect(&mut handle, 100..=200), want);
        // Transactional len agrees with the quiescent count.
        assert_eq!(TxMap::len(&map, &mut handle), map.len_quiescent());
        // Exact mode agrees while no updates run.
        assert_eq!(map.range_quiescent(&mut handle, 0..=u64::MAX), expected);
    }

    #[test]
    fn merge_sorted_interleaves_unique_sorted_runs() {
        let merged = merge_sorted(vec![
            vec![(1, 10), (5, 50)],
            vec![],
            vec![(2, 20), (3, 30), (9, 90)],
            vec![(4, 40)],
        ]);
        assert_eq!(
            merged,
            vec![(1, 10), (2, 20), (3, 30), (4, 40), (5, 50), (9, 90)]
        );
        assert!(merge_sorted(vec![vec![], vec![]]).is_empty());
    }

    #[test]
    fn sequential_oracle_equivalence_under_mixed_ops() {
        let map = sharded(4);
        let mut handle = map.register_sharded();
        let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..4_000 {
            let key = next() % 128;
            match next() % 4 {
                0 => {
                    let value = next() % 1000;
                    let expected =
                        if let std::collections::btree_map::Entry::Vacant(e) = oracle.entry(key) {
                            e.insert(value);
                            true
                        } else {
                            false
                        };
                    assert_eq!(map.insert(&mut handle, key, value), expected);
                }
                1 => {
                    assert_eq!(map.delete(&mut handle, key), oracle.remove(&key).is_some());
                }
                2 => {
                    assert_eq!(map.get(&mut handle, key), oracle.get(&key).copied());
                }
                _ => {
                    let to = next() % 128;
                    let expected = if key == to {
                        oracle.contains_key(&key)
                    } else if oracle.contains_key(&key) && !oracle.contains_key(&to) {
                        let value = oracle.remove(&key).unwrap();
                        oracle.insert(to, value);
                        true
                    } else {
                        false
                    };
                    assert_eq!(map.move_entry(&mut handle, key, to), expected);
                }
            }
        }
        assert_eq!(map.len_quiescent(), oracle.len());
    }
}
