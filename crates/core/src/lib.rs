//! # sf-tree — the speculation-friendly binary search tree
//!
//! Reproduction of the data structure introduced in *A Speculation-Friendly
//! Binary Search Tree* (Tyler Crain, Vincent Gramoli, Michel Raynal — PPoPP
//! 2012). The tree implements an associative-array / set abstraction on top
//! of the word-based STM of the [`sf_stm`] crate and decouples its
//! operations exactly as the paper prescribes:
//!
//! * **Abstract transactions** ([`SpecFriendlyTree`] / [`OptSpecFriendlyTree`]
//!   `insert`, `delete`, `contains`, `get`) modify the abstraction only: an
//!   insert links at most one fresh leaf, a delete merely flips a logical
//!   deletion flag, and lookups never write.
//! * **Structural transactions** (the background
//!   [`maintenance::MaintenanceWorker`]) restructure the tree in many small
//!   node-local transactions: height propagation, local rotations, physical
//!   removal of logically deleted nodes, and quiescence-gated reclamation.
//!
//! Two variants are provided, matching the paper's Algorithms 1 and 2:
//!
//! | | [`SpecFriendlyTree`] (portable) | [`OptSpecFriendlyTree`] (optimized) |
//! |---|---|---|
//! | traversal | transactional reads | unit reads + O(1) tracked reads |
//! | rotations | classic, in place | clone-based (Figure 2(c)) |
//! | removed flag | not needed | `rem` ∈ {false, true, true-by-left-rotation} |
//! | TM requirements | standard interface only | unit loads (TinySTM-style) |
//!
//! ## Quick example
//!
//! ```
//! use sf_stm::Stm;
//! use sf_tree::{OptSpecFriendlyTree, TxMap};
//!
//! let stm = Stm::default_config();
//! let tree = OptSpecFriendlyTree::new();
//! let maintenance = tree.start_maintenance(stm.register());
//!
//! let mut handle = tree.register(stm.register());
//! assert!(tree.insert(&mut handle, 7, 70));
//! assert_eq!(tree.get(&mut handle, 7), Some(70));
//! assert!(tree.delete(&mut handle, 7));
//! assert!(!tree.contains(&mut handle, 7));
//!
//! maintenance.stop();
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod arena;
mod chk;
pub mod inspect;
pub mod maintenance;
pub mod map;
pub mod node;
mod optimized;
mod portable;
pub mod scan;
pub mod sharded;
mod shared;

pub use arena::{ActivityHandle, NodeId, OpGuard, TxArena};
pub use inspect::TreeInspect;
pub use maintenance::{
    maintenance_histograms, MaintenanceConfig, MaintenanceHandle, MaintenancePause,
    MaintenanceStyle, MaintenanceWorker, PassReport,
};
pub use map::{
    intern_label, HotReport, ScanOrder, TxMap, TxMapInTx, TxMapVersioned, TxOrderedMapInTx,
};
pub use node::{Key, Node, RemState, Side, Value, SENTINEL_KEY};
pub use optimized::OptSpecFriendlyTree;
pub use portable::SpecFriendlyTree;
pub use sharded::{ShardParts, ShardedHandle, ShardedMap};
pub use shared::{SfHandle, TreeStats, DEFAULT_HOT_SAMPLE};
