//! The portable speculation-friendly tree (the paper's Algorithm 1).
//!
//! Every shared access of the traversal is a *transactional* read, so the
//! tree runs on any TM that implements the standard interface — no unit
//! loads, no elastic transactions. Update operations are decoupled exactly as
//! in the paper:
//!
//! * `insert` touches the structure only when it links a fresh leaf,
//! * `delete` only flips the logical-deletion flag,
//! * rotations and physical removals are performed by the background
//!   [`crate::maintenance::MaintenanceWorker`] in small node-local
//!   transactions (classic in-place rotations for this variant).

use std::ops::{ControlFlow, RangeInclusive};
use std::sync::Arc;

use sf_stm::{ThreadCtx, Transaction, TxKind, TxResult};

use crate::arena::{NodeId, TxArena};
use crate::inspect::TreeInspect;
use crate::maintenance::{
    MaintenanceConfig, MaintenanceHandle, MaintenanceStyle, MaintenanceWorker,
};
use crate::map::{ScanOrder, TxMap, TxMapInTx, TxMapVersioned, TxOrderedMapInTx};
use crate::node::{Key, Node, Side, Value};
use crate::shared::{
    tx_delete_common, tx_get_common, tx_insert_common, tx_range_visit_common, FindSpec, SfHandle,
    TreeCore, TreeStats,
};

/// Traversal of Algorithm 1: transactional reads all the way down; stops on a
/// key match or on a ⊥ child pointer (which stays in the read set so a
/// concurrent insert of the same key is detected).
pub(crate) struct PortableFind;

impl FindSpec for PortableFind {
    fn find<'env>(core: &'env TreeCore, tx: &mut Transaction<'env>, key: Key) -> TxResult<NodeId> {
        let mut curr = core.root;
        loop {
            let node = core.node(curr);
            let k = node.key();
            if k == key {
                return Ok(curr);
            }
            let side = Side::for_key(key, k);
            let next = tx.read(node.child(side))?;
            match next.as_option() {
                Some(child) => curr = child,
                None => return Ok(curr),
            }
        }
    }
}

/// The portable speculation-friendly binary search tree (Algorithm 1).
#[derive(Debug)]
pub struct SpecFriendlyTree {
    core: TreeCore,
}

impl SpecFriendlyTree {
    /// Create an empty tree with its own node arena.
    pub fn new() -> Self {
        Self::with_arena(Arc::new(TxArena::new()))
    }

    /// Create an empty tree backed by an existing arena (several trees may
    /// share one arena, e.g. the four directories of the vacation
    /// application).
    pub fn with_arena(arena: Arc<TxArena<Node>>) -> Self {
        SpecFriendlyTree {
            core: TreeCore::new(arena),
        }
    }

    /// Register a worker thread: pairs the STM context with an activity slot
    /// for the reclamation protocol.
    pub fn register(&self, ctx: ThreadCtx) -> SfHandle {
        SfHandle {
            ctx,
            activity: self.core.arena.register_activity(),
        }
    }

    /// Work counters (rotations, removals, propagations, ...).
    pub fn stats(&self) -> &TreeStats {
        &self.core.stats
    }

    /// The node arena backing this tree.
    pub fn arena(&self) -> &Arc<TxArena<Node>> {
        &self.core.arena
    }

    /// Override the access-sampling rate (`SF_HOT_SAMPLE`): every `rate`-th
    /// traversal records its endpoint with weight `rate`; `0` disables.
    pub fn set_hot_sample(&self, rate: u64) {
        self.core
            .hot_sample
            // sf-lint: allow(relaxed-atomic, sampling-rate knob; readers may briefly observe the previous rate)
            .store(rate, std::sync::atomic::Ordering::Relaxed);
    }

    /// Build (but do not start) a maintenance worker using classic in-place
    /// rotations; useful in tests that want to drive passes manually.
    pub fn maintenance_worker(&self, ctx: ThreadCtx) -> MaintenanceWorker {
        self.maintenance_worker_with(ctx, MaintenanceConfig::default())
    }

    /// [`Self::maintenance_worker`] with a custom configuration.
    pub fn maintenance_worker_with(
        &self,
        ctx: ThreadCtx,
        config: MaintenanceConfig,
    ) -> MaintenanceWorker {
        MaintenanceWorker::new(self.core.clone(), MaintenanceStyle::Classic, ctx, config)
    }

    /// Spawn the background maintenance (rotator) thread.
    pub fn start_maintenance(&self, ctx: ThreadCtx) -> MaintenanceHandle {
        self.maintenance_worker(ctx).spawn()
    }

    /// Spawn the background maintenance thread with a custom configuration.
    pub fn start_maintenance_with(
        &self,
        ctx: ThreadCtx,
        config: MaintenanceConfig,
    ) -> MaintenanceHandle {
        MaintenanceWorker::new(self.core.clone(), MaintenanceStyle::Classic, ctx, config).spawn()
    }

    /// Quiescent inspection helpers (test oracles, invariant checks).
    pub fn inspect(&self) -> TreeInspect<'_> {
        TreeInspect::new(&self.core)
    }
}

impl Default for SpecFriendlyTree {
    fn default() -> Self {
        Self::new()
    }
}

impl TxMapInTx for SpecFriendlyTree {
    fn tx_get<'env>(&'env self, tx: &mut Transaction<'env>, key: Key) -> TxResult<Option<Value>> {
        tx_get_common::<PortableFind>(&self.core, tx, key)
    }

    fn tx_insert<'env>(
        &'env self,
        tx: &mut Transaction<'env>,
        key: Key,
        value: Value,
    ) -> TxResult<bool> {
        tx_insert_common::<PortableFind>(&self.core, tx, key, value)
    }

    fn tx_delete<'env>(&'env self, tx: &mut Transaction<'env>, key: Key) -> TxResult<bool> {
        tx_delete_common::<PortableFind>(&self.core, tx, key)
    }
}

impl TxOrderedMapInTx for SpecFriendlyTree {
    fn tx_range_visit<'env>(
        &'env self,
        tx: &mut Transaction<'env>,
        range: RangeInclusive<Key>,
        order: ScanOrder,
        visit: &mut dyn FnMut(Key, Value) -> ControlFlow<()>,
    ) -> TxResult<()> {
        tx_range_visit_common(&self.core, tx, range, order, visit)
    }
}

impl TxMap for SpecFriendlyTree {
    type Handle = SfHandle;

    fn register(&self, ctx: ThreadCtx) -> SfHandle {
        SpecFriendlyTree::register(self, ctx)
    }

    fn contains(&self, handle: &mut SfHandle, key: Key) -> bool {
        let (ctx, activity) = handle.parts();
        let _op = activity.begin();
        ctx.atomically(|tx| self.tx_contains(tx, key))
    }

    fn get(&self, handle: &mut SfHandle, key: Key) -> Option<Value> {
        let (ctx, activity) = handle.parts();
        let _op = activity.begin();
        ctx.atomically(|tx| self.tx_get(tx, key))
    }

    fn insert(&self, handle: &mut SfHandle, key: Key, value: Value) -> bool {
        let (ctx, activity) = handle.parts();
        let _op = activity.begin();
        ctx.atomically(|tx| self.tx_insert(tx, key, value))
    }

    fn delete(&self, handle: &mut SfHandle, key: Key) -> bool {
        let (ctx, activity) = handle.parts();
        let _op = activity.begin();
        ctx.atomically(|tx| self.tx_delete(tx, key))
    }

    fn delete_if(&self, handle: &mut SfHandle, key: Key, expected: Value) -> bool {
        let (ctx, activity) = handle.parts();
        let _op = activity.begin();
        ctx.atomically(|tx| self.tx_delete_if(tx, key, expected))
    }

    fn move_entry(&self, handle: &mut SfHandle, from: Key, to: Key) -> bool {
        let (ctx, activity) = handle.parts();
        let _op = activity.begin();
        ctx.atomically(|tx| self.tx_move(tx, from, to))
    }

    fn range_collect(
        &self,
        handle: &mut SfHandle,
        range: RangeInclusive<Key>,
    ) -> Vec<(Key, Value)> {
        let (ctx, activity) = handle.parts();
        let _op = activity.begin();
        ctx.atomically_kind(TxKind::ReadOnly, |tx| {
            self.tx_range_collect(tx, range.clone())
        })
    }

    fn len(&self, handle: &mut SfHandle) -> usize {
        let (ctx, activity) = handle.parts();
        let _op = activity.begin();
        ctx.atomically_kind(TxKind::ReadOnly, |tx| self.tx_len(tx))
    }

    fn len_quiescent(&self) -> usize {
        self.inspect().live_entries().len()
    }

    fn hot_report(&self) -> Option<crate::map::HotReport> {
        let mut report = self.inspect().hot_summary();
        report.hot_rotations = self
            .core
            .stats
            .hot_rotations
            // sf-lint: allow(relaxed-atomic, hot-rotation telemetry read for reports; staleness is harmless)
            .load(std::sync::atomic::Ordering::Relaxed);
        Some(report)
    }

    fn name(&self) -> &'static str {
        "SFtree"
    }
}

impl TxMapVersioned for SpecFriendlyTree {
    fn atomically_versioned<R>(
        &self,
        handle: &mut SfHandle,
        mut body: impl for<'t> FnMut(&'t Self, &mut Transaction<'t>) -> TxResult<R>,
    ) -> (R, u64) {
        let (ctx, activity) = handle.parts();
        let _op = activity.begin();
        ctx.atomically_versioned(|tx| body(self, tx))
    }

    fn snapshot_versioned(&self, handle: &mut SfHandle) -> (Vec<(Key, Value)>, u64) {
        let (ctx, activity) = handle.parts();
        let _op = activity.begin();
        ctx.atomically_versioned_kind(TxKind::ReadOnly, |tx| {
            self.tx_range_collect(tx, 0..=Key::MAX)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_stm::Stm;

    fn setup() -> (Arc<sf_stm::Stm>, SpecFriendlyTree) {
        (Stm::default_config(), SpecFriendlyTree::new())
    }

    #[test]
    fn insert_contains_delete_roundtrip() {
        let (stm, tree) = setup();
        let mut h = tree.register(stm.register());
        assert!(!tree.contains(&mut h, 10));
        assert!(tree.insert(&mut h, 10, 100));
        assert!(tree.contains(&mut h, 10));
        assert_eq!(tree.get(&mut h, 10), Some(100));
        assert!(!tree.insert(&mut h, 10, 101), "duplicate insert fails");
        assert!(tree.delete(&mut h, 10));
        assert!(!tree.contains(&mut h, 10));
        assert!(!tree.delete(&mut h, 10), "double delete fails");
    }

    #[test]
    fn reinsert_after_logical_delete_revives_node() {
        let (stm, tree) = setup();
        let mut h = tree.register(stm.register());
        assert!(tree.insert(&mut h, 7, 70));
        assert!(tree.delete(&mut h, 7));
        // The node is still physically present (no maintenance ran), so the
        // insert revives it rather than allocating.
        let allocated_before = tree.arena().allocated();
        assert!(tree.insert(&mut h, 7, 71));
        assert_eq!(tree.arena().allocated(), allocated_before);
        assert_eq!(tree.get(&mut h, 7), Some(71));
    }

    #[test]
    fn many_keys_and_order_is_preserved() {
        let (stm, tree) = setup();
        let mut h = tree.register(stm.register());
        let keys: Vec<u64> = (0..200).map(|i| (i * 37) % 199).collect();
        for &k in &keys {
            tree.insert(&mut h, k, k * 10);
        }
        tree.inspect().check_consistency().unwrap();
        let live = tree.inspect().live_entries();
        let mut sorted: Vec<u64> = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(live.iter().map(|(k, _)| *k).collect::<Vec<_>>(), sorted);
        assert_eq!(tree.len_quiescent(), sorted.len());
    }

    #[test]
    fn move_entry_is_atomic_and_correct() {
        let (stm, tree) = setup();
        let mut h = tree.register(stm.register());
        tree.insert(&mut h, 1, 11);
        tree.insert(&mut h, 2, 22);
        assert!(tree.move_entry(&mut h, 1, 5));
        assert_eq!(tree.get(&mut h, 5), Some(11));
        assert!(!tree.contains(&mut h, 1));
        // Destination occupied -> no change.
        assert!(!tree.move_entry(&mut h, 2, 5));
        assert_eq!(tree.get(&mut h, 2), Some(22));
        // Missing source -> no change.
        assert!(!tree.move_entry(&mut h, 9, 10));
    }

    #[test]
    fn delete_does_not_modify_structure() {
        let (stm, tree) = setup();
        let mut h = tree.register(stm.register());
        for k in [50, 25, 75, 10, 30] {
            tree.insert(&mut h, k, k);
        }
        let nodes_before = tree.inspect().reachable_nodes();
        tree.delete(&mut h, 25);
        assert_eq!(tree.inspect().reachable_nodes(), nodes_before);
        tree.inspect().check_consistency().unwrap();
    }

    #[test]
    fn range_scans_skip_logically_deleted_nodes() {
        let (stm, tree) = setup();
        let mut h = tree.register(stm.register());
        for k in 0..32u64 {
            tree.insert(&mut h, k, k * 10);
        }
        for k in (0..32u64).step_by(2) {
            tree.delete(&mut h, k);
        }
        // No maintenance ran: the deleted nodes are still physically linked.
        assert_eq!(tree.inspect().reachable_nodes(), 33); // 32 keys + sentinel
        let scanned = tree.range_collect(&mut h, 0..=31);
        let expected: Vec<(u64, u64)> = (0..32u64)
            .filter(|k| k % 2 == 1)
            .map(|k| (k, k * 10))
            .collect();
        assert_eq!(scanned, expected);
        assert_eq!(
            tree.range_collect(&mut h, 5..=9),
            vec![(5, 50), (7, 70), (9, 90)]
        );
        assert_eq!(TxMap::len(&tree, &mut h), 16);
        // Read-only scan transactions are accounted separately.
        assert!(stm.stats().scan_commits >= 3);
    }

    #[test]
    fn ordered_in_tx_operations_compose_with_point_ops() {
        let (stm, tree) = setup();
        let mut h = tree.register(stm.register());
        for k in [4u64, 8, 15, 16, 23, 42] {
            tree.insert(&mut h, k, k);
        }
        tree.delete(&mut h, 4);
        tree.delete(&mut h, 42);
        let (min, max, succ, none_succ) = h.ctx_mut().atomically(|tx| {
            Ok((
                tree.tx_min(tx)?,
                tree.tx_max(tx)?,
                tree.tx_successor(tx, 15)?,
                tree.tx_successor(tx, 23)?,
            ))
        });
        assert_eq!(min, Some((8, 8)));
        assert_eq!(max, Some((23, 23)));
        assert_eq!(succ, Some((16, 16)));
        assert_eq!(none_succ, None);
        // A fold composing with a point lookup in one transaction.
        let (sum, present) = h.ctx_mut().atomically(|tx| {
            let sum = tree.tx_range_fold(tx, 0..=u64::MAX, 0u64, |a, _, v| a + v)?;
            let present = tree.tx_contains(tx, 16)?;
            Ok((sum, present))
        });
        assert_eq!(sum, 8 + 15 + 16 + 23);
        assert!(present);
    }

    #[test]
    fn concurrent_disjoint_inserts_all_land() {
        let (stm, tree) = setup();
        let tree = Arc::new(tree);
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let tree = Arc::clone(&tree);
                let mut h = tree.register(stm.register());
                std::thread::spawn(move || {
                    for i in 0..250u64 {
                        let key = t * 1000 + i;
                        assert!(tree.insert(&mut h, key, key));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(tree.len_quiescent(), 1000);
        tree.inspect().check_consistency().unwrap();
    }

    #[test]
    fn concurrent_same_key_insert_exactly_one_wins() {
        let (stm, tree) = setup();
        let tree = Arc::new(tree);
        let workers: Vec<_> = (0..4u64)
            .map(|_| {
                let tree = Arc::clone(&tree);
                let mut h = tree.register(stm.register());
                std::thread::spawn(move || {
                    (0..100u64)
                        .map(|k| u64::from(tree.insert(&mut h, k, k)))
                        .sum::<u64>()
                })
            })
            .collect();
        let successes: u64 = workers.into_iter().map(|t| t.join().unwrap()).sum();
        // Exactly one success per key across all threads.
        assert_eq!(successes, 100);
        assert_eq!(tree.len_quiescent(), 100);
    }
}
