//! The generic pruned in-order walker behind every backend's range scan.
//!
//! All the trees in this repository are binary search trees over
//! transactional cells, so one traversal serves them all: the
//! speculation-friendly variants (immutable per-incarnation keys, a
//! logical-deletion flag to filter) and the transaction-encapsulated
//! baselines (transactional keys — the AVL delete rewrites them — and no
//! tombstones). The per-structure differences are captured by the two read
//! hooks of [`ScanNode`]; the pruning, visit order and early-exit logic
//! live here once.
//!
//! The walk is iterative (explicit stack) so degenerate trees — e.g. the
//! no-restructuring baseline after sequential inserts — cannot overflow the
//! thread stack. Every child pointer and every emitted entry is read through
//! the caller's [`Transaction`], so a committed scan is an atomic snapshot
//! of the visited range.

use std::ops::{ControlFlow, RangeInclusive};

use sf_stm::{TCell, Transaction, TxResult};

use crate::arena::NodeId;
use crate::map::ScanOrder;
use crate::node::{Key, Value};

/// Node-level hooks of [`bst_range_visit`].
pub trait ScanNode {
    /// The node's key, for routing the descent. Implementations with
    /// immutable per-incarnation keys may read it outside the transaction.
    fn scan_key<'env>(&'env self, tx: &mut Transaction<'env>) -> TxResult<Key>;

    /// The node's live `(key, value)` entry, or `None` when the node is a
    /// tombstone (logically deleted) that the scan must skip. Reading the
    /// liveness flag transactionally makes a racing revive-insert conflict
    /// with the scan instead of being missed.
    fn scan_entry<'env>(&'env self, tx: &mut Transaction<'env>) -> TxResult<Option<(Key, Value)>>;

    /// Left child cell (smaller keys).
    fn left_child(&self) -> &TCell<NodeId>;

    /// Right child cell (larger keys).
    fn right_child(&self) -> &TCell<NodeId>;
}

/// In-order (or reverse in-order) traversal of the live entries of
/// `[lo, hi]` below `root`, calling `visit` until it breaks or the range is
/// exhausted. Subtrees that cannot intersect the range are pruned via the
/// BST invariant (left subtree keys < node key < right subtree keys).
pub fn bst_range_visit<'env, N: ScanNode + 'env>(
    node_of: impl Fn(NodeId) -> &'env N,
    root: NodeId,
    tx: &mut Transaction<'env>,
    range: RangeInclusive<Key>,
    order: ScanOrder,
    visit: &mut dyn FnMut(Key, Value) -> ControlFlow<()>,
) -> TxResult<()> {
    let (lo, hi) = (*range.start(), *range.end());
    if lo > hi {
        return Ok(());
    }
    enum Step {
        /// Expand a subtree root into (child, emit, child) steps.
        Explore(NodeId),
        /// Report the node if it is live.
        Emit(NodeId),
    }
    let mut stack = vec![Step::Explore(root)];
    while let Some(step) = stack.pop() {
        match step {
            Step::Explore(id) => {
                if id.is_nil() {
                    continue;
                }
                let node = node_of(id);
                let key = node.scan_key(tx)?;
                let descend_left = key > lo;
                let descend_right = key < hi;
                let in_range = lo <= key && key <= hi;
                // Push in reverse of the processing order (LIFO stack).
                match order {
                    ScanOrder::Ascending => {
                        if descend_right {
                            stack.push(Step::Explore(tx.read(node.right_child())?));
                        }
                        if in_range {
                            stack.push(Step::Emit(id));
                        }
                        if descend_left {
                            stack.push(Step::Explore(tx.read(node.left_child())?));
                        }
                    }
                    ScanOrder::Descending => {
                        if descend_left {
                            stack.push(Step::Explore(tx.read(node.left_child())?));
                        }
                        if in_range {
                            stack.push(Step::Emit(id));
                        }
                        if descend_right {
                            stack.push(Step::Explore(tx.read(node.right_child())?));
                        }
                    }
                }
            }
            Step::Emit(id) => {
                if let Some((key, value)) = node_of(id).scan_entry(tx)? {
                    if visit(key, value).is_break() {
                        return Ok(());
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::{TxMap, TxOrderedMapInTx};
    use crate::portable::SpecFriendlyTree;
    use sf_stm::Stm;

    #[test]
    fn empty_and_inverted_ranges_visit_nothing() {
        let stm = Stm::default_config();
        let tree = SpecFriendlyTree::new();
        let mut h = tree.register(stm.register());
        tree.insert(&mut h, 5, 50);
        assert_eq!(tree.range_collect(&mut h, 6..=7), vec![]);
        #[allow(clippy::reversed_empty_ranges)]
        let inverted = 9..=3;
        let got = h
            .ctx_mut()
            .atomically(|tx| tree.tx_range_collect(tx, inverted.clone()));
        assert_eq!(got, vec![]);
    }

    #[test]
    fn descending_order_reverses_ascending() {
        let stm = Stm::default_config();
        let tree = SpecFriendlyTree::new();
        let mut h = tree.register(stm.register());
        for k in [4u64, 1, 9, 6, 2] {
            tree.insert(&mut h, k, k);
        }
        let (asc, desc) = h.ctx_mut().atomically(|tx| {
            let mut asc = Vec::new();
            tree.tx_range_visit(tx, 0..=u64::MAX, ScanOrder::Ascending, &mut |k, _| {
                asc.push(k);
                ControlFlow::Continue(())
            })?;
            let mut desc = Vec::new();
            tree.tx_range_visit(tx, 0..=u64::MAX, ScanOrder::Descending, &mut |k, _| {
                desc.push(k);
                ControlFlow::Continue(())
            })?;
            Ok((asc, desc))
        });
        assert_eq!(asc, vec![1, 2, 4, 6, 9]);
        let mut reversed = asc.clone();
        reversed.reverse();
        assert_eq!(desc, reversed);
    }
}
