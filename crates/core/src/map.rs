//! Tree-agnostic map abstractions.
//!
//! Every tree in this reproduction (speculation-friendly, optimized
//! speculation-friendly, red-black, AVL, no-restructuring) implements the
//! same two interfaces:
//!
//! * [`TxMap`] — complete operations, each executed as its own transaction.
//!   This is what the synchrobench-style micro-benchmark drives.
//! * [`TxMapInTx`] — *in-transaction* operations that run inside a caller
//!   supplied [`Transaction`]. This is the reusability story of §5.4: the
//!   `move` operation and the vacation application compose several map
//!   operations into one atomic transaction without knowing anything about
//!   the tree's synchronization internals.

use sf_stm::{ThreadCtx, Transaction, TxResult};

use crate::node::{Key, Value};

/// In-transaction map operations: compose freely inside one transaction.
pub trait TxMapInTx: Send + Sync {
    /// Look up `key`, returning its value if present.
    fn tx_get<'env>(&'env self, tx: &mut Transaction<'env>, key: Key) -> TxResult<Option<Value>>;

    /// Insert `key -> value`. Returns `true` if the key was absent (the map
    /// changed), `false` if the key was already present.
    fn tx_insert<'env>(
        &'env self,
        tx: &mut Transaction<'env>,
        key: Key,
        value: Value,
    ) -> TxResult<bool>;

    /// Delete `key`. Returns `true` if the key was present (the map changed).
    fn tx_delete<'env>(&'env self, tx: &mut Transaction<'env>, key: Key) -> TxResult<bool>;

    /// Membership test.
    fn tx_contains<'env>(&'env self, tx: &mut Transaction<'env>, key: Key) -> TxResult<bool> {
        Ok(self.tx_get(tx, key)?.is_some())
    }

    /// Delete `key` only when it currently maps to `expected` (a
    /// compare-and-delete). Atomic within the surrounding transaction; used
    /// by the sharded map's cross-shard move protocol so a concurrent
    /// rewrite of the key is never destroyed blindly.
    fn tx_delete_if<'env>(
        &'env self,
        tx: &mut Transaction<'env>,
        key: Key,
        expected: Value,
    ) -> TxResult<bool> {
        match self.tx_get(tx, key)? {
            Some(value) if value == expected => self.tx_delete(tx, key),
            _ => Ok(false),
        }
    }

    /// Atomically move the value stored at `from` to `to` (§5.4). Succeeds
    /// only when `from` is present and `to` is absent.
    fn tx_move<'env>(&'env self, tx: &mut Transaction<'env>, from: Key, to: Key) -> TxResult<bool> {
        if from == to {
            return self.tx_contains(tx, from);
        }
        let value = match self.tx_get(tx, from)? {
            Some(v) => v,
            None => return Ok(false),
        };
        if !self.tx_insert(tx, to, value)? {
            return Ok(false);
        }
        let removed = self.tx_delete(tx, from)?;
        debug_assert!(removed, "source key vanished inside the same transaction");
        Ok(true)
    }
}

/// Top-level map operations, one transaction per call.
///
/// `Handle` bundles whatever per-thread state the structure needs: at minimum
/// the STM thread context, plus (for the speculation-friendly trees) the
/// activity slot used by the quiescence-based reclamation protocol.
pub trait TxMap: Send + Sync {
    /// Per-thread handle.
    type Handle: Send;

    /// Register a worker thread.
    fn register(&self, ctx: ThreadCtx) -> Self::Handle;

    /// Membership test.
    fn contains(&self, handle: &mut Self::Handle, key: Key) -> bool;

    /// Look up a key's value.
    fn get(&self, handle: &mut Self::Handle, key: Key) -> Option<Value>;

    /// Insert `key -> value`; `true` when the map changed.
    fn insert(&self, handle: &mut Self::Handle, key: Key, value: Value) -> bool;

    /// Delete `key`; `true` when the map changed.
    fn delete(&self, handle: &mut Self::Handle, key: Key) -> bool;

    /// Atomically delete `key` only when it currently maps to `expected`
    /// (compare-and-delete); `true` when the map changed.
    fn delete_if(&self, handle: &mut Self::Handle, key: Key, expected: Value) -> bool;

    /// Atomically move `from` to `to`; `true` when the map changed.
    fn move_entry(&self, handle: &mut Self::Handle, from: Key, to: Key) -> bool;

    /// Number of live keys. Only accurate while no concurrent updates run;
    /// used for test oracles and for sizing reports.
    fn len_quiescent(&self) -> usize;

    /// Short human-readable name used in benchmark output (e.g. `SFtree`).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use sf_stm::Stm;
    use std::collections::BTreeMap;

    /// A trivial TxMapInTx implementation (single mutex-protected BTreeMap,
    /// ignoring the transaction) to exercise the default method logic.
    struct Oracle(Mutex<BTreeMap<Key, Value>>);

    impl TxMapInTx for Oracle {
        fn tx_get<'env>(
            &'env self,
            _tx: &mut Transaction<'env>,
            key: Key,
        ) -> TxResult<Option<Value>> {
            Ok(self.0.lock().get(&key).copied())
        }
        fn tx_insert<'env>(
            &'env self,
            _tx: &mut Transaction<'env>,
            key: Key,
            value: Value,
        ) -> TxResult<bool> {
            Ok(self.0.lock().insert(key, value).is_none())
        }
        fn tx_delete<'env>(&'env self, _tx: &mut Transaction<'env>, key: Key) -> TxResult<bool> {
            Ok(self.0.lock().remove(&key).is_some())
        }
    }

    #[test]
    fn default_move_semantics() {
        let stm = Stm::default_config();
        let mut ctx = stm.register();
        let oracle = Oracle(Mutex::new(BTreeMap::new()));
        ctx.atomically(|tx| oracle.tx_insert(tx, 1, 10));
        // Successful move.
        assert!(ctx.atomically(|tx| oracle.tx_move(tx, 1, 2)));
        assert_eq!(oracle.0.lock().get(&2), Some(&10));
        assert!(!oracle.0.lock().contains_key(&1));
        // Source missing.
        assert!(!ctx.atomically(|tx| oracle.tx_move(tx, 1, 3)));
        // Destination occupied.
        ctx.atomically(|tx| oracle.tx_insert(tx, 5, 50));
        assert!(!ctx.atomically(|tx| oracle.tx_move(tx, 2, 5)));
        // Move onto itself is a membership test.
        assert!(ctx.atomically(|tx| oracle.tx_move(tx, 2, 2)));
        assert!(!ctx.atomically(|tx| oracle.tx_move(tx, 99, 99)));
    }

    #[test]
    fn default_contains_uses_get() {
        let stm = Stm::default_config();
        let mut ctx = stm.register();
        let oracle = Oracle(Mutex::new(BTreeMap::new()));
        assert!(!ctx.atomically(|tx| oracle.tx_contains(tx, 7)));
        ctx.atomically(|tx| oracle.tx_insert(tx, 7, 70));
        assert!(ctx.atomically(|tx| oracle.tx_contains(tx, 7)));
    }
}
