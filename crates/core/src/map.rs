//! Tree-agnostic map abstractions.
//!
//! Every tree in this reproduction (speculation-friendly, optimized
//! speculation-friendly, red-black, AVL, no-restructuring) implements the
//! same two interfaces:
//!
//! * [`TxMap`] — complete operations, each executed as its own transaction.
//!   This is what the synchrobench-style micro-benchmark drives.
//! * [`TxMapInTx`] — *in-transaction* operations that run inside a caller
//!   supplied [`Transaction`]. This is the reusability story of §5.4: the
//!   `move` operation and the vacation application compose several map
//!   operations into one atomic transaction without knowing anything about
//!   the tree's synchronization internals.
//!
//! On top of the point operations, [`TxOrderedMapInTx`] exposes the *ordered*
//! structure of the trees — min/max, successor, and range scans — which is
//! the capability that distinguishes a BST service from a hash map. A single
//! required primitive ([`TxOrderedMapInTx::tx_range_visit`]) yields every
//! derived operation; scans run as [`sf_stm::TxKind::ReadOnly`] transactions
//! at the top level so the STM skips write-set bookkeeping entirely.

use std::collections::HashMap;
use std::ops::{ControlFlow, RangeInclusive};
use std::sync::OnceLock;

use parking_lot::Mutex;

use sf_stm::{ThreadCtx, Transaction, TxResult};

use crate::node::{Key, Value};

/// Intern a backend label so [`TxMap::name`] can hand out `&'static str` for
/// dynamically-built names (sharded compositions, durability decorators).
/// Each distinct label leaks exactly once.
pub fn intern_label(label: String) -> &'static str {
    static CACHE: OnceLock<Mutex<HashMap<String, &'static str>>> = OnceLock::new();
    let mut cache = CACHE
        .get_or_init(|| Mutex::named(HashMap::new(), "map.intern"))
        .lock();
    if let Some(&interned) = cache.get(&label) {
        return interned;
    }
    let leaked: &'static str = Box::leak(label.clone().into_boxed_str());
    cache.insert(label, leaked);
    leaked
}

/// In-transaction map operations: compose freely inside one transaction.
pub trait TxMapInTx: Send + Sync {
    /// Look up `key`, returning its value if present.
    fn tx_get<'env>(&'env self, tx: &mut Transaction<'env>, key: Key) -> TxResult<Option<Value>>;

    /// Insert `key -> value`. Returns `true` if the key was absent (the map
    /// changed), `false` if the key was already present.
    fn tx_insert<'env>(
        &'env self,
        tx: &mut Transaction<'env>,
        key: Key,
        value: Value,
    ) -> TxResult<bool>;

    /// Delete `key`. Returns `true` if the key was present (the map changed).
    fn tx_delete<'env>(&'env self, tx: &mut Transaction<'env>, key: Key) -> TxResult<bool>;

    /// Membership test.
    fn tx_contains<'env>(&'env self, tx: &mut Transaction<'env>, key: Key) -> TxResult<bool> {
        Ok(self.tx_get(tx, key)?.is_some())
    }

    /// Delete `key` only when it currently maps to `expected` (a
    /// compare-and-delete). Atomic within the surrounding transaction; used
    /// by the sharded map's cross-shard move protocol so a concurrent
    /// rewrite of the key is never destroyed blindly.
    fn tx_delete_if<'env>(
        &'env self,
        tx: &mut Transaction<'env>,
        key: Key,
        expected: Value,
    ) -> TxResult<bool> {
        match self.tx_get(tx, key)? {
            Some(value) if value == expected => self.tx_delete(tx, key),
            _ => Ok(false),
        }
    }

    /// Atomically move the value stored at `from` to `to` (§5.4). Succeeds
    /// only when `from` is present and `to` is absent.
    fn tx_move<'env>(&'env self, tx: &mut Transaction<'env>, from: Key, to: Key) -> TxResult<bool> {
        if from == to {
            return self.tx_contains(tx, from);
        }
        let value = match self.tx_get(tx, from)? {
            Some(v) => v,
            None => return Ok(false),
        };
        if !self.tx_insert(tx, to, value)? {
            return Ok(false);
        }
        let removed = self.tx_delete(tx, from)?;
        debug_assert!(removed, "source key vanished inside the same transaction");
        Ok(true)
    }
}

/// Quiescent summary of a structure's hot-key state: how many rotations the
/// maintenance thread performed because access mass dominated, and where the
/// sampled access mass currently sits in the tree. Produced by
/// [`TxMap::hot_report`]; all depths are 1-based node counts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HotReport {
    /// Maintenance rotations driven by access-mass dominance.
    pub hot_rotations: u64,
    /// Total sampled access mass over the reachable tree.
    pub sampled_mass: u64,
    /// Mass-weighted average depth of sampled accesses (`0.0` when nothing
    /// was sampled).
    pub avg_depth: f64,
    /// Key of the single hottest node (meaningful when `hottest_mass > 0`).
    pub hottest_key: Key,
    /// Access mass of the hottest node.
    pub hottest_mass: u64,
    /// Depth of the hottest node.
    pub hottest_depth: u64,
}

impl HotReport {
    /// Fold another report in (sharded compositions): rotation counts add,
    /// average depth combines mass-weighted, the hottest node wins by mass.
    pub fn merge(&mut self, other: &HotReport) {
        self.hot_rotations += other.hot_rotations;
        let total = self.sampled_mass + other.sampled_mass;
        if total > 0 {
            self.avg_depth = (self.avg_depth * self.sampled_mass as f64
                + other.avg_depth * other.sampled_mass as f64)
                / total as f64;
        }
        self.sampled_mass = total;
        if other.hottest_mass > self.hottest_mass {
            self.hottest_key = other.hottest_key;
            self.hottest_mass = other.hottest_mass;
            self.hottest_depth = other.hottest_depth;
        }
    }
}

/// Direction of an ordered scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanOrder {
    /// Visit keys in ascending order.
    Ascending,
    /// Visit keys in descending order.
    Descending,
}

/// In-transaction *ordered*-map operations: min/max, successor and range
/// scans that compose with point operations inside one transaction.
///
/// Implementations provide a single primitive — [`tx_range_visit`] — that
/// walks the live entries of a key range in order inside the caller's
/// transaction. For the speculation-friendly trees the subtle part is that
/// the walk must *skip logically-deleted nodes*: a deleted key stays
/// physically linked (its `del` flag set) until the background maintenance
/// thread removes it, so the traversal reads each in-range node's deletion
/// flag transactionally and filters the tombstones out of the scan.
///
/// Every derived operation keeps the read set of the underlying transaction,
/// so a committed scan is an atomic snapshot of the visited range.
///
/// [`tx_range_visit`]: TxOrderedMapInTx::tx_range_visit
pub trait TxOrderedMapInTx: TxMapInTx {
    /// Visit the live `(key, value)` entries whose keys fall in `range`, in
    /// `order`, calling `visit` for each until it breaks or the range is
    /// exhausted.
    fn tx_range_visit<'env>(
        &'env self,
        tx: &mut Transaction<'env>,
        range: RangeInclusive<Key>,
        order: ScanOrder,
        visit: &mut dyn FnMut(Key, Value) -> ControlFlow<()>,
    ) -> TxResult<()>;

    /// Fold `fold` over the live entries of `range` in ascending key order.
    fn tx_range_fold<'env, A>(
        &'env self,
        tx: &mut Transaction<'env>,
        range: RangeInclusive<Key>,
        init: A,
        mut fold: impl FnMut(A, Key, Value) -> A,
    ) -> TxResult<A> {
        let mut acc = Some(init);
        self.tx_range_visit(tx, range, ScanOrder::Ascending, &mut |key, value| {
            let prev = acc.take().expect("fold accumulator is always present");
            acc = Some(fold(prev, key, value));
            ControlFlow::Continue(())
        })?;
        Ok(acc.expect("fold accumulator is always present"))
    }

    /// Collect the live entries of `range` in ascending key order.
    fn tx_range_collect<'env>(
        &'env self,
        tx: &mut Transaction<'env>,
        range: RangeInclusive<Key>,
    ) -> TxResult<Vec<(Key, Value)>> {
        self.tx_range_fold(tx, range, Vec::new(), |mut out, key, value| {
            out.push((key, value));
            out
        })
    }

    /// The smallest live entry, if any.
    fn tx_min<'env>(&'env self, tx: &mut Transaction<'env>) -> TxResult<Option<(Key, Value)>> {
        let mut out = None;
        self.tx_range_visit(tx, 0..=Key::MAX, ScanOrder::Ascending, &mut |key, value| {
            out = Some((key, value));
            ControlFlow::Break(())
        })?;
        Ok(out)
    }

    /// The largest live entry, if any.
    fn tx_max<'env>(&'env self, tx: &mut Transaction<'env>) -> TxResult<Option<(Key, Value)>> {
        let mut out = None;
        self.tx_range_visit(
            tx,
            0..=Key::MAX,
            ScanOrder::Descending,
            &mut |key, value| {
                out = Some((key, value));
                ControlFlow::Break(())
            },
        )?;
        Ok(out)
    }

    /// The smallest live entry with a key strictly greater than `key`.
    fn tx_successor<'env>(
        &'env self,
        tx: &mut Transaction<'env>,
        key: Key,
    ) -> TxResult<Option<(Key, Value)>> {
        if key == Key::MAX {
            return Ok(None);
        }
        let mut out = None;
        self.tx_range_visit(
            tx,
            (key + 1)..=Key::MAX,
            ScanOrder::Ascending,
            &mut |key, value| {
                out = Some((key, value));
                ControlFlow::Break(())
            },
        )?;
        Ok(out)
    }

    /// Number of live entries, counted by a full-range scan inside the
    /// caller's transaction.
    fn tx_len<'env>(&'env self, tx: &mut Transaction<'env>) -> TxResult<usize> {
        self.tx_range_fold(tx, 0..=Key::MAX, 0usize, |count, _, _| count + 1)
    }
}

/// Top-level map operations, one transaction per call.
///
/// `Handle` bundles whatever per-thread state the structure needs: at minimum
/// the STM thread context, plus (for the speculation-friendly trees) the
/// activity slot used by the quiescence-based reclamation protocol.
pub trait TxMap: Send + Sync {
    /// Per-thread handle.
    type Handle: Send;

    /// Register a worker thread.
    fn register(&self, ctx: ThreadCtx) -> Self::Handle;

    /// Membership test.
    fn contains(&self, handle: &mut Self::Handle, key: Key) -> bool;

    /// Look up a key's value.
    fn get(&self, handle: &mut Self::Handle, key: Key) -> Option<Value>;

    /// Insert `key -> value`; `true` when the map changed.
    fn insert(&self, handle: &mut Self::Handle, key: Key, value: Value) -> bool;

    /// Delete `key`; `true` when the map changed.
    fn delete(&self, handle: &mut Self::Handle, key: Key) -> bool;

    /// Atomically delete `key` only when it currently maps to `expected`
    /// (compare-and-delete); `true` when the map changed.
    fn delete_if(&self, handle: &mut Self::Handle, key: Key, expected: Value) -> bool;

    /// Atomically move `from` to `to`; `true` when the map changed.
    fn move_entry(&self, handle: &mut Self::Handle, from: Key, to: Key) -> bool;

    // --- Cross-shard move protocol hooks -------------------------------
    //
    // A cross-shard move (see `crate::sharded`) decomposes into an insert
    // on the destination shard and a compare-and-delete on the source
    // shard; these hooks let a layer wrapped around each shard (the
    // `sf-persist` durability decorator) observe the decomposition and
    // make it atomically recoverable: the source scope durably declares
    // the move *before* either half commits, the stamped insert/delete
    // tie each half to the declaration, and both scopes fence the shard's
    // log against checkpoint truncation while the move is in flight. The
    // defaults are passthroughs, so purely in-memory maps pay nothing.

    /// Run `body` — the whole cross-shard completion — in the **source**
    /// shard's move scope. A durable map overrides this to write a move
    /// intent (`move_id`, the destination shard index `peer`, and the
    /// `from`/`to`/`value` triple) to its log before `body` runs and a
    /// resolution marker after it returns.
    fn move_source_scope(
        &self,
        _move_id: u64,
        _peer: usize,
        _from: Key,
        _to: Key,
        _value: Value,
        body: &mut dyn FnMut() -> bool,
    ) -> bool {
        body()
    }

    /// Run `body` — the two stamped halves — in the **destination** shard's
    /// move scope. A durable map overrides this to fence its log against
    /// checkpoint truncation while the move is in flight.
    fn move_peer_scope(&self, _move_id: u64, body: &mut dyn FnMut() -> bool) -> bool {
        body()
    }

    /// The destination half of cross-shard move `move_id`: insert
    /// `key -> value`, stamped so a durable map's log ties the record to
    /// the move's intent. Defaults to [`TxMap::insert`].
    fn move_insert(
        &self,
        handle: &mut Self::Handle,
        _move_id: u64,
        key: Key,
        value: Value,
    ) -> bool {
        self.insert(handle, key, value)
    }

    /// The source half (or rollback retraction) of cross-shard move
    /// `move_id`: compare-and-delete `key` when it still holds `expected`,
    /// stamped like [`TxMap::move_insert`]. Defaults to
    /// [`TxMap::delete_if`].
    fn move_delete_if(
        &self,
        handle: &mut Self::Handle,
        _move_id: u64,
        key: Key,
        expected: Value,
    ) -> bool {
        self.delete_if(handle, key, expected)
    }

    /// Collect the live entries whose keys fall in `range`, in ascending key
    /// order, as one atomic read-only scan transaction
    /// ([`sf_stm::TxKind::ReadOnly`] — no write-set bookkeeping). Structures
    /// composed of several transactional domains (e.g. the sharded map)
    /// relax atomicity to per-domain snapshots; see their documentation.
    fn range_collect(
        &self,
        handle: &mut Self::Handle,
        range: RangeInclusive<Key>,
    ) -> Vec<(Key, Value)>;

    /// Number of live keys, counted by a read-only scan transaction. Unlike
    /// [`TxMap::len_quiescent`] this is safe (and linearizable per
    /// transactional domain) under concurrent updates.
    fn len(&self, handle: &mut Self::Handle) -> usize;

    /// Number of live keys. Only accurate while no concurrent updates run;
    /// used for test oracles and for sizing reports.
    fn len_quiescent(&self) -> usize;

    /// Quiescent hot-key summary ([`HotReport`]): hot rotations performed and
    /// where the sampled access mass sits. Like [`TxMap::len_quiescent`],
    /// only accurate while no concurrent updates or maintenance run.
    /// Structures without access tracking return `None` (the default).
    fn hot_report(&self) -> Option<HotReport> {
        None
    }

    /// Short human-readable name used in benchmark output (e.g. `SFtree`).
    fn name(&self) -> &'static str;
}

/// Maps whose top-level operations can report the **commit version** at which
/// they serialized — the capability a durability layer builds on.
///
/// Every single-STM backend implements this by funnelling the caller's body
/// through the same guard + retry protocol as its built-in point operations
/// ([`sf_stm::ThreadCtx::atomically_versioned`] underneath), so the returned
/// version is the STM clock stamp of the winning attempt and the body's
/// [`Transaction::on_commit_versioned`] hooks observe the identical value.
/// Multi-domain compositions (the sharded map) do **not** implement it — no
/// single transaction spans their shards; they are made durable by wrapping
/// each shard instead (`ShardedMap<DurableMap<M>>`).
pub trait TxMapVersioned: TxMap + TxMapInTx + TxOrderedMapInTx {
    /// Run `body` as one top-level transaction of the map's default kind
    /// (the same kind its own mutating operations use), retrying until it
    /// commits, and return its result together with the commit version.
    ///
    /// The body receives the map itself re-borrowed at the transaction
    /// lifetime so it can call the [`TxMapInTx`] operations; any state it
    /// captures for [`Transaction::on_commit_versioned`] hooks must be
    /// owned (`'static`), because hooks may outlive the body's borrows.
    fn atomically_versioned<R>(
        &self,
        handle: &mut Self::Handle,
        body: impl for<'t> FnMut(&'t Self, &mut Transaction<'t>) -> TxResult<R>,
    ) -> (R, u64);

    /// One atomic full-range snapshot of the live entries, in ascending key
    /// order, together with the version at which the read-only scan
    /// serialized: every commit with a version `<=` the returned one is
    /// reflected in the entries, every commit with a greater version is not.
    /// This is exactly the boundary a checkpoint needs in order to truncate
    /// a commit-ordered log safely.
    fn snapshot_versioned(&self, handle: &mut Self::Handle) -> (Vec<(Key, Value)>, u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use sf_stm::Stm;
    use std::collections::BTreeMap;

    /// A trivial TxMapInTx implementation (single mutex-protected BTreeMap,
    /// ignoring the transaction) to exercise the default method logic.
    struct Oracle(Mutex<BTreeMap<Key, Value>>);

    impl TxMapInTx for Oracle {
        fn tx_get<'env>(
            &'env self,
            _tx: &mut Transaction<'env>,
            key: Key,
        ) -> TxResult<Option<Value>> {
            Ok(self.0.lock().get(&key).copied())
        }
        fn tx_insert<'env>(
            &'env self,
            _tx: &mut Transaction<'env>,
            key: Key,
            value: Value,
        ) -> TxResult<bool> {
            Ok(self.0.lock().insert(key, value).is_none())
        }
        fn tx_delete<'env>(&'env self, _tx: &mut Transaction<'env>, key: Key) -> TxResult<bool> {
            Ok(self.0.lock().remove(&key).is_some())
        }
    }

    #[test]
    fn default_move_semantics() {
        let stm = Stm::default_config();
        let mut ctx = stm.register();
        let oracle = Oracle(Mutex::new(BTreeMap::new()));
        ctx.atomically(|tx| oracle.tx_insert(tx, 1, 10));
        // Successful move.
        assert!(ctx.atomically(|tx| oracle.tx_move(tx, 1, 2)));
        assert_eq!(oracle.0.lock().get(&2), Some(&10));
        assert!(!oracle.0.lock().contains_key(&1));
        // Source missing.
        assert!(!ctx.atomically(|tx| oracle.tx_move(tx, 1, 3)));
        // Destination occupied.
        ctx.atomically(|tx| oracle.tx_insert(tx, 5, 50));
        assert!(!ctx.atomically(|tx| oracle.tx_move(tx, 2, 5)));
        // Move onto itself is a membership test.
        assert!(ctx.atomically(|tx| oracle.tx_move(tx, 2, 2)));
        assert!(!ctx.atomically(|tx| oracle.tx_move(tx, 99, 99)));
    }

    #[test]
    fn default_contains_uses_get() {
        let stm = Stm::default_config();
        let mut ctx = stm.register();
        let oracle = Oracle(Mutex::new(BTreeMap::new()));
        assert!(!ctx.atomically(|tx| oracle.tx_contains(tx, 7)));
        ctx.atomically(|tx| oracle.tx_insert(tx, 7, 70));
        assert!(ctx.atomically(|tx| oracle.tx_contains(tx, 7)));
    }

    impl TxOrderedMapInTx for Oracle {
        fn tx_range_visit<'env>(
            &'env self,
            _tx: &mut Transaction<'env>,
            range: RangeInclusive<Key>,
            order: ScanOrder,
            visit: &mut dyn FnMut(Key, Value) -> ControlFlow<()>,
        ) -> TxResult<()> {
            let map = self.0.lock();
            match order {
                ScanOrder::Ascending => {
                    for (&k, &v) in map.range(range) {
                        if visit(k, v).is_break() {
                            break;
                        }
                    }
                }
                ScanOrder::Descending => {
                    for (&k, &v) in map.range(range).rev() {
                        if visit(k, v).is_break() {
                            break;
                        }
                    }
                }
            }
            Ok(())
        }
    }

    #[test]
    fn ordered_defaults_derive_from_the_visit_primitive() {
        let stm = Stm::default_config();
        let mut ctx = stm.register();
        let oracle = Oracle(Mutex::new(BTreeMap::new()));
        assert_eq!(ctx.atomically(|tx| oracle.tx_min(tx)), None);
        assert_eq!(ctx.atomically(|tx| oracle.tx_max(tx)), None);
        assert_eq!(ctx.atomically(|tx| oracle.tx_len(tx)), 0);
        for k in [5u64, 1, 9, 3] {
            ctx.atomically(|tx| oracle.tx_insert(tx, k, k * 10));
        }
        assert_eq!(ctx.atomically(|tx| oracle.tx_min(tx)), Some((1, 10)));
        assert_eq!(ctx.atomically(|tx| oracle.tx_max(tx)), Some((9, 90)));
        assert_eq!(ctx.atomically(|tx| oracle.tx_len(tx)), 4);
        assert_eq!(
            ctx.atomically(|tx| oracle.tx_successor(tx, 3)),
            Some((5, 50))
        );
        assert_eq!(
            ctx.atomically(|tx| oracle.tx_successor(tx, 5)),
            Some((9, 90))
        );
        assert_eq!(ctx.atomically(|tx| oracle.tx_successor(tx, 9)), None);
        assert_eq!(ctx.atomically(|tx| oracle.tx_successor(tx, Key::MAX)), None);
        assert_eq!(
            ctx.atomically(|tx| oracle.tx_range_collect(tx, 2..=5)),
            vec![(3, 30), (5, 50)]
        );
        let sum =
            ctx.atomically(|tx| oracle.tx_range_fold(tx, 0..=Key::MAX, 0u64, |a, _, v| a + v));
        assert_eq!(sum, 10 + 30 + 50 + 90);
        // Empty ranges are handled without visiting anything.
        assert_eq!(
            ctx.atomically(|tx| oracle.tx_range_collect(tx, 6..=8)),
            vec![]
        );
    }
}
