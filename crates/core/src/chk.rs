//! Internal indirection over the `sf-check` instrumentation hooks.
//!
//! With the `check` feature the functions forward to `sf_check`; without it
//! they are empty `#[inline(always)]` bodies, so the maintenance loop, the
//! hot-key counters and the cross-shard move path carry their yield points
//! and benign-access annotations unconditionally at zero default-build cost.

#[cfg(feature = "check")]
pub(crate) use sf_check::hooks::benign_access;
#[cfg(feature = "check")]
pub(crate) use sf_check::{sched_point, BenignKind, SchedEvent};

#[cfg(not(feature = "check"))]
mod noop {
    /// Mirror of `sf_check::SchedEvent` restricted to the variants sf-tree
    /// emits, so call sites compile identically in both configurations.
    #[derive(Debug, Clone, Copy)]
    pub(crate) enum SchedEvent {
        MaintPass,
        Move,
    }

    /// Mirror of `sf_check::BenignKind` restricted to what sf-tree uses.
    #[derive(Debug, Clone, Copy)]
    pub(crate) enum BenignKind {
        HotCounter,
    }

    #[inline(always)]
    pub(crate) fn sched_point(_ev: SchedEvent) {}

    #[inline(always)]
    pub(crate) fn benign_access(_kind: BenignKind) {}
}

#[cfg(not(feature = "check"))]
pub(crate) use noop::*;
