//! The tree node and its transactional fields.
//!
//! One node layout is shared by the portable tree (Algorithm 1) and the
//! optimized tree (Algorithm 2). Fields follow the paper:
//!
//! * `key` — immutable for the lifetime of a node incarnation (slots are
//!   recycled only after quiescence, so a traversal never observes the key of
//!   a slot change under it);
//! * `value` — the mapped value (the paper's associative-array abstraction);
//! * `left` / `right` — transactional child pointers (`NodeId::NIL` is ⊥);
//! * `del` — logical-deletion flag (the *deleted* flag of §3.2);
//! * `rem` — physical-removal flag, `No`, `Yes`, or `YesByLeftRotation`
//!   (Algorithm 2, needed by the optimized find to keep traversing through
//!   nodes removed by clone-based rotations);
//! * `left_h` / `right_h` / `local_h` — the node-local estimated heights used
//!   by the distributed rebalancing scheme of Bougé et al. (§3.1); only the
//!   maintenance thread reads and writes them, so they never conflict with
//!   abstract transactions;
//! * `hot` / `hot_sub` — the sampled, decaying access-frequency counter and
//!   its subtree aggregate. Both are **plain relaxed atomics**, never part of
//!   any STM read or write set: recording an access on traversal can neither
//!   abort the recording transaction nor conflict with any other one, which
//!   is what lets the maintenance thread do hot-key restructuring with zero
//!   added mutator aborts.

use std::sync::atomic::{AtomicU64, Ordering};

use sf_stm::{TCell, TxValue};

use crate::arena::NodeId;

/// Key type of the associative array implemented by the trees.
pub type Key = u64;
/// Value type of the associative array implemented by the trees.
pub type Value = u64;

/// Sentinel key of the root node: `u64::MAX` plays the paper's ∞, so every
/// real key lives in the root's left subtree and the root itself is never
/// rotated nor removed.
pub const SENTINEL_KEY: Key = u64::MAX;

/// Physical-removal state of a node (the `rem` field of Algorithm 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemState {
    /// The node is part of the tree.
    Present,
    /// The node has been physically unlinked (by a removal or a right
    /// rotation).
    Removed,
    /// The node has been physically unlinked by a **left** rotation; a
    /// traversal that looks for exactly this node's key must continue towards
    /// the right child to find the clone that replaced it (§3.3).
    RemovedByLeftRotation,
}

impl TxValue for RemState {
    fn encode(self) -> u64 {
        match self {
            RemState::Present => 0,
            RemState::Removed => 1,
            RemState::RemovedByLeftRotation => 2,
        }
    }
    fn decode(raw: u64) -> Self {
        match raw {
            0 => RemState::Present,
            1 => RemState::Removed,
            _ => RemState::RemovedByLeftRotation,
        }
    }
}

impl RemState {
    /// True for both removal variants (`true` and `true by left rot` are
    /// equivalent everywhere except one branch of the optimized find).
    #[inline]
    pub fn is_removed(self) -> bool {
        !matches!(self, RemState::Present)
    }
}

/// Which child of a parent a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The parent's left child (smaller keys).
    Left,
    /// The parent's right child (larger keys).
    Right,
}

impl Side {
    /// The opposite side.
    pub fn other(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }

    /// The side of a parent with key `parent_key` on which `key` belongs.
    pub fn for_key(key: Key, parent_key: Key) -> Side {
        if key < parent_key {
            Side::Left
        } else {
            Side::Right
        }
    }
}

/// A binary-search-tree node with transactional fields.
#[derive(Debug)]
pub struct Node {
    key: AtomicU64,
    /// Mapped value.
    pub value: TCell<Value>,
    /// Left child (keys smaller than `key`), `NodeId::NIL` when absent.
    pub left: TCell<NodeId>,
    /// Right child (keys larger than `key`), `NodeId::NIL` when absent.
    pub right: TCell<NodeId>,
    /// Logical deletion flag (§3.2).
    pub del: TCell<bool>,
    /// Physical removal flag (§3.3).
    pub rem: TCell<RemState>,
    /// Estimated height of the left subtree (maintenance-only).
    pub left_h: TCell<i32>,
    /// Estimated height of the right subtree (maintenance-only).
    pub right_h: TCell<i32>,
    /// Expected local height: `1 + max(left_h, right_h)` (maintenance-only).
    pub local_h: TCell<i32>,
    /// Sampled, decaying access-frequency counter (non-transactional).
    hot: AtomicU64,
    /// Subtree access mass aggregated by the last maintenance pass
    /// (maintenance-only scratch, non-transactional).
    hot_sub: AtomicU64,
}

impl Default for Node {
    fn default() -> Self {
        Node {
            key: AtomicU64::new(0),
            value: TCell::new(0),
            left: TCell::new(NodeId::NIL),
            right: TCell::new(NodeId::NIL),
            del: TCell::new(false),
            rem: TCell::new(RemState::Present),
            left_h: TCell::new(0),
            right_h: TCell::new(0),
            local_h: TCell::new(1),
            hot: AtomicU64::new(0),
            hot_sub: AtomicU64::new(0),
        }
    }
}

impl Node {
    /// The node's key. Keys are immutable for the lifetime of a node
    /// incarnation so a plain atomic load is sufficient (the paper's find
    /// reads `curr.k` outside transactional bookkeeping).
    #[inline]
    pub fn key(&self) -> Key {
        self.key.load(Ordering::Acquire)
    }

    /// (Re-)initialize a slot for a fresh node that is **not yet published**:
    /// called right after [`crate::arena::TxArena::alloc`] and before the
    /// transactional write that links the node into the tree, so plain stores
    /// are safe (the release fence of the publishing commit makes them
    /// visible to every reader that can reach the node).
    pub fn init_fresh(&self, key: Key, value: Value) {
        self.key.store(key, Ordering::Release);
        self.value.unsync_store(value);
        self.left.unsync_store(NodeId::NIL);
        self.right.unsync_store(NodeId::NIL);
        self.del.unsync_store(false);
        self.rem.unsync_store(RemState::Present);
        self.left_h.unsync_store(0);
        self.right_h.unsync_store(0);
        self.local_h.unsync_store(1);
        // sf-lint: allow(relaxed-atomic, hot counter reset at node init; slot reuse is ordered by the arena recycle protocol)
        self.hot.store(0, Ordering::Relaxed);
        // sf-lint: allow(relaxed-atomic, hot counter reset at node init; slot reuse is ordered by the arena recycle protocol)
        self.hot_sub.store(0, Ordering::Relaxed);
    }

    /// Record `weight` sampled accesses to this node. Relaxed add on a plain
    /// atomic: invisible to the STM, so it can never cause an abort.
    #[inline]
    pub fn record_access(&self, weight: u64) {
        crate::chk::benign_access(crate::chk::BenignKind::HotCounter);
        // sf-lint: allow(relaxed-atomic, hot-access mass; the maintenance hot pass reads it as a heuristic, staleness is by design)
        self.hot.fetch_add(weight, Ordering::Relaxed);
    }

    /// The node's own decayed access mass.
    #[inline]
    pub fn access_mass(&self) -> u64 {
        // sf-lint: allow(relaxed-atomic, hot-access mass read; restructuring heuristic tolerates stale values)
        self.hot.load(Ordering::Relaxed)
    }

    /// Halve the access counter (periodic decay so adaptation tracks shifting
    /// workloads). A racing `record_access` may be lost; the counter is a
    /// heuristic, not an invariant.
    #[inline]
    pub fn decay_access_mass(&self) {
        crate::chk::benign_access(crate::chk::BenignKind::HotCounter);
        // sf-lint: allow(relaxed-atomic, lossy decay by design; racing accesses may be dropped or halved either way)
        let mass = self.hot.load(Ordering::Relaxed);
        if mass > 0 {
            // sf-lint: allow(relaxed-atomic, lossy decay by design; racing accesses may be dropped or halved either way)
            self.hot.store(mass >> 1, Ordering::Relaxed);
        }
    }

    /// The subtree access mass stored by the last maintenance aggregation.
    #[inline]
    pub fn subtree_mass(&self) -> u64 {
        // sf-lint: allow(relaxed-atomic, cached subtree mass; advisory input to the hot pass, staleness tolerated)
        self.hot_sub.load(Ordering::Relaxed)
    }

    /// Store the subtree access mass (maintenance thread only).
    #[inline]
    pub fn set_subtree_mass(&self, mass: u64) {
        // sf-lint: allow(relaxed-atomic, cached subtree mass; advisory input to the hot pass, staleness tolerated)
        self.hot_sub.store(mass, Ordering::Relaxed);
    }

    /// The child cell on the given side.
    #[inline]
    pub fn child(&self, side: Side) -> &TCell<NodeId> {
        match side {
            Side::Left => &self.left,
            Side::Right => &self.right,
        }
    }

    /// The subtree-height cell on the given side.
    #[inline]
    pub fn child_height(&self, side: Side) -> &TCell<i32> {
        match side {
            Side::Left => &self.left_h,
            Side::Right => &self.right_h,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rem_state_roundtrip() {
        for s in [
            RemState::Present,
            RemState::Removed,
            RemState::RemovedByLeftRotation,
        ] {
            assert_eq!(RemState::decode(s.encode()), s);
        }
        assert!(!RemState::Present.is_removed());
        assert!(RemState::Removed.is_removed());
        assert!(RemState::RemovedByLeftRotation.is_removed());
    }

    #[test]
    fn side_helpers() {
        assert_eq!(Side::Left.other(), Side::Right);
        assert_eq!(Side::Right.other(), Side::Left);
        assert_eq!(Side::for_key(3, 10), Side::Left);
        assert_eq!(Side::for_key(30, 10), Side::Right);
        assert_eq!(Side::for_key(10, 10), Side::Right);
    }

    #[test]
    fn init_fresh_resets_every_field() {
        let n = Node::default();
        n.del.unsync_store(true);
        n.rem.unsync_store(RemState::Removed);
        n.left.unsync_store(NodeId(7));
        n.local_h.unsync_store(9);
        n.record_access(12);
        n.set_subtree_mass(99);
        n.init_fresh(42, 43);
        assert_eq!(n.key(), 42);
        assert_eq!(n.value.unsync_load(), 43);
        assert_eq!(n.left.unsync_load(), NodeId::NIL);
        assert_eq!(n.right.unsync_load(), NodeId::NIL);
        assert!(!n.del.unsync_load());
        assert_eq!(n.rem.unsync_load(), RemState::Present);
        assert_eq!(n.local_h.unsync_load(), 1);
        assert_eq!(n.access_mass(), 0);
        assert_eq!(n.subtree_mass(), 0);
    }

    #[test]
    fn access_counter_records_and_decays() {
        let n = Node::default();
        assert_eq!(n.access_mass(), 0);
        n.record_access(64);
        n.record_access(64);
        assert_eq!(n.access_mass(), 128);
        n.decay_access_mass();
        assert_eq!(n.access_mass(), 64);
        n.decay_access_mass();
        n.decay_access_mass();
        assert_eq!(n.access_mass(), 16);
        n.set_subtree_mass(200);
        assert_eq!(n.subtree_mass(), 200);
    }

    #[test]
    fn child_accessors_match_sides() {
        let n = Node::default();
        n.left.unsync_store(NodeId(1));
        n.right.unsync_store(NodeId(2));
        assert_eq!(n.child(Side::Left).unsync_load(), NodeId(1));
        assert_eq!(n.child(Side::Right).unsync_load(), NodeId(2));
        n.left_h.unsync_store(3);
        n.right_h.unsync_store(4);
        assert_eq!(n.child_height(Side::Left).unsync_load(), 3);
        assert_eq!(n.child_height(Side::Right).unsync_load(), 4);
    }
}
