//! The optimized speculation-friendly tree (the paper's Algorithm 2, §3.3).
//!
//! Differences from the portable variant:
//!
//! * the traversal uses **unit reads** (`uread`) for intermediate hops and
//!   only protects the final node with transactional reads, keeping the
//!   read/write set size `O(1)` per nested operation instead of
//!   `O(log n)`;
//! * each node carries a **removed flag** (`rem`) so that a traversal
//!   preempted on a node that a rotation or removal just unlinked can keep
//!   descending instead of aborting;
//! * the maintenance thread uses the **clone-based rotation** of Figure 2(c):
//!   the rotated node is left untouched (apart from its removed flag), a
//!   fresh clone takes its place, and the stale node keeps a path back into
//!   the tree.

use std::ops::{ControlFlow, RangeInclusive};
use std::sync::Arc;

use sf_stm::{ThreadCtx, Transaction, TxKind, TxResult};

use crate::arena::{NodeId, TxArena};
use crate::inspect::TreeInspect;
use crate::maintenance::{
    MaintenanceConfig, MaintenanceHandle, MaintenanceStyle, MaintenanceWorker,
};
use crate::map::{ScanOrder, TxMap, TxMapInTx, TxMapVersioned, TxOrderedMapInTx};
use crate::node::{Key, Node, RemState, Side, Value};
use crate::shared::{
    tx_delete_common, tx_get_common, tx_insert_common, tx_range_visit_common, FindSpec, SfHandle,
    TreeCore, TreeStats,
};

/// Traversal of Algorithm 2: unit reads on the way down, transactional reads
/// only to pin the final node (its removed flag, the relevant ⊥ child for the
/// leaf case, and the parent link for the final validation).
pub(crate) struct OptimizedFind;

impl OptimizedFind {
    /// Maximum number of failed parent-link validations before the search
    /// gives up on local backtracking and restarts from the root. Purely a
    /// robustness bound; in practice one backtrack suffices.
    const MAX_BACKTRACKS: u32 = 64;
}

impl FindSpec for OptimizedFind {
    fn find<'env>(core: &'env TreeCore, tx: &mut Transaction<'env>, key: Key) -> TxResult<NodeId> {
        let mut curr = core.root;
        let mut next = core.root;
        let mut backtracks = 0u32;
        loop {
            let mut parent;
            // Inner descent loop (paper lines 32-49).
            loop {
                parent = curr;
                curr = next;
                let node = core.node(curr);
                let val = node.key();
                let mut removed = RemState::Present;
                if val == key {
                    removed = tx.read(&node.rem)?;
                    if !removed.is_removed() {
                        break; // candidate with a matching key, pinned in the tree
                    }
                }
                // Pick the descent direction. A node with the searched key
                // that was removed by a *left* rotation hides its live clone
                // in its right subtree; every other removed node keeps the
                // clone (or the parent) reachable through the standard
                // direction (§3.3 and Lemma 16).
                let side = if val == key {
                    if removed == RemState::RemovedByLeftRotation {
                        Side::Right
                    } else {
                        Side::Left
                    }
                } else {
                    Side::for_key(key, val)
                };
                next = tx.uread(node.child(side));
                if next.is_nil() {
                    let rem_now = tx.read(&node.rem)?;
                    if !rem_now.is_removed() {
                        // The node is pinned in the tree; re-read the child
                        // pointer transactionally so a concurrent insert of
                        // `key` under this leaf conflicts with us.
                        let confirmed = tx.read(node.child(side))?;
                        if confirmed.is_nil() {
                            break; // insertion point found
                        }
                        next = confirmed;
                    } else {
                        // Removed node whose preferred child is ⊥: the other
                        // child keeps a path back into the tree (Lemma 16).
                        next = tx.uread(node.child(side.other()));
                        if next.is_nil() {
                            // Defensive: restart from the root.
                            curr = core.root;
                            next = core.root;
                        }
                    }
                }
            }
            // Final validation (paper lines 50-56): the parent must still
            // point at the candidate, otherwise resume from the parent.
            if curr == core.root {
                return Ok(curr);
            }
            let parent_node = core.node(parent);
            let side = Side::for_key(core.node(curr).key(), parent_node.key());
            let link = tx.read(parent_node.child(side))?;
            if link == curr {
                return Ok(curr);
            }
            backtracks += 1;
            if backtracks > Self::MAX_BACKTRACKS || parent == core.root {
                curr = core.root;
                next = core.root;
            } else {
                next = curr;
                curr = parent;
            }
        }
    }
}

/// The optimized speculation-friendly binary search tree (Algorithm 2).
#[derive(Debug)]
pub struct OptSpecFriendlyTree {
    core: TreeCore,
}

impl OptSpecFriendlyTree {
    /// Create an empty tree with its own node arena.
    pub fn new() -> Self {
        Self::with_arena(Arc::new(TxArena::new()))
    }

    /// Create an empty tree backed by an existing arena.
    pub fn with_arena(arena: Arc<TxArena<Node>>) -> Self {
        OptSpecFriendlyTree {
            core: TreeCore::new(arena),
        }
    }

    /// Register a worker thread.
    pub fn register(&self, ctx: ThreadCtx) -> SfHandle {
        SfHandle {
            ctx,
            activity: self.core.arena.register_activity(),
        }
    }

    /// Work counters (rotations, removals, propagations, ...).
    pub fn stats(&self) -> &TreeStats {
        &self.core.stats
    }

    /// The node arena backing this tree.
    pub fn arena(&self) -> &Arc<TxArena<Node>> {
        &self.core.arena
    }

    /// Override the access-sampling rate (`SF_HOT_SAMPLE`): every `rate`-th
    /// traversal records its endpoint with weight `rate`; `0` disables.
    pub fn set_hot_sample(&self, rate: u64) {
        self.core
            .hot_sample
            // sf-lint: allow(relaxed-atomic, sampling-rate knob; readers may briefly observe the previous rate)
            .store(rate, std::sync::atomic::Ordering::Relaxed);
    }

    /// Build (but do not start) a maintenance worker using clone-based
    /// rotations.
    pub fn maintenance_worker(&self, ctx: ThreadCtx) -> MaintenanceWorker {
        self.maintenance_worker_with(ctx, MaintenanceConfig::default())
    }

    /// [`Self::maintenance_worker`] with a custom configuration.
    pub fn maintenance_worker_with(
        &self,
        ctx: ThreadCtx,
        config: MaintenanceConfig,
    ) -> MaintenanceWorker {
        MaintenanceWorker::new(self.core.clone(), MaintenanceStyle::CloneBased, ctx, config)
    }

    /// Spawn the background maintenance (rotator) thread.
    pub fn start_maintenance(&self, ctx: ThreadCtx) -> MaintenanceHandle {
        self.maintenance_worker(ctx).spawn()
    }

    /// Spawn the background maintenance thread with a custom configuration.
    pub fn start_maintenance_with(
        &self,
        ctx: ThreadCtx,
        config: MaintenanceConfig,
    ) -> MaintenanceHandle {
        MaintenanceWorker::new(self.core.clone(), MaintenanceStyle::CloneBased, ctx, config).spawn()
    }

    /// Quiescent inspection helpers (test oracles, invariant checks).
    pub fn inspect(&self) -> TreeInspect<'_> {
        TreeInspect::new(&self.core)
    }
}

impl Default for OptSpecFriendlyTree {
    fn default() -> Self {
        Self::new()
    }
}

impl TxMapInTx for OptSpecFriendlyTree {
    fn tx_get<'env>(&'env self, tx: &mut Transaction<'env>, key: Key) -> TxResult<Option<Value>> {
        tx_get_common::<OptimizedFind>(&self.core, tx, key)
    }

    fn tx_insert<'env>(
        &'env self,
        tx: &mut Transaction<'env>,
        key: Key,
        value: Value,
    ) -> TxResult<bool> {
        tx_insert_common::<OptimizedFind>(&self.core, tx, key, value)
    }

    fn tx_delete<'env>(&'env self, tx: &mut Transaction<'env>, key: Key) -> TxResult<bool> {
        tx_delete_common::<OptimizedFind>(&self.core, tx, key)
    }
}

impl TxOrderedMapInTx for OptSpecFriendlyTree {
    /// Range walk with fully-transactional reads: the unit-read shortcut of
    /// the optimized point `find` cannot apply because a scan's whole result
    /// set must be one atomic snapshot (see
    /// `sf_tree::shared::tx_range_visit_common`).
    fn tx_range_visit<'env>(
        &'env self,
        tx: &mut Transaction<'env>,
        range: RangeInclusive<Key>,
        order: ScanOrder,
        visit: &mut dyn FnMut(Key, Value) -> ControlFlow<()>,
    ) -> TxResult<()> {
        tx_range_visit_common(&self.core, tx, range, order, visit)
    }
}

impl TxMap for OptSpecFriendlyTree {
    type Handle = SfHandle;

    fn register(&self, ctx: ThreadCtx) -> SfHandle {
        OptSpecFriendlyTree::register(self, ctx)
    }

    fn contains(&self, handle: &mut SfHandle, key: Key) -> bool {
        let (ctx, activity) = handle.parts();
        let _op = activity.begin();
        ctx.atomically(|tx| self.tx_contains(tx, key))
    }

    fn get(&self, handle: &mut SfHandle, key: Key) -> Option<Value> {
        let (ctx, activity) = handle.parts();
        let _op = activity.begin();
        ctx.atomically(|tx| self.tx_get(tx, key))
    }

    fn insert(&self, handle: &mut SfHandle, key: Key, value: Value) -> bool {
        let (ctx, activity) = handle.parts();
        let _op = activity.begin();
        ctx.atomically(|tx| self.tx_insert(tx, key, value))
    }

    fn delete(&self, handle: &mut SfHandle, key: Key) -> bool {
        let (ctx, activity) = handle.parts();
        let _op = activity.begin();
        ctx.atomically(|tx| self.tx_delete(tx, key))
    }

    fn delete_if(&self, handle: &mut SfHandle, key: Key, expected: Value) -> bool {
        let (ctx, activity) = handle.parts();
        let _op = activity.begin();
        ctx.atomically(|tx| self.tx_delete_if(tx, key, expected))
    }

    fn move_entry(&self, handle: &mut SfHandle, from: Key, to: Key) -> bool {
        let (ctx, activity) = handle.parts();
        let _op = activity.begin();
        ctx.atomically(|tx| self.tx_move(tx, from, to))
    }

    fn range_collect(
        &self,
        handle: &mut SfHandle,
        range: RangeInclusive<Key>,
    ) -> Vec<(Key, Value)> {
        let (ctx, activity) = handle.parts();
        let _op = activity.begin();
        ctx.atomically_kind(TxKind::ReadOnly, |tx| {
            self.tx_range_collect(tx, range.clone())
        })
    }

    fn len(&self, handle: &mut SfHandle) -> usize {
        let (ctx, activity) = handle.parts();
        let _op = activity.begin();
        ctx.atomically_kind(TxKind::ReadOnly, |tx| self.tx_len(tx))
    }

    fn len_quiescent(&self) -> usize {
        self.inspect().live_entries().len()
    }

    fn hot_report(&self) -> Option<crate::map::HotReport> {
        let mut report = self.inspect().hot_summary();
        report.hot_rotations = self
            .core
            .stats
            .hot_rotations
            // sf-lint: allow(relaxed-atomic, hot-rotation telemetry read for reports; staleness is harmless)
            .load(std::sync::atomic::Ordering::Relaxed);
        Some(report)
    }

    fn name(&self) -> &'static str {
        "OptSFtree"
    }
}

impl TxMapVersioned for OptSpecFriendlyTree {
    fn atomically_versioned<R>(
        &self,
        handle: &mut SfHandle,
        mut body: impl for<'t> FnMut(&'t Self, &mut Transaction<'t>) -> TxResult<R>,
    ) -> (R, u64) {
        let (ctx, activity) = handle.parts();
        let _op = activity.begin();
        ctx.atomically_versioned(|tx| body(self, tx))
    }

    fn snapshot_versioned(&self, handle: &mut SfHandle) -> (Vec<(Key, Value)>, u64) {
        let (ctx, activity) = handle.parts();
        let _op = activity.begin();
        ctx.atomically_versioned_kind(TxKind::ReadOnly, |tx| {
            self.tx_range_collect(tx, 0..=Key::MAX)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_stm::Stm;

    fn setup() -> (Arc<sf_stm::Stm>, OptSpecFriendlyTree) {
        (Stm::default_config(), OptSpecFriendlyTree::new())
    }

    #[test]
    fn basic_roundtrip() {
        let (stm, tree) = setup();
        let mut h = tree.register(stm.register());
        assert!(tree.insert(&mut h, 4, 40));
        assert!(tree.insert(&mut h, 2, 20));
        assert!(tree.insert(&mut h, 6, 60));
        assert!(!tree.insert(&mut h, 4, 41));
        assert_eq!(tree.get(&mut h, 2), Some(20));
        assert!(tree.delete(&mut h, 2));
        assert!(!tree.contains(&mut h, 2));
        assert_eq!(tree.len_quiescent(), 2);
        tree.inspect().check_consistency().unwrap();
    }

    #[test]
    fn traversal_reads_stay_constant_sized() {
        // The headline property of Algorithm 2: the committed read set of an
        // operation does not grow with the depth of the tree.
        let (stm, tree) = setup();
        let mut h = tree.register(stm.register());
        for k in 0..512u64 {
            tree.insert(&mut h, k, k);
        }
        stm.reset_stats();
        let mut h2 = tree.register(stm.register());
        assert!(tree.contains(&mut h2, 500));
        assert!(!tree.contains(&mut h2, 5000));
        let stats = stm.stats();
        // The tree degenerated to a 512-deep list (no maintenance ran), yet
        // the tracked read set stays tiny.
        assert!(
            stats.max_read_set <= 8,
            "read set should be O(1), got {}",
            stats.max_read_set
        );
        assert!(stats.tx_ureads > 500, "traversal should use unit reads");
    }

    #[test]
    fn find_traverses_nodes_removed_by_rotation() {
        use crate::maintenance::MaintenanceStyle;
        // Build a small right-heavy tree, run one maintenance pass (which
        // performs a clone-based left rotation), and check that lookups keyed
        // on the rotated node still succeed.
        let (stm, tree) = setup();
        let mut h = tree.register(stm.register());
        for k in [10u64, 20, 30, 40, 50] {
            tree.insert(&mut h, k, k * 10);
        }
        let mut worker = tree.maintenance_worker(stm.register());
        assert_eq!(worker.style(), MaintenanceStyle::CloneBased);
        worker.run_pass();
        worker.run_pass();
        assert!(tree.stats().rotations() > 0, "rotations should have run");
        for k in [10u64, 20, 30, 40, 50] {
            assert_eq!(tree.get(&mut h, k), Some(k * 10));
        }
        tree.inspect().check_consistency().unwrap();
    }

    #[test]
    fn concurrent_mixed_workload_matches_oracle_membership() {
        let (stm, tree) = setup();
        let tree = Arc::new(tree);
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let tree = Arc::clone(&tree);
                let mut h = tree.register(stm.register());
                std::thread::spawn(move || {
                    // Each thread owns a disjoint key range so the final
                    // state is deterministic.
                    let base = t * 10_000;
                    for i in 0..200u64 {
                        let k = base + i;
                        assert!(tree.insert(&mut h, k, k));
                    }
                    for i in (0..200u64).step_by(2) {
                        assert!(tree.delete(&mut h, base + i));
                    }
                    for i in 0..200u64 {
                        let expected = i % 2 == 1;
                        assert_eq!(tree.contains(&mut h, base + i), expected);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(tree.len_quiescent(), 4 * 100);
        tree.inspect().check_consistency().unwrap();
    }

    #[test]
    fn range_scans_survive_clone_based_rotations() {
        // Scans must stay correct across the structure produced by
        // clone-based maintenance (stale removed nodes retired, clones
        // linked in their place).
        let (stm, tree) = setup();
        let mut h = tree.register(stm.register());
        let keys: Vec<u64> = (0..128u64).map(|i| (i * 97) % 131).collect();
        for &k in &keys {
            tree.insert(&mut h, k, k + 1);
        }
        for &k in keys.iter().step_by(3) {
            tree.delete(&mut h, k);
        }
        let mut worker = tree.maintenance_worker(stm.register());
        worker.run_until_stable(512);
        assert!(tree.stats().rotations() > 0);
        let expected: Vec<(u64, u64)> = {
            let mut live: Vec<u64> = keys.clone();
            live.sort_unstable();
            live.dedup();
            let deleted: std::collections::BTreeSet<u64> =
                keys.iter().step_by(3).copied().collect();
            live.into_iter()
                .filter(|k| !deleted.contains(k))
                .map(|k| (k, k + 1))
                .collect()
        };
        assert_eq!(tree.range_collect(&mut h, 0..=u64::MAX), expected);
        assert_eq!(TxMap::len(&tree, &mut h), expected.len());
        let mid: Vec<(u64, u64)> = expected
            .iter()
            .copied()
            .filter(|&(k, _)| (40..=90).contains(&k))
            .collect();
        assert_eq!(tree.range_collect(&mut h, 40..=90), mid);
    }

    #[test]
    fn scans_are_atomic_snapshots_under_concurrent_updates() {
        // One writer keeps the pair (0, 1) in an "exactly one present"
        // invariant per committed state... it alternates inserting one and
        // deleting the other in a single transaction, so any atomic scan
        // must observe exactly one of them.
        let (stm, tree) = setup();
        let tree = Arc::new(tree);
        let mut h = tree.register(stm.register());
        tree.insert(&mut h, 0, 100);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let tree = Arc::clone(&tree);
            let stop = Arc::clone(&stop);
            let mut h = tree.register(stm.register());
            std::thread::spawn(move || {
                let mut which = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let (del, ins) = (which, 1 - which);
                    h.ctx_mut().atomically(|tx| {
                        tree.tx_delete(tx, del)?;
                        tree.tx_insert(tx, ins, 100)
                    });
                    which = 1 - which;
                }
            })
        };
        for _ in 0..300 {
            let snapshot = tree.range_collect(&mut h, 0..=1);
            assert_eq!(
                snapshot.len(),
                1,
                "scan must see exactly one of the pair, got {snapshot:?}"
            );
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        writer.join().unwrap();
    }

    #[test]
    fn move_composition_is_atomic() {
        let (stm, tree) = setup();
        let mut h = tree.register(stm.register());
        tree.insert(&mut h, 100, 1);
        assert!(tree.move_entry(&mut h, 100, 200));
        assert_eq!(tree.get(&mut h, 200), Some(1));
        assert!(!tree.contains(&mut h, 100));
    }
}
