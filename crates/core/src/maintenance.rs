//! The background maintenance (rotator) thread — §3.1, §3.2 and §3.4.
//!
//! The maintenance worker continuously runs depth-first traversals of the
//! tree. At every node, in its own small transaction, it
//!
//! 1. **propagates** the estimated subtree heights (`left_h`, `right_h`,
//!    `local_h`) from the children — the distributed balance information of
//!    Bougé et al.,
//! 2. **physically removes** children that are logically deleted and have at
//!    most one child (the second phase of the decoupled deletion of §3.2),
//! 3. **rotates** children whose estimated heights differ by more than one —
//!    either a classic in-place rotation (Algorithm 1 / the portable tree) or
//!    the clone-based rotation of Figure 2(c) (Algorithm 2 / the optimized
//!    tree).
//!
//! Nodes unlinked by removals and clone-based rotations are *retired* and
//! recycled only once the quiescence condition of §3.4 holds (every abstract
//! operation that was in flight when the pass started has finished).
//!
//! # Hot-key restructuring
//!
//! When [`MaintenanceConfig::hotspot_ratio`] is nonzero the pass becomes
//! *hotness-weighted*: it aggregates the sampled, decaying per-node access
//! counters (see [`crate::node::Node::record_access`]) into subtree masses
//! bottom-up, and performs splay-/weighted-AVL-style conditional rotations
//! that lift a subtree whose access mass dominates the mass the rotation
//! would push down (`rise > ratio × sink`, with `rise` the pivot plus its
//! outer subtree and `sink` the rotated node plus its other subtree).
//! Symmetrically, plain height rotations that would *sink* dominant mass are
//! deferred until the imbalance exceeds `imbalance_threshold + hot_slack`,
//! so hot-earned skew is not immediately undone — and because the undo
//! condition is the exact negation of the lift condition, the two rules
//! cannot oscillate. Hot rotations reuse the same classic/clone rotation
//! transactions as height balancing, so mutators see no new abort sources.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use sf_obs::{EventKind, FlightRecorder, Histogram, HistogramSnapshot};
use sf_stm::{ThreadCtx, Transaction, TxResult};

use crate::arena::NodeId;
use crate::node::{RemState, Side, SENTINEL_KEY};
use crate::shared::TreeCore;

/// Process-wide histogram of maintenance pass durations (nanoseconds),
/// across every maintenance worker in the process.
pub fn pass_duration_histogram() -> &'static Histogram {
    static PASS_DURATION: Histogram = Histogram::new();
    &PASS_DURATION
}

/// Process-wide histogram of per-pass rotation work (rotations performed by
/// one pass, height- and hotness-driven alike).
pub fn pass_work_histogram() -> &'static Histogram {
    static PASS_WORK: Histogram = Histogram::new();
    &PASS_WORK
}

/// Snapshot of both maintenance histograms: `(pass duration ns, rotations
/// per pass)`. The harness deltas these around its measured phase.
pub fn maintenance_histograms() -> (HistogramSnapshot, HistogramSnapshot) {
    (
        pass_duration_histogram().snapshot(),
        pass_work_histogram().snapshot(),
    )
}

/// Which rotation/removal flavour the worker applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenanceStyle {
    /// Classic in-place rotations and plain unlinking (Algorithm 1).
    Classic,
    /// Clone-based rotations and parent-redirecting removal (Algorithm 2).
    CloneBased,
}

/// Tuning knobs of the maintenance thread.
#[derive(Debug, Clone)]
pub struct MaintenanceConfig {
    /// Imbalance threshold that triggers a rotation: a rotation runs when
    /// `|left_h - right_h| > threshold`. The paper (following AVL-style local
    /// balancing) uses 1.
    pub imbalance_threshold: i32,
    /// Pause between consecutive traversals. On the paper's 48-core machine
    /// the rotator owns a core; on smaller hosts a small pause keeps it from
    /// starving the application threads.
    pub pass_delay: Duration,
    /// When `false`, the worker propagates heights and removes deleted nodes
    /// but never rotates (used by the no-restructuring baseline when physical
    /// removal is still wanted).
    pub enable_rotation: bool,
    /// When `false`, the worker never physically removes logically deleted
    /// nodes.
    pub enable_removal: bool,
    /// Dominance ratio of hot-key restructuring (`SF_HOTSPOT`): a hot
    /// rotation runs when the access mass it lifts exceeds `ratio ×` the
    /// mass it sinks. `0.0` (the default) disables hot-key restructuring
    /// entirely; enabled values are treated as at least `1.0`.
    pub hotspot_ratio: f64,
    /// Minimum rising access mass for a hot rotation, so cold noise never
    /// triggers restructuring.
    pub hot_min_mass: u64,
    /// Halve every visited node's access counter once per this many passes
    /// (`SF_HOT_DECAY`); `0` never decays. Decay makes the counters track a
    /// shifting workload instead of its whole history.
    pub hot_decay_passes: u64,
    /// Extra height imbalance tolerated in favour of hot subtrees: hot
    /// rotations may skew a subtree up to `imbalance_threshold + hot_slack`
    /// and height rotations that would sink dominant mass are deferred until
    /// the imbalance exceeds that same bound.
    pub hot_slack: i32,
}

impl Default for MaintenanceConfig {
    fn default() -> Self {
        MaintenanceConfig {
            imbalance_threshold: 1,
            pass_delay: Duration::from_micros(100),
            enable_rotation: true,
            enable_removal: true,
            hotspot_ratio: 0.0,
            hot_min_mass: 64,
            hot_decay_passes: 0,
            hot_slack: 2,
        }
    }
}

impl MaintenanceConfig {
    /// Whether hot-key restructuring is enabled.
    pub fn hotspot_enabled(&self) -> bool {
        self.hotspot_ratio > 0.0
    }

    /// Apply the `SF_HOTSPOT` / `SF_HOT_DECAY` environment knobs on top of
    /// this configuration. `SF_HOTSPOT` set to a positive number becomes the
    /// dominance ratio (any other non-empty, non-`0` value enables the
    /// default ratio `2.0`); `SF_HOT_DECAY` sets the decay period in passes.
    /// Unset variables leave the configuration untouched, so a blanket
    /// `SF_HOTSPOT=1` turns hot restructuring on for every
    /// speculation-friendly backend a harness builds.
    pub fn with_hotspot_env(mut self) -> Self {
        if let Some(ratio) = hotspot_ratio_from_env() {
            self.hotspot_ratio = ratio;
        }
        if let Some(decay) = parsed_env("SF_HOT_DECAY") {
            self.hot_decay_passes = decay;
        }
        self
    }

    /// Enable hot-key restructuring with its default tuning (dominance ratio
    /// `2.0`, decay every `64` passes) — used by the registry's `-hot`
    /// backend variants. Environment overrides still apply on top.
    pub fn with_hotspot_defaults(mut self) -> Self {
        self.hotspot_ratio = 2.0;
        self.hot_decay_passes = 64;
        self.with_hotspot_env()
    }
}

fn parsed_env<T: std::str::FromStr>(var: &str) -> Option<T> {
    std::env::var(var).ok().and_then(|s| s.trim().parse().ok())
}

/// `SF_HOTSPOT` as a dominance ratio: unset, empty or `0` → `None`;
/// a positive number → that ratio; any other value → the default `2.0`.
fn hotspot_ratio_from_env() -> Option<f64> {
    let raw = std::env::var("SF_HOTSPOT").ok()?;
    let trimmed = raw.trim();
    if trimmed.is_empty() || trimmed == "0" {
        return None;
    }
    Some(
        trimmed
            .parse::<f64>()
            .ok()
            .filter(|ratio| *ratio > 0.0)
            .unwrap_or(2.0),
    )
}

/// Summary of one maintenance traversal.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PassReport {
    /// Nodes visited.
    pub visited: u64,
    /// Rotations performed (left + right).
    pub rotations: u64,
    /// Physical removals performed.
    pub removals: u64,
    /// Height propagations that changed stored values.
    pub propagations: u64,
    /// Retired nodes recycled into the free list this pass.
    pub recycled: u64,
    /// Rotations (included in `rotations`) performed because the lifted
    /// subtree's access mass dominated what the rotation pushed down.
    pub hot_rotations: u64,
}

/// The maintenance worker. Drive it manually with [`MaintenanceWorker::run_pass`]
/// (tests, deterministic experiments) or let it run in the background with
/// [`MaintenanceWorker::spawn`].
#[derive(Debug)]
pub struct MaintenanceWorker {
    core: TreeCore,
    style: MaintenanceStyle,
    config: MaintenanceConfig,
    ctx: ThreadCtx,
    /// Nodes unlinked from the tree but not yet safe to recycle.
    retired: Vec<NodeId>,
    /// Completed passes, driving the access-counter decay cadence.
    passes: u64,
}

impl MaintenanceWorker {
    pub(crate) fn new(
        core: TreeCore,
        style: MaintenanceStyle,
        ctx: ThreadCtx,
        config: MaintenanceConfig,
    ) -> Self {
        MaintenanceWorker {
            core,
            style,
            config,
            ctx,
            retired: Vec::new(),
            passes: 0,
        }
    }

    /// The rotation flavour this worker applies.
    pub fn style(&self) -> MaintenanceStyle {
        self.style
    }

    /// Number of retired nodes awaiting quiescence.
    pub fn retired_backlog(&self) -> usize {
        self.retired.len()
    }

    /// Run one full depth-first traversal: propagate heights, remove deleted
    /// nodes, rotate unbalanced ones, then recycle previously retired nodes
    /// if every operation in flight at the start of the pass has drained.
    pub fn run_pass(&mut self) -> PassReport {
        crate::chk::sched_point(crate::chk::SchedEvent::MaintPass);
        let started = std::time::Instant::now();
        let mut report = PassReport::default();
        let snapshot = self.core.arena.activity_snapshot();
        let retired_before = self.retired.len();
        let decay = self.config.hotspot_enabled()
            && self.config.hot_decay_passes > 0
            && (self.passes + 1).is_multiple_of(self.config.hot_decay_passes);
        self.visit(self.core.root, Side::Left, &mut report, decay);
        self.visit(self.core.root, Side::Right, &mut report, decay);
        if snapshot.has_drained() {
            for id in self.retired.drain(..retired_before) {
                self.core.arena.recycle(id);
                report.recycled += 1;
            }
        }
        self.passes = self.passes.wrapping_add(1);
        let stats = &self.core.stats;
        // sf-lint: allow(relaxed-atomic, maintenance telemetry counter; aggregated for reports only)
        stats.maintenance_passes.fetch_add(1, Ordering::Relaxed);
        // sf-lint: allow(relaxed-atomic, maintenance telemetry counter; aggregated for reports only)
        stats.recycled.fetch_add(report.recycled, Ordering::Relaxed);
        // Passes are rare relative to operations, so both pass histograms
        // record unconditionally (no sampling needed off the hot path).
        pass_duration_histogram().record_duration(started.elapsed());
        pass_work_histogram().record(report.rotations);
        report
    }

    /// Keep running passes until nothing changes anymore (no rotation, no
    /// removal, no height update, and no retired node still draining into
    /// the free list). Useful to bring the tree to its fully balanced fixed
    /// point in tests and between benchmark phases.
    pub fn run_until_stable(&mut self, max_passes: usize) -> usize {
        for pass in 0..max_passes {
            let report = self.run_pass();
            if report.rotations == 0
                && report.removals == 0
                && report.propagations == 0
                && report.recycled == 0
            {
                return pass + 1;
            }
        }
        max_passes
    }

    /// Move the worker to a dedicated background thread that runs passes until
    /// the returned handle is stopped or dropped.
    pub fn spawn(self) -> MaintenanceHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_clone = Arc::clone(&stop);
        let pause = Arc::new(PauseState::default());
        let pause_clone = Arc::clone(&pause);
        let pass_delay = self.config.pass_delay;
        let mut worker = self;
        let join = std::thread::Builder::new()
            .name("sf-tree-maintenance".to_string())
            .stack_size(16 << 20)
            .spawn(move || {
                // sf-lint: allow(relaxed-atomic, stop flag polled once per pass; a stale read only delays shutdown by one iteration)
                while !stop_clone.load(Ordering::Relaxed) {
                    if pause_clone.requested.load(Ordering::SeqCst) > 0 {
                        pause_clone.idle.store(true, Ordering::SeqCst);
                        while pause_clone.requested.load(Ordering::SeqCst) > 0
                            // sf-lint: allow(relaxed-atomic, stop flag; a stale read only delays pause-loop exit by one spin)
                            && !stop_clone.load(Ordering::Relaxed)
                        {
                            std::thread::yield_now();
                        }
                        pause_clone.idle.store(false, Ordering::SeqCst);
                        continue;
                    }
                    worker.run_pass();
                    if !pass_delay.is_zero() {
                        std::thread::sleep(pass_delay);
                    } else {
                        std::thread::yield_now();
                    }
                }
                // Once the thread exits, pausers must never wait on it again.
                pause_clone.idle.store(true, Ordering::SeqCst);
            })
            .expect("failed to spawn maintenance thread");
        MaintenanceHandle {
            stop,
            pause,
            join: Some(join),
        }
    }

    /// Post-order visit of the child of `parent` on `side`.
    fn visit(&mut self, parent: NodeId, side: Side, report: &mut PassReport, decay: bool) {
        let child = self.core.node(parent).child(side).unsync_load();
        if child.is_nil() {
            return;
        }
        report.visited += 1;
        self.visit(child, Side::Left, report, decay);
        self.visit(child, Side::Right, report, decay);
        let (is_sentinel, is_deleted, is_removed) = {
            let node = self.core.node(child);
            (
                node.key() == SENTINEL_KEY,
                node.del.unsync_load(),
                node.rem.unsync_load().is_removed(),
            )
        };
        // Physical removal of a logically deleted child with at most one
        // child of its own (§3.2: nodes with two children are skipped).
        if self.config.enable_removal && is_deleted && !is_removed && !is_sentinel {
            if let Some(removed) = self.remove(parent, side) {
                self.retired.push(removed);
                report.removals += 1;
                // sf-lint: allow(relaxed-atomic, maintenance telemetry counter; aggregated for reports only)
                self.core.stats.removals.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        if self.propagate(child) {
            report.propagations += 1;
            // sf-lint: allow(relaxed-atomic, maintenance telemetry counter; aggregated for reports only)
            self.core.stats.propagations.fetch_add(1, Ordering::Relaxed);
        }
        let hot = self.config.hotspot_enabled();
        if hot {
            // Aggregate subtree access masses bottom-up. The children were
            // just visited (post-order), so their `hot_sub` values are fresh
            // from this pass.
            let node = self.core.node(child);
            if decay {
                node.decay_access_mass();
            }
            let mass = node.access_mass()
                + self.subtree_mass_of(node.left.unsync_load())
                + self.subtree_mass_of(node.right.unsync_load());
            node.set_subtree_mass(mass);
        }
        if !self.config.enable_rotation || is_sentinel {
            return;
        }
        let balance = {
            let node = self.core.node(child);
            node.left_h.unsync_load() - node.right_h.unsync_load()
        };
        let threshold = self.config.imbalance_threshold;
        if !hot {
            if balance > threshold {
                self.try_rotate(parent, side, Side::Right, report, false);
            } else if balance < -threshold {
                self.try_rotate(parent, side, Side::Left, report, false);
            }
            return;
        }
        // Hotness-weighted balancing. Beyond the extended threshold, height
        // wins unconditionally (the logarithmic backstop). Within it, lift a
        // mass-dominant subtree; otherwise apply the plain height rule unless
        // the rotation would sink dominant mass — deferred until the skew
        // reaches the extended threshold. The defer condition is the exact
        // negation of the lift condition, so the two rules never oscillate.
        let extended = threshold.saturating_add(self.config.hot_slack.max(0));
        if balance > extended {
            self.try_rotate(parent, side, Side::Right, report, false);
        } else if balance < -extended {
            self.try_rotate(parent, side, Side::Left, report, false);
        } else if let Some(direction) = self.hot_rotation_direction(child) {
            self.try_rotate(parent, side, direction, report, true);
        } else if balance > threshold && !self.sinks_dominant_mass(child, Side::Right) {
            self.try_rotate(parent, side, Side::Right, report, false);
        } else if balance < -threshold && !self.sinks_dominant_mass(child, Side::Left) {
            self.try_rotate(parent, side, Side::Left, report, false);
        }
    }

    /// Perform one rotation and account for it.
    fn try_rotate(
        &mut self,
        parent: NodeId,
        side: Side,
        direction: Side,
        report: &mut PassReport,
        hot: bool,
    ) {
        if let Some(retired) = self.rotate(parent, side, direction) {
            if !retired.is_nil() {
                self.retired.push(retired);
            }
            report.rotations += 1;
            let stats = &self.core.stats;
            match direction {
                // sf-lint: allow(relaxed-atomic, rotation telemetry counters; aggregated for reports only)
                Side::Right => stats.right_rotations.fetch_add(1, Ordering::Relaxed),
                // sf-lint: allow(relaxed-atomic, rotation telemetry counter; aggregated for reports only)
                Side::Left => stats.left_rotations.fetch_add(1, Ordering::Relaxed),
            };
            if hot {
                report.hot_rotations += 1;
                // sf-lint: allow(relaxed-atomic, hot-rotation telemetry counter; aggregated for reports only)
                stats.hot_rotations.fetch_add(1, Ordering::Relaxed);
                let key = self.core.node(parent).key();
                FlightRecorder::global().record(EventKind::HotRotation, key, 0);
            }
        }
    }

    /// Subtree access mass of `id` as of the last aggregation (`0` for ⊥).
    fn subtree_mass_of(&self, id: NodeId) -> u64 {
        if id.is_nil() {
            0
        } else {
            self.core.node(id).subtree_mass()
        }
    }

    /// Access masses a rotation of `child` in `direction` would shift, as
    /// `(rise, sink)`: for a right rotation the pivot (left child) and its
    /// outer subtree rise one level while `child` and its right subtree sink
    /// one (mirror for left); the transfer subtree keeps its depth. `None`
    /// when there is no pivot to lift.
    fn rotation_mass_shift(&self, child: NodeId, direction: Side) -> Option<(u64, u64)> {
        let heavy_side = direction.other();
        let node = self.core.node(child);
        let pivot_id = node.child(heavy_side).unsync_load();
        if pivot_id.is_nil() {
            return None;
        }
        let pivot = self.core.node(pivot_id);
        let rise =
            pivot.access_mass() + self.subtree_mass_of(pivot.child(heavy_side).unsync_load());
        let sink =
            node.access_mass() + self.subtree_mass_of(node.child(heavy_side.other()).unsync_load());
        Some((rise, sink))
    }

    /// Direction of a profitable hot rotation at `child`, if any: the rising
    /// mass must dominate the sinking mass by the configured ratio, clear the
    /// noise floor, and leave the local heights within the extended
    /// imbalance bound. At ratio ≥ 1 at most one direction can qualify.
    fn hot_rotation_direction(&self, child: NodeId) -> Option<Side> {
        let ratio = self.config.hotspot_ratio.max(1.0);
        let mut best: Option<(Side, u64)> = None;
        for direction in [Side::Right, Side::Left] {
            if let Some((rise, sink)) = self.rotation_mass_shift(child, direction) {
                if rise >= self.config.hot_min_mass
                    && rise as f64 > ratio * sink as f64
                    && self.rotation_stays_balanced(child, direction)
                {
                    let gain = rise.saturating_sub(sink);
                    if best.is_none_or(|(_, g)| gain > g) {
                        best = Some((direction, gain));
                    }
                }
            }
        }
        best.map(|(direction, _)| direction)
    }

    /// Whether a height rotation of `child` in `direction` would sink access
    /// mass that dominates what it lifts — in which case it is deferred.
    fn sinks_dominant_mass(&self, child: NodeId, direction: Side) -> bool {
        let ratio = self.config.hotspot_ratio.max(1.0);
        match self.rotation_mass_shift(child, direction) {
            Some((rise, sink)) => {
                sink >= self.config.hot_min_mass && sink as f64 > ratio * rise as f64
            }
            None => false,
        }
    }

    /// Predict (from the stored height estimates) whether rotating `child`
    /// in `direction` leaves both modified nodes within the extended
    /// imbalance bound, so the height backstop never undoes a hot rotation.
    fn rotation_stays_balanced(&self, child: NodeId, direction: Side) -> bool {
        let extended = self
            .config
            .imbalance_threshold
            .saturating_add(self.config.hot_slack.max(0));
        let heavy_side = direction.other();
        let node = self.core.node(child);
        let pivot_id = node.child(heavy_side).unsync_load();
        if pivot_id.is_nil() {
            return false;
        }
        let pivot = self.core.node(pivot_id);
        // Post-rotation, `child` keeps the pivot's inner (transfer) subtree
        // plus its own outer subtree, and the pivot adopts `child` next to
        // its outer subtree.
        let transfer_h = pivot.child_height(heavy_side.other()).unsync_load();
        let outer_h = node.child_height(heavy_side.other()).unsync_load();
        let child_after = 1 + transfer_h.max(outer_h);
        let pivot_outer_h = pivot.child_height(heavy_side).unsync_load();
        (transfer_h - outer_h).abs() <= extended && (pivot_outer_h - child_after).abs() <= extended
    }

    /// Height of a subtree rooted at `id`, read transactionally.
    fn height_of<'env>(
        core: &'env TreeCore,
        tx: &mut Transaction<'env>,
        id: NodeId,
    ) -> TxResult<i32> {
        if id.is_nil() {
            Ok(0)
        } else {
            tx.read(&core.node(id).local_h)
        }
    }

    /// Recompute and store the balance fields of `id` from its children.
    /// Returns the node's new local height.
    fn update_heights<'env>(
        core: &'env TreeCore,
        tx: &mut Transaction<'env>,
        id: NodeId,
    ) -> TxResult<i32> {
        let node = core.node(id);
        let left = tx.read(&node.left)?;
        let right = tx.read(&node.right)?;
        let lh = Self::height_of(core, tx, left)?;
        let rh = Self::height_of(core, tx, right)?;
        let local = 1 + lh.max(rh);
        if tx.read(&node.left_h)? != lh {
            tx.write(&node.left_h, lh)?;
        }
        if tx.read(&node.right_h)? != rh {
            tx.write(&node.right_h, rh)?;
        }
        if tx.read(&node.local_h)? != local {
            tx.write(&node.local_h, local)?;
        }
        Ok(local)
    }

    /// One propagate operation (§3.1): refresh the balance fields of a single
    /// node in its own transaction. Returns `true` when something changed.
    fn propagate(&mut self, id: NodeId) -> bool {
        let core = &self.core;
        self.ctx.atomically(|tx| {
            let node = core.node(id);
            let before = (
                tx.read(&node.left_h)?,
                tx.read(&node.right_h)?,
                tx.read(&node.local_h)?,
            );
            let local = Self::update_heights(core, tx, id)?;
            let after = (tx.read(&node.left_h)?, tx.read(&node.right_h)?, local);
            Ok(before != after)
        })
    }

    /// One physical removal (§3.2 / Algorithm 2 `remove`): unlink the child of
    /// `parent` on `side` if it is logically deleted and has at most one
    /// child. Returns the unlinked node on success.
    fn remove(&mut self, parent: NodeId, side: Side) -> Option<NodeId> {
        let core = &self.core;
        let style = self.style;
        self.ctx.atomically(|tx| {
            let parent_node = core.node(parent);
            if style == MaintenanceStyle::CloneBased && tx.read(&parent_node.rem)?.is_removed() {
                return Ok(None);
            }
            let n_id = tx.read(parent_node.child(side))?;
            if n_id.is_nil() {
                return Ok(None);
            }
            let n = core.node(n_id);
            if !tx.read(&n.del)? {
                return Ok(None);
            }
            let left = tx.read(&n.left)?;
            let replacement = if !left.is_nil() {
                if !tx.read(&n.right)?.is_nil() {
                    return Ok(None); // two children: skip (§3.2)
                }
                left
            } else {
                tx.read(&n.right)?
            };
            tx.write(parent_node.child(side), replacement)?;
            if style == MaintenanceStyle::CloneBased {
                // Leave an escape path for traversals preempted on `n`.
                tx.write(&n.left, parent)?;
                tx.write(&n.right, parent)?;
                tx.write(&n.rem, RemState::Removed)?;
            }
            // Refresh the parent's balance estimate for this side.
            let h = Self::height_of(core, tx, replacement)?;
            tx.write(parent_node.child_height(side), h)?;
            let other = tx.read(parent_node.child_height(side.other()))?;
            tx.write(&parent_node.local_h, 1 + h.max(other))?;
            Ok(Some(n_id))
        })
    }

    /// One local rotation: `direction == Right` rotates the (left-heavy)
    /// child of `parent` on `side` to the right, `Left` is the mirror.
    /// Returns `Some(retired)` on success, where `retired` is the node that
    /// left the tree (`NodeId::NIL` for classic in-place rotations).
    fn rotate(&mut self, parent: NodeId, side: Side, direction: Side) -> Option<NodeId> {
        match self.style {
            MaintenanceStyle::Classic => self.rotate_classic(parent, side, direction),
            MaintenanceStyle::CloneBased => self.rotate_clone(parent, side, direction),
        }
    }

    /// Classic in-place rotation (Algorithm 1, Figure 2(b)).
    fn rotate_classic(&mut self, parent: NodeId, side: Side, direction: Side) -> Option<NodeId> {
        let core = &self.core;
        // For a right rotation the pivot is the (heavier) left child; mirror
        // for a left rotation.
        let heavy_side = match direction {
            Side::Right => Side::Left,
            Side::Left => Side::Right,
        };
        let committed = self.ctx.atomically(|tx| {
            let parent_node = core.node(parent);
            let n_id = tx.read(parent_node.child(side))?;
            if n_id.is_nil() {
                return Ok(false);
            }
            let n = core.node(n_id);
            let pivot_id = tx.read(n.child(heavy_side))?;
            if pivot_id.is_nil() {
                return Ok(false);
            }
            let pivot = core.node(pivot_id);
            let transfer = tx.read(pivot.child(heavy_side.other()))?;
            // n adopts the pivot's inner subtree; the pivot adopts n.
            tx.write(n.child(heavy_side), transfer)?;
            tx.write(pivot.child(heavy_side.other()), n_id)?;
            tx.write(parent_node.child(side), pivot_id)?;
            // Refresh balance estimates bottom-up: n first, then the pivot,
            // then the parent's view of this subtree.
            Self::update_heights(core, tx, n_id)?;
            let pivot_h = Self::update_heights(core, tx, pivot_id)?;
            tx.write(parent_node.child_height(side), pivot_h)?;
            Ok(true)
        });
        committed.then_some(NodeId::NIL)
    }

    /// Clone-based rotation (Algorithm 2, Figure 2(c)): the rotated node is
    /// replaced by a fresh copy and only its removed flag is written, so
    /// traversals preempted on it keep a consistent path into the tree.
    fn rotate_clone(&mut self, parent: NodeId, side: Side, direction: Side) -> Option<NodeId> {
        let core = &self.core;
        let heavy_side = match direction {
            Side::Right => Side::Left,
            Side::Left => Side::Right,
        };
        let removed_state = match direction {
            Side::Right => RemState::Removed,
            Side::Left => RemState::RemovedByLeftRotation,
        };
        self.ctx.atomically(|tx| {
            let parent_node = core.node(parent);
            if tx.read(&parent_node.rem)?.is_removed() {
                return Ok(None);
            }
            let n_id = tx.read(parent_node.child(side))?;
            if n_id.is_nil() {
                return Ok(None);
            }
            let n = core.node(n_id);
            if tx.read(&n.rem)?.is_removed() {
                return Ok(None);
            }
            let pivot_id = tx.read(n.child(heavy_side))?;
            if pivot_id.is_nil() {
                return Ok(None);
            }
            let pivot = core.node(pivot_id);
            let transfer = tx.read(pivot.child(heavy_side.other()))?;
            let outer = tx.read(n.child(heavy_side.other()))?;
            // Build the clone of n (not yet published).
            let clone_id = core.alloc_fresh(n.key(), tx.read(&n.value)?);
            let clone = core.node(clone_id);
            clone.del.unsync_store(tx.read(&n.del)?);
            clone.child(heavy_side).unsync_store(transfer);
            clone.child(heavy_side.other()).unsync_store(outer);
            let transfer_h = Self::height_of(core, tx, transfer)?;
            let outer_h = Self::height_of(core, tx, outer)?;
            clone.child_height(heavy_side).unsync_store(transfer_h);
            clone.child_height(heavy_side.other()).unsync_store(outer_h);
            let clone_h = 1 + transfer_h.max(outer_h);
            clone.local_h.unsync_store(clone_h);
            // The clone is the same logical node: carry its access heat so
            // hot-key bookkeeping survives clone-based restructuring.
            clone.record_access(n.access_mass());
            let arena = Arc::clone(&core.arena);
            tx.on_abort(move || arena.recycle(clone_id));
            // Publish: the pivot adopts the clone in place of its inner
            // subtree, n is marked removed (children untouched), the parent
            // now points at the pivot.
            tx.write(pivot.child(heavy_side.other()), clone_id)?;
            tx.write(&n.rem, removed_state)?;
            tx.write(parent_node.child(side), pivot_id)?;
            // Refresh the pivot's balance estimate and the parent's view.
            tx.write(pivot.child_height(heavy_side.other()), clone_h)?;
            let pivot_other = tx.read(pivot.child_height(heavy_side))?;
            let pivot_h = 1 + clone_h.max(pivot_other);
            tx.write(&pivot.local_h, pivot_h)?;
            tx.write(parent_node.child_height(side), pivot_h)?;
            Ok(Some(n_id))
        })
    }
}

/// Pause coordination between a [`MaintenanceHandle`] and its thread.
#[derive(Debug, Default)]
struct PauseState {
    /// Number of outstanding [`MaintenancePause`] guards.
    requested: AtomicUsize,
    /// Set by the thread while it is parked between passes (and permanently
    /// once it exits).
    idle: AtomicBool,
}

/// Guard returned by [`MaintenanceHandle::pause`]. While it is alive the
/// maintenance thread is parked between passes (no restructuring runs);
/// dropping it resumes maintenance.
#[derive(Debug)]
pub struct MaintenancePause<'a> {
    state: &'a PauseState,
}

impl Drop for MaintenancePause<'_> {
    fn drop(&mut self) {
        self.state.requested.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Handle of a running background maintenance thread. Stopping (or dropping)
/// the handle terminates the thread.
#[derive(Debug)]
pub struct MaintenanceHandle {
    stop: Arc<AtomicBool>,
    pause: Arc<PauseState>,
    join: Option<JoinHandle<()>>,
}

impl MaintenanceHandle {
    /// Ask the maintenance thread to stop and wait for it to finish its
    /// current pass.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    /// Park the maintenance thread between passes and wait until it is
    /// parked. While the returned guard lives, no restructuring runs, so
    /// quiescent inspections (`len_quiescent`, consistency checks) see a
    /// stable tree. Pauses nest: maintenance resumes when the last guard
    /// drops.
    pub fn pause(&self) -> MaintenancePause<'_> {
        self.pause.requested.fetch_add(1, Ordering::SeqCst);
        while !self.pause.idle.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        MaintenancePause { state: &self.pause }
    }

    fn stop_inner(&mut self) {
        // sf-lint: allow(relaxed-atomic, stop flag; the thread join below provides the happens-before edge)
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for MaintenanceHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::TxMap;
    use crate::optimized::OptSpecFriendlyTree;
    use crate::portable::SpecFriendlyTree;
    use sf_stm::Stm;

    #[test]
    fn classic_maintenance_balances_a_chain() {
        let stm = Stm::default_config();
        let tree = SpecFriendlyTree::new();
        let mut h = tree.register(stm.register());
        for k in 0..64u64 {
            tree.insert(&mut h, k, k);
        }
        assert_eq!(tree.inspect().depth(), 64, "inserting in order degenerates");
        let mut worker = tree.maintenance_worker(stm.register());
        worker.run_until_stable(256);
        let depth = tree.inspect().depth();
        assert!(
            depth <= 10,
            "balanced depth should be ~log2(64), got {depth}"
        );
        tree.inspect().check_consistency().unwrap();
        assert_eq!(tree.len_quiescent(), 64);
        assert!(tree.stats().rotations() > 0);
    }

    #[test]
    fn clone_maintenance_balances_a_chain_and_retires_nodes() {
        let stm = Stm::default_config();
        let tree = OptSpecFriendlyTree::new();
        let mut h = tree.register(stm.register());
        for k in 0..64u64 {
            tree.insert(&mut h, k, k);
        }
        let mut worker = tree.maintenance_worker(stm.register());
        worker.run_until_stable(256);
        let depth = tree.inspect().depth();
        assert!(
            depth <= 10,
            "balanced depth should be ~log2(64), got {depth}"
        );
        tree.inspect().check_consistency().unwrap();
        assert_eq!(tree.len_quiescent(), 64);
        // Clone-based rotations retire the replaced nodes; with no concurrent
        // operations they are recycled on the next pass.
        assert!(tree.arena().recycled() > 0);
        assert_eq!(worker.retired_backlog(), 0);
    }

    #[test]
    fn removal_unlinks_logically_deleted_nodes() {
        let stm = Stm::default_config();
        let tree = OptSpecFriendlyTree::new();
        let mut h = tree.register(stm.register());
        for k in 0..32u64 {
            tree.insert(&mut h, k, k);
        }
        for k in (0..32u64).step_by(2) {
            tree.delete(&mut h, k);
        }
        let mut worker = tree.maintenance_worker(stm.register());
        worker.run_until_stable(256);
        // Logically deleted nodes with <= 1 child are physically removed;
        // deleted nodes with two children may legitimately linger (§3.2).
        let reachable = tree.inspect().reachable_nodes();
        assert_eq!(tree.len_quiescent(), 16);
        assert!(
            reachable < 33,
            "expected at least some deleted nodes to be physically removed, {reachable} reachable"
        );
        assert!(tree.stats().removals.load(Ordering::Relaxed) >= 8);
        tree.inspect().check_consistency().unwrap();
    }

    #[test]
    fn background_thread_keeps_tree_balanced_under_load() {
        let stm = Stm::default_config();
        let tree = Arc::new(OptSpecFriendlyTree::new());
        let maintenance = tree.start_maintenance_with(
            stm.register(),
            MaintenanceConfig {
                pass_delay: Duration::from_micros(10),
                ..MaintenanceConfig::default()
            },
        );
        let workers: Vec<_> = (0..2u64)
            .map(|t| {
                let tree = Arc::clone(&tree);
                let mut h = tree.register(stm.register());
                std::thread::spawn(move || {
                    for i in 0..400u64 {
                        let k = t * 10_000 + i;
                        tree.insert(&mut h, k, k);
                        if i % 3 == 0 {
                            tree.delete(&mut h, k);
                        }
                        assert_eq!(tree.contains(&mut h, k), i % 3 != 0);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        maintenance.stop();
        tree.inspect().check_consistency().unwrap();
        let expected: usize = 2 * (400 - 400usize.div_ceil(3));
        assert_eq!(tree.len_quiescent(), expected);
    }

    #[test]
    fn quiescence_defers_recycling_while_an_op_is_pending() {
        let stm = Stm::default_config();
        let tree = OptSpecFriendlyTree::new();
        let mut h = tree.register(stm.register());
        for k in 0..16u64 {
            tree.insert(&mut h, k, k);
        }
        tree.delete(&mut h, 3);
        // Simulate a reader stuck in the middle of an operation.
        let stuck = tree.arena().register_activity();
        let guard = stuck.begin();
        let mut worker = tree.maintenance_worker(stm.register());
        worker.run_pass();
        let backlog_while_pending = worker.retired_backlog();
        assert!(backlog_while_pending > 0, "retired nodes must be held back");
        worker.run_pass();
        assert!(worker.retired_backlog() >= backlog_while_pending);
        drop(guard);
        // Once the stuck operation has finished, passes keep retiring nodes
        // (rotations are still balancing the chain) but everything retired
        // before a pass whose snapshot has drained gets recycled; at the
        // fixed point the backlog is empty.
        worker.run_until_stable(256);
        assert_eq!(worker.retired_backlog(), 0, "drained after the op finished");
    }

    #[test]
    fn hot_passes_lift_a_hammered_key_under_both_styles() {
        let hot_config = MaintenanceConfig {
            hotspot_ratio: 2.0,
            hot_min_mass: 16,
            ..MaintenanceConfig::default()
        };
        for optimized in [false, true] {
            let stm = Stm::default_config();
            let (before, after, hot_rotations) = if optimized {
                let tree = OptSpecFriendlyTree::new();
                let mut h = tree.register(stm.register());
                for k in 0..127u64 {
                    tree.insert(&mut h, k, k);
                }
                tree.maintenance_worker(stm.register())
                    .run_until_stable(256);
                let deep = (0..127u64)
                    .max_by_key(|&k| tree.inspect().key_depth(k).unwrap())
                    .unwrap();
                let before = tree.inspect().key_depth(deep).unwrap();
                tree.set_hot_sample(1);
                for _ in 0..4096 {
                    tree.get(&mut h, deep);
                }
                tree.maintenance_worker_with(stm.register(), hot_config.clone())
                    .run_until_stable(256);
                tree.inspect().check_consistency().unwrap();
                assert_eq!(tree.len_quiescent(), 127);
                (
                    before,
                    tree.inspect().key_depth(deep).unwrap(),
                    tree.stats().hot_rotations.load(Ordering::Relaxed),
                )
            } else {
                let tree = SpecFriendlyTree::new();
                let mut h = tree.register(stm.register());
                for k in 0..127u64 {
                    tree.insert(&mut h, k, k);
                }
                tree.maintenance_worker(stm.register())
                    .run_until_stable(256);
                let deep = (0..127u64)
                    .max_by_key(|&k| tree.inspect().key_depth(k).unwrap())
                    .unwrap();
                let before = tree.inspect().key_depth(deep).unwrap();
                tree.set_hot_sample(1);
                for _ in 0..4096 {
                    tree.get(&mut h, deep);
                }
                tree.maintenance_worker_with(stm.register(), hot_config.clone())
                    .run_until_stable(256);
                tree.inspect().check_consistency().unwrap();
                assert_eq!(tree.len_quiescent(), 127);
                (
                    before,
                    tree.inspect().key_depth(deep).unwrap(),
                    tree.stats().hot_rotations.load(Ordering::Relaxed),
                )
            };
            assert!(before >= 5, "127 balanced keys put the deepest at >= 5");
            assert!(
                after < before,
                "hot passes must lift the hammered key (optimized={optimized}): \
                 depth {before} -> {after}"
            );
            assert!(
                hot_rotations > 0,
                "lift must be attributed to hot rotations"
            );
        }
    }

    #[test]
    fn hot_restructuring_with_decay_preserves_entries_and_invariants() {
        for optimized in [false, true] {
            let stm = Stm::default_config();
            let keys: Vec<u64> = (0..200u64).map(|i| (i * 97) % 257).collect();
            let expected: std::collections::BTreeSet<u64> = keys.iter().copied().collect();
            let config = MaintenanceConfig {
                hotspot_ratio: 1.5,
                hot_min_mass: 8,
                hot_decay_passes: 4,
                ..MaintenanceConfig::default()
            };
            let live: Vec<u64> = if optimized {
                let tree = OptSpecFriendlyTree::new();
                let mut h = tree.register(stm.register());
                tree.set_hot_sample(1);
                for &k in &keys {
                    tree.insert(&mut h, k, k + 1);
                }
                // Skewed lookups: a handful of keys take most of the mass.
                for i in 0..8192u64 {
                    tree.get(&mut h, keys[(i % 13) as usize]);
                }
                let mut worker = tree.maintenance_worker_with(stm.register(), config.clone());
                worker.run_until_stable(512);
                tree.inspect().check_consistency().unwrap();
                tree.inspect()
                    .live_entries()
                    .iter()
                    .map(|(k, _)| *k)
                    .collect()
            } else {
                let tree = SpecFriendlyTree::new();
                let mut h = tree.register(stm.register());
                tree.set_hot_sample(1);
                for &k in &keys {
                    tree.insert(&mut h, k, k + 1);
                }
                for i in 0..8192u64 {
                    tree.get(&mut h, keys[(i % 13) as usize]);
                }
                let mut worker = tree.maintenance_worker_with(stm.register(), config.clone());
                worker.run_until_stable(512);
                tree.inspect().check_consistency().unwrap();
                tree.inspect()
                    .live_entries()
                    .iter()
                    .map(|(k, _)| *k)
                    .collect()
            };
            assert_eq!(live, expected.iter().copied().collect::<Vec<_>>());
        }
    }

    #[test]
    fn rotations_preserve_all_entries_under_both_styles() {
        for optimized in [false, true] {
            let stm = Stm::default_config();
            let keys: Vec<u64> = (0..128u64).map(|i| (i * 97) % 131).collect();
            let expected: std::collections::BTreeSet<u64> = keys.iter().copied().collect();
            if optimized {
                let tree = OptSpecFriendlyTree::new();
                let mut h = tree.register(stm.register());
                for &k in &keys {
                    tree.insert(&mut h, k, k + 1);
                }
                let mut worker = tree.maintenance_worker(stm.register());
                worker.run_until_stable(512);
                let live: Vec<u64> = tree
                    .inspect()
                    .live_entries()
                    .iter()
                    .map(|(k, _)| *k)
                    .collect();
                assert_eq!(live, expected.iter().copied().collect::<Vec<_>>());
            } else {
                let tree = SpecFriendlyTree::new();
                let mut h = tree.register(stm.register());
                for &k in &keys {
                    tree.insert(&mut h, k, k + 1);
                }
                let mut worker = tree.maintenance_worker(stm.register());
                worker.run_until_stable(512);
                let live: Vec<u64> = tree
                    .inspect()
                    .live_entries()
                    .iter()
                    .map(|(k, _)| *k)
                    .collect();
                assert_eq!(live, expected.iter().copied().collect::<Vec<_>>());
            }
        }
    }
}
