//! Node storage: a chunked, append-only arena with free-list recycling and
//! quiescence-based reclamation.
//!
//! The paper's trees unlink nodes (physical removal, clone-based rotations)
//! while concurrent operations may still be traversing them, and defer
//! reclamation until every operation that could have seen the node has
//! finished (§3.4: the rotator thread snapshots per-thread pending flags and
//! operation counters before recycling). The safe-Rust equivalent built here:
//!
//! * slots live in fixed-size chunks that are allocated on demand and never
//!   moved or freed while the arena is alive, so `&T` obtained from an id is
//!   valid for the arena's lifetime (no `unsafe` needed — chunks sit behind
//!   `OnceLock`s in a pre-sized vector);
//! * retired slots are *recycled* through a free list rather than returned to
//!   the allocator, and only after the quiescence condition of §3.4 holds.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crossbeam::queue::SegQueue;
use parking_lot::Mutex;

/// Index of a slot in a [`TxArena`].
///
/// `NodeId::NIL` is the null pointer (the paper's ⊥).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The null id (⊥).
    pub const NIL: NodeId = NodeId(u32::MAX);

    /// True when this id is ⊥.
    #[inline]
    pub fn is_nil(self) -> bool {
        self == NodeId::NIL
    }

    /// Convert to an `Option`, mapping ⊥ to `None`.
    #[inline]
    pub fn as_option(self) -> Option<NodeId> {
        if self.is_nil() {
            None
        } else {
            Some(self)
        }
    }
}

impl sf_stm::TxValue for NodeId {
    #[inline]
    fn encode(self) -> u64 {
        self.0 as u64
    }
    #[inline]
    fn decode(raw: u64) -> Self {
        NodeId(raw as u32)
    }
}

/// Number of slots per chunk.
const CHUNK_SIZE: usize = 1024;
/// Default maximum number of chunks (capacity = `DEFAULT_CHUNKS * CHUNK_SIZE`
/// slots, allocated lazily chunk by chunk).
const DEFAULT_CHUNKS: usize = 8192;

/// Per-thread activity slot used for the quiescence protocol of §3.4: a
/// pending flag raised for the duration of each abstract operation and a
/// counter of completed operations.
#[derive(Debug, Default)]
pub struct ActivitySlot {
    pending: AtomicBool,
    completed: AtomicU64,
}

/// Handle held by an application thread; brackets abstract operations so the
/// maintenance thread can tell when the nodes it retired are safe to recycle.
#[derive(Debug, Clone)]
pub struct ActivityHandle {
    slot: Arc<ActivitySlot>,
}

impl ActivityHandle {
    /// Mark the start of an abstract operation. The returned guard marks its
    /// completion when dropped.
    pub fn begin(&self) -> OpGuard<'_> {
        self.slot.pending.store(true, Ordering::SeqCst);
        OpGuard { slot: &self.slot }
    }
}

/// RAII guard for one in-flight abstract operation.
#[derive(Debug)]
pub struct OpGuard<'a> {
    slot: &'a ActivitySlot,
}

impl Drop for OpGuard<'_> {
    fn drop(&mut self) {
        self.slot.completed.fetch_add(1, Ordering::SeqCst);
        self.slot.pending.store(false, Ordering::SeqCst);
    }
}

/// Snapshot of every registered thread's activity, taken by the maintenance
/// thread before it starts retiring nodes.
#[derive(Debug)]
pub struct ActivitySnapshot {
    entries: Vec<(Arc<ActivitySlot>, bool, u64)>,
}

impl ActivitySnapshot {
    /// The quiescence condition of §3.4: for every thread, either no
    /// operation was pending at snapshot time or at least one operation has
    /// completed since, which implies every operation that was in flight when
    /// the snapshot was taken has finished.
    pub fn has_drained(&self) -> bool {
        self.entries.iter().all(|(slot, pending, completed)| {
            !*pending || slot.completed.load(Ordering::SeqCst) > *completed
        })
    }
}

/// Chunked, append-only slot arena with free-list recycling.
///
/// `T` is the node type; it must be constructible in a default state because
/// chunks are materialized eagerly when first touched.
#[derive(Debug)]
pub struct TxArena<T> {
    chunks: Vec<OnceLock<Box<[T]>>>,
    next: AtomicU32,
    capacity: u32,
    free: SegQueue<NodeId>,
    recycled: AtomicU64,
    allocated: AtomicU64,
    activity: Mutex<Vec<Arc<ActivitySlot>>>,
}

impl<T: Default> TxArena<T> {
    /// Arena with the default capacity (~8M slots, allocated lazily).
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CHUNKS * CHUNK_SIZE)
    }

    /// Arena with capacity for at least `capacity` slots.
    pub fn with_capacity(capacity: usize) -> Self {
        let chunks = capacity.div_ceil(CHUNK_SIZE);
        TxArena {
            chunks: (0..chunks).map(|_| OnceLock::new()).collect(),
            next: AtomicU32::new(0),
            capacity: (chunks * CHUNK_SIZE) as u32,
            free: SegQueue::new(),
            recycled: AtomicU64::new(0),
            allocated: AtomicU64::new(0),
            activity: Mutex::new(Vec::new()),
        }
    }

    fn chunk(&self, chunk_index: usize) -> &[T] {
        self.chunks[chunk_index].get_or_init(|| (0..CHUNK_SIZE).map(|_| T::default()).collect())
    }

    /// Allocate a slot, reusing a recycled one when available.
    ///
    /// # Panics
    /// Panics when the arena capacity is exhausted; size the arena for the
    /// workload (`with_capacity`) — the experiments in this repository stay
    /// far below the default capacity.
    pub fn alloc(&self) -> NodeId {
        // sf-lint: allow(relaxed-atomic, allocation telemetry counter; aggregated for reports only)
        self.allocated.fetch_add(1, Ordering::Relaxed);
        if let Some(id) = self.free.pop() {
            return id;
        }
        // sf-lint: allow(relaxed-atomic, slot ids need atomicity (uniqueness), not ordering; node contents publish through the STM)
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        assert!(
            id < self.capacity,
            "node arena capacity exhausted ({} slots)",
            self.capacity
        );
        // Touch the chunk so the slot exists before the id escapes.
        let _ = self.chunk(id as usize / CHUNK_SIZE);
        NodeId(id)
    }

    /// Access a slot. The id must have been produced by [`TxArena::alloc`] on
    /// this arena.
    #[inline]
    pub fn get(&self, id: NodeId) -> &T {
        debug_assert!(!id.is_nil(), "dereferencing NIL node id");
        let index = id.0 as usize;
        &self.chunk(index / CHUNK_SIZE)[index % CHUNK_SIZE]
    }

    /// Return a slot to the free list. The caller is responsible for making
    /// sure no concurrent operation can still reach the slot (either it was
    /// never published, or the quiescence protocol has drained).
    pub fn recycle(&self, id: NodeId) {
        debug_assert!(!id.is_nil());
        // sf-lint: allow(relaxed-atomic, recycle telemetry counter; aggregated for reports only)
        self.recycled.fetch_add(1, Ordering::Relaxed);
        self.free.push(id);
    }

    /// Number of slots handed out since creation (including reused ones).
    pub fn allocated(&self) -> u64 {
        // sf-lint: allow(relaxed-atomic, telemetry read for reports; staleness is harmless)
        self.allocated.load(Ordering::Relaxed)
    }

    /// Number of slots returned to the free list since creation.
    pub fn recycled(&self) -> u64 {
        // sf-lint: allow(relaxed-atomic, telemetry read for reports; staleness is harmless)
        self.recycled.load(Ordering::Relaxed)
    }

    /// Highest slot index ever handed out (arena footprint).
    pub fn high_water_mark(&self) -> u32 {
        // sf-lint: allow(relaxed-atomic, footprint telemetry read for reports; staleness is harmless)
        self.next.load(Ordering::Relaxed)
    }

    /// Register an application thread for the quiescence protocol.
    pub fn register_activity(&self) -> ActivityHandle {
        let slot = Arc::new(ActivitySlot::default());
        self.activity.lock().push(Arc::clone(&slot));
        ActivityHandle { slot }
    }

    /// Snapshot every registered thread's activity state.
    pub fn activity_snapshot(&self) -> ActivitySnapshot {
        let slots = self.activity.lock();
        ActivitySnapshot {
            entries: slots
                .iter()
                .map(|s| {
                    (
                        Arc::clone(s),
                        s.pending.load(Ordering::SeqCst),
                        s.completed.load(Ordering::SeqCst),
                    )
                })
                .collect(),
        }
    }
}

impl<T: Default> Default for TxArena<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nil_and_option_conversion() {
        assert!(NodeId::NIL.is_nil());
        assert_eq!(NodeId::NIL.as_option(), None);
        assert_eq!(NodeId(3).as_option(), Some(NodeId(3)));
    }

    #[test]
    fn node_id_txvalue_roundtrip() {
        use sf_stm::TxValue;
        for id in [NodeId(0), NodeId(17), NodeId::NIL] {
            assert_eq!(NodeId::decode(id.encode()), id);
        }
    }

    #[test]
    fn alloc_get_roundtrip() {
        let arena: TxArena<std::sync::atomic::AtomicU64> = TxArena::with_capacity(16);
        let a = arena.alloc();
        let b = arena.alloc();
        assert_ne!(a, b);
        arena.get(a).store(7, Ordering::Relaxed);
        arena.get(b).store(9, Ordering::Relaxed);
        assert_eq!(arena.get(a).load(Ordering::Relaxed), 7);
        assert_eq!(arena.get(b).load(Ordering::Relaxed), 9);
    }

    #[test]
    fn recycle_reuses_slot() {
        let arena: TxArena<u64> = TxArena::with_capacity(CHUNK_SIZE);
        let a = arena.alloc();
        arena.recycle(a);
        let b = arena.alloc();
        assert_eq!(a, b);
        assert_eq!(arena.recycled(), 1);
        assert_eq!(arena.allocated(), 2);
    }

    #[test]
    fn capacity_spans_multiple_chunks() {
        let arena: TxArena<u32> = TxArena::with_capacity(CHUNK_SIZE * 3);
        let mut last = NodeId(0);
        for _ in 0..(CHUNK_SIZE * 2 + 5) {
            last = arena.alloc();
        }
        assert_eq!(last.0 as usize, CHUNK_SIZE * 2 + 4);
        assert_eq!(arena.high_water_mark() as usize, CHUNK_SIZE * 2 + 5);
        let _ = arena.get(last);
    }

    #[test]
    #[should_panic(expected = "capacity exhausted")]
    fn exhausting_capacity_panics() {
        let arena: TxArena<u8> = TxArena::with_capacity(CHUNK_SIZE);
        for _ in 0..(CHUNK_SIZE + 1) {
            arena.alloc();
        }
    }

    #[test]
    fn concurrent_allocation_yields_unique_ids() {
        let arena: Arc<TxArena<u64>> = Arc::new(TxArena::with_capacity(CHUNK_SIZE * 8));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let arena = Arc::clone(&arena);
                std::thread::spawn(move || (0..500).map(|_| arena.alloc()).collect::<Vec<_>>())
            })
            .collect();
        let mut ids: Vec<NodeId> = threads
            .into_iter()
            .flat_map(|t| t.join().unwrap())
            .collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 2000);
    }

    #[test]
    fn quiescence_drains_when_no_op_pending() {
        let arena: TxArena<u64> = TxArena::with_capacity(16);
        let h = arena.register_activity();
        // No operation in flight: trivially drained.
        assert!(arena.activity_snapshot().has_drained());
        // Operation in flight at snapshot time: not drained until it ends.
        let guard = h.begin();
        let snap = arena.activity_snapshot();
        assert!(!snap.has_drained());
        drop(guard);
        assert!(snap.has_drained());
    }

    #[test]
    fn quiescence_tracks_multiple_threads() {
        let arena: TxArena<u64> = TxArena::with_capacity(16);
        let h1 = arena.register_activity();
        let h2 = arena.register_activity();
        let g1 = h1.begin();
        let snap = arena.activity_snapshot();
        assert!(!snap.has_drained());
        // A later operation by the other thread does not help thread 1.
        drop(h2.begin());
        assert!(!snap.has_drained());
        drop(g1);
        assert!(snap.has_drained());
        // A new operation by thread 1 started after the snapshot also counts
        // as progress (its counter increased), which is safe: the old
        // operation necessarily finished before the new one started.
        let g1b = h1.begin();
        assert!(snap.has_drained());
        drop(g1b);
    }
}
