//! DFS interleaving scenarios over the speculation-friendly tree: abstract
//! operations racing the background maintenance traversal, explored
//! exhaustively (within bounds) by sf-check's controlled scheduler.
//!
//! The first scenario is the PR 1 carry-over: a membership probe must never
//! observe a *transient miss* for a key that is present throughout, no
//! matter where a concurrent rotation pass is preempted. The unit-read
//! traversal walks child pointers that the rotation rewires, so the probe
//! is pinned at every STM sched point while the rotation advances one step
//! at a time — exactly the interleavings the original race note worried
//! about. Kept as a regression test.

#![cfg(feature = "check")]

use sf_check::sched::{explore, DfsOptions, DfsReport};
use sf_stm::{Stm, StmConfig};
use sf_tree::{MaintenanceConfig, OptSpecFriendlyTree, SpecFriendlyTree, TxMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn opts() -> DfsOptions {
    DfsOptions {
        max_schedules: 150,
        max_depth: 96,
        step_timeout: Duration::from_secs(5),
        max_spin_grants: 64,
    }
}

fn assert_clean(label: &str, report: &DfsReport) {
    assert!(
        report.failure.is_none(),
        "{label}: schedule {:?} failed: {}",
        report.failure.as_ref().map(|f| &f.schedule),
        report.failure.as_ref().map_or("", |f| f.message.as_str())
    );
    assert!(report.schedules > 1, "{label}: explorer never branched");
}

/// No pass delay: the worker thread only runs when the explorer grants it.
fn eager() -> MaintenanceConfig {
    MaintenanceConfig {
        pass_delay: Duration::ZERO,
        ..MaintenanceConfig::default()
    }
}

/// PR 1 carry-over — membership probe vs. rotation. An ascending insert
/// order leaves the tree a right-leaning chain, so the first maintenance
/// pass must rotate; the probe polls the key the rotation lifts. Under
/// every explored preemption of the rotation transaction, `contains` must
/// keep answering true (no transient miss on the clone-based path).
#[test]
fn probe_vs_rotation_has_no_transient_miss() {
    let report = explore(&opts(), |ctx| {
        let stm = Stm::new(StmConfig::ctl());
        let tree = Arc::new(OptSpecFriendlyTree::new());
        let mut setup = tree.register(stm.register());
        for k in [10u64, 20, 30, 40, 50] {
            assert!(tree.insert(&mut setup, k, k * 10));
        }
        let mut worker = tree.maintenance_worker_with(stm.register(), eager());
        ctx.spawn("maint", move || {
            worker.run_pass();
        });
        let probe_tree = Arc::clone(&tree);
        let mut h = tree.register(stm.register());
        ctx.spawn("probe", move || {
            for _ in 0..3 {
                assert!(
                    probe_tree.contains(&mut h, 40),
                    "transient miss: key 40 vanished mid-rotation"
                );
            }
        });
    });
    assert_clean("probe-vs-rotation (optimized)", &report);
}

/// The same probe against the portable tree's in-place rotations, which
/// mutate the very nodes the unit-read traversal is walking.
#[test]
fn probe_vs_inplace_rotation_has_no_transient_miss() {
    let report = explore(&opts(), |ctx| {
        let stm = Stm::new(StmConfig::ctl());
        let tree = Arc::new(SpecFriendlyTree::new());
        let mut setup = tree.register(stm.register());
        for k in [10u64, 20, 30, 40, 50] {
            assert!(tree.insert(&mut setup, k, k * 10));
        }
        let mut worker = tree.maintenance_worker_with(stm.register(), eager());
        ctx.spawn("maint", move || {
            worker.run_pass();
        });
        let probe_tree = Arc::clone(&tree);
        let mut h = tree.register(stm.register());
        ctx.spawn("probe", move || {
            for _ in 0..3 {
                assert!(
                    probe_tree.contains(&mut h, 40),
                    "transient miss: key 40 vanished mid-rotation"
                );
            }
        });
    });
    assert_clean("probe-vs-rotation (portable)", &report);
}

/// Rotation pass racing a logical delete: whichever order the explorer
/// picks, the deleted key must be gone, its neighbours must survive, and
/// the structure must still pass the full consistency check once both
/// threads are done.
#[test]
fn rotation_vs_delete_converges_to_a_consistent_tree() {
    let report = explore(&opts(), |ctx| {
        let stm = Stm::new(StmConfig::ctl());
        let tree = Arc::new(OptSpecFriendlyTree::new());
        let mut setup = tree.register(stm.register());
        for k in [10u64, 20, 30, 40, 50] {
            assert!(tree.insert(&mut setup, k, k * 10));
        }
        let done = Arc::new(AtomicUsize::new(0));
        let verify = |tree: &Arc<OptSpecFriendlyTree>, h: &mut _| {
            assert!(!tree.contains(h, 20), "deleted key came back");
            for k in [10u64, 30, 40, 50] {
                assert!(tree.contains(h, k), "key {k} lost");
            }
            tree.inspect().check_consistency().unwrap();
        };
        {
            let mut worker = tree.maintenance_worker_with(stm.register(), eager());
            let tree = Arc::clone(&tree);
            let mut h = tree.register(stm.register());
            let done = Arc::clone(&done);
            ctx.spawn("maint", move || {
                worker.run_pass();
                if done.fetch_add(1, Ordering::SeqCst) == 1 {
                    verify(&tree, &mut h);
                }
            });
        }
        {
            let tree = Arc::clone(&tree);
            let mut h = tree.register(stm.register());
            let done = Arc::clone(&done);
            ctx.spawn("delete", move || {
                assert!(tree.delete(&mut h, 20), "delete of a present key failed");
                if done.fetch_add(1, Ordering::SeqCst) == 1 {
                    verify(&tree, &mut h);
                }
            });
        }
    });
    assert_clean("rotation-vs-delete", &report);
}
