//! Criterion micro-benchmarks of the vacation application's client
//! transactions on different directory trees (single-threaded latency of the
//! composed make-reservation transaction, the dominant action of Figure 6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sf_baselines::RedBlackTree;
use sf_stm::Stm;
use sf_tree::OptSpecFriendlyTree;
use sf_vacation::{DirectoryMap, Manager, ReservationKind};
use std::sync::Arc;
use std::time::Duration;

fn bench_reservation<D: DirectoryMap + Default>(
    group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
    label: &str,
) {
    let stm = Stm::default_config();
    let manager = Arc::new(Manager::<D>::new());
    let mut ctx = stm.register();
    ctx.atomically(|tx| {
        for id in 1..=256u64 {
            for kind in ReservationKind::ALL {
                manager.add_resource(tx, kind, id, 1_000_000, 100)?;
            }
            manager.add_customer(tx, id)?;
        }
        Ok(())
    });
    group.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let customer = i % 256 + 1;
            let resource = (i * 7) % 256 + 1;
            ctx.atomically(|tx| {
                let mut reserved = 0;
                for kind in ReservationKind::ALL {
                    if manager.query_free(tx, kind, resource)?.unwrap_or(0) > 0
                        && manager.reserve(tx, kind, customer, resource)?
                    {
                        reserved += 1;
                    }
                }
                // Immediately cancel so the customer slots never fill up.
                for kind in ReservationKind::ALL {
                    manager.cancel(tx, kind, customer, resource)?;
                }
                Ok(reserved)
            })
        })
    });
}

fn bench_vacation_transactions(c: &mut Criterion) {
    let mut group = c.benchmark_group("vacation_reservation_transaction");
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    group.sample_size(20);
    bench_reservation::<OptSpecFriendlyTree>(&mut group, "OptSFtree");
    bench_reservation::<RedBlackTree>(&mut group, "RBtree");
    group.finish();
}

criterion_group!(benches, bench_vacation_transactions);
criterion_main!(benches);
