//! Criterion micro-benchmarks of the STM substrate: cost of transactional
//! reads, writes and commits under the three TM configurations the paper
//! evaluates (CTL, ETL, elastic). Backs the §2 discussion of optimistic
//! step complexity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sf_stm::{Stm, StmConfig, TCell};
use std::time::Duration;

fn bench_read_only(c: &mut Criterion) {
    let mut group = c.benchmark_group("stm_read_only_64_cells");
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    group.sample_size(20);
    for (name, config) in [
        ("ctl", StmConfig::ctl()),
        ("etl", StmConfig::etl()),
        ("elastic", StmConfig::elastic()),
    ] {
        let stm = Stm::new(config);
        let mut ctx = stm.register();
        let cells: Vec<TCell<u64>> = (0..64).map(TCell::new).collect();
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| {
                ctx.atomically(|tx| {
                    let mut acc = 0u64;
                    for cell in &cells {
                        acc = acc.wrapping_add(tx.read(cell)?);
                    }
                    Ok(acc)
                })
            })
        });
    }
    group.finish();
}

fn bench_read_write(c: &mut Criterion) {
    let mut group = c.benchmark_group("stm_update_8_of_64_cells");
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    group.sample_size(20);
    for (name, config) in [("ctl", StmConfig::ctl()), ("etl", StmConfig::etl())] {
        let stm = Stm::new(config);
        let mut ctx = stm.register();
        let cells: Vec<TCell<u64>> = (0..64).map(TCell::new).collect();
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| {
                ctx.atomically(|tx| {
                    for cell in cells.iter().step_by(8) {
                        let v = tx.read(cell)?;
                        tx.write(cell, v + 1)?;
                    }
                    Ok(())
                })
            })
        });
    }
    group.finish();
}

fn bench_uread_vs_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("stm_uread_vs_read_traversal");
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    group.sample_size(20);
    let stm = Stm::default_config();
    let mut ctx = stm.register();
    let cells: Vec<TCell<u64>> = (0..256).map(TCell::new).collect();
    group.bench_function("tracked_reads", |b| {
        b.iter(|| {
            ctx.atomically(|tx| {
                let mut acc = 0u64;
                for cell in &cells {
                    acc = acc.wrapping_add(tx.read(cell)?);
                }
                Ok(acc)
            })
        })
    });
    let mut ctx2 = stm.register();
    group.bench_function("unit_reads", |b| {
        b.iter(|| {
            ctx2.atomically(|tx| {
                let mut acc = 0u64;
                for cell in &cells {
                    acc = acc.wrapping_add(tx.uread(cell));
                }
                Ok(acc)
            })
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_read_only,
    bench_read_write,
    bench_uread_vs_read
);
criterion_main!(benches);
