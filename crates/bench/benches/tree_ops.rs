//! Criterion micro-benchmarks of per-operation latency for each tree
//! (contains / insert+delete pair) on a pre-populated 2^10-key set. These are
//! the single-threaded costs underlying Table 1 and Figure 3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sf_baselines::{AvlTree, NoRestructureTree, RedBlackTree};
use sf_stm::Stm;
use sf_tree::{OptSpecFriendlyTree, ShardedMap, SpecFriendlyTree, TxMap};
use std::time::Duration;

const SIZE: u64 = 1 << 10;

fn bench_tree<M>(
    group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
    tree: M,
) where
    M: TxMap,
{
    let stm = Stm::default_config();
    let mut handle = tree.register(stm.register());
    let label = tree.name();
    for k in 0..SIZE {
        tree.insert(&mut handle, k * 2, k);
    }
    group.bench_with_input(BenchmarkId::new("contains", label), &label, |b, _| {
        let mut key = 0u64;
        b.iter(|| {
            key = (key + 37) % (SIZE * 2);
            tree.contains(&mut handle, key)
        })
    });
    group.bench_with_input(BenchmarkId::new("insert_delete", label), &label, |b, _| {
        let mut key = 1u64;
        b.iter(|| {
            key = ((key + 74) % (SIZE * 2)) | 1; // odd keys are absent initially
            let inserted = tree.insert(&mut handle, key, key);
            let deleted = tree.delete(&mut handle, key);
            (inserted, deleted)
        })
    });
}

fn bench_trees(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_ops_1024_keys");
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    group.sample_size(20);
    bench_tree(&mut group, SpecFriendlyTree::new());
    bench_tree(&mut group, OptSpecFriendlyTree::new());
    bench_tree(&mut group, RedBlackTree::new());
    bench_tree(&mut group, AvlTree::new());
    bench_tree(&mut group, NoRestructureTree::new());
    bench_tree(
        &mut group,
        ShardedMap::optimized(4, sf_stm::StmConfig::ctl()),
    );
    group.finish();
}

criterion_group!(benches, bench_trees);
criterion_main!(benches);
