//! Criterion micro-benchmarks of the background maintenance work: the cost of
//! a full propagation/rotation pass and of rebalancing a degenerate chain,
//! for both rotation styles (classic vs clone-based). Backs the ablation
//! discussion of the decoupled-rotation design (§3.1).

use criterion::{criterion_group, criterion_main, Criterion};
use sf_stm::Stm;
use sf_tree::{OptSpecFriendlyTree, SpecFriendlyTree, TxMap};
use std::time::Duration;

fn bench_steady_state_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("maintenance_pass_2048_keys");
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    group.sample_size(10);

    // Classic (portable tree).
    {
        let stm = Stm::default_config();
        let tree = SpecFriendlyTree::new();
        let mut h = tree.register(stm.register());
        for k in 0..2048u64 {
            tree.insert(&mut h, k, k);
        }
        let mut worker = tree.maintenance_worker(stm.register());
        worker.run_until_stable(4096);
        group.bench_function("classic_steady_pass", |b| b.iter(|| worker.run_pass()));
    }

    // Clone-based (optimized tree).
    {
        let stm = Stm::default_config();
        let tree = OptSpecFriendlyTree::new();
        let mut h = tree.register(stm.register());
        for k in 0..2048u64 {
            tree.insert(&mut h, k, k);
        }
        let mut worker = tree.maintenance_worker(stm.register());
        worker.run_until_stable(4096);
        group.bench_function("clone_based_steady_pass", |b| b.iter(|| worker.run_pass()));
    }
    group.finish();
}

fn bench_rebalance_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("maintenance_rebalance_chain_512");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    group.sample_size(10);
    group.bench_function("classic", |b| {
        b.iter(|| {
            let stm = Stm::default_config();
            let tree = SpecFriendlyTree::new();
            let mut h = tree.register(stm.register());
            for k in 0..512u64 {
                tree.insert(&mut h, k, k);
            }
            let mut worker = tree.maintenance_worker(stm.register());
            worker.run_until_stable(2048)
        })
    });
    group.bench_function("clone_based", |b| {
        b.iter(|| {
            let stm = Stm::default_config();
            let tree = OptSpecFriendlyTree::new();
            let mut h = tree.register(stm.register());
            for k in 0..512u64 {
                tree.insert(&mut h, k, k);
            }
            let mut worker = tree.maintenance_worker(stm.register());
            worker.run_until_stable(2048)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_steady_state_pass, bench_rebalance_chain);
criterion_main!(benches);
