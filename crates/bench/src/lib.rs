//! # sf-bench — harnesses that regenerate the paper's tables and figures
//!
//! Each binary in `src/bin/` prints the rows/series of one exhibit of the
//! paper's evaluation (Table 1, Figures 3-6); the criterion benches in
//! `benches/` measure the underlying per-operation costs. See
//! `EXPERIMENTS.md` at the repository root for the mapping and for the
//! paper-vs-measured discussion.
//!
//! All harnesses are parameterized through environment variables so they can
//! be scaled from a quick laptop run to a long, paper-sized run:
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `SF_THREADS` | space-separated thread counts | `1 2 4 8` |
//! | `SF_DURATION_MS` | measured phase per cell (ms) | `300` |
//! | `SF_SIZE` | initial tree size | `4096` (2^12) |
//! | `SF_VACATION_TX` | vacation transactions (1× scale) | `32768` |

#![warn(missing_docs)]

use std::sync::Arc;
use std::time::Duration;

use sf_baselines::{AvlTree, NoRestructureTree, RedBlackTree};
use sf_stm::{Stm, StmConfig};
use sf_tree::{MaintenanceConfig, OptSpecFriendlyTree, SpecFriendlyTree};
use sf_workloads::{populate, run_workload, RunLength, WorkloadConfig, WorkloadResult};

/// The tree variants compared throughout the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeKind {
    /// Transaction-encapsulated red-black tree (Oracle-style baseline).
    RedBlack,
    /// Transaction-encapsulated AVL tree (STAMP baseline).
    Avl,
    /// Speculation-friendly tree, portable variant (Algorithm 1).
    SpecFriendly,
    /// Speculation-friendly tree, optimized variant (Algorithm 2).
    OptSpecFriendly,
    /// No-restructuring tree.
    NoRestructure,
}

impl TreeKind {
    /// Display label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            TreeKind::RedBlack => "RBtree",
            TreeKind::Avl => "AVLtree",
            TreeKind::SpecFriendly => "SFtree",
            TreeKind::OptSpecFriendly => "OptSFtree",
            TreeKind::NoRestructure => "NRtree",
        }
    }
}

/// Read a space-separated list of thread counts from `SF_THREADS`.
pub fn thread_counts() -> Vec<usize> {
    std::env::var("SF_THREADS")
        .ok()
        .map(|s| {
            s.split_whitespace()
                .filter_map(|t| t.parse().ok())
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8])
}

/// Measured-phase duration per benchmark cell (`SF_DURATION_MS`).
pub fn cell_duration() -> Duration {
    Duration::from_millis(
        std::env::var("SF_DURATION_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(300),
    )
}

/// Initial tree size (`SF_SIZE`).
pub fn initial_size() -> usize {
    std::env::var("SF_SIZE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1 << 12)
}

/// Vacation transaction count at 1× scale (`SF_VACATION_TX`).
pub fn vacation_transactions() -> u64 {
    std::env::var("SF_VACATION_TX")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1 << 15)
}

/// Run one micro-benchmark cell: build the tree, start its maintenance thread
/// when it has one, populate, run the measured phase, and tear down.
pub fn run_micro(kind: TreeKind, stm_config: StmConfig, config: &WorkloadConfig) -> WorkloadResult {
    let stm = Stm::new(stm_config);
    let maintenance_config = MaintenanceConfig {
        pass_delay: Duration::from_micros(200),
        ..MaintenanceConfig::default()
    };
    match kind {
        TreeKind::RedBlack => {
            let tree = Arc::new(RedBlackTree::new());
            populate(&stm, tree.as_ref(), config);
            run_workload(&stm, &tree, config)
        }
        TreeKind::Avl => {
            let tree = Arc::new(AvlTree::new());
            populate(&stm, tree.as_ref(), config);
            run_workload(&stm, &tree, config)
        }
        TreeKind::NoRestructure => {
            let tree = Arc::new(NoRestructureTree::new());
            populate(&stm, tree.as_ref(), config);
            run_workload(&stm, &tree, config)
        }
        TreeKind::SpecFriendly => {
            let tree = Arc::new(SpecFriendlyTree::new());
            populate(&stm, tree.as_ref(), config);
            let maintenance = tree.start_maintenance_with(stm.register(), maintenance_config);
            let result = run_workload(&stm, &tree, config);
            maintenance.stop();
            result
        }
        TreeKind::OptSpecFriendly => {
            let tree = Arc::new(OptSpecFriendlyTree::new());
            populate(&stm, tree.as_ref(), config);
            let maintenance = tree.start_maintenance_with(stm.register(), maintenance_config);
            let result = run_workload(&stm, &tree, config);
            maintenance.stop();
            result
        }
    }
}

/// Workload configuration shared by the figure harnesses.
pub fn base_config(threads: usize, update_ratio: f64) -> WorkloadConfig {
    WorkloadConfig::paper_default()
        .with_size(initial_size())
        .with_threads(threads)
        .with_update_ratio(update_ratio)
        .with_run(RunLength::Timed(cell_duration()))
}

/// Pretty-print a throughput row.
pub fn print_row(label: &str, threads: usize, result: &WorkloadResult) {
    println!(
        "{label:<12} threads={threads:<3} throughput={:>8.3} ops/us  effective-updates={:<8} aborts/commit={:>6.3} max-reads/op={}",
        result.ops_per_microsecond(),
        result.effective_updates,
        result.stm.aborts as f64 / result.stm.commits.max(1) as f64,
        result.stm.max_reads_per_op,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults_are_sane() {
        assert!(!thread_counts().is_empty());
        assert!(cell_duration() >= Duration::from_millis(1));
        assert!(initial_size() >= 2);
        assert!(vacation_transactions() >= 1);
    }

    #[test]
    fn run_micro_executes_each_tree_kind() {
        let config = WorkloadConfig::smoke_test().with_threads(1);
        for kind in [
            TreeKind::RedBlack,
            TreeKind::Avl,
            TreeKind::SpecFriendly,
            TreeKind::OptSpecFriendly,
            TreeKind::NoRestructure,
        ] {
            let result = run_micro(kind, StmConfig::ctl(), &config);
            assert!(result.total_ops > 0, "{} produced no ops", kind.label());
        }
    }
}
