//! # sf-bench — harnesses that regenerate the paper's tables and figures
//!
//! Each binary in `src/bin/` prints the rows/series of one exhibit of the
//! paper's evaluation (Table 1, Figures 3-6); the criterion benches in
//! `benches/` measure the underlying per-operation costs. See
//! `EXPERIMENTS.md` at the repository root for the mapping and for the
//! paper-vs-measured discussion.
//!
//! The harnesses resolve structures by name through the
//! [`sf_workloads::backend`] registry, so every harness can drive every
//! backend — including the sharded trees (`sftree-opt-sharded<N>`).
//!
//! All harnesses are parameterized through environment variables so they can
//! be scaled from a quick laptop run to a long, paper-sized run:
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `SF_THREADS` | space-separated thread counts | `1 2 4 8` |
//! | `SF_DURATION_MS` | measured phase per cell (ms) | `300` |
//! | `SF_SIZE` | initial tree size | `4096` (2^12) |
//! | `SF_VACATION_TX` | vacation transactions (1× scale) | `32768` |
//! | `SF_STRUCTURES` | comma/space-separated structure names | per-harness |
//! | `SF_JSON` | `1` → one JSON line per workload result | off |
//! | `SF_SEED` | workload key-stream seed (deterministic streams) | `0x5eed5eed` |
//! | `SF_SCAN_PCT` | percent of operations that are range scans | `0` |
//! | `SF_SCAN_WIDTH` | keys spanned by one range scan | `100` |
//! | `SF_ZIPF_THETA` | Zipf θ for point-operation keys (unset = uniform) | off |
//! | `SF_HOTSPOT` | hot-rotation benefit ratio (`1` → default 2.0; `0` = off) | off |
//! | `SF_HOT_DECAY` | maintenance passes between counter halvings (`0` = off) | `0` |
//! | `SF_HOT_SAMPLE` | access-sampling rate (record 1 in N traversals) | `64` |
//! | `SF_WAL` | `1` → wrap every backend in the durability (WAL) layer | off |
//! | `SF_WAL_DIR` | base directory for write-ahead logs | `$TMPDIR/sf-wal-<pid>` |
//! | `SF_WAL_GROUP` | records per group-commit fsync batch (`0` = buffered) | `128` |
//! | `SF_WAL_CKPT` | records between automatic checkpoints (`0` = manual) | `0` |
//! | `SF_WAL_WRITER` | `thread` (dedicated writer) or `leader` (fallback) | `thread` |
//! | `SF_WAL_WINDOW_US` | writer-thread batching window (µs) | `100` |
//! | `SF_WAL_RING` | submission-ring capacity (records) | `1024` |
//! | `SF_WAL_CKPT_MS` | time-based checkpoint trigger (ms, `0` = off) | off |
//! | `SF_OBS_SAMPLE` | latency sampling: record 1 in N operations (`0` = off) | `32` |
//! | `SF_OBS_TRACE` | flight recorder: `1` → 4096-event rings, `N` → N-event | off |
//! | `SF_OBS_TRACE_DUMP` | `1` → dump the flight trace to stderr after each cell | off |
//! | `SF_STATS_EVERY_MS` | Prometheus-text emitter period to stderr (`0` = off) | off |
//!
//! Every harness's JSON line carries the WAL counters of its measured phase
//! (`wal_records`, `wal_bytes`, `wal_batches`, `wal_writer_batches`,
//! `wal_max_ring_depth`, `wal_checkpoints`, `wal_replayed` — all zero for
//! non-durable backends) plus the STM's `combined_commits`, the abort-cause
//! taxonomy (`abort_*`, summing exactly to `aborts`), and the sampled
//! latency distributions (`lat_*`, nanoseconds; zero when sampling is
//! disabled or no event of that kind occurred), and the dedicated
//! `recovery` binary measures replay throughput against log length. It also carries the hot-key summary taken quiescently after the
//! run (`hot_rotations`, `hot_avg_depth`, `hot_key_depth` — zeros for
//! structures without access sampling). The `baseline` binary sweeps the
//! fig3/fig5b/fig7/zipf shapes over the flagship backends and writes the
//! checked-in `BENCH_baseline.json` trajectory file (see EXPERIMENTS.md,
//! "Perf trajectory"), and the `zipf` binary sweeps skew θ over the
//! hotspot-enabled trees against the rotation-free `ziptree` control.

#![warn(missing_docs)]

use std::time::Duration;

use sf_stm::StmConfig;
use sf_workloads::{populate_and_run_backend, Backend, RunLength, WorkloadConfig, WorkloadResult};

/// Read a space-separated list of thread counts from `SF_THREADS`.
pub fn thread_counts() -> Vec<usize> {
    std::env::var("SF_THREADS")
        .ok()
        .map(|s| {
            s.split_whitespace()
                .filter_map(|t| t.parse().ok())
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8])
}

/// Measured-phase duration per benchmark cell (`SF_DURATION_MS`).
pub fn cell_duration() -> Duration {
    Duration::from_millis(
        std::env::var("SF_DURATION_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(300),
    )
}

/// Initial tree size (`SF_SIZE`).
pub fn initial_size() -> usize {
    std::env::var("SF_SIZE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1 << 12)
}

/// Vacation transaction count at 1× scale (`SF_VACATION_TX`).
pub fn vacation_transactions() -> u64 {
    std::env::var("SF_VACATION_TX")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1 << 15)
}

/// Workload seed (`SF_SEED`): every thread's key stream derives
/// deterministically from it, so two runs with the same seed (and the same
/// thread count) replay the same operation sequences.
pub fn workload_seed() -> u64 {
    std::env::var("SF_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5eed_5eed)
}

/// Range-scan share of operations (`SF_SCAN_PCT`, in percent).
pub fn scan_pct() -> f64 {
    std::env::var("SF_SCAN_PCT")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.0)
}

/// True when `SF_SCAN_PCT` was set explicitly (used by `fig7` to decide
/// between a sweep and a single configured point).
pub fn scan_pct_overridden() -> bool {
    std::env::var("SF_SCAN_PCT").is_ok()
}

/// Zipfian skew θ for point-operation keys (`SF_ZIPF_THETA`); unset or
/// unparsable means uniform keys.
pub fn zipf_theta() -> Option<f64> {
    std::env::var("SF_ZIPF_THETA")
        .ok()
        .and_then(|s| s.parse().ok())
}

/// Range-scan width in keys (`SF_SCAN_WIDTH`).
pub fn scan_width() -> u64 {
    std::env::var("SF_SCAN_WIDTH")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100)
}

/// The structures a harness should drive: `SF_STRUCTURES` (comma- or
/// whitespace-separated registry names), falling back to the harness's
/// `defaults`.
pub fn structures(defaults: &[&str]) -> Vec<String> {
    std::env::var("SF_STRUCTURES")
        .ok()
        .map(|s| sf_workloads::parse_structure_list(&s))
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| defaults.iter().map(|s| s.to_string()).collect())
}

/// True when `SF_JSON=1` asks for machine-readable output.
pub fn json_enabled() -> bool {
    std::env::var("SF_JSON").is_ok_and(|v| v == "1")
}

/// Run one micro-benchmark cell: resolve `name` through the backend
/// registry, populate, run the measured phase, and tear down (backends with
/// maintenance threads stop them when the backend drops here).
///
/// # Panics
/// Panics with the registry's name listing when `name` is unknown — harness
/// binaries surface that directly to the terminal.
pub fn run_structure(name: &str, stm_config: StmConfig, config: &WorkloadConfig) -> WorkloadResult {
    observability_init();
    let backend = Backend::build(name, stm_config).unwrap_or_else(|error| panic!("{error}"));
    let result = populate_and_run_backend(&backend, config);
    if std::env::var("SF_OBS_TRACE_DUMP").is_ok_and(|v| v == "1") {
        sf_obs::FlightRecorder::global().dump_to_stderr();
    }
    result
}

/// One-time per-process observability wiring for the harnesses: dump the
/// flight trace on panic, and start the `SF_STATS_EVERY_MS` Prometheus-text
/// emitter when asked. Idempotent.
pub fn observability_init() {
    use std::sync::Once;
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        sf_obs::FlightRecorder::install_panic_hook();
        sf_obs::MetricsRegistry::ensure_emitter_from_env();
    });
}

/// Workload configuration shared by the figure harnesses: the paper shape,
/// scaled by the environment (`SF_SIZE`, `SF_DURATION_MS`), seeded from
/// `SF_SEED`, with the scan family applied from `SF_SCAN_PCT` /
/// `SF_SCAN_WIDTH` (so *every* harness can mix range scans in).
pub fn base_config(threads: usize, update_ratio: f64) -> WorkloadConfig {
    WorkloadConfig::paper_default()
        .with_size(initial_size())
        .with_threads(threads)
        .with_update_ratio(update_ratio)
        .with_seed(workload_seed())
        .with_scan_ratio(scan_pct() / 100.0)
        .with_scan_width(scan_width())
        .with_zipf_theta(zipf_theta())
        .with_run(RunLength::Timed(cell_duration()))
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Builder for the harness-specific `extra` fields of a JSON line — the one
/// place that knows how to encode them, instead of each binary hand-rolling
/// a `format!` of escaped fragments.
///
/// ```
/// use sf_bench::ExtraJson;
/// let extra = ExtraJson::figure("fig7").num("scan_pct", 10).build();
/// assert_eq!(extra, "\"figure\":\"fig7\",\"scan_pct\":10");
/// ```
#[derive(Debug, Default, Clone)]
pub struct ExtraJson {
    parts: Vec<String>,
}

impl ExtraJson {
    /// Start from the conventional leading `"figure":"<name>"` field every
    /// figure harness tags its rows with.
    pub fn figure(name: &str) -> ExtraJson {
        ExtraJson::default().text("figure", name)
    }

    /// Append a string-valued field (escaped).
    pub fn text(mut self, key: &str, value: &str) -> ExtraJson {
        self.parts.push(format!(
            "\"{}\":\"{}\"",
            json_escape(key),
            json_escape(value)
        ));
        self
    }

    /// Append a numeric field, rendered with `Display` (integers and floats
    /// both serialize as valid JSON numbers).
    pub fn num(mut self, key: &str, value: impl std::fmt::Display) -> ExtraJson {
        self.parts
            .push(format!("\"{}\":{}", json_escape(key), value));
        self
    }

    /// The comma-joined fragment [`result_json`] splices into its line.
    pub fn build(&self) -> String {
        self.parts.join(",")
    }
}

/// One machine-readable line for a [`WorkloadResult`] (the `BENCH_*.json`
/// trajectory format). `label` is the harness's row label; `extra` carries
/// harness-specific fields (e.g. `"figure":"fig3"`), already JSON-encoded.
pub fn result_json(label: &str, result: &WorkloadResult, extra: &str) -> String {
    let mut line = format!(
        concat!(
            "{{\"label\":\"{}\",\"structure\":\"{}\",\"threads\":{},\"seed\":{},",
            "\"total_ops\":{},\"elapsed_us\":{},\"throughput_ops_per_us\":{:.6},",
            "\"effective_updates\":{},\"attempted_updates\":{},\"effective_moves\":{},",
            "\"successful_lookups\":{},\"scans\":{},\"scanned_entries\":{},",
            "\"commits\":{},\"combined_commits\":{},\"aborts\":{},\"abort_ratio\":{:.6},",
            "\"abort_read_validation\":{},\"abort_lock_conflict\":{},",
            "\"abort_combiner\":{},\"abort_explicit\":{},\"abort_scan_validation\":{},",
            "\"explicit_aborts\":{},",
            "\"tx_reads\":{},\"tx_ureads\":{},\"tx_writes\":{},\"elastic_cuts\":{},",
            "\"max_reads_per_op\":{},\"max_read_set\":{},\"max_write_set\":{},",
            "\"scan_commits\":{},\"scan_aborts\":{},\"max_scan_read_set\":{},",
            "\"wal_records\":{},\"wal_bytes\":{},\"wal_batches\":{},",
            "\"wal_writer_batches\":{},\"wal_max_ring_depth\":{},",
            "\"wal_checkpoints\":{},\"wal_replayed\":{},",
            "\"wal_move_intents\":{},\"wal_moves_resolved\":{},",
            "\"hot_rotations\":{},\"hot_avg_depth\":{:.3},\"hot_key_depth\":{},",
            "\"lat_samples\":{},\"lat_op_p50_ns\":{},\"lat_op_p99_ns\":{},\"lat_op_max_ns\":{},",
            "\"lat_contains_p99_ns\":{},\"lat_insert_p99_ns\":{},\"lat_delete_p99_ns\":{},",
            "\"lat_move_p99_ns\":{},\"lat_scan_p99_ns\":{},",
            "\"lat_wal_sync_p99_ns\":{},\"lat_wal_fsync_p99_ns\":{},",
            "\"lat_maint_pass_p99_ns\":{},\"lat_maint_pass_work_p99\":{}"
        ),
        json_escape(label),
        json_escape(&result.structure),
        result.threads,
        result.seed,
        result.total_ops,
        result.elapsed.as_micros(),
        result.ops_per_microsecond(),
        result.effective_updates,
        result.attempted_updates,
        result.effective_moves,
        result.successful_lookups,
        result.scans,
        result.scanned_entries,
        result.stm.commits,
        result.stm.combined_commits,
        result.stm.aborts,
        result.abort_ratio(),
        result.stm.abort_read_validation,
        result.stm.abort_lock_conflict,
        result.stm.abort_combiner,
        result.stm.abort_explicit,
        result.stm.abort_scan_validation,
        result.stm.explicit_aborts,
        result.stm.tx_reads,
        result.stm.tx_ureads,
        result.stm.tx_writes,
        result.stm.elastic_cuts,
        result.stm.max_reads_per_op,
        result.stm.max_read_set,
        result.stm.max_write_set,
        result.stm.scan_commits,
        result.stm.scan_aborts,
        result.stm.max_scan_read_set,
        result.wal.records,
        result.wal.bytes,
        result.wal.batches,
        result.wal.writer_batches,
        result.wal.max_ring_depth,
        result.wal.checkpoints,
        result.wal.replayed,
        result.wal.move_intents,
        result.wal.moves_resolved,
        result.hot.hot_rotations,
        result.hot.avg_depth,
        result.hot.hottest_depth,
        result.lat.op.count(),
        result.lat.op.p50(),
        result.lat.op.p99(),
        result.lat.op.max,
        result.lat.per_op[0].p99(),
        result.lat.per_op[1].p99(),
        result.lat.per_op[2].p99(),
        result.lat.per_op[3].p99(),
        result.lat.per_op[4].p99(),
        result.lat.wal_sync.p99(),
        result.lat.wal_fsync.p99(),
        result.lat.maint_pass.p99(),
        result.lat.maint_pass_work.p99(),
    );
    if !extra.is_empty() {
        line.push(',');
        line.push_str(extra);
    }
    line.push('}');
    line
}

/// Print the JSON line for a result when `SF_JSON=1`.
pub fn emit_json(label: &str, result: &WorkloadResult, extra: &str) {
    if json_enabled() {
        println!("{}", result_json(label, result, extra));
    }
}

/// Pretty-print a throughput row (and its JSON line when `SF_JSON=1`).
pub fn print_row(label: &str, threads: usize, result: &WorkloadResult) {
    println!(
        "{label:<22} threads={threads:<3} throughput={:>8.3} ops/us  effective-updates={:<8} aborts/commit={:>6.3} max-reads/op={}",
        result.ops_per_microsecond(),
        result.effective_updates,
        result.stm.aborts as f64 / result.stm.commits.max(1) as f64,
        result.stm.max_reads_per_op,
    );
    emit_json(label, result, "");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults_are_sane() {
        assert!(!thread_counts().is_empty());
        assert!(cell_duration() >= Duration::from_millis(1));
        assert!(initial_size() >= 2);
        assert!(vacation_transactions() >= 1);
        assert!(scan_width() >= 1);
        assert_eq!(structures(&["rbtree", "sftree"]), vec!["rbtree", "sftree"]);
        // base_config plumbs the seed and scan knobs through.
        let config = base_config(2, 0.1);
        assert_eq!(config.seed, workload_seed());
        assert_eq!(config.scan_ratio, scan_pct() / 100.0);
        assert_eq!(config.scan_width, scan_width());
        assert_eq!(config.zipf_theta, zipf_theta());
    }

    #[test]
    fn run_structure_executes_every_default_backend() {
        let config = WorkloadConfig::smoke_test().with_threads(1);
        for name in [
            "rbtree",
            "avl",
            "nrtree",
            "sftree",
            "sftree-opt",
            "sftree-opt-hot",
            "sftree-opt-sharded2",
            "ziptree",
        ] {
            let result = run_structure(name, StmConfig::ctl(), &config);
            assert!(result.total_ops > 0, "{name} produced no ops");
        }
    }

    #[test]
    #[should_panic(expected = "unknown structure")]
    fn run_structure_rejects_unknown_names() {
        let config = WorkloadConfig::smoke_test().with_threads(1);
        let _ = run_structure("definitely-not-a-tree", StmConfig::ctl(), &config);
    }

    #[test]
    fn result_json_is_well_formed_and_complete() {
        let config = WorkloadConfig::smoke_test().with_threads(1);
        let result = run_structure("sftree-opt", StmConfig::ctl(), &config);
        let line = result_json("row-\"1\"", &result, "\"figure\":\"test\"");
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"label\":\"row-\\\"1\\\"\""));
        assert!(line.contains("\"structure\":\"OptSFtree\""));
        assert!(
            line.contains("\"total_ops\":300"),
            "one thread x 300 ops: {line}"
        );
        assert!(line.contains("\"figure\":\"test\""));
        assert!(line.contains("\"seed\":42"), "smoke-test seed: {line}");
        assert!(line.contains("\"scans\":"));
        assert!(line.contains("\"scan_commits\":"));
        assert!(line.contains("\"combined_commits\":"));
        assert!(line.contains("\"wal_records\":"));
        assert!(line.contains("\"wal_writer_batches\":"));
        assert!(line.contains("\"wal_max_ring_depth\":"));
        assert!(line.contains("\"wal_checkpoints\":"));
        assert!(line.contains("\"wal_move_intents\":"));
        assert!(line.contains("\"wal_moves_resolved\":"));
        assert!(line.contains("\"hot_rotations\":"));
        assert!(line.contains("\"hot_avg_depth\":"));
        assert!(line.contains("\"hot_key_depth\":"));
        // The abort-cause taxonomy and latency families ride on every line.
        for field in [
            "\"abort_read_validation\":",
            "\"abort_lock_conflict\":",
            "\"abort_combiner\":",
            "\"abort_explicit\":",
            "\"abort_scan_validation\":",
            "\"explicit_aborts\":",
            "\"lat_samples\":",
            "\"lat_op_p50_ns\":",
            "\"lat_op_p99_ns\":",
            "\"lat_op_max_ns\":",
            "\"lat_contains_p99_ns\":",
            "\"lat_insert_p99_ns\":",
            "\"lat_delete_p99_ns\":",
            "\"lat_move_p99_ns\":",
            "\"lat_scan_p99_ns\":",
            "\"lat_wal_sync_p99_ns\":",
            "\"lat_wal_fsync_p99_ns\":",
            "\"lat_maint_pass_p99_ns\":",
            "\"lat_maint_pass_work_p99\":",
        ] {
            assert!(line.contains(field), "missing {field} in {line}");
        }
        // Balanced quotes => even count; cheap smoke check of JSON shape.
        assert_eq!(line.matches('"').count() % 2, 0);
    }

    #[test]
    fn abort_causes_sum_to_aborts_in_the_json_line() {
        let config = WorkloadConfig::smoke_test().with_threads(2);
        let result = run_structure("sftree-opt", StmConfig::ctl(), &config);
        let causes = result.stm.abort_read_validation
            + result.stm.abort_lock_conflict
            + result.stm.abort_combiner
            + result.stm.abort_explicit
            + result.stm.abort_scan_validation;
        assert_eq!(
            causes, result.stm.aborts,
            "abort-cause taxonomy must partition the abort total"
        );
    }

    #[test]
    fn extra_json_builder_matches_the_hand_rolled_fragments() {
        assert_eq!(ExtraJson::figure("fig5a").build(), "\"figure\":\"fig5a\"");
        assert_eq!(
            ExtraJson::figure("zipf").num("theta", 0.8).build(),
            "\"figure\":\"zipf\",\"theta\":0.8"
        );
        assert_eq!(
            ExtraJson::figure("baseline")
                .text("backend", "a\"b")
                .build(),
            "\"figure\":\"baseline\",\"backend\":\"a\\\"b\""
        );
        assert_eq!(ExtraJson::default().build(), "");
    }
}
