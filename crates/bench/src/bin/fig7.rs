//! Figure 7 (repository exhibit, no paper counterpart): ordered range scans.
//! Throughput of every backend under a mixed point/scan workload — 10%
//! effective updates, a configurable share of range scans whose origins are
//! drawn from a bounded Zipf distribution (`SF_ZIPF_THETA`, θ = 0.99 when
//! unset) — exercising the ordered-map subsystem end to end
//! (read-only scan transactions on the single-STM structures, shard-merged
//! per-shard-atomic scans on the sharded ones).
//!
//! Run with `cargo run -p sf-bench --release --bin fig7`. Scale with
//! `SF_THREADS`, `SF_DURATION_MS`, `SF_SIZE`; pick the scan mix with
//! `SF_SCAN_PCT` (default: sweep 5% and 20%) and `SF_SCAN_WIDTH` (default
//! 100 keys); select structures with `SF_STRUCTURES`; `SF_SEED` makes the
//! key streams reproducible; `SF_JSON=1` adds one machine-readable line per
//! cell.

use sf_bench::{
    base_config, emit_json, run_structure, scan_pct, scan_pct_overridden, scan_width, structures,
    thread_counts, ExtraJson,
};
use sf_stm::StmConfig;

fn main() {
    let names = structures(&[
        "rbtree",
        "avl",
        "nrtree",
        "seq",
        "sftree",
        "sftree-opt",
        "sftree-opt-sharded4",
    ]);
    let width = scan_width();
    let scan_pcts: Vec<f64> = if scan_pct_overridden() {
        vec![scan_pct()]
    } else {
        vec![5.0, 20.0]
    };
    for &pct in &scan_pcts {
        println!(
            "# Figure 7 — mixed point/scan workload, {pct}% scans of width {width}, 10% updates"
        );
        for threads in thread_counts() {
            for name in &names {
                let config = base_config(threads, 0.10)
                    .with_scan_ratio(pct / 100.0)
                    .with_scan_width(width);
                let result = run_structure(name, StmConfig::ctl(), &config);
                let label = format!("{pct}%-scan {}", result.structure);
                let avg_hits = result.scanned_entries as f64 / result.scans.max(1) as f64;
                println!(
                    "{label:<28} threads={threads:<3} throughput={:>8.3} ops/us  scans={:<8} avg-hits/scan={avg_hits:>6.1} scan-aborts={} max-scan-read-set={}",
                    result.ops_per_microsecond(),
                    result.scans,
                    result.stm.scan_aborts,
                    result.stm.max_scan_read_set,
                );
                emit_json(
                    &label,
                    &result,
                    &ExtraJson::figure("fig7")
                        .num("scan_pct", pct)
                        .num("scan_width", width)
                        .build(),
                );
            }
        }
        println!();
    }
    println!("Expected shape: the sequential map wins scans outright on one thread (BTreeMap::range under a lock)");
    println!("but collapses as threads are added; the transaction-encapsulated baselines pay a read set that grows");
    println!("with the scanned range; the speculation-friendly trees pay the same range cost plus tombstone");
    println!("filtering, and sharding trades scan-merge work for point-op commit bandwidth.");
}
