//! Table 1: maximum number of transactional reads per operation on 2^12-sized
//! balanced search trees as the update ratio increases (0% .. 50%).
//!
//! Run with `cargo run -p sf-bench --release --bin table1`. Scale with
//! `SF_THREADS` (the paper uses 48 concurrent threads), `SF_DURATION_MS` and
//! `SF_SIZE`; select structures with `SF_STRUCTURES`.

use sf_bench::{
    base_config, cell_duration, emit_json, initial_size, run_structure, structures, thread_counts,
    ExtraJson,
};
use sf_stm::StmConfig;

fn main() {
    let threads = *thread_counts().iter().max().unwrap_or(&4);
    let ratios = [0.0, 0.10, 0.20, 0.30, 0.40, 0.50];
    let names = structures(&["avl", "rbtree", "sftree", "sftree-opt"]);
    println!(
        "# Table 1 — maximum transactional reads per operation ({} keys, {} threads, {:?} per cell, TinySTM-CTL-style STM)",
        initial_size(),
        threads,
        cell_duration()
    );
    print!("{:<24}", "Update");
    for r in ratios {
        print!("{:>8.0}%", r * 100.0);
    }
    println!();
    for name in &names {
        let mut label = name.clone();
        let mut cells = Vec::with_capacity(ratios.len());
        for ratio in ratios {
            let config = base_config(threads, ratio);
            let result = run_structure(name, StmConfig::ctl(), &config);
            emit_json(name, &result, &ExtraJson::figure("table1").build());
            label = result.structure.clone();
            cells.push(result.stm.max_reads_per_op);
        }
        print!("{label:<24}");
        for cell in cells {
            print!("{cell:>9}");
        }
        println!();
    }
    println!();
    println!("Paper reference (48 cores): AVL 29/415/711/1008/1981/2081, RBtree 31/573/965/1108/1484/1545, SFtree 29/75/123/120/144/180.");
    println!("Expected shape: the baselines' read counts blow up with the update ratio, the speculation-friendly trees stay within a small multiple of the 0% column.");
}
