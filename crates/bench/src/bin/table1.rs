//! Table 1: maximum number of transactional reads per operation on 2^12-sized
//! balanced search trees as the update ratio increases (0% .. 50%).
//!
//! Run with `cargo run -p sf-bench --release --bin table1`. Scale with
//! `SF_THREADS` (the paper uses 48 concurrent threads), `SF_DURATION_MS` and
//! `SF_SIZE`.

use sf_bench::{base_config, cell_duration, initial_size, run_micro, thread_counts, TreeKind};
use sf_stm::StmConfig;

fn main() {
    let threads = *thread_counts().iter().max().unwrap_or(&4);
    let ratios = [0.0, 0.10, 0.20, 0.30, 0.40, 0.50];
    println!(
        "# Table 1 — maximum transactional reads per operation ({} keys, {} threads, {:?} per cell, TinySTM-CTL-style STM)",
        initial_size(),
        threads,
        cell_duration()
    );
    print!("{:<24}", "Update");
    for r in ratios {
        print!("{:>8.0}%", r * 100.0);
    }
    println!();
    for kind in [
        TreeKind::Avl,
        TreeKind::RedBlack,
        TreeKind::SpecFriendly,
        TreeKind::OptSpecFriendly,
    ] {
        print!("{:<24}", kind.label());
        for ratio in ratios {
            let config = base_config(threads, ratio);
            let result = run_micro(kind, StmConfig::ctl(), &config);
            print!("{:>9}", result.stm.max_reads_per_op);
        }
        println!();
    }
    println!();
    println!("Paper reference (48 cores): AVL 29/415/711/1008/1981/2081, RBtree 31/573/965/1108/1484/1545, SFtree 29/75/123/120/144/180.");
    println!("Expected shape: the baselines' read counts blow up with the update ratio, the speculation-friendly trees stay within a small multiple of the 0% column.");
}
