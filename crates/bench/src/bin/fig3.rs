//! Figure 3: throughput (operations per microsecond) of the trees as a
//! function of the number of threads, for 5/10/15/20% effective updates,
//! under the uniform ("normal") and biased key distributions.
//!
//! Run with `cargo run -p sf-bench --release --bin fig3`. Scale with
//! `SF_THREADS`, `SF_DURATION_MS`, `SF_SIZE`; select structures (any
//! registry name, e.g. `sftree-opt-sharded8`) with `SF_STRUCTURES`.

use sf_bench::{base_config, print_row, run_structure, structures, thread_counts};
use sf_stm::StmConfig;
use sf_workloads::Bias;

fn main() {
    let names = structures(&["rbtree", "sftree", "nrtree", "avl"]);
    for &biased in &[false, true] {
        for &update_pct in &[5u32, 10, 15, 20] {
            println!(
                "# Figure 3 — {} workload, {}% updates",
                if biased { "biased" } else { "normal" },
                update_pct
            );
            for threads in thread_counts() {
                for name in &names {
                    let mut config = base_config(threads, update_pct as f64 / 100.0);
                    if biased {
                        config = config.with_bias(Bias::default());
                    }
                    let result = run_structure(name, StmConfig::ctl(), &config);
                    let label = result.structure.clone();
                    print_row(&label, threads, &result);
                }
            }
            println!();
        }
    }
    println!("Expected shape: SFtree at or above RBtree/AVLtree at every update ratio (paper: up to 1.5-1.6x);");
    println!(
        "NRtree comparable to SFtree on the normal workload but degrading under the biased one."
    );
}
