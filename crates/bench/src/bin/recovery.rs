//! Recovery harness: replay throughput vs. log length, plus a real
//! crash-recovery smoke used by CI.
//!
//! **Sweep mode** (default): for each length in `SF_RECOVERY_LENGTHS`
//! (default `1000 5000 20000` records), write that many effective mutations
//! through a durable optimized tree (buffered log — the sweep measures
//! *replay*, not fsync), then measure `sf_persist::recover` over the
//! directory. One row (and, with `SF_JSON=1`, one JSON line) per length;
//! set `SF_RECOVERY_CKPT=1` to checkpoint at the halfway point and measure
//! checkpoint-accelerated recovery instead.
//!
//! **Crash smoke** (`SF_RECOVERY_SMOKE=1`): for a plain and a sharded
//! durable backend, spawn this same binary as a *writer child*
//! (`SF_RECOVERY_ROLE=writer`) that inserts keys through the registry's
//! `+wal` backend and prints `ACK <key>` after each durably acknowledged
//! insert; SIGKILL it mid-stream; recover the directory in the parent and
//! verify every acknowledged key survived. Exits non-zero on any loss —
//! this is the "commit returned, then the machine died" contract, tested
//! with an actual killed process.
//!
//! The smoke's second phase is the **cross-shard move hammer**
//! (`SF_RECOVERY_ROLE=mover`): the child ping-pongs unique values between
//! key pairs that hash to *different* shards of a `sharded2+wal` backend,
//! acknowledging each durable move; the parent SIGKILLs it mid-hammer and
//! verifies after `recover_sharded` that every value sits at **exactly one**
//! of its pair's keys — a crash landing between the two shard logs' appends
//! must never surface a duplicated or vanished entry. This drill is the
//! regression proof for the two-phase move-intent protocol: without intents
//! it reliably catches the duplicate window within a few rounds.

use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use sf_bench::json_enabled;
use sf_persist::{
    recover, recover_sharded, sharded_optimized, sharded_portable, DurableMap, TempDir, WalOptions,
};
use sf_stm::{Stm, StmConfig};
use sf_tree::{OptSpecFriendlyTree, ShardedMap, TxMap, TxMapVersioned};
use sf_workloads::Backend;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    match std::env::var("SF_RECOVERY_ROLE").as_deref() {
        Ok("writer") => writer_child(),
        Ok("mover") => mover_child(),
        _ if std::env::var("SF_RECOVERY_SMOKE").as_deref() == Ok("1") => crash_smoke(),
        _ => replay_sweep(),
    }
}

/// Sweep mode: replay throughput as a function of log length.
fn replay_sweep() {
    let lengths: Vec<u64> = std::env::var("SF_RECOVERY_LENGTHS")
        .ok()
        .map(|s| {
            s.split_whitespace()
                .filter_map(|t| t.parse().ok())
                .collect()
        })
        .filter(|v: &Vec<u64>| !v.is_empty())
        .unwrap_or_else(|| vec![1_000, 5_000, 20_000]);
    let checkpoint_halfway = std::env::var("SF_RECOVERY_CKPT").as_deref() == Ok("1");
    println!("# recovery — replay throughput vs. log length (ckpt-halfway: {checkpoint_halfway})");

    for &target in &lengths {
        let dir = TempDir::new("recovery-sweep");
        let stm = Stm::new(StmConfig::ctl());
        let tree = Arc::new(OptSpecFriendlyTree::new());
        let maintenance = tree.start_maintenance(stm.register());
        // Buffered mode: the sweep measures replay, not per-op fsync cost.
        let options = WalOptions {
            group: 0,
            auto_checkpoint: 0,
            ..WalOptions::default()
        };
        let (map, _) = DurableMap::open(tree, &stm, dir.path(), options).expect("open WAL");
        let mut handle = map.register(stm.register());

        // Mixed effective mutations over a small domain: roughly half the
        // records are deletes, exercising both replay paths.
        let mut logged = 0u64;
        let mut state = 0x5eed_5eedu64 ^ target;
        while logged < target {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let key = state % 4096;
            let changed = if state.is_multiple_of(3) {
                map.delete(&mut handle, key)
            } else {
                map.insert(&mut handle, key, state)
            };
            if changed {
                logged += 1;
            }
            if checkpoint_halfway && logged == target / 2 {
                map.checkpoint(&mut handle).expect("checkpoint");
            }
        }
        map.flush().expect("flush");
        let live = map.len_quiescent() as u64;

        let started = Instant::now();
        let recovery = recover(dir.path()).expect("recover");
        let elapsed = started.elapsed();
        maintenance.stop();

        assert_eq!(
            recovery.entries.len() as u64,
            live,
            "recovered entry count must match the live map"
        );
        let replay_us = elapsed.as_micros().max(1) as u64;
        let per_us = recovery.records_scanned as f64 / replay_us as f64;
        println!(
            "records={target:<8} segments={:<3} replayed={:<8} entries={live:<6} replay_us={replay_us:<8} records/us={per_us:.3}",
            recovery.segments, recovery.records_replayed,
        );
        if json_enabled() {
            let wal = sf_persist::stats::snapshot();
            println!(
                concat!(
                    "{{\"bin\":\"recovery\",\"records\":{},\"segments\":{},",
                    "\"records_replayed\":{},\"checkpoint_entries\":{},\"entries\":{},",
                    "\"replay_us\":{},\"records_per_us\":{:.6},\"ckpt_halfway\":{},",
                    "\"wal_records\":{},\"wal_bytes\":{},\"wal_batches\":{},",
                    "\"wal_checkpoints\":{},\"wal_replayed\":{},",
                    "\"wal_move_intents\":{},\"wal_moves_resolved\":{}}}"
                ),
                target,
                recovery.segments,
                recovery.records_replayed,
                recovery.checkpoint_entries,
                live,
                replay_us,
                per_us,
                checkpoint_halfway,
                wal.records,
                wal.bytes,
                wal.batches,
                wal.checkpoints,
                wal.replayed,
                wal.move_intents,
                wal.moves_resolved,
            );
        }
    }
    println!("Expected shape: replay scales linearly with surviving log length;");
    println!("a halfway checkpoint (SF_RECOVERY_CKPT=1) roughly halves the replayed records.");
}

/// Child process of the crash smoke: insert keys 1, 2, 3, ... through a
/// registry `+wal` backend and acknowledge each durable insert on stdout.
/// Runs until killed.
fn writer_child() {
    let backend_name = std::env::var("SF_RECOVERY_BACKEND").unwrap_or_else(|_| "sftree-opt".into());
    let backend =
        Backend::build(&format!("{backend_name}+wal"), StmConfig::ctl()).expect("build backend");
    let mut session = backend.session();
    let stdout = std::io::stdout();
    for key in 1..u64::MAX {
        assert!(session.insert(key, key * 10), "fresh keys always insert");
        // The insert returned => its record is durable. Acknowledge.
        let mut out = stdout.lock();
        writeln!(out, "ACK {key}").expect("parent closed the ack pipe");
        out.flush().expect("parent closed the ack pipe");
    }
}

/// Number of cross-shard key pairs the move hammer ping-pongs over.
const MOVE_PAIRS: usize = 8;

/// The unique value carried by pair `i` of the move hammer.
fn mover_value(pair: usize) -> u64 {
    1_000_000 + pair as u64
}

/// First key of the hammer's filler-insert range (disjoint from the pair
/// keys); a filler key always maps to itself. The fillers keep the
/// auto-checkpoint threshold firing *during* the hammer — a purely
/// move-driven workload never auto-checkpoints (the move scopes hold the
/// checkpoint locks), so without them the drill would sample zero
/// checkpoint/move interleavings.
const FILLER_BASE: u64 = 10_000_000;

/// Child process of the cross-shard move hammer: build a 2-shard durable
/// map directly (the drill needs `shard_of` to pick genuinely cross-shard
/// pairs), pre-insert one unique value per pair, then ping-pong each value
/// between its pair's keys forever, acknowledging every durable move on
/// stdout. Runs until killed.
fn mover_child() {
    let backend = std::env::var("SF_RECOVERY_BACKEND").unwrap_or_else(|_| "sftree-opt".into());
    let base =
        PathBuf::from(std::env::var("SF_RECOVERY_DIR").expect("mover needs SF_RECOVERY_DIR"));
    let options = WalOptions {
        group: 64,
        auto_checkpoint: 50,
        ..WalOptions::default()
    };
    match backend.as_str() {
        "sftree" => {
            let (map, _) =
                sharded_portable(2, StmConfig::ctl(), &base, options).expect("open sharded WAL");
            mover_hammer(map);
        }
        _ => {
            let (map, _) =
                sharded_optimized(2, StmConfig::ctl(), &base, options).expect("open sharded WAL");
            mover_hammer(map);
        }
    }
}

fn mover_hammer<M>(map: ShardedMap<DurableMap<M>>)
where
    M: TxMapVersioned + 'static,
    M::Handle: Send,
{
    let mut handle = map.register_sharded();
    // Pick MOVE_PAIRS disjoint key pairs whose halves hash to different
    // shards, so every hammered move crosses a shard-log boundary.
    let mut pairs: Vec<(u64, u64)> = Vec::new();
    let mut next_key = 1u64;
    while pairs.len() < MOVE_PAIRS {
        let a = next_key;
        let mut b = a + 1;
        while map.shard_of(b) == map.shard_of(a) {
            b += 1;
        }
        next_key = b + 1;
        pairs.push((a, b));
    }
    let stdout = std::io::stdout();
    {
        let mut out = stdout.lock();
        for (i, &(a, b)) in pairs.iter().enumerate() {
            assert!(map.insert(&mut handle, a, mover_value(i)));
            writeln!(out, "PAIR {i} {a} {b}").expect("parent closed the ack pipe");
        }
        writeln!(out, "READY").expect("parent closed the ack pipe");
        out.flush().expect("parent closed the ack pipe");
    }
    // pos[i] = 0 when value i sits at pairs[i].0, 1 when at pairs[i].1.
    let mut pos = [0u8; MOVE_PAIRS];
    let mut filler = FILLER_BASE;
    loop {
        for i in 0..MOVE_PAIRS {
            let (a, b) = pairs[i];
            let (from, to) = if pos[i] == 0 { (a, b) } else { (b, a) };
            assert!(
                map.move_entry(&mut handle, from, to),
                "single-threaded hammer moves always succeed"
            );
            pos[i] ^= 1;
            // The move returned => both halves are durable. Acknowledge.
            let mut out = stdout.lock();
            writeln!(out, "MOVE {i} {}", pos[i]).expect("parent closed the ack pipe");
            out.flush().expect("parent closed the ack pipe");
        }
        // Two filler inserts per pass keep the auto-checkpoint threshold
        // advancing, so kills also land while checkpoints race the moves.
        for _ in 0..2 {
            assert!(map.insert(&mut handle, filler, filler));
            filler += 1;
        }
    }
}

/// One round of the cross-shard move hammer: spawn the mover child against
/// a fresh directory, SIGKILL it after `target_acks` acknowledged moves,
/// recover both shard logs, and check conservation: every pair's value at
/// exactly one of its two keys, and no stray keys. Returns
/// `(acked, resolved, ok)` where `resolved` counts the orphaned move
/// intents the recovery's cross-log join had to complete or roll back.
fn mover_round(backend: &str, target_acks: u64) -> (u64, u64, bool) {
    let base = TempDir::new(&format!("recovery-mover-{backend}"));
    let exe = std::env::current_exe().expect("current_exe");
    let mut child = std::process::Command::new(exe)
        .env("SF_RECOVERY_ROLE", "mover")
        .env("SF_RECOVERY_BACKEND", backend)
        .env("SF_RECOVERY_DIR", base.path())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn mover child");
    let mut pairs: Vec<(u64, u64)> = vec![(0, 0); MOVE_PAIRS];
    let mut acked = 0u64;
    {
        let stdout = child.stdout.take().expect("child stdout");
        let reader = std::io::BufReader::new(stdout);
        for line in reader.lines() {
            let line = line.expect("read ack");
            let mut tokens = line.split_whitespace();
            match tokens.next() {
                Some("PAIR") => {
                    let i: usize = tokens
                        .next()
                        .and_then(|t| t.parse().ok())
                        .expect("pair idx");
                    let a: u64 = tokens.next().and_then(|t| t.parse().ok()).expect("pair a");
                    let b: u64 = tokens.next().and_then(|t| t.parse().ok()).expect("pair b");
                    pairs[i] = (a, b);
                }
                Some("MOVE") => acked += 1,
                _ => {}
            }
            if acked >= target_acks {
                break;
            }
        }
    }
    // The child is mid-move (possibly between the two shard logs' appends):
    // kill it dead.
    child.kill().expect("kill mover child");
    let _ = child.wait();

    let recovery = recover_sharded(base.path(), 2).expect("recover sharded");
    let recovered: BTreeMap<u64, u64> = recovery.entries.iter().copied().collect();
    let mut ok = true;
    for (i, &(a, b)) in pairs.iter().enumerate() {
        let value = mover_value(i);
        let at_a = recovered.get(&a) == Some(&value);
        let at_b = recovered.get(&b) == Some(&value);
        if at_a && at_b {
            ok = false;
            eprintln!("{backend}: pair {i} value {value} DUPLICATED at keys {a} and {b}");
        }
        if !at_a && !at_b {
            ok = false;
            eprintln!("{backend}: pair {i} value {value} LOST (at neither {a} nor {b})");
        }
    }
    // Every recovered key must belong to a pair (holding that pair's
    // value) or be a self-valued filler insert.
    for (&key, &value) in &recovered {
        let legit = (key >= FILLER_BASE && value == key)
            || pairs
                .iter()
                .enumerate()
                .any(|(i, &(a, b))| (key == a || key == b) && value == mover_value(i));
        if !legit {
            ok = false;
            eprintln!("{backend}: stray recovered entry {key} -> {value}");
        }
    }
    (acked, recovery.moves_resolved, ok)
}

/// Parent of the crash smoke: spawn, ack-count, SIGKILL, recover, verify.
fn crash_smoke() {
    let target_acks = env_u64("SF_RECOVERY_ACKS", 150);
    let mut failures = 0u32;
    for backend in ["sftree-opt", "sftree-opt-sharded2"] {
        let base = TempDir::new(&format!("recovery-smoke-{backend}"));
        let exe = std::env::current_exe().expect("current_exe");
        let mut child = std::process::Command::new(exe)
            .env("SF_RECOVERY_ROLE", "writer")
            .env("SF_RECOVERY_BACKEND", backend)
            .env("SF_WAL_DIR", base.path())
            .env_remove("SF_WAL_GROUP") // children must sync per batch
            .stdout(std::process::Stdio::piped())
            .spawn()
            .expect("spawn writer child");
        let mut acked = 0u64;
        {
            let stdout = child.stdout.take().expect("child stdout");
            let reader = std::io::BufReader::new(stdout);
            for line in reader.lines() {
                let line = line.expect("read ack");
                if let Some(key) = line
                    .strip_prefix("ACK ")
                    .and_then(|k| k.parse::<u64>().ok())
                {
                    acked = acked.max(key);
                }
                if acked >= target_acks {
                    break;
                }
            }
        }
        // The child is mid-insert (and mid-maintenance): kill it dead.
        child.kill().expect("kill writer child");
        let _ = child.wait();

        // The child's registry build #0 landed in `<backend>+wal-0`.
        let dir: PathBuf = base.path().join(format!("{backend}+wal-0"));
        let recovery = if backend.contains("sharded2") {
            recover_sharded(&dir, 2).expect("recover sharded")
        } else {
            recover(&dir).expect("recover")
        };
        let recovered: BTreeMap<u64, u64> = recovery.entries.iter().copied().collect();
        let max_key = recovery.entries.last().map_or(0, |&(k, _)| k);
        let mut ok = max_key >= acked;
        for key in 1..=max_key {
            if recovered.get(&key) != Some(&(key * 10)) {
                ok = false;
                eprintln!("{backend}: key {key} lost or wrong after crash");
            }
        }
        // The dense prefix property: exactly the keys 1..=max survive (the
        // child only ever inserted fresh keys in order).
        if recovered.len() as u64 != max_key {
            ok = false;
        }
        println!(
            "crash-smoke backend={backend} acked={acked} recovered={} max_key={max_key} torn_bytes={} => {}",
            recovered.len(),
            recovery.torn_bytes,
            if ok { "PASS" } else { "FAIL" }
        );
        if json_enabled() {
            println!(
                "{{\"bin\":\"recovery-smoke\",\"backend\":\"{backend}\",\"acked\":{acked},\"recovered\":{},\"pass\":{ok}}}",
                recovered.len()
            );
        }
        if !ok {
            failures += 1;
        }
    }

    // Phase 2: the cross-shard move hammer (see the module docs) — several
    // kill-recover rounds per sharded backend so the SIGKILL samples many
    // points of the move protocol, including between the two shard logs.
    let move_rounds = env_u64("SF_RECOVERY_MOVE_ROUNDS", 3);
    let move_acks = env_u64("SF_RECOVERY_MOVE_ACKS", 120);
    for backend in ["sftree-opt", "sftree"] {
        let mut total_acked = 0u64;
        let mut total_resolved = 0u64;
        let mut ok = true;
        for round in 0..move_rounds {
            // Vary the kill point across rounds.
            let (acked, resolved, round_ok) = mover_round(backend, move_acks + round * 17);
            total_acked += acked;
            total_resolved += resolved;
            ok &= round_ok;
        }
        println!(
            "crash-smoke cross-move backend={backend}-sharded2+wal rounds={move_rounds} acked={total_acked} moves_resolved={total_resolved} => {}",
            if ok { "PASS" } else { "FAIL" }
        );
        if json_enabled() {
            println!(
                "{{\"bin\":\"recovery-smoke\",\"phase\":\"cross-move\",\"backend\":\"{backend}-sharded2+wal\",\"rounds\":{move_rounds},\"acked\":{total_acked},\"moves_resolved\":{total_resolved},\"pass\":{ok}}}"
            );
        }
        if !ok {
            failures += 1;
        }
    }

    if failures > 0 {
        std::process::exit(1);
    }
}
