//! Recovery harness: replay throughput vs. log length, plus a real
//! crash-recovery smoke used by CI.
//!
//! **Sweep mode** (default): for each length in `SF_RECOVERY_LENGTHS`
//! (default `1000 5000 20000` records), write that many effective mutations
//! through a durable optimized tree (buffered log — the sweep measures
//! *replay*, not fsync), then measure `sf_persist::recover` over the
//! directory. One row (and, with `SF_JSON=1`, one JSON line) per length;
//! set `SF_RECOVERY_CKPT=1` to checkpoint at the halfway point and measure
//! checkpoint-accelerated recovery instead.
//!
//! **Crash smoke** (`SF_RECOVERY_SMOKE=1`): for a plain and a sharded
//! durable backend, spawn this same binary as a *writer child*
//! (`SF_RECOVERY_ROLE=writer`) that inserts keys through the registry's
//! `+wal` backend and prints `ACK <key>` after each durably acknowledged
//! insert; SIGKILL it mid-stream; recover the directory in the parent and
//! verify every acknowledged key survived. Exits non-zero on any loss —
//! this is the "commit returned, then the machine died" contract, tested
//! with an actual killed process.

use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use sf_bench::json_enabled;
use sf_persist::{recover, recover_sharded, DurableMap, TempDir, WalOptions};
use sf_stm::{Stm, StmConfig};
use sf_tree::{OptSpecFriendlyTree, TxMap};
use sf_workloads::Backend;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    match std::env::var("SF_RECOVERY_ROLE").as_deref() {
        Ok("writer") => writer_child(),
        _ if std::env::var("SF_RECOVERY_SMOKE").as_deref() == Ok("1") => crash_smoke(),
        _ => replay_sweep(),
    }
}

/// Sweep mode: replay throughput as a function of log length.
fn replay_sweep() {
    let lengths: Vec<u64> = std::env::var("SF_RECOVERY_LENGTHS")
        .ok()
        .map(|s| {
            s.split_whitespace()
                .filter_map(|t| t.parse().ok())
                .collect()
        })
        .filter(|v: &Vec<u64>| !v.is_empty())
        .unwrap_or_else(|| vec![1_000, 5_000, 20_000]);
    let checkpoint_halfway = std::env::var("SF_RECOVERY_CKPT").as_deref() == Ok("1");
    println!("# recovery — replay throughput vs. log length (ckpt-halfway: {checkpoint_halfway})");

    for &target in &lengths {
        let dir = TempDir::new("recovery-sweep");
        let stm = Stm::new(StmConfig::ctl());
        let tree = Arc::new(OptSpecFriendlyTree::new());
        let maintenance = tree.start_maintenance(stm.register());
        // Buffered mode: the sweep measures replay, not per-op fsync cost.
        let options = WalOptions {
            group: 0,
            auto_checkpoint: 0,
        };
        let (map, _) = DurableMap::open(tree, &stm, dir.path(), options).expect("open WAL");
        let mut handle = map.register(stm.register());

        // Mixed effective mutations over a small domain: roughly half the
        // records are deletes, exercising both replay paths.
        let mut logged = 0u64;
        let mut state = 0x5eed_5eedu64 ^ target;
        while logged < target {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let key = state % 4096;
            let changed = if state.is_multiple_of(3) {
                map.delete(&mut handle, key)
            } else {
                map.insert(&mut handle, key, state)
            };
            if changed {
                logged += 1;
            }
            if checkpoint_halfway && logged == target / 2 {
                map.checkpoint(&mut handle).expect("checkpoint");
            }
        }
        map.flush().expect("flush");
        let live = map.len_quiescent() as u64;

        let started = Instant::now();
        let recovery = recover(dir.path()).expect("recover");
        let elapsed = started.elapsed();
        maintenance.stop();

        assert_eq!(
            recovery.entries.len() as u64,
            live,
            "recovered entry count must match the live map"
        );
        let replay_us = elapsed.as_micros().max(1) as u64;
        let per_us = recovery.records_scanned as f64 / replay_us as f64;
        println!(
            "records={target:<8} segments={:<3} replayed={:<8} entries={live:<6} replay_us={replay_us:<8} records/us={per_us:.3}",
            recovery.segments, recovery.records_replayed,
        );
        if json_enabled() {
            let wal = sf_persist::stats::snapshot();
            println!(
                concat!(
                    "{{\"bin\":\"recovery\",\"records\":{},\"segments\":{},",
                    "\"records_replayed\":{},\"checkpoint_entries\":{},\"entries\":{},",
                    "\"replay_us\":{},\"records_per_us\":{:.6},\"ckpt_halfway\":{},",
                    "\"wal_records\":{},\"wal_bytes\":{},\"wal_batches\":{},",
                    "\"wal_checkpoints\":{},\"wal_replayed\":{}}}"
                ),
                target,
                recovery.segments,
                recovery.records_replayed,
                recovery.checkpoint_entries,
                live,
                replay_us,
                per_us,
                checkpoint_halfway,
                wal.records,
                wal.bytes,
                wal.batches,
                wal.checkpoints,
                wal.replayed,
            );
        }
    }
    println!("Expected shape: replay scales linearly with surviving log length;");
    println!("a halfway checkpoint (SF_RECOVERY_CKPT=1) roughly halves the replayed records.");
}

/// Child process of the crash smoke: insert keys 1, 2, 3, ... through a
/// registry `+wal` backend and acknowledge each durable insert on stdout.
/// Runs until killed.
fn writer_child() {
    let backend_name = std::env::var("SF_RECOVERY_BACKEND").unwrap_or_else(|_| "sftree-opt".into());
    let backend =
        Backend::build(&format!("{backend_name}+wal"), StmConfig::ctl()).expect("build backend");
    let mut session = backend.session();
    let stdout = std::io::stdout();
    for key in 1..u64::MAX {
        assert!(session.insert(key, key * 10), "fresh keys always insert");
        // The insert returned => its record is durable. Acknowledge.
        let mut out = stdout.lock();
        writeln!(out, "ACK {key}").expect("parent closed the ack pipe");
        out.flush().expect("parent closed the ack pipe");
    }
}

/// Parent of the crash smoke: spawn, ack-count, SIGKILL, recover, verify.
fn crash_smoke() {
    let target_acks = env_u64("SF_RECOVERY_ACKS", 150);
    let mut failures = 0u32;
    for backend in ["sftree-opt", "sftree-opt-sharded2"] {
        let base = TempDir::new(&format!("recovery-smoke-{backend}"));
        let exe = std::env::current_exe().expect("current_exe");
        let mut child = std::process::Command::new(exe)
            .env("SF_RECOVERY_ROLE", "writer")
            .env("SF_RECOVERY_BACKEND", backend)
            .env("SF_WAL_DIR", base.path())
            .env_remove("SF_WAL_GROUP") // children must sync per batch
            .stdout(std::process::Stdio::piped())
            .spawn()
            .expect("spawn writer child");
        let mut acked = 0u64;
        {
            let stdout = child.stdout.take().expect("child stdout");
            let reader = std::io::BufReader::new(stdout);
            for line in reader.lines() {
                let line = line.expect("read ack");
                if let Some(key) = line
                    .strip_prefix("ACK ")
                    .and_then(|k| k.parse::<u64>().ok())
                {
                    acked = acked.max(key);
                }
                if acked >= target_acks {
                    break;
                }
            }
        }
        // The child is mid-insert (and mid-maintenance): kill it dead.
        child.kill().expect("kill writer child");
        let _ = child.wait();

        // The child's registry build #0 landed in `<backend>+wal-0`.
        let dir: PathBuf = base.path().join(format!("{backend}+wal-0"));
        let recovery = if backend.contains("sharded2") {
            recover_sharded(&dir, 2).expect("recover sharded")
        } else {
            recover(&dir).expect("recover")
        };
        let recovered: BTreeMap<u64, u64> = recovery.entries.iter().copied().collect();
        let max_key = recovery.entries.last().map_or(0, |&(k, _)| k);
        let mut ok = max_key >= acked;
        for key in 1..=max_key {
            if recovered.get(&key) != Some(&(key * 10)) {
                ok = false;
                eprintln!("{backend}: key {key} lost or wrong after crash");
            }
        }
        // The dense prefix property: exactly the keys 1..=max survive (the
        // child only ever inserted fresh keys in order).
        if recovered.len() as u64 != max_key {
            ok = false;
        }
        println!(
            "crash-smoke backend={backend} acked={acked} recovered={} max_key={max_key} torn_bytes={} => {}",
            recovered.len(),
            recovery.torn_bytes,
            if ok { "PASS" } else { "FAIL" }
        );
        if json_enabled() {
            println!(
                "{{\"bin\":\"recovery-smoke\",\"backend\":\"{backend}\",\"acked\":{acked},\"recovered\":{},\"pass\":{ok}}}",
                recovered.len()
            );
        }
        if !ok {
            failures += 1;
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
