//! Figure 6: the STAMP vacation travel-reservation application built on the
//! directory-capable trees — speedup over sequential execution and duration,
//! for the low- and high-contention presets and 1×/8×/16× transaction
//! counts. Also prints the §5.5 rotation-count comparison.
//!
//! Run with `cargo run -p sf-bench --release --bin fig6`. The 8× and 16×
//! scales are only run when `SF_VACATION_FULL=1` (they multiply the runtime
//! accordingly). `SF_VACATION_TX` sets the 1× transaction count.
//!
//! `SF_STRUCTURES` selects the directories compared against the sequential
//! baseline (default: `rbtree sftree-opt nrtree`). Vacation composes several
//! map operations into one transaction, so it needs single-STM
//! [`DirectoryMap`] backends; sharded names are reported and skipped.

use std::sync::Arc;
use std::time::Duration;

use sf_baselines::{AvlTree, NoRestructureTree, RedBlackTree, SeqMap};
use sf_bench::structures;
use sf_stm::Stm;
use sf_tree::{MaintenanceConfig, OptSpecFriendlyTree, SpecFriendlyTree};
use sf_vacation::{
    run_vacation, DirectoryMap, Manager, ReservationKind, VacationParams, VacationResult,
};

fn params(high_contention: bool, multiplier: u64, clients: usize) -> VacationParams {
    let base = if high_contention {
        VacationParams::high_contention()
    } else {
        VacationParams::low_contention()
    };
    VacationParams {
        num_transactions: sf_bench::vacation_transactions(),
        ..base
    }
    .with_transaction_multiplier(multiplier)
    .with_clients(clients)
}

/// Run vacation on a directory type without any background maintenance.
fn run_plain<D: DirectoryMap + Default>(p: &VacationParams) -> VacationResult {
    let stm = Stm::default_config();
    let manager = Arc::new(Manager::<D>::new());
    run_vacation(&stm, &manager, p)
}

/// Run vacation on a speculation-friendly directory with one maintenance
/// thread per table, as in the paper.
fn run_with_maintenance<D>(
    p: &VacationParams,
    start: impl Fn(&D, &Arc<Stm>) -> sf_tree::MaintenanceHandle,
) -> VacationResult
where
    D: DirectoryMap + Default,
{
    let stm = Stm::default_config();
    let manager = Arc::new(Manager::<D>::new());
    let maintenance: Vec<_> = ReservationKind::ALL
        .iter()
        .map(|k| start(manager.table(*k), &stm))
        .collect();
    let result = run_vacation(&stm, &manager, p);
    drop(maintenance);
    result
}

fn maintenance_config() -> MaintenanceConfig {
    MaintenanceConfig {
        pass_delay: Duration::from_micros(500),
        ..MaintenanceConfig::default()
    }
}

/// A boxed vacation run over one directory backend.
type VacationRunner = Box<dyn Fn(&VacationParams) -> VacationResult>;

/// Resolve a registry name to a vacation runner, if the backend can serve as
/// a transactional directory.
fn vacation_runner(name: &str) -> Option<VacationRunner> {
    match name {
        "rbtree" => Some(Box::new(run_plain::<RedBlackTree>)),
        "avl" => Some(Box::new(run_plain::<AvlTree>)),
        "nrtree" => Some(Box::new(run_plain::<NoRestructureTree>)),
        "seq" => Some(Box::new(run_plain::<SeqMap>)),
        "sftree" => Some(Box::new(|p| {
            run_with_maintenance::<SpecFriendlyTree>(p, |tree, stm| {
                tree.start_maintenance_with(stm.register(), maintenance_config())
            })
        })),
        "sftree-opt" => Some(Box::new(|p| {
            run_with_maintenance::<OptSpecFriendlyTree>(p, |tree, stm| {
                tree.start_maintenance_with(stm.register(), maintenance_config())
            })
        })),
        _ => None,
    }
}

fn main() {
    let names = structures(&["rbtree", "sftree-opt", "nrtree"]);
    let runners: Vec<(String, VacationRunner)> = names
        .iter()
        .filter_map(|name| match vacation_runner(name) {
            Some(runner) => Some((name.clone(), runner)),
            None => {
                eprintln!(
                    "fig6: skipping '{name}': vacation needs a single-STM DirectoryMap backend \
                     (one of: rbtree, avl, nrtree, seq, sftree, sftree-opt)"
                );
                None
            }
        })
        .collect();
    let multipliers: Vec<u64> = if std::env::var("SF_VACATION_FULL").is_ok() {
        vec![1, 8, 16]
    } else {
        vec![1]
    };
    for &high in &[true, false] {
        for &mult in &multipliers {
            println!(
                "# Figure 6 — vacation {} contention, {}x transactions",
                if high { "high" } else { "low" },
                mult
            );
            let seq = run_plain::<SeqMap>(&params(high, mult, 1));
            println!(
                "{:<12} clients={:<3} duration={:>10.2?}  (sequential baseline)",
                "Sequential", 1, seq.elapsed
            );
            for clients in sf_bench::thread_counts() {
                let p = params(high, mult, clients);
                for (_, runner) in &runners {
                    let r = runner(&p);
                    println!(
                        "{:<12} clients={:<3} duration={:>10.2?} speedup={:>6.2} aborts/commit={:>6.3} rotations={}",
                        r.structure,
                        clients,
                        r.elapsed,
                        r.speedup_over(&seq),
                        r.stm.aborts as f64 / r.stm.commits.max(1) as f64,
                        r.rotations
                    );
                }
            }
            println!();
        }
    }
    println!("Expected shape: vacation on the speculation-friendly tree always at least matches the built-in red-black tree");
    println!("(paper: 1.3x at 1x transactions up to 3.5x at 16x), the NRtree is comparable to the SF tree, and the SF tree");
    println!("triggers far fewer rotations than the red-black tree (paper: ~50k vs ~130k on 8 threads, high contention).");
}
