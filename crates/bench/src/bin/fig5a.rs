//! Figure 5(a): speedup over the plain red-black tree obtained by (i) keeping
//! the red-black tree but running it on elastic transactions, versus (ii)
//! replacing it with another structure from the registry, as the update
//! ratio grows from 10% to 40%.
//!
//! Run with `cargo run -p sf-bench --release --bin fig5a`. The structures
//! compared against the red-black baseline come from `SF_STRUCTURES`
//! (default: `sftree sftree-opt`).

use sf_bench::{base_config, emit_json, run_structure, structures, thread_counts, ExtraJson};
use sf_stm::StmConfig;

fn main() {
    let threads = *thread_counts().iter().max().unwrap_or(&4);
    let names = structures(&["sftree", "sftree-opt"]);
    println!("# Figure 5(a) — speedup over the red-black tree on a regular TM ({threads} threads)");
    for update_pct in [10u32, 20, 30, 40] {
        let ratio = update_pct as f64 / 100.0;
        let config = base_config(threads, ratio);
        let rb_normal = run_structure("rbtree", StmConfig::ctl(), &config);
        let rb_elastic = run_structure("rbtree", StmConfig::elastic(), &config);
        let base_throughput = rb_normal.ops_per_microsecond();
        let pct = |x: f64| (x / base_throughput - 1.0) * 100.0;
        emit_json(
            "rbtree-baseline",
            &rb_normal,
            &ExtraJson::figure("fig5a").build(),
        );
        emit_json(
            "rbtree-elastic",
            &rb_elastic,
            &ExtraJson::figure("fig5a").build(),
        );
        println!(
            "{:<10} {:<22} {:>9.1}%",
            format!("{update_pct}%"),
            "RBtree+elastic",
            pct(rb_elastic.ops_per_microsecond())
        );
        for name in &names {
            let result = run_structure(name, StmConfig::ctl(), &config);
            emit_json(name, &result, &ExtraJson::figure("fig5a").build());
            println!(
                "{:<10} {:<22} {:>9.1}%",
                format!("{update_pct}%"),
                result.structure,
                pct(result.ops_per_microsecond())
            );
        }
        println!();
    }
    println!("Expected shape: refactoring the data structure (SFtree/OptSFtree, paper average 22%) buys more than");
    println!("relaxing the transaction model under the same structure (elastic RBtree, paper average 15%).");
}
