//! Figure 5(a): speedup over the plain red-black tree obtained by (i) keeping
//! the red-black tree but running it on elastic transactions, versus (ii)
//! replacing it with the (optionally optimized) speculation-friendly tree, as
//! the update ratio grows from 10% to 40%.
//!
//! Run with `cargo run -p sf-bench --release --bin fig5a`.

use sf_bench::{base_config, run_micro, thread_counts, TreeKind};
use sf_stm::StmConfig;

fn main() {
    let threads = *thread_counts().iter().max().unwrap_or(&4);
    println!("# Figure 5(a) — speedup over the red-black tree on a regular TM ({threads} threads)");
    println!(
        "{:<10} {:>18} {:>18} {:>18}",
        "Update", "Elastic speedup", "SFtree speedup", "OptSFtree speedup"
    );
    for update_pct in [10u32, 20, 30, 40] {
        let ratio = update_pct as f64 / 100.0;
        let config = base_config(threads, ratio);
        let rb_normal =
            run_micro(TreeKind::RedBlack, StmConfig::ctl(), &config).ops_per_microsecond();
        let rb_elastic =
            run_micro(TreeKind::RedBlack, StmConfig::elastic(), &config).ops_per_microsecond();
        let sf = run_micro(TreeKind::SpecFriendly, StmConfig::ctl(), &config).ops_per_microsecond();
        let opt =
            run_micro(TreeKind::OptSpecFriendly, StmConfig::ctl(), &config).ops_per_microsecond();
        let pct = |x: f64| (x / rb_normal - 1.0) * 100.0;
        println!(
            "{:<10} {:>17.1}% {:>17.1}% {:>17.1}%",
            format!("{update_pct}%"),
            pct(rb_elastic),
            pct(sf),
            pct(opt)
        );
    }
    println!();
    println!("Expected shape: refactoring the data structure (SFtree/OptSFtree, paper average 22%) buys more than");
    println!("relaxing the transaction model under the same structure (elastic RBtree, paper average 15%).");
}
