//! Skew sweep (repository exhibit, no paper counterpart): hot-key
//! self-adjusting restructuring under Zipfian access patterns.
//!
//! Lookup-heavy workload (10% effective updates) whose point-operation keys
//! are drawn from a bounded Zipf distribution over the key range. The sweep
//! pits the speculation-friendly trees with hot-key restructuring enabled
//! (`sftree-opt-hot`) against the same tree rotation-only (`sftree-opt`) and
//! against the rotation-free randomized `ziptree` control, reporting the
//! maintenance-side `hot_rotations`, the sampled mass-weighted average
//! access depth, and the depth of the single hottest key.
//!
//! Expected shape: under skew the hot-enabled tree lifts the hot keys toward
//! the root (lower `hot_avg_depth` / `hot_key_depth`, higher throughput than
//! rotation-only) without adding aborts, while the zip tree's
//! history-independent shape ignores skew entirely.
//!
//! Run with `cargo run -p sf-bench --release --bin zipf`. Pick a single skew
//! with `SF_ZIPF_THETA` (default: sweep θ ∈ {0.5, 0.9, 1.2}); scale with
//! `SF_THREADS`, `SF_DURATION_MS`, `SF_SIZE`; select structures with
//! `SF_STRUCTURES`; `SF_JSON=1` adds one machine-readable line per cell.

use sf_bench::{
    base_config, emit_json, run_structure, structures, thread_counts, zipf_theta, ExtraJson,
};
use sf_stm::StmConfig;

fn main() {
    let names = structures(&["sftree-opt", "sftree-opt-hot", "ziptree"]);
    let thetas: Vec<f64> = match zipf_theta() {
        Some(theta) => vec![theta],
        None => vec![0.5, 0.9, 1.2],
    };
    for &theta in &thetas {
        println!("# Zipf sweep — θ={theta}, 10% updates, point keys rank-ordered (key 0 hottest)");
        for threads in thread_counts() {
            for name in &names {
                let config = base_config(threads, 0.10).with_zipf_theta(Some(theta));
                let result = run_structure(name, StmConfig::ctl(), &config);
                let label = format!("zipf{theta} {}", result.structure);
                println!(
                    "{label:<26} threads={threads:<3} throughput={:>8.3} ops/us  hot-rotations={:<6} hot-avg-depth={:>6.2} hot-key-depth={:<3} aborts/commit={:>6.3}",
                    result.ops_per_microsecond(),
                    result.hot.hot_rotations,
                    result.hot.avg_depth,
                    result.hot.hottest_depth,
                    result.abort_ratio(),
                );
                emit_json(
                    &label,
                    &result,
                    &ExtraJson::figure("zipf").num("theta", theta).build(),
                );
            }
        }
        println!();
    }
    println!("Expected shape: skewed lookups concentrate on low keys; the hot-enabled SF tree's maintenance");
    println!("thread lifts them (hot_rotations > 0, hot-key depth falls toward 1) at zero extra aborts, the");
    println!("rotation-only tree keeps them at their height-balanced depth, and the zip tree's shape is a");
    println!(
        "function of the key set alone — a control that cannot adapt to skew by construction."
    );
}
