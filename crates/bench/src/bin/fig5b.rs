//! Figure 5(b): reusability — throughput on a workload with 90% read-only
//! operations and 10% updates of which 1%, 5% or 10% (of all operations) are
//! composed `move` operations.
//!
//! Run with `cargo run -p sf-bench --release --bin fig5b`. Select structures
//! with `SF_STRUCTURES` (default: `sftree-opt`); the sharded backends run
//! their cross-shard move protocol here.

use sf_bench::{base_config, print_row, run_structure, structures, thread_counts};
use sf_stm::StmConfig;

fn main() {
    let names = structures(&["sftree-opt"]);
    println!("# Figure 5(b) — move-operation workloads (10% updates total)");
    for move_pct_of_ops in [1u32, 5, 10] {
        // `move_ratio` is expressed as a fraction of update operations.
        let move_ratio = move_pct_of_ops as f64 / 10.0;
        println!("## {move_pct_of_ops}% of all operations are moves");
        for threads in thread_counts() {
            for name in &names {
                let config = base_config(threads, 0.10).with_move_ratio(move_ratio);
                let result = run_structure(name, StmConfig::ctl(), &config);
                print_row(
                    &format!("{}%-move {}", move_pct_of_ops, result.structure),
                    threads,
                    &result,
                );
            }
        }
        println!();
    }
    println!("Expected shape: throughput decreases as the share of moves grows, because a move protects more of the");
    println!("structure for longer than a plain insert or delete (paper §5.4).");
}
