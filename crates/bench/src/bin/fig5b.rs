//! Figure 5(b): reusability — throughput of the speculation-friendly tree on
//! a workload with 90% read-only operations and 10% updates of which 1%, 5%
//! or 10% (of all operations) are composed `move` operations.
//!
//! Run with `cargo run -p sf-bench --release --bin fig5b`.

use sf_bench::{base_config, print_row, run_micro, thread_counts, TreeKind};
use sf_stm::StmConfig;

fn main() {
    println!("# Figure 5(b) — move-operation workloads on the speculation-friendly tree (10% updates total)");
    for move_pct_of_ops in [1u32, 5, 10] {
        // `move_ratio` is expressed as a fraction of update operations.
        let move_ratio = move_pct_of_ops as f64 / 10.0;
        println!("## {move_pct_of_ops}% of all operations are moves");
        for threads in thread_counts() {
            let config = base_config(threads, 0.10).with_move_ratio(move_ratio);
            let result = run_micro(TreeKind::OptSpecFriendly, StmConfig::ctl(), &config);
            print_row(&format!("{}%-move", move_pct_of_ops), threads, &result);
        }
        println!();
    }
    println!("Expected shape: throughput decreases as the share of moves grows, because a move protects more of the");
    println!("structure for longer than a plain insert or delete (paper §5.4).");
}
