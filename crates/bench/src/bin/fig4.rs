//! Figure 4: portability of the speculation-friendly tree to other TM
//! configurations — an elastic-transaction TM (E-STM-style) and eager lock
//! acquirement (TinySTM-ETL-style).
//!
//! Run with `cargo run -p sf-bench --release --bin fig4`. Select structures
//! with `SF_STRUCTURES` (any registry name).

use sf_bench::{base_config, print_row, run_structure, structures, thread_counts};
use sf_stm::StmConfig;

fn main() {
    let names = structures(&["rbtree", "sftree", "avl"]);
    for (tm_name, config_fn) in [
        (
            "E-STM (elastic transactions)",
            StmConfig::elastic as fn() -> StmConfig,
        ),
        (
            "TinySTM-ETL (eager acquirement)",
            StmConfig::etl as fn() -> StmConfig,
        ),
    ] {
        println!("# Figure 4 — {tm_name}, 10% updates");
        for threads in thread_counts() {
            for name in &names {
                let config = base_config(threads, 0.10);
                let result = run_structure(name, config_fn(), &config);
                let label = result.structure.clone();
                print_row(&label, threads, &result);
            }
        }
        println!();
    }
    println!("Expected shape: the speculation-friendly tree stays ahead of the RB and AVL baselines under both TM configurations,");
    println!("showing the benefit is independent of the TM algorithm (paper §5.3).");
}
