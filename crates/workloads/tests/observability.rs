//! Cross-layer observability invariants under real 4-thread contention:
//! the abort-cause taxonomy must partition the abort total exactly, and the
//! sampled latency histograms must capture the measured phase, on both
//! speculation-friendly tree variants.

use sf_stm::StmConfig;
use sf_workloads::{populate_and_run_backend, Backend, RunLength, WorkloadConfig};

/// A small, update-heavy, scan-mixing shape that reliably produces
/// conflicts at 4 threads while staying fast enough for CI.
fn contended_config() -> WorkloadConfig {
    WorkloadConfig::paper_default()
        .with_size(128)
        .with_threads(4)
        .with_update_ratio(0.5)
        .with_move_ratio(0.1)
        .with_scan_ratio(0.05)
        .with_scan_width(32)
        .with_seed(7)
        .with_run(RunLength::Ops(5_000))
}

fn run_contended(name: &str) -> sf_workloads::WorkloadResult {
    let backend = Backend::build(name, StmConfig::ctl()).unwrap();
    populate_and_run_backend(&backend, &contended_config())
}

#[test]
fn abort_causes_partition_the_abort_total_on_both_sf_trees() {
    for name in ["sftree", "sftree-opt"] {
        let result = run_contended(name);
        let stm = &result.stm;
        let causes = stm.abort_read_validation
            + stm.abort_lock_conflict
            + stm.abort_combiner
            + stm.abort_explicit
            + stm.abort_scan_validation;
        assert_eq!(
            causes,
            stm.aborts,
            "{name}: cause counters must sum exactly to the abort total \
             (read_validation={} lock_conflict={} combiner={} explicit={} \
             scan_validation={} aborts={})",
            stm.abort_read_validation,
            stm.abort_lock_conflict,
            stm.abort_combiner,
            stm.abort_explicit,
            stm.abort_scan_validation,
            stm.aborts,
        );
        // This shape contends hard enough that the taxonomy is non-trivial:
        // a zero abort total would make the partition check vacuous.
        assert!(stm.aborts > 0, "{name}: expected conflicts at 4 threads");
        // The legacy aggregate views stay consistent with the taxonomy.
        assert_eq!(stm.abort_scan_validation, stm.scan_aborts, "{name}");
        assert!(stm.abort_explicit <= stm.explicit_aborts, "{name}");
    }
}

#[test]
fn latency_histograms_capture_the_measured_phase() {
    for name in ["sftree", "sftree-opt"] {
        let result = run_contended(name);
        let lat = &result.lat;
        // 4 threads x 5000 ops at the default 1-in-32 sampling leaves
        // hundreds of samples; any nonzero rate must record something.
        assert!(
            lat.op.count() > 0,
            "{name}: sampled op histogram is empty over 20k operations"
        );
        assert!(lat.op.p99() > 0, "{name}: p99 of a nonempty histogram");
        assert!(
            lat.op.p50() <= lat.op.p99() && lat.op.p99() <= lat.op.max.max(lat.op.p99()),
            "{name}: percentiles are ordered"
        );
        // The merged view is exactly the sum of the per-kind views.
        let per_kind: u64 = lat.per_op.iter().map(|h| h.count()).sum();
        assert_eq!(lat.op.count(), per_kind, "{name}: merged == sum of kinds");
        // contains dominates this mix, so its histogram must have samples.
        assert!(
            lat.per_op[0].count() > 0,
            "{name}: contains-op histogram is empty"
        );
    }
}
