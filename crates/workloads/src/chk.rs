//! Driver-side integration of the `sf-check` engines.
//!
//! With the `check` feature, [`RunChecks::arm`] reads the `SF_CHECK_*`
//! environment at the start of a measured run: `SF_CHECK_SCHED_SEED`
//! installs the seeded schedule fuzzer, and `SF_CHECK_HISTORY=1` turns on
//! invocation/response timeline recording in every worker, verified for
//! linearizability against the initial contents after the workers join
//! (panicking with the replay seed on a violation). `SF_CHECK_RACES=1` is
//! consumed by the instrumentation hooks themselves; the driver just prints
//! the end-of-run race summary.
//!
//! Without the feature everything here is an inert zero-sized stand-in, so
//! `driver.rs` carries no `#[cfg]` at its call sites.
//!
//! Known scope limit: range scans over *sharded* backends are only
//! per-shard-atomic by design (see `sf_tree::sharded`), so a history check
//! of a scan workload is meaningful on single-STM backends only.

#[cfg(feature = "check")]
mod imp {
    use std::sync::Arc;

    use sf_check::history::{check_history_spawned, HistoryHandle, Pending, Recorder};
    pub(crate) use sf_check::history::{Op, Ret};

    /// Run-scoped dynamic-analysis state, armed from the environment.
    pub(crate) struct RunChecks {
        recorder: Option<Arc<Recorder>>,
        initial: Vec<(u64, u64)>,
    }

    impl RunChecks {
        /// Arm whatever the `SF_CHECK_*` environment asks for. `initial` is
        /// only invoked when history recording is on (it snapshots the
        /// pre-run contents, which the linearizability check starts from).
        pub(crate) fn arm(initial: impl FnOnce() -> Vec<(u64, u64)>) -> RunChecks {
            let _ = sf_check::sched::install_random_from_env();
            let recorder = std::env::var("SF_CHECK_HISTORY")
                .is_ok_and(|v| v == "1")
                .then(|| Arc::new(Recorder::new()));
            let initial = if recorder.is_some() {
                initial()
            } else {
                Vec::new()
            };
            RunChecks { recorder, initial }
        }

        /// A per-worker operation log (inert when history is off).
        pub(crate) fn worker(&self) -> WorkerLog {
            WorkerLog {
                handle: self.recorder.as_ref().map(Recorder::handle),
            }
        }

        /// After the workers joined: run the linearizability check over the
        /// recorded timeline and print the race-detector summary.
        ///
        /// # Panics
        /// Panics when the recorded history is not linearizable, printing
        /// the checker's diagnosis and the schedule replay seed.
        pub(crate) fn verify(self, label: &str) {
            if let Some(recorder) = self.recorder {
                let events = recorder.take();
                let verdict = check_history_spawned(self.initial, events);
                if verdict.ok {
                    eprintln!(
                        "sf-check history: {label}: {} ops linearizable ({} states explored)",
                        verdict.ops, verdict.explored
                    );
                } else {
                    let replay = sf_check::sched::replay_hint().unwrap_or_default();
                    panic!(
                        "sf-check history: {label}: NOT linearizable: {}{replay}",
                        verdict.message
                    );
                }
            }
            if let Some(summary) = sf_check::hooks::summary() {
                eprintln!("{summary}");
            }
        }
    }

    /// Per-worker invocation/response log.
    pub(crate) struct WorkerLog {
        handle: Option<HistoryHandle>,
    }

    /// Token tying a completion to its invocation.
    pub(crate) struct Ticket(Option<Pending>);

    impl WorkerLog {
        pub(crate) fn invoke(&mut self, op: Op) -> Ticket {
            Ticket(self.handle.as_mut().map(|h| h.invoke(op)))
        }

        pub(crate) fn complete(&mut self, ticket: Ticket, ret: Ret) {
            if let (Some(h), Some(p)) = (self.handle.as_mut(), ticket.0) {
                h.complete(p, ret);
            }
        }

        pub(crate) fn finish(self) {
            if let Some(h) = self.handle {
                h.finish();
            }
        }
    }
}

#[cfg(not(feature = "check"))]
mod imp {
    /// Inert mirror of `sf_check::history::Op`.
    #[allow(dead_code)]
    pub(crate) enum Op {
        Insert(u64, u64),
        Delete(u64),
        Contains(u64),
        Move(u64, u64),
        Scan(u64, u64),
    }

    /// Inert mirror of `sf_check::history::Ret`.
    #[allow(dead_code)]
    pub(crate) enum Ret {
        Bool(bool),
        Entries(Vec<(u64, u64)>),
    }

    pub(crate) struct RunChecks;

    impl RunChecks {
        #[inline(always)]
        pub(crate) fn arm(_initial: impl FnOnce() -> Vec<(u64, u64)>) -> RunChecks {
            RunChecks
        }

        #[inline(always)]
        pub(crate) fn worker(&self) -> WorkerLog {
            WorkerLog
        }

        #[inline(always)]
        pub(crate) fn verify(self, _label: &str) {}
    }

    pub(crate) struct WorkerLog;
    pub(crate) struct Ticket;

    impl WorkerLog {
        #[inline(always)]
        pub(crate) fn invoke(&mut self, _op: Op) -> Ticket {
            Ticket
        }

        #[inline(always)]
        pub(crate) fn complete(&mut self, _ticket: Ticket, _ret: Ret) {}

        #[inline(always)]
        pub(crate) fn finish(self) {}
    }
}

pub(crate) use imp::*;
