//! Workload configuration: the knobs of the synchrobench-style integer-set
//! micro-benchmark used throughout the paper's §5.

use std::time::Duration;

/// How long one benchmark run lasts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunLength {
    /// Wall-clock duration (the paper uses 10-second runs).
    Timed(Duration),
    /// A fixed number of operations per thread (deterministic, used by tests
    /// and quick sanity runs).
    Ops(u64),
}

/// Key-distribution bias of §5.2: inserted keys are skewed towards high
/// values and deleted keys towards low values by adding/subtracting an offset
/// drawn uniformly from `[0, skew)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bias {
    /// Exclusive upper bound of the skew offset (the paper uses 10).
    pub skew: u64,
}

impl Default for Bias {
    fn default() -> Self {
        Bias { skew: 10 }
    }
}

/// Full configuration of one micro-benchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Number of application threads.
    pub threads: usize,
    /// Run length (time- or operation-bounded).
    pub run: RunLength,
    /// Number of keys inserted before the measured phase; the update mix
    /// keeps the expected size at this value.
    pub initial_size: usize,
    /// Keys are drawn from `[0, key_range)`. The paper uses twice the
    /// initial size so roughly half of the membership tests succeed.
    pub key_range: u64,
    /// Fraction of operations that are *effective* updates
    /// (insert/delete/move that modify the structure), e.g. `0.10` for the
    /// 10%-update workloads of Figure 3.
    pub update_ratio: f64,
    /// Fraction of update operations that are `move` compositions
    /// (Figure 5(b)); the rest split evenly between inserts and deletes.
    pub move_ratio: f64,
    /// Fraction of operations that are ordered range scans. The scan
    /// decision is drawn first; `update_ratio` then applies to the remaining
    /// (non-scan) operations. `SF_SCAN_PCT` in the harnesses.
    pub scan_ratio: f64,
    /// Width of one range scan in key-space units: a scan covers
    /// `[origin, origin + scan_width)`. `SF_SCAN_WIDTH` in the harnesses.
    pub scan_width: u64,
    /// Optional key-distribution bias (Figure 3, right column).
    pub bias: Option<Bias>,
    /// Optional Zipfian skew parameter θ for point-operation keys
    /// (`SF_ZIPF_THETA` in the harnesses). When set, lookup/insert/delete
    /// keys are drawn from a bounded Zipf distribution over the key range
    /// (rank 0 = key 0 is the hottest) instead of uniformly; range-scan
    /// origins always use this distribution, at θ = 0.99 when unset.
    pub zipf_theta: Option<f64>,
    /// Seed for the workload's pseudo-random generators; each thread derives
    /// its own stream from this seed. `SF_SEED` in the harnesses.
    pub seed: u64,
}

impl WorkloadConfig {
    /// The paper's default micro-benchmark shape: 2^12 initial keys drawn
    /// from a 2^13 range, 10% effective updates, uniform keys, one second.
    pub fn paper_default() -> Self {
        WorkloadConfig {
            threads: 1,
            run: RunLength::Timed(Duration::from_secs(1)),
            initial_size: 1 << 12,
            key_range: 1 << 13,
            update_ratio: 0.10,
            move_ratio: 0.0,
            scan_ratio: 0.0,
            scan_width: 100,
            bias: None,
            zipf_theta: None,
            seed: 0x5eed_5eed,
        }
    }

    /// A fast, deterministic configuration for unit/integration tests.
    pub fn smoke_test() -> Self {
        WorkloadConfig {
            threads: 2,
            run: RunLength::Ops(300),
            initial_size: 256,
            key_range: 512,
            update_ratio: 0.2,
            move_ratio: 0.0,
            scan_ratio: 0.0,
            scan_width: 16,
            bias: None,
            zipf_theta: None,
            seed: 42,
        }
    }

    /// Builder-style helper: set the thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builder-style helper: set the effective update ratio.
    pub fn with_update_ratio(mut self, ratio: f64) -> Self {
        self.update_ratio = ratio;
        self
    }

    /// Builder-style helper: set the run length.
    pub fn with_run(mut self, run: RunLength) -> Self {
        self.run = run;
        self
    }

    /// Builder-style helper: enable the biased key distribution.
    pub fn with_bias(mut self, bias: Bias) -> Self {
        self.bias = Some(bias);
        self
    }

    /// Builder-style helper: set the move-operation share of updates.
    pub fn with_move_ratio(mut self, ratio: f64) -> Self {
        self.move_ratio = ratio;
        self
    }

    /// Builder-style helper: set the range-scan share of operations.
    pub fn with_scan_ratio(mut self, ratio: f64) -> Self {
        self.scan_ratio = ratio;
        self
    }

    /// Builder-style helper: set the range-scan width (keys spanned).
    pub fn with_scan_width(mut self, width: u64) -> Self {
        self.scan_width = width;
        self
    }

    /// Builder-style helper: set the Zipfian skew parameter θ for point
    /// operations (`None` restores uniform keys).
    pub fn with_zipf_theta(mut self, theta: Option<f64>) -> Self {
        self.zipf_theta = theta;
        self
    }

    /// Builder-style helper: set the workload seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style helper: set initial size and key range together
    /// (range = 2 × size, as in the paper).
    pub fn with_size(mut self, initial_size: usize) -> Self {
        self.initial_size = initial_size;
        self.key_range = (initial_size as u64) * 2;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let c = WorkloadConfig::paper_default()
            .with_threads(8)
            .with_update_ratio(0.15)
            .with_size(1 << 10)
            .with_bias(Bias::default())
            .with_move_ratio(0.05)
            .with_scan_ratio(0.1)
            .with_scan_width(64)
            .with_zipf_theta(Some(0.95))
            .with_seed(0xfeed)
            .with_run(RunLength::Ops(100));
        assert_eq!(c.threads, 8);
        assert_eq!(c.update_ratio, 0.15);
        assert_eq!(c.initial_size, 1024);
        assert_eq!(c.key_range, 2048);
        assert_eq!(c.bias, Some(Bias { skew: 10 }));
        assert_eq!(c.move_ratio, 0.05);
        assert_eq!(c.scan_ratio, 0.1);
        assert_eq!(c.scan_width, 64);
        assert_eq!(c.zipf_theta, Some(0.95));
        assert_eq!(c.seed, 0xfeed);
        assert_eq!(c.run, RunLength::Ops(100));
    }
}
