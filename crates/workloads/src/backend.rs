//! The backend registry: one place that knows how to build every map
//! implementation in this repository behind a uniform, object-safe driving
//! interface.
//!
//! Historically each benchmark harness hard-coded its own dispatch over the
//! tree types (a `TreeKind` enum in `sf-bench`), which meant new backends —
//! like the sharded tree — had to be wired into every harness by hand. The
//! registry inverts that: harnesses resolve **structure names** to ready-made
//! [`Backend`] instances and drive them through [`MapSession`], so any
//! harness can run any backend, including ones whose construction needs
//! extra machinery (per-shard STM instances, background maintenance
//! threads).
//!
//! ## Names
//!
//! | name | backend |
//! |---|---|
//! | `rbtree` | transaction-encapsulated red-black tree |
//! | `avl` | transaction-encapsulated AVL tree |
//! | `nrtree` | no-restructuring tree |
//! | `seq` | sequential reference map (single global mutex) |
//! | `sftree` | speculation-friendly tree, portable variant |
//! | `sftree-opt` | speculation-friendly tree, optimized variant |
//! | `sftree-sharded<N>` | `N`-shard portable speculation-friendly tree |
//! | `sftree-opt-sharded<N>` | `N`-shard optimized speculation-friendly tree |
//!
//! The speculation-friendly backends come with their background maintenance
//! thread already running (one per shard for the sharded variants); dropping
//! the [`Backend`] stops them.
//!
//! ```
//! use sf_stm::StmConfig;
//! use sf_workloads::backend::Backend;
//! use sf_workloads::{populate_and_run_backend, WorkloadConfig};
//!
//! let backend = Backend::build("sftree-opt-sharded4", StmConfig::ctl()).unwrap();
//! let config = WorkloadConfig::smoke_test();
//! let result = populate_and_run_backend(&backend, &config);
//! assert_eq!(result.structure, "OptSFtree-sharded4");
//! assert!(result.total_ops > 0);
//! ```

use std::sync::Arc;

use sf_baselines::{AvlTree, NoRestructureTree, RedBlackTree, SeqMap};
use sf_stm::{StatsSnapshot, Stm, StmConfig};
use sf_tree::maintenance::{MaintenanceConfig, MaintenanceHandle};
use sf_tree::{OptSpecFriendlyTree, ShardedMap, SpecFriendlyTree, TxMap};
use std::time::Duration;

/// A per-thread driving session over some backend: the object-safe
/// counterpart of [`TxMap`] with the handle folded in.
pub trait MapSession: Send {
    /// Membership test.
    fn contains(&mut self, key: u64) -> bool;
    /// Look up a key's value.
    fn get(&mut self, key: u64) -> Option<u64>;
    /// Insert `key -> value`; `true` when the map changed.
    fn insert(&mut self, key: u64, value: u64) -> bool;
    /// Delete `key`; `true` when the map changed.
    fn delete(&mut self, key: u64) -> bool;
    /// Atomically move `from` to `to`; `true` when the map changed.
    fn move_entry(&mut self, from: u64, to: u64) -> bool;
    /// Ordered range scan: the live entries with keys in `[lo, hi]`,
    /// ascending, as a read-only scan transaction (per-shard-atomic on
    /// sharded backends — see `sf_tree::sharded`).
    fn range_collect(&mut self, lo: u64, hi: u64) -> Vec<(u64, u64)>;
    /// Number of live keys, counted by a read-only scan transaction.
    fn len(&mut self) -> usize;
    /// True when the map holds no live keys.
    fn is_empty(&mut self) -> bool {
        self.len() == 0
    }
}

/// The object-safe face of a runnable backend: create sessions, observe
/// aggregate state and statistics.
trait BackendHarness: Send + Sync {
    fn session(&self) -> Box<dyn MapSession>;
    fn len_quiescent(&self) -> usize;
    fn stats(&self) -> StatsSnapshot;
    fn reset_stats(&self);
}

struct TreeSession<M: TxMap + 'static> {
    map: Arc<M>,
    handle: M::Handle,
}

impl<M: TxMap> MapSession for TreeSession<M>
where
    M::Handle: Send,
{
    fn contains(&mut self, key: u64) -> bool {
        self.map.contains(&mut self.handle, key)
    }
    fn get(&mut self, key: u64) -> Option<u64> {
        self.map.get(&mut self.handle, key)
    }
    fn insert(&mut self, key: u64, value: u64) -> bool {
        self.map.insert(&mut self.handle, key, value)
    }
    fn delete(&mut self, key: u64) -> bool {
        self.map.delete(&mut self.handle, key)
    }
    fn move_entry(&mut self, from: u64, to: u64) -> bool {
        self.map.move_entry(&mut self.handle, from, to)
    }
    fn range_collect(&mut self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        self.map.range_collect(&mut self.handle, lo..=hi)
    }
    fn len(&mut self) -> usize {
        self.map.len(&mut self.handle)
    }
}

/// Generic harness over any [`TxMap`]: the map, the STM instance(s) whose
/// statistics describe it, and whatever guards keep its background threads
/// alive (dropped with the harness).
struct TreeBackend<M: TxMap + 'static> {
    map: Arc<M>,
    /// All STM instances involved (one, or one per shard). The first one
    /// mints the `ThreadCtx` passed to [`TxMap::register`]; sharded maps
    /// ignore it and register with their per-shard instances internally.
    stms: Vec<Arc<Stm>>,
    /// Background maintenance threads owned by the backend (empty for
    /// baselines and for sharded maps, which manage theirs internally).
    /// Paused during quiescent inspection; stopped when the backend drops.
    maintenance: Vec<MaintenanceHandle>,
}

impl<M: TxMap> BackendHarness for TreeBackend<M>
where
    M::Handle: Send + 'static,
{
    fn session(&self) -> Box<dyn MapSession> {
        Box::new(TreeSession {
            map: Arc::clone(&self.map),
            handle: self.map.register(self.stms[0].register()),
        })
    }

    fn len_quiescent(&self) -> usize {
        // Counting traversals are only accurate while no restructuring runs.
        let _paused: Vec<_> = self.maintenance.iter().map(|m| m.pause()).collect();
        self.map.len_quiescent()
    }

    fn stats(&self) -> StatsSnapshot {
        let mut total = StatsSnapshot::default();
        for stm in &self.stms {
            total.merge(&stm.stats());
        }
        total
    }

    fn reset_stats(&self) {
        for stm in &self.stms {
            stm.reset_stats();
        }
    }
}

/// Harness for sharded maps. Sessions register through
/// [`ShardedMap::register_sharded`] — going through [`TxMap::register`]
/// would mint a throwaway `ThreadCtx` on shard 0's STM, permanently
/// appending a dead stats slot to its registry per session. Statistics come
/// from the map's own per-shard aggregation.
struct ShardedBackend<M: TxMap + 'static> {
    map: Arc<ShardedMap<M>>,
}

impl<M: TxMap + 'static> BackendHarness for ShardedBackend<M>
where
    M::Handle: Send + 'static,
{
    fn session(&self) -> Box<dyn MapSession> {
        Box::new(TreeSession {
            map: Arc::clone(&self.map),
            handle: self.map.register_sharded(),
        })
    }

    fn len_quiescent(&self) -> usize {
        TxMap::len_quiescent(self.map.as_ref())
    }

    fn stats(&self) -> StatsSnapshot {
        self.map.stats()
    }

    fn reset_stats(&self) {
        self.map.reset_stats();
    }
}

/// Split a comma- and/or whitespace-separated structure list (the
/// `SF_STRUCTURES` format) into names, dropping empty segments.
pub fn parse_structure_list(spec: &str) -> Vec<String> {
    spec.split(|c: char| c == ',' || c.is_whitespace())
        .filter(|name| !name.is_empty())
        .map(str::to_string)
        .collect()
}

/// A ready-to-drive backend built by the registry (or wrapped around caller
/// owned parts via [`Backend::from_parts`]).
pub struct Backend {
    label: String,
    harness: Box<dyn BackendHarness>,
}

impl std::fmt::Debug for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Backend")
            .field("label", &self.label)
            .finish()
    }
}

/// Error returned by [`Backend::build`] for unrecognized structure names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownBackend {
    /// The name that failed to resolve.
    pub name: String,
}

impl std::fmt::Display for UnknownBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown structure '{}'; known: {}",
            self.name,
            KNOWN_NAMES.join(", ")
        )
    }
}

impl std::error::Error for UnknownBackend {}

/// The names [`Backend::build`] understands (`<N>` is a shard count).
pub const KNOWN_NAMES: &[&str] = &[
    "rbtree",
    "avl",
    "nrtree",
    "seq",
    "sftree",
    "sftree-opt",
    "sftree-sharded<N>",
    "sftree-opt-sharded<N>",
];

/// Maintenance tuning applied to the speculation-friendly backends built by
/// the registry (matching the historical harness setting).
fn registry_maintenance_config() -> MaintenanceConfig {
    MaintenanceConfig {
        pass_delay: Duration::from_micros(200),
        ..MaintenanceConfig::default()
    }
}

impl Backend {
    /// Resolve a structure name (see the [module docs](self) for the table)
    /// to a ready-to-drive backend. Speculation-friendly backends start
    /// their maintenance thread(s) here; dropping the returned backend stops
    /// them.
    pub fn build(name: &str, stm_config: StmConfig) -> Result<Backend, UnknownBackend> {
        let name = name.trim();
        if let Some(shards) = parse_sharded(name, "sftree-opt-sharded") {
            let map = ShardedMap::optimized_with(shards, stm_config, registry_maintenance_config());
            return Ok(Backend::assemble_sharded(Arc::new(map)));
        }
        if let Some(shards) = parse_sharded(name, "sftree-sharded") {
            let map = ShardedMap::portable(shards, stm_config);
            return Ok(Backend::assemble_sharded(Arc::new(map)));
        }
        let stm = Stm::new(stm_config);
        match name {
            "rbtree" => Ok(Backend::assemble(
                Arc::new(RedBlackTree::new()),
                vec![stm],
                Vec::new(),
            )),
            "avl" => Ok(Backend::assemble(
                Arc::new(AvlTree::new()),
                vec![stm],
                Vec::new(),
            )),
            "nrtree" => Ok(Backend::assemble(
                Arc::new(NoRestructureTree::new()),
                vec![stm],
                Vec::new(),
            )),
            "seq" => Ok(Backend::assemble(
                Arc::new(SeqMap::new()),
                vec![stm],
                Vec::new(),
            )),
            "sftree" => {
                let map = Arc::new(SpecFriendlyTree::new());
                let maintenance =
                    map.start_maintenance_with(stm.register(), registry_maintenance_config());
                Ok(Backend::assemble(map, vec![stm], vec![maintenance]))
            }
            "sftree-opt" => {
                let map = Arc::new(OptSpecFriendlyTree::new());
                let maintenance =
                    map.start_maintenance_with(stm.register(), registry_maintenance_config());
                Ok(Backend::assemble(map, vec![stm], vec![maintenance]))
            }
            _ => Err(UnknownBackend {
                name: name.to_string(),
            }),
        }
    }

    /// Wrap caller-owned parts (an existing map and the STM instance(s) that
    /// describe it) as a backend, without the registry constructing
    /// anything. This is how the generic [`run_workload`] driver funnels
    /// into the same code path as registry-built backends.
    ///
    /// [`run_workload`]: crate::run_workload
    pub fn from_parts<M>(map: Arc<M>, stms: Vec<Arc<Stm>>) -> Backend
    where
        M: TxMap + 'static,
        M::Handle: Send + 'static,
    {
        Backend::assemble(map, stms, Vec::new())
    }

    fn assemble_sharded<M>(map: Arc<ShardedMap<M>>) -> Backend
    where
        M: TxMap + 'static,
        M::Handle: Send + 'static,
    {
        Backend {
            label: map.name().to_string(),
            harness: Box::new(ShardedBackend { map }),
        }
    }

    fn assemble<M>(map: Arc<M>, stms: Vec<Arc<Stm>>, maintenance: Vec<MaintenanceHandle>) -> Backend
    where
        M: TxMap + 'static,
        M::Handle: Send + 'static,
    {
        assert!(
            !stms.is_empty(),
            "a backend needs at least one STM instance"
        );
        Backend {
            label: map.name().to_string(),
            harness: Box::new(TreeBackend {
                map,
                stms,
                maintenance,
            }),
        }
    }

    /// The backend's display label (e.g. `OptSFtree-sharded8`).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Open a driving session for one worker thread.
    pub fn session(&self) -> Box<dyn MapSession> {
        self.harness.session()
    }

    /// Number of live keys while quiescent.
    pub fn len_quiescent(&self) -> usize {
        self.harness.len_quiescent()
    }

    /// STM statistics aggregated over the backend's STM instance(s).
    pub fn stats(&self) -> StatsSnapshot {
        self.harness.stats()
    }

    /// Reset the statistics of the backend's STM instance(s).
    pub fn reset_stats(&self) {
        self.harness.reset_stats();
    }
}

/// Parse `<prefix><N>` into `N`.
fn parse_sharded(name: &str, prefix: &str) -> Option<usize> {
    let rest = name.strip_prefix(prefix)?;
    let shards: usize = rest.parse().ok()?;
    (shards >= 1).then_some(shards)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_every_fixed_name() {
        for (name, label) in [
            ("rbtree", "RBtree"),
            ("avl", "AVLtree"),
            ("nrtree", "NRtree"),
            ("seq", "Sequential"),
            ("sftree", "SFtree"),
            ("sftree-opt", "OptSFtree"),
        ] {
            let backend = Backend::build(name, StmConfig::ctl()).unwrap();
            assert_eq!(backend.label(), label, "label for {name}");
            let mut session = backend.session();
            assert!(session.insert(1, 10));
            assert_eq!(session.get(1), Some(10));
            assert!(session.move_entry(1, 2));
            assert!(session.delete(2));
            assert!(!session.contains(2));
        }
    }

    #[test]
    fn builds_sharded_variants_with_the_requested_shard_count() {
        let backend = Backend::build("sftree-opt-sharded4", StmConfig::ctl()).unwrap();
        assert_eq!(backend.label(), "OptSFtree-sharded4");
        let mut session = backend.session();
        for key in 0..128u64 {
            assert!(session.insert(key, key));
        }
        assert_eq!(backend.len_quiescent(), 128);

        let portable = Backend::build("sftree-sharded2", StmConfig::ctl()).unwrap();
        assert_eq!(portable.label(), "SFtree-sharded2");
    }

    #[test]
    fn rejects_unknown_names_with_a_helpful_error() {
        let err = Backend::build("btree-of-dreams", StmConfig::ctl()).unwrap_err();
        assert_eq!(err.name, "btree-of-dreams");
        assert!(err.to_string().contains("sftree-opt-sharded<N>"));
        assert!(Backend::build("sftree-opt-sharded0", StmConfig::ctl()).is_err());
        assert!(Backend::build("sftree-opt-shardedx", StmConfig::ctl()).is_err());
    }

    #[test]
    fn stats_reset_and_aggregate_across_sessions() {
        let backend = Backend::build("sftree-opt-sharded2", StmConfig::ctl()).unwrap();
        let mut session = backend.session();
        for key in 0..32u64 {
            session.insert(key, key);
        }
        assert!(backend.stats().commits >= 32);
        backend.reset_stats();
        assert_eq!(backend.stats().commits, 0);
    }
}
