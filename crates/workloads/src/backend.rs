//! The backend registry: one place that knows how to build every map
//! implementation in this repository behind a uniform, object-safe driving
//! interface.
//!
//! Historically each benchmark harness hard-coded its own dispatch over the
//! tree types (a `TreeKind` enum in `sf-bench`), which meant new backends —
//! like the sharded tree — had to be wired into every harness by hand. The
//! registry inverts that: harnesses resolve **structure names** to ready-made
//! [`Backend`] instances and drive them through [`MapSession`], so any
//! harness can run any backend, including ones whose construction needs
//! extra machinery (per-shard STM instances, background maintenance
//! threads).
//!
//! ## Names
//!
//! | name | backend |
//! |---|---|
//! | `rbtree` | transaction-encapsulated red-black tree |
//! | `avl` | transaction-encapsulated AVL tree |
//! | `nrtree` | no-restructuring tree |
//! | `seq` | sequential reference map (single global mutex) |
//! | `ziptree` | rotation-free randomized zip tree (rebalance-free control) |
//! | `sftree` | speculation-friendly tree, portable variant |
//! | `sftree-opt` | speculation-friendly tree, optimized variant |
//! | `sftree-sharded<N>` | `N`-shard portable speculation-friendly tree |
//! | `sftree-opt-sharded<N>` | `N`-shard optimized speculation-friendly tree |
//! | `<sftree…>-hot` | any speculation-friendly name with hot-key restructuring on |
//! | `<name>+wal` | any of the above behind the `sf-persist` durability layer |
//!
//! The speculation-friendly backends come with their background maintenance
//! thread already running (one per shard for the sharded variants); dropping
//! the [`Backend`] stops them.
//!
//! ## Hot-key restructuring (`-hot`)
//!
//! Appending `-hot` to a speculation-friendly name (before any `+wal`)
//! enables the maintenance thread's hot-key restructuring with its default
//! tuning (dominance ratio `2.0`, counter decay every `64` passes) and tags
//! the label (`OptSFtree-hot`). The `SF_HOTSPOT` / `SF_HOT_DECAY`
//! environment knobs override the tuning; setting `SF_HOTSPOT` alone is a
//! blanket switch that enables hot restructuring on every
//! speculation-friendly backend without renaming (ignored by backends that
//! have no maintenance thread). `-hot` on a baseline name is an error.
//! The one unsupported combination is an explicit `-hot` on a *sharded*
//! `+wal` name — use the `SF_HOTSPOT` blanket switch there instead.
//!
//! ## Durability (`+wal`)
//!
//! Appending `+wal` to any transactional backend name (everything except
//! `seq`, whose unsynchronized baseline has no commit point to hook) wraps
//! it in [`sf_persist::DurableMap`]: every effective mutation is logged to a
//! commit-ordered write-ahead log and is durable when the operation returns.
//! Setting `SF_WAL=1` applies the wrapper to every requested structure
//! without renaming (`seq` is exempt rather than an error under the blanket
//! switch). Sharded variants get **one log per shard** (`shard-<i>`
//! subdirectories); a cross-shard `move_entry` is made crash-atomic by the
//! two-phase move-intent protocol the durable shards interpose on the
//! sharded map's move hooks — recovery joins the shard logs and completes
//! or rolls back an interrupted move, so a crash never surfaces a
//! duplicated or vanished entry (see `sf_persist` and the durability
//! contract in `EXPERIMENTS.md`). Reopening a sharded log directory with a
//! different shard count fails loudly instead of silently recovering a
//! subset.
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `SF_WAL` | `1` → wrap every built backend in the WAL | unset |
//! | `SF_WAL_DIR` | base directory for the log dirs | `$TMPDIR/sf-wal-<pid>` |
//! | `SF_WAL_GROUP` | records per group-commit fsync batch; `0` = buffered | `128` |
//! | `SF_WAL_CKPT` | records between automatic checkpoints; `0` = manual | `0` |
//!
//! Each build gets a fresh subdirectory `<base>/<name>+wal-<n>` (`n` counts
//! builds in this process), so repeated cells of one bench sweep never
//! recover each other's state. To *deliberately* recover — the service
//! restart story — point [`sf_persist::recover`] (or
//! [`sf_persist::DurableMap::open`]) at an existing directory; that is what
//! the `recovery` bench binary and the CI crash-smoke do.
//!
//! ```
//! use sf_stm::StmConfig;
//! use sf_workloads::backend::Backend;
//! use sf_workloads::{populate_and_run_backend, WorkloadConfig};
//!
//! let backend = Backend::build("sftree-opt-sharded4", StmConfig::ctl()).unwrap();
//! let config = WorkloadConfig::smoke_test();
//! let result = populate_and_run_backend(&backend, &config);
//! assert_eq!(result.structure, "OptSFtree-sharded4");
//! assert!(result.total_ops > 0);
//! ```

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sf_baselines::{AvlTree, NoRestructureTree, RedBlackTree, SeqMap, ZipTree};
use sf_obs::{MetricSample, MetricsRegistry, SourceGuard};
use sf_persist::{DurableMap, WalOptions, WriterMode};
use sf_stm::{StatsSnapshot, Stm, StmConfig};
use sf_tree::maintenance::{MaintenanceConfig, MaintenanceHandle};
use sf_tree::{OptSpecFriendlyTree, ShardedMap, SpecFriendlyTree, TxMap, TxMapVersioned};
use std::time::Duration;

/// A per-thread driving session over some backend: the object-safe
/// counterpart of [`TxMap`] with the handle folded in.
pub trait MapSession: Send {
    /// Membership test.
    fn contains(&mut self, key: u64) -> bool;
    /// Look up a key's value.
    fn get(&mut self, key: u64) -> Option<u64>;
    /// Insert `key -> value`; `true` when the map changed.
    fn insert(&mut self, key: u64, value: u64) -> bool;
    /// Delete `key`; `true` when the map changed.
    fn delete(&mut self, key: u64) -> bool;
    /// Atomically move `from` to `to`; `true` when the map changed.
    fn move_entry(&mut self, from: u64, to: u64) -> bool;
    /// Ordered range scan: the live entries with keys in `[lo, hi]`,
    /// ascending, as a read-only scan transaction (per-shard-atomic on
    /// sharded backends — see `sf_tree::sharded`).
    fn range_collect(&mut self, lo: u64, hi: u64) -> Vec<(u64, u64)>;
    /// Number of live keys, counted by a read-only scan transaction.
    fn len(&mut self) -> usize;
    /// True when the map holds no live keys.
    fn is_empty(&mut self) -> bool {
        self.len() == 0
    }
}

/// The object-safe face of a runnable backend: create sessions, observe
/// aggregate state and statistics.
trait BackendHarness: Send + Sync {
    fn session(&self) -> Box<dyn MapSession>;
    fn len_quiescent(&self) -> usize;
    fn stats(&self) -> StatsSnapshot;
    fn reset_stats(&self);
    fn hot_report(&self) -> Option<sf_tree::HotReport>;
}

struct TreeSession<M: TxMap + 'static> {
    map: Arc<M>,
    handle: M::Handle,
}

impl<M: TxMap> MapSession for TreeSession<M>
where
    M::Handle: Send,
{
    fn contains(&mut self, key: u64) -> bool {
        self.map.contains(&mut self.handle, key)
    }
    fn get(&mut self, key: u64) -> Option<u64> {
        self.map.get(&mut self.handle, key)
    }
    fn insert(&mut self, key: u64, value: u64) -> bool {
        self.map.insert(&mut self.handle, key, value)
    }
    fn delete(&mut self, key: u64) -> bool {
        self.map.delete(&mut self.handle, key)
    }
    fn move_entry(&mut self, from: u64, to: u64) -> bool {
        self.map.move_entry(&mut self.handle, from, to)
    }
    fn range_collect(&mut self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        self.map.range_collect(&mut self.handle, lo..=hi)
    }
    fn len(&mut self) -> usize {
        self.map.len(&mut self.handle)
    }
}

/// Generic harness over any [`TxMap`]: the map, the STM instance(s) whose
/// statistics describe it, and whatever guards keep its background threads
/// alive (dropped with the harness).
struct TreeBackend<M: TxMap + 'static> {
    map: Arc<M>,
    /// All STM instances involved (one, or one per shard). The first one
    /// mints the `ThreadCtx` passed to [`TxMap::register`]; sharded maps
    /// ignore it and register with their per-shard instances internally.
    stms: Vec<Arc<Stm>>,
    /// Background maintenance threads owned by the backend (empty for
    /// baselines and for sharded maps, which manage theirs internally).
    /// Paused during quiescent inspection; stopped when the backend drops.
    maintenance: Vec<MaintenanceHandle>,
}

impl<M: TxMap> BackendHarness for TreeBackend<M>
where
    M::Handle: Send + 'static,
{
    fn session(&self) -> Box<dyn MapSession> {
        Box::new(TreeSession {
            map: Arc::clone(&self.map),
            handle: self.map.register(self.stms[0].register()),
        })
    }

    fn len_quiescent(&self) -> usize {
        // Counting traversals are only accurate while no restructuring runs.
        let _paused: Vec<_> = self.maintenance.iter().map(|m| m.pause()).collect();
        self.map.len_quiescent()
    }

    fn stats(&self) -> StatsSnapshot {
        let mut total = StatsSnapshot::default();
        for stm in &self.stms {
            total.merge(&stm.stats());
        }
        total
    }

    fn reset_stats(&self) {
        for stm in &self.stms {
            stm.reset_stats();
        }
    }

    fn hot_report(&self) -> Option<sf_tree::HotReport> {
        // The summary traversal reads plain node fields: park the rotator
        // between passes first, like `len_quiescent`.
        let _paused: Vec<_> = self.maintenance.iter().map(|m| m.pause()).collect();
        self.map.hot_report()
    }
}

/// Harness for sharded maps. Sessions register through
/// [`ShardedMap::register_sharded`] — going through [`TxMap::register`]
/// would mint a throwaway `ThreadCtx` on shard 0's STM, permanently
/// appending a dead stats slot to its registry per session. Statistics come
/// from the map's own per-shard aggregation.
struct ShardedBackend<M: TxMap + 'static> {
    map: Arc<ShardedMap<M>>,
}

impl<M: TxMap + 'static> BackendHarness for ShardedBackend<M>
where
    M::Handle: Send + 'static,
{
    fn session(&self) -> Box<dyn MapSession> {
        Box::new(TreeSession {
            map: Arc::clone(&self.map),
            handle: self.map.register_sharded(),
        })
    }

    fn len_quiescent(&self) -> usize {
        TxMap::len_quiescent(self.map.as_ref())
    }

    fn stats(&self) -> StatsSnapshot {
        self.map.stats()
    }

    fn reset_stats(&self) {
        self.map.reset_stats();
    }

    fn hot_report(&self) -> Option<sf_tree::HotReport> {
        // Pauses every shard's maintenance internally.
        TxMap::hot_report(self.map.as_ref())
    }
}

/// Split a comma- and/or whitespace-separated structure list (the
/// `SF_STRUCTURES` format) into names, dropping empty segments.
pub fn parse_structure_list(spec: &str) -> Vec<String> {
    spec.split(|c: char| c == ',' || c.is_whitespace())
        .filter(|name| !name.is_empty())
        .map(str::to_string)
        .collect()
}

/// A ready-to-drive backend built by the registry (or wrapped around caller
/// owned parts via [`Backend::from_parts`]).
pub struct Backend {
    label: String,
    harness: Arc<dyn BackendHarness>,
}

impl std::fmt::Debug for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Backend")
            .field("label", &self.label)
            .finish()
    }
}

/// Error returned by [`Backend::build`] for unrecognized structure names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownBackend {
    /// The name that failed to resolve.
    pub name: String,
}

impl std::fmt::Display for UnknownBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown structure '{}'; known: {}",
            self.name,
            KNOWN_NAMES.join(", ")
        )
    }
}

impl std::error::Error for UnknownBackend {}

/// The names [`Backend::build`] understands (`<N>` is a shard count; every
/// name but `seq` also accepts a `+wal` suffix).
pub const KNOWN_NAMES: &[&str] = &[
    "rbtree",
    "avl",
    "nrtree",
    "seq",
    "ziptree",
    "sftree",
    "sftree-opt",
    "sftree-sharded<N>",
    "sftree-opt-sharded<N>",
    "<sftree...>-hot",
    "<any-but-seq>+wal",
];

/// `SF_WAL=1` wraps every built backend in the durability layer.
fn wal_env_enabled() -> bool {
    std::env::var("SF_WAL").is_ok_and(|v| v == "1")
}

/// WAL tuning from `SF_WAL_GROUP` / `SF_WAL_CKPT` / `SF_WAL_WRITER` /
/// `SF_WAL_WINDOW_US` / `SF_WAL_RING` / `SF_WAL_CKPT_MS`.
fn wal_options_from_env() -> WalOptions {
    fn parsed<T: std::str::FromStr>(var: &str) -> Option<T> {
        std::env::var(var).ok().and_then(|s| s.parse().ok())
    }
    let defaults = WalOptions::default();
    WalOptions {
        group: parsed("SF_WAL_GROUP").unwrap_or(defaults.group),
        auto_checkpoint: parsed("SF_WAL_CKPT").unwrap_or(defaults.auto_checkpoint),
        writer: match std::env::var("SF_WAL_WRITER").as_deref() {
            Ok("leader") => WriterMode::Leader,
            Ok("thread") => WriterMode::Thread,
            _ => defaults.writer,
        },
        window: parsed::<u64>("SF_WAL_WINDOW_US")
            .map(Duration::from_micros)
            .unwrap_or(defaults.window),
        ring_capacity: parsed::<usize>("SF_WAL_RING")
            .filter(|&n| n > 0)
            .unwrap_or(defaults.ring_capacity),
        checkpoint_interval: match parsed::<u64>("SF_WAL_CKPT_MS") {
            Some(0) => None,
            Some(ms) => Some(Duration::from_millis(ms)),
            None => defaults.checkpoint_interval,
        },
    }
}

/// Fresh log directory for one `+wal` build: `SF_WAL_DIR` (default
/// `$TMPDIR/sf-wal-<pid>`) + `/<base>+wal-<n>` with a process-wide build
/// counter, so repeated builds never recover each other's state. The naming
/// is deterministic — the `recovery` harness's crash smoke relies on the
/// first build of this process landing in `<base>+wal-0`.
fn wal_dir_for(base: &str) -> PathBuf {
    static BUILDS: AtomicU64 = AtomicU64::new(0);
    let root = std::env::var_os("SF_WAL_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join(format!("sf-wal-{}", std::process::id())));
    // sf-lint: allow(relaxed-atomic, per-process build counter for unique WAL dirs; only atomicity matters)
    let n = BUILDS.fetch_add(1, Ordering::Relaxed);
    root.join(format!("{base}+wal-{n}"))
}

/// Maintenance tuning applied to the speculation-friendly backends built by
/// the registry (matching the historical harness setting). `hot` — from an
/// explicit `-hot` name — forces hot-key restructuring on with its default
/// tuning; either way the `SF_HOTSPOT` / `SF_HOT_DECAY` environment knobs
/// apply on top.
fn registry_maintenance_config_hot(hot: bool) -> MaintenanceConfig {
    let base = MaintenanceConfig {
        pass_delay: Duration::from_micros(200),
        ..MaintenanceConfig::default()
    };
    if hot {
        base.with_hotspot_defaults()
    } else {
        base.with_hotspot_env()
    }
}

impl Backend {
    /// Resolve a structure name (see the [module docs](self) for the table)
    /// to a ready-to-drive backend. Speculation-friendly backends start
    /// their maintenance thread(s) here; dropping the returned backend stops
    /// them.
    pub fn build(name: &str, stm_config: StmConfig) -> Result<Backend, UnknownBackend> {
        let name = name.trim();
        let (name, wal) = match name.strip_suffix("+wal") {
            Some(base) => (base.trim_end(), true),
            // Blanket SF_WAL=1 leaves `seq` alone (it has nothing to hook);
            // only an *explicit* `seq+wal` is an error.
            None => (name, wal_env_enabled() && name != "seq"),
        };
        let (name, hot) = match name.strip_suffix("-hot") {
            Some(base) => (base.trim_end(), true),
            None => (name, false),
        };
        if hot && !name.starts_with("sftree") {
            // Only the speculation-friendly trees have a maintenance thread
            // to restructure with.
            return Err(UnknownBackend {
                name: format!("{name}-hot (hot restructuring needs a speculation-friendly tree)"),
            });
        }
        let mut backend = if wal {
            Backend::build_wal(name, hot, stm_config)?
        } else {
            Backend::build_plain(name, hot, stm_config)?
        };
        if hot {
            backend.label.push_str("-hot");
        }
        Ok(backend)
    }

    /// Build a non-durable backend; `hot` forces hot-key restructuring on
    /// for speculation-friendly names.
    fn build_plain(
        name: &str,
        hot: bool,
        stm_config: StmConfig,
    ) -> Result<Backend, UnknownBackend> {
        if let Some(shards) = parse_sharded(name, "sftree-opt-sharded") {
            let map = ShardedMap::optimized_with(
                shards,
                stm_config,
                registry_maintenance_config_hot(hot),
            );
            return Ok(Backend::assemble_sharded(Arc::new(map)));
        }
        if let Some(shards) = parse_sharded(name, "sftree-sharded") {
            let map =
                ShardedMap::portable_with(shards, stm_config, registry_maintenance_config_hot(hot));
            return Ok(Backend::assemble_sharded(Arc::new(map)));
        }
        let stm = Stm::new(stm_config);
        match name {
            "rbtree" => Ok(Backend::assemble(
                Arc::new(RedBlackTree::new()),
                vec![stm],
                Vec::new(),
            )),
            "avl" => Ok(Backend::assemble(
                Arc::new(AvlTree::new()),
                vec![stm],
                Vec::new(),
            )),
            "nrtree" => Ok(Backend::assemble(
                Arc::new(NoRestructureTree::new()),
                vec![stm],
                Vec::new(),
            )),
            "seq" => Ok(Backend::assemble(
                Arc::new(SeqMap::new()),
                vec![stm],
                Vec::new(),
            )),
            "ziptree" => Ok(Backend::assemble(
                Arc::new(ZipTree::new()),
                vec![stm],
                Vec::new(),
            )),
            "sftree" => {
                let map = Arc::new(SpecFriendlyTree::new());
                let maintenance = map
                    .start_maintenance_with(stm.register(), registry_maintenance_config_hot(hot));
                Ok(Backend::assemble(map, vec![stm], vec![maintenance]))
            }
            "sftree-opt" => {
                let map = Arc::new(OptSpecFriendlyTree::new());
                let maintenance = map
                    .start_maintenance_with(stm.register(), registry_maintenance_config_hot(hot));
                Ok(Backend::assemble(map, vec![stm], vec![maintenance]))
            }
            _ => Err(UnknownBackend {
                name: name.to_string(),
            }),
        }
    }

    /// Build the `+wal` (durable) variant of `base`. The log directory and
    /// tuning come from the `SF_WAL_*` environment (see the
    /// [module docs](self)).
    ///
    /// # Panics
    /// Panics when the log directory cannot be created or written —
    /// durability was requested and the environment cannot provide it.
    fn build_wal(base: &str, hot: bool, stm_config: StmConfig) -> Result<Backend, UnknownBackend> {
        let options = wal_options_from_env();
        let dir = wal_dir_for(base);
        let open_failed =
            |error: std::io::Error| -> ! { panic!("opening WAL directory {dir:?}: {error}") };
        if let Some(shards) = parse_sharded(base, "sftree-opt-sharded") {
            if hot {
                return Err(sharded_wal_hot_unsupported(base));
            }
            let (map, _recovery) = sf_persist::sharded_optimized(shards, stm_config, &dir, options)
                .unwrap_or_else(|e| open_failed(e));
            return Ok(Backend::assemble_sharded(Arc::new(map)));
        }
        if let Some(shards) = parse_sharded(base, "sftree-sharded") {
            if hot {
                return Err(sharded_wal_hot_unsupported(base));
            }
            let (map, _recovery) = sf_persist::sharded_portable(shards, stm_config, &dir, options)
                .unwrap_or_else(|e| open_failed(e));
            return Ok(Backend::assemble_sharded(Arc::new(map)));
        }
        let stm = Stm::new(stm_config);
        fn durable<M>(
            map: Arc<M>,
            stm: Arc<Stm>,
            dir: PathBuf,
            options: WalOptions,
            maintenance: Vec<MaintenanceHandle>,
        ) -> Backend
        where
            M: TxMapVersioned + 'static,
            M::Handle: Send + 'static,
        {
            let (map, _recovery) = DurableMap::open(map, &stm, &dir, options)
                .unwrap_or_else(|e| panic!("opening WAL directory {dir:?}: {e}"));
            Backend::assemble(Arc::new(map), vec![stm], maintenance)
        }
        match base {
            "rbtree" => Ok(durable(
                Arc::new(RedBlackTree::new()),
                stm,
                dir,
                options,
                Vec::new(),
            )),
            "avl" => Ok(durable(
                Arc::new(AvlTree::new()),
                stm,
                dir,
                options,
                Vec::new(),
            )),
            "nrtree" => Ok(durable(
                Arc::new(NoRestructureTree::new()),
                stm,
                dir,
                options,
                Vec::new(),
            )),
            "ziptree" => Ok(durable(
                Arc::new(ZipTree::new()),
                stm,
                dir,
                options,
                Vec::new(),
            )),
            "sftree" => {
                let map = Arc::new(SpecFriendlyTree::new());
                let maintenance = map
                    .start_maintenance_with(stm.register(), registry_maintenance_config_hot(hot));
                Ok(durable(map, stm, dir, options, vec![maintenance]))
            }
            "sftree-opt" => {
                let map = Arc::new(OptSpecFriendlyTree::new());
                let maintenance = map
                    .start_maintenance_with(stm.register(), registry_maintenance_config_hot(hot));
                Ok(durable(map, stm, dir, options, vec![maintenance]))
            }
            "seq" => Err(UnknownBackend {
                name: "seq+wal (the sequential baseline has no commit point to log)".to_string(),
            }),
            _ => Err(UnknownBackend {
                name: format!("{base}+wal"),
            }),
        }
    }

    /// Wrap caller-owned parts (an existing map and the STM instance(s) that
    /// describe it) as a backend, without the registry constructing
    /// anything. This is how the generic [`run_workload`] driver funnels
    /// into the same code path as registry-built backends.
    ///
    /// [`run_workload`]: crate::run_workload
    pub fn from_parts<M>(map: Arc<M>, stms: Vec<Arc<Stm>>) -> Backend
    where
        M: TxMap + 'static,
        M::Handle: Send + 'static,
    {
        Backend::assemble(map, stms, Vec::new())
    }

    fn assemble_sharded<M>(map: Arc<ShardedMap<M>>) -> Backend
    where
        M: TxMap + 'static,
        M::Handle: Send + 'static,
    {
        Backend {
            label: map.name().to_string(),
            harness: Arc::new(ShardedBackend { map }),
        }
    }

    fn assemble<M>(map: Arc<M>, stms: Vec<Arc<Stm>>, maintenance: Vec<MaintenanceHandle>) -> Backend
    where
        M: TxMap + 'static,
        M::Handle: Send + 'static,
    {
        assert!(
            !stms.is_empty(),
            "a backend needs at least one STM instance"
        );
        Backend {
            label: map.name().to_string(),
            harness: Arc::new(TreeBackend {
                map,
                stms,
                maintenance,
            }),
        }
    }

    /// The backend's display label (e.g. `OptSFtree-sharded8`).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Open a driving session for one worker thread.
    pub fn session(&self) -> Box<dyn MapSession> {
        self.harness.session()
    }

    /// Number of live keys while quiescent.
    pub fn len_quiescent(&self) -> usize {
        self.harness.len_quiescent()
    }

    /// Quiescent hot-key summary (maintenance paused for the traversal);
    /// `None` for backends without access sampling.
    pub fn hot_report(&self) -> Option<sf_tree::HotReport> {
        self.harness.hot_report()
    }

    /// STM statistics aggregated over the backend's STM instance(s).
    pub fn stats(&self) -> StatsSnapshot {
        self.harness.stats()
    }

    /// Reset the statistics of the backend's STM instance(s).
    pub fn reset_stats(&self) {
        self.harness.reset_stats();
    }

    /// Register this backend as a live [`MetricsRegistry`] source: STM
    /// commit/abort counters (with the abort-cause breakdown) labelled by
    /// `structure`, the process-wide WAL counters, and operation / WAL /
    /// maintenance latency p99s. The source stays live — and is picked up by
    /// the `SF_STATS_EVERY_MS` emitter — until the returned guard drops.
    pub fn metrics_source(&self) -> SourceGuard {
        let harness = Arc::clone(&self.harness);
        let structure = self.label.clone();
        MetricsRegistry::global().register(move |out| {
            let stats = harness.stats();
            let labelled = |name, value: u64| {
                MetricSample::new(name, value as f64).label("structure", structure.clone())
            };
            out.push(labelled("sf_stm_commits_total", stats.commits));
            out.push(labelled(
                "sf_stm_combined_commits_total",
                stats.combined_commits,
            ));
            out.push(labelled("sf_stm_aborts_total", stats.aborts));
            for (cause, value) in [
                ("read_validation", stats.abort_read_validation),
                ("lock_conflict", stats.abort_lock_conflict),
                ("combiner", stats.abort_combiner),
                ("explicit", stats.abort_explicit),
                ("scan_validation", stats.abort_scan_validation),
            ] {
                out.push(labelled("sf_stm_aborts_by_cause_total", value).label("cause", cause));
            }
            let wal = sf_persist::stats::snapshot();
            for (name, value) in [
                ("sf_wal_records_total", wal.records),
                ("sf_wal_bytes_total", wal.bytes),
                ("sf_wal_batches_total", wal.batches),
                ("sf_wal_checkpoints_total", wal.checkpoints),
            ] {
                out.push(MetricSample::new(name, value as f64));
            }
            for (i, hist) in crate::latency::op_histograms().iter().enumerate() {
                if hist.count() > 0 {
                    out.push(
                        labelled("sf_op_latency_p99_ns", hist.p99())
                            .label("op", crate::latency::op_label(i)),
                    );
                }
            }
            let fsync = sf_persist::stats::fsync_histogram();
            if fsync.count() > 0 {
                out.push(MetricSample::new("sf_wal_fsync_p99_ns", fsync.p99() as f64));
            }
            let (pass, _work) = sf_tree::maintenance_histograms();
            if pass.count() > 0 {
                out.push(MetricSample::new(
                    "sf_maintenance_pass_p99_ns",
                    pass.p99() as f64,
                ));
            }
        })
    }
}

/// Explicit `-hot` on a sharded `+wal` name: the durable sharded builders
/// own their maintenance tuning, so only the `SF_HOTSPOT` blanket switch
/// reaches them.
fn sharded_wal_hot_unsupported(base: &str) -> UnknownBackend {
    UnknownBackend {
        name: format!("{base}-hot+wal (set SF_HOTSPOT=1 instead for sharded durable backends)"),
    }
}

/// Parse `<prefix><N>` into `N`.
fn parse_sharded(name: &str, prefix: &str) -> Option<usize> {
    let rest = name.strip_prefix(prefix)?;
    let shards: usize = rest.parse().ok()?;
    (shards >= 1).then_some(shards)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_every_fixed_name() {
        for (name, label) in [
            ("rbtree", "RBtree"),
            ("avl", "AVLtree"),
            ("nrtree", "NRtree"),
            ("seq", "Sequential"),
            ("sftree", "SFtree"),
            ("sftree-opt", "OptSFtree"),
            ("ziptree", "ZipTree"),
        ] {
            let backend = Backend::build(name, StmConfig::ctl()).unwrap();
            assert_eq!(backend.label(), label, "label for {name}");
            let mut session = backend.session();
            assert!(session.insert(1, 10));
            assert_eq!(session.get(1), Some(10));
            assert!(session.move_entry(1, 2));
            assert!(session.delete(2));
            assert!(!session.contains(2));
        }
    }

    #[test]
    fn builds_sharded_variants_with_the_requested_shard_count() {
        let backend = Backend::build("sftree-opt-sharded4", StmConfig::ctl()).unwrap();
        assert_eq!(backend.label(), "OptSFtree-sharded4");
        let mut session = backend.session();
        for key in 0..128u64 {
            assert!(session.insert(key, key));
        }
        assert_eq!(backend.len_quiescent(), 128);

        let portable = Backend::build("sftree-sharded2", StmConfig::ctl()).unwrap();
        assert_eq!(portable.label(), "SFtree-sharded2");
    }

    #[test]
    fn rejects_unknown_names_with_a_helpful_error() {
        let err = Backend::build("btree-of-dreams", StmConfig::ctl()).unwrap_err();
        assert_eq!(err.name, "btree-of-dreams");
        assert!(err.to_string().contains("sftree-opt-sharded<N>"));
        assert!(Backend::build("sftree-opt-sharded0", StmConfig::ctl()).is_err());
        assert!(Backend::build("sftree-opt-shardedx", StmConfig::ctl()).is_err());
    }

    #[test]
    fn builds_wal_variants_with_durable_labels() {
        // Note: the log directories default under $TMPDIR/sf-wal-<pid>; the
        // per-build counter keeps these cases disjoint from each other and
        // from every other test in this process.
        for (name, label) in [
            ("rbtree+wal", "RBtree+wal"),
            ("sftree-opt+wal", "OptSFtree+wal"),
            ("sftree-opt-sharded2+wal", "OptSFtree+wal-sharded2"),
        ] {
            let backend = Backend::build(name, StmConfig::ctl()).unwrap();
            assert_eq!(backend.label(), label, "label for {name}");
            let mut session = backend.session();
            assert!(session.insert(1, 10));
            assert!(session.move_entry(1, 2));
            assert_eq!(session.get(2), Some(10));
            assert!(session.delete(2));
            assert_eq!(session.len(), 0);
        }
    }

    #[test]
    fn seq_wal_is_rejected_explicitly() {
        let err = Backend::build("seq+wal", StmConfig::ctl()).unwrap_err();
        assert!(err.name.contains("seq+wal"), "{err}");
        // Unknown bases keep their +wal suffix in the error.
        let err = Backend::build("btree+wal", StmConfig::ctl()).unwrap_err();
        assert_eq!(err.name, "btree+wal");
    }

    #[test]
    fn hot_suffix_builds_sf_trees_and_rejects_everything_else() {
        for (name, label) in [
            ("sftree-hot", "SFtree-hot"),
            ("sftree-opt-hot", "OptSFtree-hot"),
            ("sftree-opt-sharded2-hot", "OptSFtree-sharded2-hot"),
            ("sftree-opt-hot+wal", "OptSFtree+wal-hot"),
        ] {
            let backend = Backend::build(name, StmConfig::ctl()).unwrap();
            assert_eq!(backend.label(), label, "label for {name}");
            let mut session = backend.session();
            assert!(session.insert(7, 70));
            assert_eq!(session.get(7), Some(70));
        }
        // Hot restructuring lives in the maintenance thread; backends
        // without one reject the suffix.
        for name in ["rbtree-hot", "avl-hot", "ziptree-hot", "seq-hot"] {
            let err = Backend::build(name, StmConfig::ctl()).unwrap_err();
            assert!(err.to_string().contains("speculation-friendly"), "{err}");
        }
        // Sharded durable backends take SF_HOTSPOT instead of the suffix.
        let err = Backend::build("sftree-opt-sharded2-hot+wal", StmConfig::ctl()).unwrap_err();
        assert!(err.name.contains("SF_HOTSPOT"), "{err}");
    }

    #[test]
    fn hot_backends_surface_a_hot_report_and_plain_baselines_do_not() {
        let backend = Backend::build("sftree-opt-hot", StmConfig::ctl()).unwrap();
        let mut session = backend.session();
        for key in 0..64u64 {
            session.insert(key, key);
        }
        let report = backend.hot_report().expect("SF trees sample accesses");
        assert!(report.sampled_mass < u64::MAX); // shape check: merged fields exist
        assert!(Backend::build("rbtree", StmConfig::ctl())
            .unwrap()
            .hot_report()
            .is_none());
        assert!(Backend::build("ziptree", StmConfig::ctl())
            .unwrap()
            .hot_report()
            .is_none());
    }

    #[test]
    fn stats_reset_and_aggregate_across_sessions() {
        let backend = Backend::build("sftree-opt-sharded2", StmConfig::ctl()).unwrap();
        let mut session = backend.session();
        for key in 0..32u64 {
            session.insert(key, key);
        }
        assert!(backend.stats().commits >= 32);
        backend.reset_stats();
        assert_eq!(backend.stats().commits, 0);
    }
}
