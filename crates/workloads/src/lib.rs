//! # sf-workloads — the synchrobench-style integer-set micro-benchmark
//!
//! The paper evaluates its trees on the synchrobench integer-set
//! micro-benchmark: N threads perform a mix of `contains` and *effective*
//! `insert`/`delete` (and, for §5.4, composed `move`) operations over a
//! pre-populated set, under uniform or biased key distributions, and the
//! harness reports throughput in operations per microsecond together with the
//! STM statistics behind Table 1.
//!
//! This crate provides the workload definitions ([`WorkloadConfig`]), the key
//! and operation generators ([`KeyGen`]), and the multi-threaded driver
//! ([`run_workload`]) used by the `sf-bench` figure harnesses, the examples,
//! and the integration tests.
//!
//! ```
//! use std::sync::Arc;
//! use sf_stm::Stm;
//! use sf_tree::OptSpecFriendlyTree;
//! use sf_workloads::{populate_and_run, RunLength, WorkloadConfig};
//!
//! let stm = Stm::default_config();
//! let tree = Arc::new(OptSpecFriendlyTree::new());
//! let config = WorkloadConfig::paper_default()
//!     .with_threads(2)
//!     .with_run(RunLength::Ops(100));
//! let result = populate_and_run(&stm, &tree, &config);
//! assert_eq!(result.total_ops, 200);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod backend;
mod chk;
mod config;
mod driver;
mod keygen;
pub mod latency;

pub use backend::{parse_structure_list, Backend, MapSession, UnknownBackend};
pub use config::{Bias, RunLength, WorkloadConfig};
pub use driver::{
    populate, populate_and_run, populate_and_run_backend, populate_backend, run_workload,
    run_workload_backend, WorkloadResult,
};
pub use keygen::{KeyGen, OpKind, Zipf, DEFAULT_SCAN_THETA};
pub use latency::LatencyReport;
