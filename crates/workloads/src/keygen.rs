//! Key generation for the integer-set micro-benchmark, including the biased
//! distribution of §5.2.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::{Bias, WorkloadConfig};

/// The kind of abstract operation an update slot will perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Membership test.
    Contains,
    /// Effective insert.
    Insert,
    /// Effective (logical) delete.
    Delete,
    /// Composed move (delete + insert in one transaction).
    Move,
    /// Ordered range scan (`range_collect` over a window of the key space).
    Scan,
}

/// Per-thread pseudo-random key/operation generator.
#[derive(Debug)]
pub struct KeyGen {
    rng: StdRng,
    key_range: u64,
    update_ratio: f64,
    move_ratio: f64,
    scan_ratio: f64,
    scan_width: u64,
    bias: Option<Bias>,
    /// Alternates inserts and deletes so the expected set size stays constant
    /// (the paper performs "an insert and a remove with the same
    /// probability").
    next_update_is_insert: bool,
}

impl KeyGen {
    /// Create a generator for one worker thread (point operations only; use
    /// [`KeyGen::for_config`] to include the scan mix).
    pub fn new(
        seed: u64,
        thread_index: usize,
        key_range: u64,
        update_ratio: f64,
        move_ratio: f64,
        bias: Option<Bias>,
    ) -> Self {
        // Derive a distinct, deterministic stream per thread.
        let rng = StdRng::seed_from_u64(
            seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(thread_index as u64 + 1)),
        );
        KeyGen {
            rng,
            key_range: key_range.max(2),
            update_ratio,
            move_ratio,
            scan_ratio: 0.0,
            scan_width: 0,
            bias,
            next_update_is_insert: thread_index.is_multiple_of(2),
        }
    }

    /// Create a generator for one worker thread with the full operation mix
    /// of `config`, including the range-scan family.
    pub fn for_config(config: &WorkloadConfig, thread_index: usize) -> Self {
        let mut gen = KeyGen::new(
            config.seed,
            thread_index,
            config.key_range,
            config.update_ratio,
            config.move_ratio,
            config.bias,
        );
        gen.scan_ratio = config.scan_ratio;
        gen.scan_width = config.scan_width;
        gen
    }

    /// Uniform key in `[0, key_range)`.
    pub fn uniform_key(&mut self) -> u64 {
        self.rng.gen_range(0..self.key_range)
    }

    /// Key used for an insert: skewed towards the top of the range when the
    /// workload is biased.
    pub fn insert_key(&mut self) -> u64 {
        let base = self.uniform_key();
        match self.bias {
            None => base,
            Some(Bias { skew }) => (base + self.rng.gen_range(0..skew)).min(self.key_range - 1),
        }
    }

    /// Key used for a delete: skewed towards the bottom of the range when the
    /// workload is biased.
    pub fn delete_key(&mut self) -> u64 {
        let base = self.uniform_key();
        match self.bias {
            None => base,
            Some(Bias { skew }) => base.saturating_sub(self.rng.gen_range(0..skew)),
        }
    }

    /// The `[lo, hi]` bounds of one range scan: a window of `scan_width`
    /// keys whose origin is drawn from a zipf-ish clustered distribution —
    /// the origin domain is halved geometrically (each halving with
    /// probability one half) before drawing uniformly, so scans concentrate
    /// on nearby low keys the way dynamic-finger workloads concentrate on
    /// recently-touched ones, while still occasionally ranging anywhere.
    pub fn scan_range(&mut self) -> (u64, u64) {
        let width = self.scan_width.max(1);
        let mut span = self.key_range;
        while span > width && self.rng.gen::<f64>() < 0.5 {
            span /= 2;
        }
        let lo = self.rng.gen_range(0..span.max(1));
        (lo, lo.saturating_add(width - 1))
    }

    /// Decide the next operation according to the configured mix.
    pub fn next_op(&mut self) -> OpKind {
        if self.scan_ratio > 0.0 && self.rng.gen::<f64>() < self.scan_ratio {
            return OpKind::Scan;
        }
        if self.rng.gen::<f64>() >= self.update_ratio {
            return OpKind::Contains;
        }
        if self.move_ratio > 0.0 && self.rng.gen::<f64>() < self.move_ratio {
            return OpKind::Move;
        }
        let op = if self.next_update_is_insert {
            OpKind::Insert
        } else {
            OpKind::Delete
        };
        self.next_update_is_insert = !self.next_update_is_insert;
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_stay_in_range() {
        let mut g = KeyGen::new(1, 0, 1024, 0.5, 0.0, Some(Bias { skew: 10 }));
        for _ in 0..10_000 {
            assert!(g.uniform_key() < 1024);
            assert!(g.insert_key() < 1024);
            assert!(g.delete_key() < 1024);
        }
    }

    #[test]
    fn update_ratio_is_respected_approximately() {
        let mut g = KeyGen::new(7, 1, 1024, 0.2, 0.0, None);
        let updates = (0..20_000)
            .filter(|_| g.next_op() != OpKind::Contains)
            .count();
        let ratio = updates as f64 / 20_000.0;
        assert!((ratio - 0.2).abs() < 0.02, "observed update ratio {ratio}");
    }

    #[test]
    fn inserts_and_deletes_alternate() {
        let mut g = KeyGen::new(3, 0, 64, 1.0, 0.0, None);
        let ops: Vec<OpKind> = (0..10).map(|_| g.next_op()).collect();
        assert_eq!(ops.iter().filter(|o| **o == OpKind::Insert).count(), 5);
        assert_eq!(ops.iter().filter(|o| **o == OpKind::Delete).count(), 5);
    }

    #[test]
    fn move_ratio_produces_moves() {
        let mut g = KeyGen::new(3, 0, 64, 1.0, 0.5, None);
        let moves = (0..10_000).filter(|_| g.next_op() == OpKind::Move).count();
        assert!(
            moves > 3_000,
            "expected roughly half of updates to be moves, got {moves}"
        );
    }

    #[test]
    fn biased_insert_keys_are_higher_on_average_than_delete_keys() {
        // Paired design: two generators with identical streams draw the same
        // base key and skew offset, so the insert-minus-delete difference
        // isolates the bias (mean 2 * E[offset] ~ 9) instead of comparing two
        // independent means whose sampling noise would swamp it.
        let mut gi = KeyGen::new(11, 0, 1 << 14, 1.0, 0.0, Some(Bias { skew: 10 }));
        let mut gd = KeyGen::new(11, 0, 1 << 14, 1.0, 0.0, Some(Bias { skew: 10 }));
        let n = 50_000;
        let diff_avg: f64 = (0..n)
            .map(|_| gi.insert_key() as f64 - gd.delete_key() as f64)
            .sum::<f64>()
            / n as f64;
        assert!(
            diff_avg > 5.0,
            "bias should push inserts up and deletes down: paired diff {diff_avg}"
        );
    }

    #[test]
    fn scan_ratio_is_respected_approximately() {
        let config = crate::WorkloadConfig::smoke_test().with_scan_ratio(0.3);
        let mut g = KeyGen::for_config(&config, 0);
        let scans = (0..20_000).filter(|_| g.next_op() == OpKind::Scan).count();
        let ratio = scans as f64 / 20_000.0;
        assert!((ratio - 0.3).abs() < 0.02, "observed scan ratio {ratio}");
    }

    #[test]
    fn plain_new_generates_no_scans() {
        let mut g = KeyGen::new(5, 0, 1024, 0.5, 0.0, None);
        assert!((0..5_000).all(|_| g.next_op() != OpKind::Scan));
    }

    #[test]
    fn scan_ranges_have_the_configured_width_and_cluster_low() {
        let config = crate::WorkloadConfig::smoke_test()
            .with_scan_ratio(1.0)
            .with_scan_width(32);
        let mut g = KeyGen::for_config(&config, 1);
        let mut low_half = 0usize;
        let n = 10_000;
        for _ in 0..n {
            let (lo, hi) = g.scan_range();
            assert_eq!(hi - lo + 1, 32, "scan width must be respected");
            assert!(lo < config.key_range);
            if lo < config.key_range / 2 {
                low_half += 1;
            }
        }
        // Geometric halving of the origin domain concentrates origins well
        // beyond the uniform 50% in the lower half of the key space.
        assert!(
            low_half as f64 / n as f64 > 0.6,
            "scan origins should cluster low, got {low_half}/{n}"
        );
    }

    #[test]
    fn different_threads_get_different_streams() {
        let mut a = KeyGen::new(5, 0, 1 << 20, 0.5, 0.0, None);
        let mut b = KeyGen::new(5, 1, 1 << 20, 0.5, 0.0, None);
        let ka: Vec<u64> = (0..32).map(|_| a.uniform_key()).collect();
        let kb: Vec<u64> = (0..32).map(|_| b.uniform_key()).collect();
        assert_ne!(ka, kb);
    }
}
