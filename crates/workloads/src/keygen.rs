//! Key generation for the integer-set micro-benchmark, including the biased
//! distribution of §5.2 and the bounded Zipf distribution of the hot-key
//! restructuring experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::{Bias, WorkloadConfig};

/// Skew parameter used for range-scan origins when the workload does not
/// configure one: close to the classical Zipf singularity, so origins
/// concentrate on low keys the way dynamic-finger workloads concentrate on
/// recently-touched ones while still occasionally ranging anywhere.
pub const DEFAULT_SCAN_THETA: f64 = 0.99;

/// Bounded Zipfian sampler over ranks `0..n` with skew parameter θ, after
/// Gray et al. ("Quickly generating billion-record synthetic databases",
/// SIGMOD '94): the ζ-normalizer is precomputed once, each sample is then
/// O(1). Rank `r` is drawn with probability proportional to `1/(r+1)^θ`, so
/// rank 0 is the hottest; the identity rank→key mapping keeps hot keys
/// clustered at the bottom of the key space.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    /// Build a sampler over `[0, n)`. The closed form has a pole at θ = 1,
    /// so values within `1e-4` of it are nudged below; θ ≤ 0 degenerates to
    /// uniform (θ = 0 exactly).
    pub fn new(n: u64, theta: f64) -> Self {
        let n = n.max(2);
        let theta = if (theta - 1.0).abs() < 1e-4 {
            1.0 - 1e-4
        } else {
            theta.max(0.0)
        };
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    /// `ζ(n, θ) = Σ_{i=1..n} i^-θ`.
    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Draw one rank in `[0, n)`.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

/// The kind of abstract operation an update slot will perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Membership test.
    Contains,
    /// Effective insert.
    Insert,
    /// Effective (logical) delete.
    Delete,
    /// Composed move (delete + insert in one transaction).
    Move,
    /// Ordered range scan (`range_collect` over a window of the key space).
    Scan,
}

/// Per-thread pseudo-random key/operation generator.
#[derive(Debug)]
pub struct KeyGen {
    rng: StdRng,
    key_range: u64,
    update_ratio: f64,
    move_ratio: f64,
    scan_ratio: f64,
    scan_width: u64,
    bias: Option<Bias>,
    /// Zipf sampler for point-operation keys; `None` = uniform.
    zipf: Option<Zipf>,
    /// Zipf sampler for range-scan origins, built on first use (at the
    /// configured θ, or [`DEFAULT_SCAN_THETA`] when the point keys are
    /// uniform).
    scan_zipf: Option<Zipf>,
    scan_theta: f64,
    /// Alternates inserts and deletes so the expected set size stays constant
    /// (the paper performs "an insert and a remove with the same
    /// probability").
    next_update_is_insert: bool,
}

impl KeyGen {
    /// Create a generator for one worker thread (point operations only; use
    /// [`KeyGen::for_config`] to include the scan mix).
    pub fn new(
        seed: u64,
        thread_index: usize,
        key_range: u64,
        update_ratio: f64,
        move_ratio: f64,
        bias: Option<Bias>,
    ) -> Self {
        // Derive a distinct, deterministic stream per thread.
        let rng = StdRng::seed_from_u64(
            seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(thread_index as u64 + 1)),
        );
        KeyGen {
            rng,
            key_range: key_range.max(2),
            update_ratio,
            move_ratio,
            scan_ratio: 0.0,
            scan_width: 0,
            bias,
            zipf: None,
            scan_zipf: None,
            scan_theta: DEFAULT_SCAN_THETA,
            next_update_is_insert: thread_index.is_multiple_of(2),
        }
    }

    /// Create a generator for one worker thread with the full operation mix
    /// of `config`, including the range-scan family and the optional Zipfian
    /// point-key distribution.
    pub fn for_config(config: &WorkloadConfig, thread_index: usize) -> Self {
        let mut gen = KeyGen::new(
            config.seed,
            thread_index,
            config.key_range,
            config.update_ratio,
            config.move_ratio,
            config.bias,
        );
        gen.scan_ratio = config.scan_ratio;
        gen.scan_width = config.scan_width;
        if let Some(theta) = config.zipf_theta {
            gen.zipf = Some(Zipf::new(gen.key_range, theta));
            gen.scan_theta = theta;
        }
        if gen.scan_ratio > 0.0 {
            // Built eagerly so the ζ precomputation stays out of the
            // measured loop.
            gen.scan_zipf = Some(Zipf::new(gen.key_range, gen.scan_theta));
        }
        gen
    }

    /// Uniform key in `[0, key_range)`.
    pub fn uniform_key(&mut self) -> u64 {
        self.rng.gen_range(0..self.key_range)
    }

    /// Base key of a point operation: Zipf-distributed when the workload is
    /// skewed, uniform otherwise.
    fn point_key(&mut self) -> u64 {
        match &self.zipf {
            Some(zipf) => zipf.sample(&mut self.rng),
            None => self.rng.gen_range(0..self.key_range),
        }
    }

    /// Key used for a membership test / lookup.
    pub fn lookup_key(&mut self) -> u64 {
        self.point_key()
    }

    /// Key used for an insert: skewed towards the top of the range when the
    /// workload is biased.
    pub fn insert_key(&mut self) -> u64 {
        let base = self.point_key();
        match self.bias {
            None => base,
            Some(Bias { skew }) => (base + self.rng.gen_range(0..skew)).min(self.key_range - 1),
        }
    }

    /// Key used for a delete: skewed towards the bottom of the range when the
    /// workload is biased.
    pub fn delete_key(&mut self) -> u64 {
        let base = self.point_key();
        match self.bias {
            None => base,
            Some(Bias { skew }) => base.saturating_sub(self.rng.gen_range(0..skew)),
        }
    }

    /// The `[lo, hi]` bounds of one range scan: a window of `scan_width`
    /// keys whose origin is drawn from the bounded Zipf distribution (the
    /// workload's configured θ, or [`DEFAULT_SCAN_THETA`] when point keys
    /// are uniform), so scans concentrate on the same hot low keys as the
    /// skewed point operations while still occasionally ranging anywhere.
    pub fn scan_range(&mut self) -> (u64, u64) {
        let width = self.scan_width.max(1);
        if self.scan_zipf.is_none() {
            self.scan_zipf = Some(Zipf::new(self.key_range, self.scan_theta));
        }
        let lo = self
            .scan_zipf
            .as_ref()
            .expect("just built")
            .sample(&mut self.rng);
        (lo, lo.saturating_add(width - 1))
    }

    /// Decide the next operation according to the configured mix.
    pub fn next_op(&mut self) -> OpKind {
        if self.scan_ratio > 0.0 && self.rng.gen::<f64>() < self.scan_ratio {
            return OpKind::Scan;
        }
        if self.rng.gen::<f64>() >= self.update_ratio {
            return OpKind::Contains;
        }
        if self.move_ratio > 0.0 && self.rng.gen::<f64>() < self.move_ratio {
            return OpKind::Move;
        }
        let op = if self.next_update_is_insert {
            OpKind::Insert
        } else {
            OpKind::Delete
        };
        self.next_update_is_insert = !self.next_update_is_insert;
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_stay_in_range() {
        let mut g = KeyGen::new(1, 0, 1024, 0.5, 0.0, Some(Bias { skew: 10 }));
        for _ in 0..10_000 {
            assert!(g.uniform_key() < 1024);
            assert!(g.insert_key() < 1024);
            assert!(g.delete_key() < 1024);
        }
    }

    #[test]
    fn update_ratio_is_respected_approximately() {
        let mut g = KeyGen::new(7, 1, 1024, 0.2, 0.0, None);
        let updates = (0..20_000)
            .filter(|_| g.next_op() != OpKind::Contains)
            .count();
        let ratio = updates as f64 / 20_000.0;
        assert!((ratio - 0.2).abs() < 0.02, "observed update ratio {ratio}");
    }

    #[test]
    fn inserts_and_deletes_alternate() {
        let mut g = KeyGen::new(3, 0, 64, 1.0, 0.0, None);
        let ops: Vec<OpKind> = (0..10).map(|_| g.next_op()).collect();
        assert_eq!(ops.iter().filter(|o| **o == OpKind::Insert).count(), 5);
        assert_eq!(ops.iter().filter(|o| **o == OpKind::Delete).count(), 5);
    }

    #[test]
    fn move_ratio_produces_moves() {
        let mut g = KeyGen::new(3, 0, 64, 1.0, 0.5, None);
        let moves = (0..10_000).filter(|_| g.next_op() == OpKind::Move).count();
        assert!(
            moves > 3_000,
            "expected roughly half of updates to be moves, got {moves}"
        );
    }

    #[test]
    fn biased_insert_keys_are_higher_on_average_than_delete_keys() {
        // Paired design: two generators with identical streams draw the same
        // base key and skew offset, so the insert-minus-delete difference
        // isolates the bias (mean 2 * E[offset] ~ 9) instead of comparing two
        // independent means whose sampling noise would swamp it.
        let mut gi = KeyGen::new(11, 0, 1 << 14, 1.0, 0.0, Some(Bias { skew: 10 }));
        let mut gd = KeyGen::new(11, 0, 1 << 14, 1.0, 0.0, Some(Bias { skew: 10 }));
        let n = 50_000;
        let diff_avg: f64 = (0..n)
            .map(|_| gi.insert_key() as f64 - gd.delete_key() as f64)
            .sum::<f64>()
            / n as f64;
        assert!(
            diff_avg > 5.0,
            "bias should push inserts up and deletes down: paired diff {diff_avg}"
        );
    }

    #[test]
    fn scan_ratio_is_respected_approximately() {
        let config = crate::WorkloadConfig::smoke_test().with_scan_ratio(0.3);
        let mut g = KeyGen::for_config(&config, 0);
        let scans = (0..20_000).filter(|_| g.next_op() == OpKind::Scan).count();
        let ratio = scans as f64 / 20_000.0;
        assert!((ratio - 0.3).abs() < 0.02, "observed scan ratio {ratio}");
    }

    #[test]
    fn plain_new_generates_no_scans() {
        let mut g = KeyGen::new(5, 0, 1024, 0.5, 0.0, None);
        assert!((0..5_000).all(|_| g.next_op() != OpKind::Scan));
    }

    #[test]
    fn scan_ranges_have_the_configured_width_and_cluster_low() {
        let config = crate::WorkloadConfig::smoke_test()
            .with_scan_ratio(1.0)
            .with_scan_width(32);
        let mut g = KeyGen::for_config(&config, 1);
        let mut low_half = 0usize;
        let n = 10_000;
        for _ in 0..n {
            let (lo, hi) = g.scan_range();
            assert_eq!(hi - lo + 1, 32, "scan width must be respected");
            assert!(lo < config.key_range);
            if lo < config.key_range / 2 {
                low_half += 1;
            }
        }
        // The Zipfian origin distribution concentrates origins well beyond
        // the uniform 50% in the lower half of the key space.
        assert!(
            low_half as f64 / n as f64 > 0.6,
            "scan origins should cluster low, got {low_half}/{n}"
        );
    }

    #[test]
    fn zipf_head_holds_dominant_mass_and_tail_is_thin() {
        let zipf = Zipf::new(1024, 0.99);
        let mut rng = StdRng::seed_from_u64(0xcafe);
        let n = 200_000;
        let mut counts = vec![0u64; 1024];
        for _ in 0..n {
            let rank = zipf.sample(&mut rng);
            assert!(rank < 1024);
            counts[rank as usize] += 1;
        }
        let head: u64 = counts[..103].iter().sum(); // hottest 10% of keys
        let tail: u64 = counts[512..].iter().sum(); // coldest half
                                                    // ζ-ratios at θ=0.99: the head holds ≈ 2/3 of the mass, the tail ≈ 10%.
        assert!(
            head as f64 / n as f64 > 0.55,
            "top-10% keys should dominate, got {head}/{n}"
        );
        assert!(
            (tail as f64 / n as f64) < 0.15,
            "cold half should be thin, got {tail}/{n}"
        );
        // Monotone head: rank 0 is the single hottest key.
        assert!(counts[0] > counts[1] && counts[1] > counts[8]);
    }

    #[test]
    fn higher_theta_concentrates_more_mass_on_the_hottest_key() {
        let mut hits = [0u64; 2];
        for (slot, theta) in [(0usize, 0.5), (1usize, 1.2)] {
            let zipf = Zipf::new(512, theta);
            let mut rng = StdRng::seed_from_u64(7);
            hits[slot] = (0..50_000).filter(|_| zipf.sample(&mut rng) == 0).count() as u64;
        }
        assert!(
            hits[1] > 2 * hits[0],
            "θ=1.2 should hit rank 0 far more than θ=0.5: {hits:?}"
        );
    }

    #[test]
    fn zipf_point_keys_flow_into_every_point_operation() {
        let config = crate::WorkloadConfig::smoke_test().with_zipf_theta(Some(1.1));
        let mut g = KeyGen::for_config(&config, 0);
        let n = 20_000;
        let low = (0..n)
            .filter(|_| g.lookup_key() < config.key_range / 8)
            .count();
        assert!(
            low as f64 / n as f64 > 0.5,
            "skewed lookups should concentrate in the bottom eighth, got {low}/{n}"
        );
        let ins_low = (0..n)
            .filter(|_| g.insert_key() < config.key_range / 8)
            .count();
        let del_low = (0..n)
            .filter(|_| g.delete_key() < config.key_range / 8)
            .count();
        assert!(ins_low as f64 / n as f64 > 0.5, "{ins_low}/{n}");
        assert!(del_low as f64 / n as f64 > 0.5, "{del_low}/{n}");
    }

    #[test]
    fn different_threads_get_different_streams() {
        let mut a = KeyGen::new(5, 0, 1 << 20, 0.5, 0.0, None);
        let mut b = KeyGen::new(5, 1, 1 << 20, 0.5, 0.0, None);
        let ka: Vec<u64> = (0..32).map(|_| a.uniform_key()).collect();
        let kb: Vec<u64> = (0..32).map(|_| b.uniform_key()).collect();
        assert_ne!(ka, kb);
    }
}
