//! Operation-latency recording and the per-run latency report.
//!
//! The driver samples (1-in-`SF_OBS_SAMPLE`) each worker operation's
//! wall-clock latency into one process-wide [`Histogram`] per [`OpKind`];
//! [`LatencyReport`] is the per-run view, computed as the delta of the
//! process-wide histograms (operations, WAL sync wait and fsync from
//! [`sf_persist::stats`], maintenance passes from
//! [`sf_tree::maintenance_histograms`]) across the measured phase.

use sf_obs::{Histogram, HistogramSnapshot};

use crate::keygen::OpKind;

/// Number of operation kinds ([`OpKind`] variants).
pub const OP_KINDS: usize = 5;

/// The process-wide per-kind operation-latency histograms, in
/// [`op_index`] order.
static OP_LATS: [Histogram; OP_KINDS] = [const { Histogram::new() }; OP_KINDS];

/// Dense index of an [`OpKind`] into [`LatencyReport::per_op`] (declaration
/// order: contains, insert, delete, move, scan).
pub fn op_index(op: OpKind) -> usize {
    match op {
        OpKind::Contains => 0,
        OpKind::Insert => 1,
        OpKind::Delete => 2,
        OpKind::Move => 3,
        OpKind::Scan => 4,
    }
}

/// Human label of the kind at [`op_index`] `index` (Prometheus label /
/// JSON field stem).
pub fn op_label(index: usize) -> &'static str {
    ["contains", "insert", "delete", "move", "scan"][index]
}

/// Record one sampled operation latency.
pub(crate) fn record_op(op: OpKind, elapsed: std::time::Duration) {
    OP_LATS[op_index(op)].record_duration(elapsed);
}

/// Snapshot all five per-kind operation histograms (cumulative,
/// process-wide).
pub fn op_histograms() -> [HistogramSnapshot; OP_KINDS] {
    std::array::from_fn(|i| OP_LATS[i].snapshot())
}

/// Latency distributions observed during one measured phase. All values are
/// nanoseconds except [`LatencyReport::maint_pass_work`] (rotations per
/// maintenance pass). Operation latencies are sampled 1-in-`SF_OBS_SAMPLE`
/// (default 32, `0` disables them); the WAL fsync and maintenance-pass
/// histograms record every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencyReport {
    /// All sampled operations merged (any kind).
    pub op: HistogramSnapshot,
    /// Per-kind operation latency, indexed by [`op_index`].
    pub per_op: [HistogramSnapshot; OP_KINDS],
    /// Commit-path WAL enqueue-to-durable wait (sampled; empty for
    /// non-durable backends).
    pub wal_sync: HistogramSnapshot,
    /// WAL flush-batch write+sync duration (every batch).
    pub wal_fsync: HistogramSnapshot,
    /// Maintenance pass duration (every pass, every worker).
    pub maint_pass: HistogramSnapshot,
    /// Rotations performed per maintenance pass (unitless work measure).
    pub maint_pass_work: HistogramSnapshot,
}

/// The "before" snapshots backing a [`LatencyReport`] delta.
pub(crate) struct LatencyBaseline {
    per_op: [HistogramSnapshot; OP_KINDS],
    wal_sync: HistogramSnapshot,
    wal_fsync: HistogramSnapshot,
    maint_pass: HistogramSnapshot,
    maint_pass_work: HistogramSnapshot,
}

impl LatencyBaseline {
    /// Snapshot every process-wide latency histogram before the measured
    /// phase.
    pub(crate) fn take() -> LatencyBaseline {
        let (maint_pass, maint_pass_work) = sf_tree::maintenance_histograms();
        LatencyBaseline {
            per_op: op_histograms(),
            wal_sync: sf_persist::stats::sync_wait_histogram(),
            wal_fsync: sf_persist::stats::fsync_histogram(),
            maint_pass,
            maint_pass_work,
        }
    }

    /// The measured phase's latency distributions: current state minus this
    /// baseline.
    pub(crate) fn report(&self) -> LatencyReport {
        let (maint_pass, maint_pass_work) = sf_tree::maintenance_histograms();
        let per_op: [HistogramSnapshot; OP_KINDS] = {
            let now = op_histograms();
            std::array::from_fn(|i| now[i].delta_since(&self.per_op[i]))
        };
        let mut op = HistogramSnapshot::default();
        for kind in &per_op {
            op.merge(kind);
        }
        LatencyReport {
            op,
            per_op,
            wal_sync: sf_persist::stats::sync_wait_histogram().delta_since(&self.wal_sync),
            wal_fsync: sf_persist::stats::fsync_histogram().delta_since(&self.wal_fsync),
            maint_pass: maint_pass.delta_since(&self.maint_pass),
            maint_pass_work: maint_pass_work.delta_since(&self.maint_pass_work),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn op_index_covers_every_kind_once() {
        let mut seen = [false; OP_KINDS];
        for op in [
            OpKind::Contains,
            OpKind::Insert,
            OpKind::Delete,
            OpKind::Move,
            OpKind::Scan,
        ] {
            let i = op_index(op);
            assert!(!seen[i], "index {i} assigned twice");
            seen[i] = true;
            assert!(!op_label(i).is_empty());
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn baseline_delta_isolates_the_window() {
        record_op(OpKind::Insert, Duration::from_nanos(100));
        let baseline = LatencyBaseline::take();
        record_op(OpKind::Insert, Duration::from_nanos(200));
        record_op(OpKind::Scan, Duration::from_nanos(300));
        let report = baseline.report();
        // Concurrent tests may also record; the window holds at least ours.
        assert!(report.per_op[op_index(OpKind::Insert)].count() >= 1);
        assert!(report.per_op[op_index(OpKind::Scan)].count() >= 1);
        assert!(report.op.count() >= 2, "merged view spans all kinds");
        assert!(report.op.p99() > 0);
    }
}
