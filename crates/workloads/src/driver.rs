//! The micro-benchmark driver: populate a map, run a timed (or
//! operation-bounded) mixed workload over it from N threads, and report
//! throughput together with the STM-level statistics (aborts, transactional
//! reads, read-set high-water marks) that the paper's Table 1 and Figures 3-5
//! are built from.
//!
//! The driver runs over [`Backend`]s — the object-safe wrapper of the
//! [`backend`](crate::backend) registry — so one loop serves every
//! structure, including multi-STM ones like the sharded tree. The generic
//! [`run_workload`] / [`populate_and_run`] entry points wrap caller-owned
//! `(stm, map)` pairs into an ephemeral [`Backend`] and funnel into the same
//! code path.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use sf_obs::Sampler;
use sf_stm::{StatsSnapshot, Stm};
use sf_tree::TxMap;

use crate::backend::{Backend, MapSession};
use crate::chk;
use crate::config::{RunLength, WorkloadConfig};
use crate::keygen::{KeyGen, OpKind};
use crate::latency::{self, LatencyReport};

/// Per-thread operation counts.
#[derive(Debug, Default, Clone, Copy)]
struct ThreadReport {
    ops: u64,
    effective_updates: u64,
    attempted_updates: u64,
    effective_moves: u64,
    successful_lookups: u64,
    scans: u64,
    scanned_entries: u64,
}

/// Aggregated result of one micro-benchmark run.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// Structure label (e.g. `SFtree`, `OptSFtree-sharded8`).
    pub structure: String,
    /// Number of application threads.
    pub threads: usize,
    /// Total completed operations across all threads.
    pub total_ops: u64,
    /// Updates that modified the structure (the paper's *effective* updates).
    pub effective_updates: u64,
    /// Update attempts including the ones that failed (e.g. deleting an
    /// absent key).
    pub attempted_updates: u64,
    /// Effective move operations (Figure 5(b)).
    pub effective_moves: u64,
    /// Membership tests that found their key.
    pub successful_lookups: u64,
    /// Completed range scans.
    pub scans: u64,
    /// Total live entries returned across all range scans.
    pub scanned_entries: u64,
    /// The seed the workload's key streams were derived from (`SF_SEED`).
    pub seed: u64,
    /// Wall-clock duration of the measured phase.
    pub elapsed: Duration,
    /// STM statistics accumulated during the measured phase (the populate
    /// phase is excluded by resetting the counters), aggregated over every
    /// STM instance of the backend.
    pub stm: StatsSnapshot,
    /// WAL (durability) work during the measured phase: the delta of the
    /// process-wide [`sf_persist::stats`] counters across the run. All
    /// zeros when the backend is not a `+wal` variant.
    pub wal: sf_persist::WalStats,
    /// Hot-key summary taken (quiescently) after the measured phase: hot
    /// rotations performed, sampled access mass and its average depth, and
    /// the hottest key's depth. All zeros for backends without access
    /// sampling (baselines).
    pub hot: sf_tree::HotReport,
    /// Latency distributions of the measured phase: sampled operation
    /// latency per kind, the WAL's sync wait and fsync duration, and
    /// maintenance pass cost. Computed as the delta of the process-wide
    /// histograms across the run.
    pub lat: LatencyReport,
}

impl WorkloadResult {
    /// Throughput in operations per microsecond (the unit of Figures 3-5).
    pub fn ops_per_microsecond(&self) -> f64 {
        self.total_ops as f64 / self.elapsed.as_micros().max(1) as f64
    }

    /// Observed effective update ratio.
    pub fn effective_update_ratio(&self) -> f64 {
        if self.total_ops == 0 {
            0.0
        } else {
            self.effective_updates as f64 / self.total_ops as f64
        }
    }

    /// Abort ratio observed during the measured phase.
    pub fn abort_ratio(&self) -> f64 {
        self.stm.abort_ratio()
    }
}

/// Insert `config.initial_size` distinct keys drawn uniformly from the key
/// range through one session (single-threaded, before the measured phase).
fn populate_session(session: &mut dyn MapSession, config: &WorkloadConfig) {
    let mut gen = KeyGen::new(
        config.seed ^ 0xb0b0_b0b0,
        0xffff,
        config.key_range,
        0.0,
        0.0,
        None,
    );
    let mut inserted = 0usize;
    while inserted < config.initial_size.min(config.key_range as usize) {
        let key = gen.uniform_key();
        if session.insert(key, key) {
            inserted += 1;
        }
    }
}

/// Insert `config.initial_size` distinct keys drawn uniformly from the key
/// range (single-threaded, before the measured phase).
pub fn populate<M: TxMap>(stm: &Arc<Stm>, map: &M, config: &WorkloadConfig) {
    let mut handle = map.register(stm.register());
    let mut gen = KeyGen::new(
        config.seed ^ 0xb0b0_b0b0,
        0xffff,
        config.key_range,
        0.0,
        0.0,
        None,
    );
    let mut inserted = 0usize;
    while inserted < config.initial_size.min(config.key_range as usize) {
        let key = gen.uniform_key();
        if map.insert(&mut handle, key, key) {
            inserted += 1;
        }
    }
}

/// Populate a registry-built backend (single-threaded).
pub fn populate_backend(backend: &Backend, config: &WorkloadConfig) {
    populate_session(backend.session().as_mut(), config);
}

/// One worker thread's measured loop.
fn worker_loop(
    session: &mut dyn MapSession,
    gen: &mut KeyGen,
    run: RunLength,
    stop: &AtomicBool,
    barrier: &Barrier,
    mut oplog: chk::WorkerLog,
) -> ThreadReport {
    let mut report = ThreadReport::default();
    let mut sampler = Sampler::from_env();
    barrier.wait();
    let op_budget = match run {
        RunLength::Ops(n) => n,
        RunLength::Timed(_) => u64::MAX,
    };
    // sf-lint: allow(relaxed-atomic, stop flag polled per op; a stale read only runs one extra operation)
    while report.ops < op_budget && !stop.load(Ordering::Relaxed) {
        let op = gen.next_op();
        // 1-in-N latency sampling: the untimed path never reads the clock.
        let timed_since = if sampler.tick() {
            Some(Instant::now())
        } else {
            None
        };
        match op {
            OpKind::Contains => {
                let key = gen.lookup_key();
                let ticket = oplog.invoke(chk::Op::Contains(key));
                let found = session.contains(key);
                oplog.complete(ticket, chk::Ret::Bool(found));
                if found {
                    report.successful_lookups += 1;
                }
            }
            OpKind::Insert => {
                let key = gen.insert_key();
                report.attempted_updates += 1;
                let ticket = oplog.invoke(chk::Op::Insert(key, key));
                let inserted = session.insert(key, key);
                oplog.complete(ticket, chk::Ret::Bool(inserted));
                if inserted {
                    report.effective_updates += 1;
                }
            }
            OpKind::Delete => {
                let key = gen.delete_key();
                report.attempted_updates += 1;
                let ticket = oplog.invoke(chk::Op::Delete(key));
                let deleted = session.delete(key);
                oplog.complete(ticket, chk::Ret::Bool(deleted));
                if deleted {
                    report.effective_updates += 1;
                }
            }
            OpKind::Move => {
                let from = gen.delete_key();
                let to = gen.insert_key();
                report.attempted_updates += 1;
                let ticket = oplog.invoke(chk::Op::Move(from, to));
                let moved = session.move_entry(from, to);
                oplog.complete(ticket, chk::Ret::Bool(moved));
                if moved {
                    report.effective_updates += 1;
                    report.effective_moves += 1;
                }
            }
            OpKind::Scan => {
                let (lo, hi) = gen.scan_range();
                report.scans += 1;
                let ticket = oplog.invoke(chk::Op::Scan(lo, hi));
                let entries = session.range_collect(lo, hi);
                report.scanned_entries += entries.len() as u64;
                oplog.complete(ticket, chk::Ret::Entries(entries));
            }
        }
        if let Some(started) = timed_since {
            latency::record_op(op, started.elapsed());
        }
        report.ops += 1;
    }
    oplog.finish();
    report
}

/// Run the measured phase of the workload over an already-populated backend.
///
/// STM statistics are reset at the start of the measured phase so the
/// returned snapshot covers only the measured operations.
pub fn run_workload_backend(backend: &Backend, config: &WorkloadConfig) -> WorkloadResult {
    assert!(
        config.threads >= 1,
        "at least one worker thread is required"
    );
    backend.reset_stats();
    // Expose this run's live state on the metrics registry (the periodic
    // emitter picks it up); unregistered when the run returns.
    let _metrics = backend.metrics_source();
    let wal_before = sf_persist::stats::snapshot();
    let lat_before = latency::LatencyBaseline::take();
    // Arm whatever SF_CHECK_* asks for (check builds only). The initial
    // snapshot for the history checker is taken here, after populate.
    let checks = chk::RunChecks::arm(|| backend.session().range_collect(0, u64::MAX));
    let stop = AtomicBool::new(false);
    let barrier = Barrier::new(config.threads + 1);
    let run = config.run;
    let (reports, elapsed) = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..config.threads)
            .map(|thread_index| {
                let mut session = backend.session();
                let mut gen = KeyGen::for_config(config, thread_index);
                let oplog = checks.worker();
                let (stop, barrier) = (&stop, &barrier);
                scope.spawn(move || {
                    worker_loop(session.as_mut(), &mut gen, run, stop, barrier, oplog)
                })
            })
            .collect();
        barrier.wait();
        let started = Instant::now();
        if let RunLength::Timed(duration) = run {
            std::thread::sleep(duration);
            // sf-lint: allow(relaxed-atomic, stop flag; the worker joins that follow provide the final synchronization)
            stop.store(true, Ordering::Relaxed);
        }
        let reports: Vec<ThreadReport> = workers
            .into_iter()
            .map(|w| w.join().expect("worker thread panicked"))
            .collect();
        (reports, started.elapsed())
    });
    checks.verify(backend.label());
    let mut result = WorkloadResult {
        structure: backend.label().to_string(),
        threads: config.threads,
        total_ops: 0,
        effective_updates: 0,
        attempted_updates: 0,
        effective_moves: 0,
        successful_lookups: 0,
        scans: 0,
        scanned_entries: 0,
        seed: config.seed,
        elapsed,
        stm: backend.stats(),
        wal: sf_persist::stats::snapshot().delta_since(&wal_before),
        hot: backend.hot_report().unwrap_or_default(),
        lat: lat_before.report(),
    };
    for r in reports {
        result.total_ops += r.ops;
        result.effective_updates += r.effective_updates;
        result.attempted_updates += r.attempted_updates;
        result.effective_moves += r.effective_moves;
        result.successful_lookups += r.successful_lookups;
        result.scans += r.scans;
        result.scanned_entries += r.scanned_entries;
    }
    result
}

/// Populate and run a registry-built backend in one call.
pub fn populate_and_run_backend(backend: &Backend, config: &WorkloadConfig) -> WorkloadResult {
    populate_backend(backend, config);
    run_workload_backend(backend, config)
}

/// Run the measured phase of the workload over an already-populated map.
///
/// Wraps the caller-owned `(stm, map)` pair into an ephemeral [`Backend`]
/// and drives it through the same loop as registry-built backends.
pub fn run_workload<M>(stm: &Arc<Stm>, map: &Arc<M>, config: &WorkloadConfig) -> WorkloadResult
where
    M: TxMap + Send + Sync + 'static,
    M::Handle: Send + 'static,
{
    let backend = Backend::from_parts(Arc::clone(map), vec![Arc::clone(stm)]);
    run_workload_backend(&backend, config)
}

/// Populate and run in one call.
pub fn populate_and_run<M>(stm: &Arc<Stm>, map: &Arc<M>, config: &WorkloadConfig) -> WorkloadResult
where
    M: TxMap + Send + Sync + 'static,
    M::Handle: Send + 'static,
{
    populate(stm, map.as_ref(), config);
    run_workload(stm, map, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_baselines::{AvlTree, NoRestructureTree, RedBlackTree};
    use sf_stm::StmConfig;
    use sf_tree::{OptSpecFriendlyTree, SpecFriendlyTree};

    fn smoke<M>(map: M)
    where
        M: TxMap + Send + Sync + 'static,
        M::Handle: Send + 'static,
    {
        let stm = Stm::default_config();
        let map = Arc::new(map);
        let config = WorkloadConfig::smoke_test();
        let result = populate_and_run(&stm, &map, &config);
        assert_eq!(result.threads, 2);
        assert_eq!(result.total_ops, 600, "two threads x 300 ops each");
        assert!(result.effective_updates <= result.attempted_updates);
        assert!(result.stm.commits >= result.total_ops);
        assert!(result.ops_per_microsecond() > 0.0);
        // Size stays near the initial size (updates alternate insert/delete).
        let len = map.len_quiescent();
        assert!(
            (len as i64 - config.initial_size as i64).abs() < 64,
            "size drifted too far: {len}"
        );
    }

    #[test]
    fn all_structures_run_the_smoke_workload() {
        smoke(SpecFriendlyTree::new());
        smoke(OptSpecFriendlyTree::new());
        smoke(NoRestructureTree::new());
        smoke(RedBlackTree::new());
        smoke(AvlTree::new());
    }

    #[test]
    fn registry_backends_run_the_smoke_workload() {
        for name in ["sftree-opt", "sftree-opt-sharded4", "rbtree"] {
            let backend = Backend::build(name, StmConfig::ctl()).unwrap();
            let config = WorkloadConfig::smoke_test();
            let result = populate_and_run_backend(&backend, &config);
            assert_eq!(result.structure, backend.label());
            assert_eq!(result.total_ops, 600, "{name}: two threads x 300 ops");
            assert!(result.stm.commits > 0, "{name} recorded no commits");
            let len = backend.len_quiescent();
            assert!(
                (len as i64 - config.initial_size as i64).abs() < 64,
                "{name}: size drifted too far: {len}"
            );
        }
    }

    #[test]
    fn move_workload_reports_moves() {
        let stm = Stm::default_config();
        let map = Arc::new(OptSpecFriendlyTree::new());
        let config = WorkloadConfig::smoke_test()
            .with_update_ratio(0.5)
            .with_move_ratio(0.5);
        let result = populate_and_run(&stm, &map, &config);
        assert!(result.effective_moves > 0, "expected some moves to succeed");
    }

    #[test]
    fn sharded_move_workload_reports_moves() {
        let backend = Backend::build("sftree-opt-sharded4", StmConfig::ctl()).unwrap();
        let config = WorkloadConfig::smoke_test()
            .with_update_ratio(0.5)
            .with_move_ratio(0.5);
        let result = populate_and_run_backend(&backend, &config);
        assert!(result.effective_moves > 0, "expected some moves to succeed");
    }

    #[test]
    fn scan_workload_reports_scans_on_plain_and_sharded_backends() {
        for name in ["sftree-opt", "seq", "sftree-opt-sharded2"] {
            let backend = Backend::build(name, StmConfig::ctl()).unwrap();
            let config = WorkloadConfig::smoke_test()
                .with_scan_ratio(0.3)
                .with_scan_width(32);
            let result = populate_and_run_backend(&backend, &config);
            assert!(result.scans > 0, "{name}: expected some scans");
            assert!(
                result.scanned_entries > 0,
                "{name}: scans over a populated map should return entries"
            );
            assert_eq!(result.seed, config.seed);
            // Scans plus point ops account for every operation.
            assert_eq!(result.total_ops, 600);
            if name != "seq" {
                assert!(
                    result.stm.scan_commits >= result.scans,
                    "{name}: every scan commits at least one read-only transaction"
                );
            }
        }
    }

    #[test]
    fn wal_backend_runs_the_smoke_workload_and_reports_wal_work() {
        let backend = Backend::build("sftree-opt+wal", StmConfig::ctl()).unwrap();
        let config = WorkloadConfig::smoke_test()
            .with_threads(1)
            .with_run(RunLength::Ops(300));
        let result = populate_and_run_backend(&backend, &config);
        assert_eq!(result.structure, "OptSFtree+wal");
        assert_eq!(result.total_ops, 300);
        assert!(
            result.wal.records >= result.effective_updates,
            "every effective update logs at least one record ({} < {})",
            result.wal.records,
            result.effective_updates
        );
        assert!(result.wal.bytes > 0);
        assert!(result.wal.batches > 0);
        // The recovered contents equal the live contents: every mutation was
        // acknowledged durable before the workload moved on.
        let mut session = backend.session();
        let live = session.range_collect(0, u64::MAX);
        let dir = std::env::temp_dir().join(format!("sf-wal-{}", std::process::id()));
        // Find this backend's directory: the label-named subdir with the
        // highest build counter that recovers to the live contents.
        let mut matched = false;
        if let Ok(entries) = std::fs::read_dir(&dir) {
            for entry in entries.flatten() {
                if !entry
                    .file_name()
                    .to_string_lossy()
                    .starts_with("sftree-opt+wal-")
                {
                    continue;
                }
                if let Ok(recovered) = sf_persist::recover(entry.path()) {
                    if recovered.entries == live {
                        matched = true;
                    }
                }
            }
        }
        assert!(
            matched,
            "some sftree-opt+wal dir must recover to the live contents"
        );
    }

    #[test]
    fn timed_run_stops() {
        let stm = Stm::default_config();
        let map = Arc::new(OptSpecFriendlyTree::new());
        let config = WorkloadConfig::smoke_test()
            .with_run(RunLength::Timed(Duration::from_millis(50)))
            .with_threads(2);
        let result = populate_and_run(&stm, &map, &config);
        assert!(result.elapsed >= Duration::from_millis(50));
        assert!(result.total_ops > 0);
    }

    #[test]
    fn biased_workload_runs() {
        let stm = Stm::default_config();
        let map = Arc::new(SpecFriendlyTree::new());
        let config = WorkloadConfig::smoke_test().with_bias(crate::config::Bias::default());
        let result = populate_and_run(&stm, &map, &config);
        assert!(result.total_ops > 0);
    }
}
