//! The metrics exposition surface.
//!
//! Each layer (STM, WAL, maintenance, workload driver) registers a *source*
//! — a closure that appends [`MetricSample`]s describing its current state —
//! with the process-wide [`MetricsRegistry`]. The registry renders all
//! sources into Prometheus-style text (`name{labels} value`), either on
//! demand ([`MetricsRegistry::render_prometheus`]) or periodically to stderr
//! from a background emitter thread gated by `SF_STATS_EVERY_MS`. This is
//! the endpoint a future network front-end mounts directly; until then the
//! emitter gives long benchmark runs a live telemetry feed without touching
//! stdout (which carries the `SF_JSON` lines CI parses).

use std::fmt::Write as _;
// sf-lint: allow(shim-bypass, sf-check reports through sf-obs (flight-recorder dump, metrics); an instrumented lock here would recurse into the detector)
use std::sync::{Mutex, Once, OnceLock, PoisonError};

/// One exposition sample: a metric name, optional `key="value"` labels, and
/// the current value.
#[derive(Debug, Clone)]
pub struct MetricSample {
    /// Metric name (Prometheus conventions: `sf_` prefix, snake_case,
    /// `_total` suffix for counters).
    pub name: &'static str,
    /// Label pairs, rendered `{k="v",...}`; empty for unlabelled metrics.
    pub labels: Vec<(&'static str, String)>,
    /// Current value.
    pub value: f64,
}

impl MetricSample {
    /// An unlabelled sample.
    pub fn new(name: &'static str, value: f64) -> Self {
        MetricSample {
            name,
            labels: Vec::new(),
            value,
        }
    }

    /// Add one label pair (builder-style).
    pub fn label(mut self, key: &'static str, value: impl Into<String>) -> Self {
        self.labels.push((key, value.into()));
        self
    }
}

type Source = Box<dyn Fn(&mut Vec<MetricSample>) + Send + Sync>;

struct Registered {
    id: u64,
    source: Source,
}

/// The process-wide registry of metric sources. Obtain it with
/// [`MetricsRegistry::global`].
pub struct MetricsRegistry {
    sources: Mutex<Vec<Registered>>,
    next_id: Mutex<u64>,
}

/// RAII handle for a registered source: dropping it unregisters the source,
/// so short-lived scopes (one workload run) can expose live state safely.
pub struct SourceGuard {
    id: u64,
}

impl Drop for SourceGuard {
    fn drop(&mut self) {
        let registry = MetricsRegistry::global();
        let mut sources = registry
            .sources
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        sources.retain(|r| r.id != self.id);
    }
}

impl MetricsRegistry {
    /// The process-wide registry.
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(|| MetricsRegistry {
            sources: Mutex::new(Vec::new()),
            next_id: Mutex::new(0),
        })
    }

    /// Register a sample source; it stays live until the returned guard
    /// drops.
    #[must_use = "dropping the guard unregisters the source"]
    pub fn register(
        &self,
        source: impl Fn(&mut Vec<MetricSample>) + Send + Sync + 'static,
    ) -> SourceGuard {
        let id = {
            let mut next = self.next_id.lock().unwrap_or_else(PoisonError::into_inner);
            *next += 1;
            *next
        };
        self.sources
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Registered {
                id,
                source: Box::new(source),
            });
        SourceGuard { id }
    }

    /// Collect every source's current samples.
    pub fn collect(&self) -> Vec<MetricSample> {
        let sources = self.sources.lock().unwrap_or_else(PoisonError::into_inner);
        let mut samples = Vec::new();
        for registered in sources.iter() {
            (registered.source)(&mut samples);
        }
        samples
    }

    /// Render every sample as Prometheus-style text: one `name{labels}
    /// value` line per sample, integers without a decimal point.
    pub fn render_prometheus(&self) -> String {
        let samples = self.collect();
        let mut out = String::with_capacity(samples.len() * 48);
        for sample in samples {
            out.push_str(sample.name);
            if !sample.labels.is_empty() {
                out.push('{');
                for (i, (key, value)) in sample.labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let escaped = value.replace('\\', "\\\\").replace('"', "\\\"");
                    let _ = write!(out, "{key}=\"{escaped}\"");
                }
                out.push('}');
            }
            if sample.value.fract() == 0.0 && sample.value.abs() < 1e15 {
                let _ = writeln!(out, " {}", sample.value as i64);
            } else {
                let _ = writeln!(out, " {}", sample.value);
            }
        }
        out
    }

    /// Start the periodic emitter thread if `SF_STATS_EVERY_MS` is set to a
    /// nonzero interval: every interval it prints the Prometheus rendering
    /// to **stderr** (stdout is reserved for `SF_JSON` lines). Idempotent;
    /// the thread is a daemon (detached) and exits with the process.
    pub fn ensure_emitter_from_env() {
        static START: Once = Once::new();
        START.call_once(|| {
            let every_ms: u64 = std::env::var("SF_STATS_EVERY_MS")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            if every_ms == 0 {
                return;
            }
            std::thread::Builder::new()
                .name("sf-obs-emitter".into())
                .spawn(move || loop {
                    std::thread::sleep(std::time::Duration::from_millis(every_ms));
                    let text = MetricsRegistry::global().render_prometheus();
                    if !text.is_empty() {
                        eprint!("{text}");
                    }
                })
                .expect("spawn sf-obs-emitter");
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global and tests run concurrently, so each
    // test uses distinct metric names and filters its own lines.

    #[test]
    fn sources_render_and_unregister_on_drop() {
        let registry = MetricsRegistry::global();
        let guard = registry.register(|out| {
            out.push(MetricSample::new("sf_test_render_total", 41.0));
            out.push(
                MetricSample::new("sf_test_render_labelled", 1.5)
                    .label("structure", "sftree")
                    .label("quote", "a\"b"),
            );
        });
        let text = registry.render_prometheus();
        assert!(text.contains("sf_test_render_total 41\n"), "{text}");
        assert!(
            text.contains("sf_test_render_labelled{structure=\"sftree\",quote=\"a\\\"b\"} 1.5\n"),
            "{text}"
        );
        drop(guard);
        let text = registry.render_prometheus();
        assert!(!text.contains("sf_test_render_total"), "{text}");
    }

    #[test]
    fn every_rendered_line_parses_as_name_labels_value() {
        let registry = MetricsRegistry::global();
        let _guard = registry.register(|out| {
            out.push(MetricSample::new("sf_test_parse_a_total", 7.0));
            out.push(MetricSample::new("sf_test_parse_b", 0.25).label("k", "v"));
        });
        for line in registry.render_prometheus().lines() {
            let (name_part, value_part) =
                line.rsplit_once(' ').expect("line has a value separator");
            let name = name_part.split('{').next().unwrap();
            assert!(
                !name.is_empty() && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "bad metric name in {line:?}"
            );
            assert!(value_part.parse::<f64>().is_ok(), "bad value in {line:?}");
        }
    }
}
