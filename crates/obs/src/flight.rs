//! Flight-recorder tracing: bounded per-thread rings of typed events.
//!
//! The cross-layer races this repository has debugged by hand (the WAL
//! writer-thread batching window against checkpoint triggers, move intents
//! spanning shard logs, hot rotations racing ordinary maintenance) all
//! needed the same artifact: *the last few thousand things each thread did,
//! in order, with timestamps*. The flight recorder is exactly that — a
//! fixed-capacity ring of [`Event`]s per registered thread, overwritten in a
//! circle, never allocated on the hot path after registration.
//!
//! Tracing is off unless `SF_OBS_TRACE` is set: `1` selects the default
//! capacity (4096 events per thread), any larger number is used directly as
//! the per-thread capacity, `0` (or unset) disables tracing and reduces
//! [`FlightRecorder::record`] to a single relaxed load and branch.
//!
//! [`FlightRecorder::install_panic_hook`] chains onto the existing panic
//! hook so a crashing run dumps its trace to stderr first — the
//! "SIGKILL-adjacent" post-mortem story. `dump()` renders the merged,
//! time-ordered trace on demand.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
// sf-lint: allow(shim-bypass, sf-check reports through sf-obs (flight-recorder dump, metrics); an instrumented lock here would recurse into the detector)
use std::sync::{Arc, Mutex, Once, OnceLock, PoisonError};
use std::time::Instant;

/// Default per-thread ring capacity when `SF_OBS_TRACE=1`.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// What happened. The variants cover the cross-layer transitions PRs 5–7
/// needed post-mortems for; the two payload words of [`Event`] are
/// kind-specific (documented per variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A transaction attempt aborted and will retry. `a` = abort-cause code
    /// (see the emitting crate), `b` = attempt number.
    TxnRetry,
    /// The WAL flushed a batch. `a` = records in the batch, `b` = bytes.
    BatchFlush,
    /// A checkpoint trigger fired. `a` = records since the last checkpoint.
    CheckpointTrigger,
    /// A checkpoint trigger was deferred (lock held / move in flight).
    CheckpointDefer,
    /// A checkpoint completed. `a` = entries snapshotted.
    CheckpointDone,
    /// The maintenance thread performed a hot-key rotation. `a` = key.
    HotRotation,
    /// A cross-shard move intent was logged. `a` = move id, `b` = source key.
    MoveIntent,
    /// A cross-shard move intent was resolved. `a` = moves resolved.
    MoveResolve,
}

impl EventKind {
    fn label(self) -> &'static str {
        match self {
            EventKind::TxnRetry => "txn-retry",
            EventKind::BatchFlush => "batch-flush",
            EventKind::CheckpointTrigger => "ckpt-trigger",
            EventKind::CheckpointDefer => "ckpt-defer",
            EventKind::CheckpointDone => "ckpt-done",
            EventKind::HotRotation => "hot-rotation",
            EventKind::MoveIntent => "move-intent",
            EventKind::MoveResolve => "move-resolve",
        }
    }
}

/// One trace entry: a nanosecond timestamp relative to the recorder's epoch,
/// the event kind, and two kind-specific payload words.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Nanoseconds since the flight recorder's process-local epoch.
    pub at_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// First payload word (kind-specific, see [`EventKind`]).
    pub a: u64,
    /// Second payload word (kind-specific, see [`EventKind`]).
    pub b: u64,
}

/// One thread's bounded ring. Writes are single-writer (the owning thread);
/// the dump path locks the registry, so a torn read can at worst misreport
/// one in-flight event.
struct Ring {
    name: String,
    events: Mutex<Vec<Event>>,
    written: AtomicUsize,
}

impl Ring {
    fn push(&self, capacity: usize, event: Event) {
        let mut events = self.events.lock().unwrap_or_else(PoisonError::into_inner);
        let written = self.written.fetch_add(1, Ordering::Relaxed);
        if events.len() < capacity {
            events.push(event);
        } else {
            events[written % capacity] = event;
        }
    }

    /// The ring's events in recording order (oldest first).
    fn ordered(&self) -> Vec<Event> {
        let events = self.events.lock().unwrap_or_else(PoisonError::into_inner);
        let written = self.written.load(Ordering::Relaxed);
        if written <= events.len() {
            events.clone()
        } else {
            let head = written % events.len();
            let mut out = Vec::with_capacity(events.len());
            out.extend_from_slice(&events[head..]);
            out.extend_from_slice(&events[..head]);
            out
        }
    }
}

/// The process-wide flight recorder: a registry of per-thread rings plus the
/// shared epoch. Obtain it with [`FlightRecorder::global`].
pub struct FlightRecorder {
    capacity: AtomicUsize,
    epoch: OnceLock<Instant>,
    rings: Mutex<Vec<Arc<Ring>>>,
    dropped: AtomicU64,
}

thread_local! {
    static MY_RING: std::cell::RefCell<Option<Arc<Ring>>> =
        const { std::cell::RefCell::new(None) };
}

/// `SF_OBS_TRACE` parsed once: `None`/`0` = off, `1` = default capacity,
/// larger = explicit per-thread capacity.
fn capacity_from_env() -> usize {
    match std::env::var("SF_OBS_TRACE")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(0)
    {
        0 => 0,
        1 => DEFAULT_TRACE_CAPACITY,
        n => n,
    }
}

impl FlightRecorder {
    /// The process-wide recorder, configured from `SF_OBS_TRACE` on first
    /// use.
    pub fn global() -> &'static FlightRecorder {
        static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
        GLOBAL.get_or_init(|| FlightRecorder {
            capacity: AtomicUsize::new(capacity_from_env()),
            epoch: OnceLock::new(),
            rings: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        })
    }

    /// True when tracing is enabled (`SF_OBS_TRACE` nonzero).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.capacity.load(Ordering::Relaxed) != 0
    }

    /// Override the ring capacity (tests; takes effect for rings registered
    /// after the call).
    pub fn set_capacity(&self, capacity: usize) {
        self.capacity.store(capacity, Ordering::Relaxed);
    }

    fn now_ns(&self) -> u64 {
        let epoch = self.epoch.get_or_init(Instant::now);
        u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn my_ring(&self) -> Option<Arc<Ring>> {
        MY_RING.with(|slot| {
            let mut slot = slot.borrow_mut();
            if slot.is_none() {
                let ring = Arc::new(Ring {
                    name: std::thread::current()
                        .name()
                        .unwrap_or("unnamed")
                        .to_string(),
                    events: Mutex::new(Vec::new()),
                    written: AtomicUsize::new(0),
                });
                self.rings
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(Arc::clone(&ring));
                *slot = Some(ring);
            }
            slot.clone()
        })
    }

    /// Record one event into the calling thread's ring. A no-op (one relaxed
    /// load, one branch) when tracing is disabled.
    #[inline]
    pub fn record(&self, kind: EventKind, a: u64, b: u64) {
        let capacity = self.capacity.load(Ordering::Relaxed);
        if capacity == 0 {
            return;
        }
        let at_ns = self.now_ns();
        match self.my_ring() {
            Some(ring) => ring.push(capacity, Event { at_ns, kind, a, b }),
            None => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Render the merged trace: every thread's surviving events, tagged with
    /// the thread name, sorted by timestamp. Empty string when nothing was
    /// recorded.
    pub fn dump(&self) -> String {
        let rings = self.rings.lock().unwrap_or_else(PoisonError::into_inner);
        let mut lines: Vec<(u64, String)> = Vec::new();
        for ring in rings.iter() {
            for event in ring.ordered() {
                lines.push((
                    event.at_ns,
                    format!(
                        "[{:>14.6}ms] {:<20} {:<13} a={} b={}",
                        event.at_ns as f64 / 1_000_000.0,
                        ring.name,
                        event.kind.label(),
                        event.a,
                        event.b
                    ),
                ));
            }
        }
        if lines.is_empty() {
            return String::new();
        }
        lines.sort_by_key(|(at, _)| *at);
        let mut out = String::with_capacity(lines.len() * 64);
        out.push_str(&format!(
            "=== flight recorder: {} events across {} threads ===\n",
            lines.len(),
            rings.len()
        ));
        for (_, line) in lines {
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Print the trace to stderr (no-op when empty).
    pub fn dump_to_stderr(&self) {
        let dump = self.dump();
        if !dump.is_empty() {
            eprintln!("{dump}");
        }
    }

    /// Chain a panic hook that dumps the flight recorder before the previous
    /// hook runs. Installed at most once per process; a no-op when tracing
    /// is disabled at install time.
    pub fn install_panic_hook() {
        static INSTALL: Once = Once::new();
        INSTALL.call_once(|| {
            if !FlightRecorder::global().enabled() {
                return;
            }
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                FlightRecorder::global().dump_to_stderr();
                previous(info);
            }));
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global recorder is per-process, so tests share it; each uses a
    // distinct payload range and asserts only on its own events.

    #[test]
    fn disabled_recorder_records_nothing() {
        let recorder = FlightRecorder::global();
        if recorder.enabled() {
            return; // SF_OBS_TRACE set in the environment; skip.
        }
        recorder.record(EventKind::TxnRetry, 1, 1);
        assert!(!recorder.dump().contains("txn-retry"));
    }

    #[test]
    fn ring_wraps_and_preserves_recording_order() {
        let ring = Ring {
            name: "t".into(),
            events: Mutex::new(Vec::new()),
            written: AtomicUsize::new(0),
        };
        for i in 0..10u64 {
            ring.push(
                4,
                Event {
                    at_ns: i,
                    kind: EventKind::BatchFlush,
                    a: i,
                    b: 0,
                },
            );
        }
        let ordered = ring.ordered();
        assert_eq!(ordered.len(), 4);
        let seen: Vec<u64> = ordered.iter().map(|e| e.a).collect();
        assert_eq!(seen, vec![6, 7, 8, 9], "last four, oldest first");
    }

    #[test]
    fn enabled_recorder_dumps_tagged_sorted_events() {
        let recorder = FlightRecorder::global();
        let was_enabled = recorder.enabled();
        recorder.set_capacity(64);
        recorder.record(EventKind::CheckpointTrigger, 1234, 0);
        recorder.record(EventKind::MoveIntent, 7, 99);
        let dump = recorder.dump();
        assert!(dump.contains("ckpt-trigger"), "{dump}");
        assert!(dump.contains("move-intent"), "{dump}");
        assert!(dump.contains("a=1234"), "{dump}");
        assert!(dump.starts_with("=== flight recorder:"), "{dump}");
        if !was_enabled {
            recorder.set_capacity(0);
        }
    }
}
