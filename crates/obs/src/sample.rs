//! Cheap 1-in-N decimation for hot-path timing.
//!
//! Reading a clock twice per operation is cheap but not free; at the tens of
//! millions of ops per second the STM reaches on small trees it shows up.
//! The [`Sampler`] keeps the hot path hot: one branch and one increment per
//! operation, a timestamp only every `rate`-th call. The rate comes from
//! `SF_OBS_SAMPLE` (default 32, `0` disables sampling entirely), read once
//! per process.

use std::sync::OnceLock;

/// Default sampling rate when `SF_OBS_SAMPLE` is unset: time 1 in 32 ops.
pub const DEFAULT_SAMPLE_RATE: u64 = 32;

/// The process-wide sampling rate from `SF_OBS_SAMPLE` (`0` = sampling off),
/// read once and cached.
pub fn sample_rate_from_env() -> u64 {
    static RATE: OnceLock<u64> = OnceLock::new();
    *RATE.get_or_init(|| {
        std::env::var("SF_OBS_SAMPLE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_SAMPLE_RATE)
    })
}

/// A per-thread decimation counter: [`Sampler::tick`] returns `true` on one
/// call in `rate` (and never when the rate is `0`). Not shared between
/// threads — give each worker its own so the counter stays a plain integer.
#[derive(Debug, Clone)]
pub struct Sampler {
    rate: u64,
    tick: u64,
}

impl Sampler {
    /// A sampler with an explicit rate (`0` = never sample).
    pub fn new(rate: u64) -> Self {
        Sampler { rate, tick: 0 }
    }

    /// A sampler using the process-wide `SF_OBS_SAMPLE` rate.
    pub fn from_env() -> Self {
        Sampler::new(sample_rate_from_env())
    }

    /// The configured rate (`0` = disabled).
    pub fn rate(&self) -> u64 {
        self.rate
    }

    /// Advance the counter; `true` means "time this one".
    #[inline]
    pub fn tick(&mut self) -> bool {
        if self.rate == 0 {
            return false;
        }
        self.tick += 1;
        if self.tick >= self.rate {
            self.tick = 0;
            true
        } else {
            false
        }
    }
}

impl Default for Sampler {
    fn default() -> Self {
        Sampler::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_fires_once_per_rate_window() {
        let mut s = Sampler::new(4);
        let fired: Vec<bool> = (0..12).map(|_| s.tick()).collect();
        assert_eq!(fired.iter().filter(|&&b| b).count(), 3);
        assert_eq!(
            fired,
            vec![false, false, false, true, false, false, false, true, false, false, false, true]
        );
    }

    #[test]
    fn rate_zero_never_fires() {
        let mut s = Sampler::new(0);
        assert!((0..1000).all(|_| !s.tick()));
    }

    #[test]
    fn rate_one_always_fires() {
        let mut s = Sampler::new(1);
        assert!((0..1000).all(|_| s.tick()));
    }
}
