//! Lock-free fixed-bucket latency histograms.
//!
//! The hot paths of this repository (STM retry loops, the WAL writer, the
//! maintenance rotator) cannot afford a mutex or an allocation per sample,
//! so the histogram is an array of relaxed atomic counters with
//! **power-of-two bucket bounds**: bucket `0` holds the value `0` and bucket
//! `i >= 1` holds the values in `[2^(i-1), 2^i)`. Classifying a sample is a
//! `leading_zeros` and one `fetch_add`; the exact maximum rides along in a
//! `fetch_max` so tail reporting is not limited to a bucket bound.
//!
//! [`HistogramSnapshot`] is the immutable `Copy` view: bucket counts are
//! **counters** (they add under [`HistogramSnapshot::merge`] and subtract
//! under [`HistogramSnapshot::delta_since`]) while the maximum is a
//! **gauge** (merge takes the max, delta keeps the later value) — the same
//! counter/gauge discipline as `sf_stm::StatsSnapshot` and
//! `sf_persist::WalStats`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: value `0`, then one bucket per power of two up to
/// `2^(BUCKETS-1)`. 44 buckets cover `[0, 2^43)` nanoseconds — about 2.4
/// hours — before the top bucket saturates.
pub const BUCKETS: usize = 44;

/// Index of the bucket holding `value`: `0` for `0`, else
/// `floor(log2(value)) + 1`, clamped into the top bucket.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `index` (`0` for bucket 0, else
/// `2^index - 1`; the top bucket is unbounded and reports `u64::MAX`).
#[inline]
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// A lock-free histogram of `u64` samples (by convention: nanoseconds, or a
/// unitless amount of work). All methods take `&self`; recording is a single
/// relaxed `fetch_add` plus a relaxed `fetch_max`.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram (usable in `static` position via
    /// [`Histogram::new`]).
    pub const fn new() -> Self {
        // `AtomicU64::new` is const, but `from_fn` is not; spell the array
        // out with a const block so statics need no lazy initialization.
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record a [`std::time::Duration`] in nanoseconds (saturating).
    #[inline]
    pub fn record_duration(&self, elapsed: std::time::Duration) {
        self.record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Immutable view of the current counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut s = HistogramSnapshot::default();
        for (i, bucket) in self.buckets.iter().enumerate() {
            s.buckets[i] = bucket.load(Ordering::Relaxed);
        }
        s.max = self.max.load(Ordering::Relaxed);
        s
    }

    /// Reset every bucket and the maximum to zero.
    pub fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Immutable view of a [`Histogram`]: bucket counts plus the exact maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_index`] for the bounds).
    pub buckets: [u64; BUCKETS],
    /// Exact largest recorded sample (a gauge: [`HistogramSnapshot::merge`]
    /// takes the max, [`HistogramSnapshot::delta_since`] keeps the later
    /// value).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// True when no sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Fold another snapshot into this one: bucket counts add, the maximum
    /// takes the max. Merging is associative and commutative.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.max = self.max.max(other.max);
    }

    /// Bucket-wise difference against an earlier snapshot of the same
    /// histogram (saturating, so a concurrent reset cannot underflow). The
    /// maximum is a gauge and keeps this (the later) snapshot's value.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut delta = *self;
        for (mine, theirs) in delta.buckets.iter_mut().zip(earlier.buckets.iter()) {
            *mine = mine.saturating_sub(*theirs);
        }
        delta
    }

    /// The value at quantile `q` in `[0, 1]`: the inclusive upper bound of
    /// the bucket containing the `ceil(q * count)`-th smallest sample,
    /// clamped to the exact observed maximum (so `percentile(1.0) == max`).
    /// Returns `0` for an empty snapshot.
    pub fn percentile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (the 50th percentile's bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 99th percentile (bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // Every value maps into the bucket whose bound brackets it.
        for value in [0u64, 1, 2, 3, 7, 8, 1023, 1024, 1 << 42, u64::MAX] {
            let i = bucket_index(value);
            assert!(value <= bucket_upper_bound(i), "{value} above bucket {i}");
            if i > 0 && i < BUCKETS - 1 {
                assert!(
                    value > bucket_upper_bound(i - 1),
                    "{value} belongs below bucket {i}"
                );
            }
        }
        // Bounds are strictly increasing.
        for i in 1..BUCKETS {
            assert!(bucket_upper_bound(i) > bucket_upper_bound(i - 1));
        }
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |values: &[u64]| {
            let h = Histogram::new();
            for &v in values {
                h.record(v);
            }
            h.snapshot()
        };
        let a = mk(&[1, 5, 100, 1 << 20]);
        let b = mk(&[0, 0, 7, 300]);
        let c = mk(&[u64::MAX, 2]);
        let merge = |x: &HistogramSnapshot, y: &HistogramSnapshot| {
            let mut out = *x;
            out.merge(y);
            out
        };
        assert_eq!(merge(&a, &b), merge(&b, &a));
        assert_eq!(merge(&merge(&a, &b), &c), merge(&a, &merge(&b, &c)));
        assert_eq!(merge(&a, &b).count(), a.count() + b.count());
        assert_eq!(merge(&a, &c).max, u64::MAX);
    }

    #[test]
    fn percentiles_bracket_a_sorted_vec_oracle() {
        // A deliberately skewed sample set; the histogram's percentile must
        // land in the same power-of-two bucket as the exact oracle value.
        let mut values: Vec<u64> = (0..1000u64).map(|i| (i * i * 37) % 100_000).collect();
        values.push(5_000_000);
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let snap = h.snapshot();
        assert_eq!(snap.count(), values.len() as u64);
        for q in [0.10, 0.50, 0.90, 0.99, 1.0] {
            let rank = ((q * values.len() as f64).ceil() as usize).max(1) - 1;
            let oracle = values[rank];
            let approx = snap.percentile(q);
            // Same bucket: the reported bound is >= the oracle and less than
            // twice it (one power-of-two bucket of relative error), except
            // where the exact max clamps it.
            assert!(
                approx >= oracle,
                "q={q}: reported {approx} below oracle {oracle}"
            );
            assert!(
                approx <= bucket_upper_bound(bucket_index(oracle)).min(snap.max),
                "q={q}: reported {approx} beyond the oracle's bucket"
            );
        }
        assert_eq!(snap.percentile(1.0), 5_000_000, "p100 is the exact max");
        assert_eq!(snap.max, 5_000_000);
    }

    #[test]
    fn empty_snapshot_reports_zeros() {
        let snap = Histogram::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.p99(), 0);
        assert_eq!(snap.max, 0);
    }

    #[test]
    fn concurrent_recording_loses_no_samples() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record((t * 1_000_003 + i * 97) % (1 << 30));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.snapshot().count(), 40_000);
    }

    #[test]
    fn delta_since_subtracts_buckets_and_keeps_the_later_max() {
        let h = Histogram::new();
        h.record(10);
        h.record(1 << 20);
        let before = h.snapshot();
        h.record(10);
        h.record(500);
        let delta = h.snapshot().delta_since(&before);
        assert_eq!(delta.count(), 2);
        assert_eq!(delta.buckets[bucket_index(10)], 1);
        assert_eq!(delta.buckets[bucket_index(500)], 1);
        assert_eq!(delta.max, 1 << 20, "max is a gauge");
        // A reset between snapshots saturates instead of underflowing.
        h.reset();
        let after_reset = h.snapshot().delta_since(&before);
        assert_eq!(after_reset.count(), 0);
    }
}
