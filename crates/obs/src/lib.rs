//! # sf-obs — the unified observability layer
//!
//! Every other crate in this workspace (the STM, the tree core, the WAL, the
//! workload driver, the bench harnesses) reports into this one: it holds the
//! shared telemetry vocabulary so that abort causes, latency distributions,
//! and cross-layer event traces all land on a single exposition surface.
//!
//! The crate deliberately has **zero dependencies** — it sits below `sf-stm`
//! in the dependency graph, so it can only use `std`.
//!
//! Four pieces:
//!
//! - [`histogram`] — lock-free fixed-bucket latency histograms
//!   ([`Histogram`], [`HistogramSnapshot`]) with power-of-two bounds,
//!   merge/delta discipline, and p50/p99/max reporting.
//! - [`sample`] — the [`Sampler`], a per-thread decimation counter driven by
//!   `SF_OBS_SAMPLE` so hot paths only pay for timing on 1-in-N operations.
//! - [`flight`] — the flight recorder: bounded per-thread rings of typed
//!   [`Event`]s (txn retry, batch flush, checkpoint trigger, hot rotation,
//!   move intent/resolve), enabled by `SF_OBS_TRACE` and dumped on demand or
//!   from a panic hook for post-mortem of cross-layer races.
//! - [`registry`] — the [`MetricsRegistry`]: named sample sources registered
//!   by each layer, rendered as Prometheus-style text, optionally emitted
//!   periodically to stderr by a background thread (`SF_STATS_EVERY_MS`).
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `SF_OBS_SAMPLE` | record 1-in-N op/sync latencies (`0` = off) | `32` |
//! | `SF_OBS_TRACE` | flight-recorder ring capacity (`1` → 4096, `0` = off) | off |
//! | `SF_STATS_EVERY_MS` | emit Prometheus text to stderr every N ms | off |

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod flight;
pub mod histogram;
pub mod registry;
pub mod sample;

pub use flight::{Event, EventKind, FlightRecorder};
pub use histogram::{bucket_index, bucket_upper_bound, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{MetricSample, MetricsRegistry, SourceGuard};
pub use sample::Sampler;
