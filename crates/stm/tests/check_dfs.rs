//! Bounded-exhaustive interleaving scenarios over the *real* STM commit
//! paths, driven by sf-check's DFS explorer. The controlled threads block
//! at every instrumented `sched_point` (txn begin, version-lock acquire,
//! validate, publish, spin retry) and the explorer enumerates grant orders,
//! so these tests cover commit/commit and commit/read interleavings that a
//! free-running test would only hit by luck.
//!
//! Each scenario builds its STM fresh inside the closure (the explorer
//! re-runs it once per schedule) and asserts its invariant from whichever
//! controlled thread finishes last.

#![cfg(feature = "check")]

use sf_check::sched::{explore, DfsOptions};
use sf_stm::{Stm, StmConfig, TCell};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn opts() -> DfsOptions {
    DfsOptions {
        max_schedules: 200,
        max_depth: 96,
        step_timeout: Duration::from_secs(5),
        max_spin_grants: 64,
    }
}

/// Two read-modify-write increments through the given configuration must
/// never lose an update, under every explored interleaving of their
/// acquire/validate/publish steps.
fn assert_no_lost_update(config: StmConfig, label: &'static str) {
    let report = explore(&opts(), move |ctx| {
        let stm = Stm::new(config.clone());
        let cell = Arc::new(TCell::new(0u64));
        let done = Arc::new(AtomicUsize::new(0));
        for name in ["inc-a", "inc-b"] {
            let mut h = stm.register();
            let cell = Arc::clone(&cell);
            let done = Arc::clone(&done);
            ctx.spawn(name, move || {
                h.atomically(|tx| {
                    let v = tx.read(&cell)?;
                    tx.write(&cell, v + 1)
                });
                if done.fetch_add(1, Ordering::SeqCst) == 1 {
                    let v = h.atomically(|tx| tx.read(&cell));
                    assert_eq!(v, 2, "lost update under {label}: counter is {v}");
                }
            });
        }
    });
    assert!(
        report.failure.is_none(),
        "{label}: schedule {:?} failed: {}",
        report.failure.as_ref().map(|f| &f.schedule),
        report.failure.as_ref().map_or("", |f| f.message.as_str())
    );
    assert!(report.schedules > 1, "{label}: explorer never branched");
}

/// Commit-time locking with the flat-combining fast path enabled (the
/// paper's default configuration): small write sets publish through the
/// combiner slot, so this explores combiner hand-off against a racing
/// committer.
#[test]
fn ctl_combined_commits_never_lose_updates() {
    assert_no_lost_update(StmConfig::ctl(), "ctl+combiner");
}

/// The same increments with the combiner disabled: both committers fight
/// over the version-lock CAS directly (pure CTL).
#[test]
fn ctl_direct_commits_never_lose_updates() {
    let config = StmConfig {
        combine_write_sets: 0,
        ..StmConfig::ctl()
    };
    assert_no_lost_update(config, "ctl-direct");
}

/// Encounter-time locking: the first transactional write takes the lock,
/// so the explorer interleaves eager lock acquisition with the loser's
/// abort-and-retry spin.
#[test]
fn etl_commits_never_lose_updates() {
    assert_no_lost_update(StmConfig::etl(), "etl");
}

/// A read-only transaction racing a writer must see either the old or the
/// new pair of values, never a torn mix — TL2 validation has to abort the
/// reader caught straddling the publish.
#[test]
fn reader_never_observes_torn_writes() {
    let report = explore(&opts(), |ctx| {
        let stm = Stm::new(StmConfig::ctl());
        let a = Arc::new(TCell::new(0u64));
        let b = Arc::new(TCell::new(0u64));
        {
            let mut h = stm.register();
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            ctx.spawn("writer", move || {
                h.atomically(|tx| {
                    tx.write(&a, 1)?;
                    tx.write(&b, 1)
                });
            });
        }
        {
            let mut h = stm.register();
            ctx.spawn("reader", move || {
                let (va, vb) = h.atomically(|tx| {
                    let va = tx.read(&a)?;
                    let vb = tx.read(&b)?;
                    Ok((va, vb))
                });
                assert_eq!(va, vb, "torn read: a={va} b={vb}");
            });
        }
    });
    assert!(
        report.failure.is_none(),
        "schedule {:?} failed: {}",
        report.failure.as_ref().map(|f| &f.schedule),
        report.failure.as_ref().map_or("", |f| f.message.as_str())
    );
}
