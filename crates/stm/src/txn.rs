//! The transaction descriptor: read set, write set, validation, commit.
//!
//! The protocol is the lazy-snapshot / versioned-lock design of TL2 and
//! TinySTM:
//!
//! * a transaction samples the global clock when it begins (`rv`),
//! * transactional reads are *invisible*: they record `(cell, version)` pairs
//!   and accept any value whose version is `<= rv`, extending `rv` (after
//!   revalidating the read set) when a newer committed value is found,
//! * writes are buffered (write-back); locks are acquired either at commit
//!   time (CTL / lazy acquirement) or at the first write (ETL / eager
//!   acquirement),
//! * commit acquires the missing locks, draws a new version from the global
//!   clock, revalidates the read set if needed, publishes the buffered values
//!   and releases the locks with the new version.
//!
//! Two extensions used by the paper are provided: **unit reads** (`uread`),
//! which return a committed value without recording it in the read set
//! (TinySTM's unit loads, used by the optimized find of Algorithm 2), and
//! **elastic transactions**, which may *cut* their read-set prefix instead of
//! aborting while they have not yet written anything (E-STM).

use crate::cell::{RawCell, RawRead, TCell};
use crate::chk;
use crate::clock::GlobalClock;
use crate::config::{LockAcquisition, TxKind};
use crate::error::{Abort, AbortReason, TxResult};
use crate::value::TxValue;

#[derive(Debug, Clone, Copy)]
struct ReadEntry<'env> {
    cell: &'env RawCell,
    version: u64,
}

#[derive(Debug, Clone, Copy)]
struct WriteEntry<'env> {
    cell: &'env RawCell,
    value: u64,
    /// Previous (unlocked) lock word if this transaction currently holds the
    /// cell lock, so it can be restored on abort.
    prev_lock: Option<u64>,
}

/// Outcome details of a successful commit, consumed by the retry loop for
/// statistics.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CommitInfo {
    pub read_set: usize,
    pub write_set: usize,
    /// The version at which this attempt serialized: the write version drawn
    /// from the global clock for an updating commit, or the (final, possibly
    /// extended) read version for a commit with an empty write set.
    pub commit_version: u64,
    /// The attempt published through the flat-combining slot (the small
    /// write-set fast path engaged under contention).
    pub combined: bool,
}

/// Deferred action registered by user code, executed by the retry loop after
/// the attempt's fate is known (the analogue of TinySTM's deferred
/// malloc/free used to manage memory allocated inside transactions).
///
/// Commit and abort hooks live in separate lists and only ever run for
/// their own outcome; the `u64` payload is the commit version for commit
/// hooks (see [`Transaction::on_commit_versioned`]) and a meaningless
/// placeholder (`0`) for abort hooks — it is **not** a discriminator, and a
/// read-only commit on a never-ticked clock legitimately reports version 0.
type Hook<'env> = Box<dyn FnOnce(u64) + 'env>;

/// An in-flight transaction attempt.
///
/// Obtained from [`crate::ThreadCtx::atomically`]; user code performs
/// [`Transaction::read`], [`Transaction::write`] and [`Transaction::uread`]
/// calls and propagates [`Abort`] with `?`.
pub struct Transaction<'env> {
    clock: &'env GlobalClock,
    kind: TxKind,
    acquisition: LockAcquisition,
    owner_word: u64,
    rv: u64,
    elastic_window: usize,
    read_set: Vec<ReadEntry<'env>>,
    write_set: Vec<WriteEntry<'env>>,
    commit_hooks: Vec<Hook<'env>>,
    abort_hooks: Vec<Hook<'env>>,
    /// The STM's flat-combining slot, when the runtime enabled the combined
    /// fast commit path for this attempt (CTL, updating kinds only).
    combiner: Option<&'env parking_lot::Mutex<()>>,
    /// Largest write set eligible for the combined path.
    combine_threshold: usize,
    pub(crate) reads: u64,
    pub(crate) ureads: u64,
    pub(crate) writes: u64,
    pub(crate) cuts: u64,
    finished: bool,
}

impl<'env> Transaction<'env> {
    pub(crate) fn begin(
        clock: &'env GlobalClock,
        kind: TxKind,
        acquisition: LockAcquisition,
        owner_word: u64,
        elastic_window: usize,
    ) -> Self {
        debug_assert_eq!(owner_word & 1, 1, "owner word must be odd (locked bit)");
        Transaction {
            rv: clock.now(),
            clock,
            kind,
            acquisition,
            owner_word,
            elastic_window: elastic_window.max(1),
            read_set: Vec::with_capacity(32),
            write_set: Vec::with_capacity(8),
            commit_hooks: Vec::new(),
            abort_hooks: Vec::new(),
            combiner: None,
            combine_threshold: 0,
            reads: 0,
            ureads: 0,
            writes: 0,
            cuts: 0,
            finished: false,
        }
    }

    /// Enable the flat-combined fast commit path for this attempt: a commit
    /// whose write set has at most `threshold` entries publishes while
    /// holding `slot`, serializing with the other small committers instead
    /// of racing them cell-by-cell (and aborting on a lost race). An
    /// uncontended slot acquire is one CAS — noise next to validation —
    /// while under contention the slot turns the lock-grab storm into a
    /// queue.
    pub(crate) fn set_combiner(&mut self, slot: &'env parking_lot::Mutex<()>, threshold: usize) {
        debug_assert_eq!(self.acquisition, LockAcquisition::CommitTime);
        self.combiner = Some(slot);
        self.combine_threshold = threshold;
    }

    /// The kind (normal or elastic) of this attempt.
    pub fn kind(&self) -> TxKind {
        self.kind
    }

    /// The read version (clock snapshot) of this attempt.
    pub fn read_version(&self) -> u64 {
        self.rv
    }

    /// Number of entries currently in the read set.
    pub fn read_set_len(&self) -> usize {
        self.read_set.len()
    }

    /// Number of entries currently in the write set.
    pub fn write_set_len(&self) -> usize {
        self.write_set.len()
    }

    /// Request an explicit abort and retry of the whole transaction.
    pub fn retry<T>(&self) -> TxResult<T> {
        Err(Abort::explicit())
    }

    /// Register an action to run if (and only if) this attempt commits.
    ///
    /// Typical use: freeing memory that the transaction logically deleted —
    /// the free must not happen if the attempt aborts.
    pub fn on_commit(&mut self, action: impl FnOnce() + 'env) {
        self.commit_hooks.push(Box::new(move |_| action()));
    }

    /// Register an action to run if (and only if) this attempt commits,
    /// receiving the **commit version** at which the attempt serialized (the
    /// write version for updating transactions, the final read version for
    /// read-only ones — which is 0 for a read-only commit against a clock
    /// that has never ticked; an updating commit always reports `>= 1`).
    ///
    /// This is the hook a durability layer builds on: the committed logical
    /// operation plus its clock stamp can be published to a log right after
    /// the commit point, so the log's version order equals the STM's commit
    /// order.
    pub fn on_commit_versioned(&mut self, action: impl FnOnce(u64) + 'env) {
        self.commit_hooks.push(Box::new(action));
    }

    /// Register an action to run if this attempt aborts (for any reason).
    ///
    /// Typical use: releasing memory allocated inside the transaction — the
    /// allocation is invisible to other threads until commit, so it can be
    /// recycled immediately when the attempt is abandoned.
    pub fn on_abort(&mut self, action: impl FnOnce() + 'env) {
        self.abort_hooks.push(Box::new(move |_| action()));
    }

    pub(crate) fn take_commit_hooks(&mut self) -> Vec<Hook<'env>> {
        std::mem::take(&mut self.commit_hooks)
    }

    pub(crate) fn take_abort_hooks(&mut self) -> Vec<Hook<'env>> {
        std::mem::take(&mut self.abort_hooks)
    }

    fn lookup_write(&self, addr: usize) -> Option<u64> {
        self.write_set
            .iter()
            .rev()
            .find(|e| e.cell.addr() == addr)
            .map(|e| e.value)
    }

    /// Transactional read: records the location in the read set so commit
    /// revalidation guarantees opacity.
    pub fn read<T: TxValue>(&mut self, cell: &'env TCell<T>) -> TxResult<T> {
        self.reads += 1;
        let raw = cell.raw();
        if let Some(buffered) = self.lookup_write(raw.addr()) {
            return Ok(T::decode(buffered));
        }
        loop {
            match raw.read_consistent() {
                RawRead::Locked { owner_word } => {
                    if owner_word == self.owner_word {
                        // We hold the lock (eager acquirement) but the cell is
                        // not in the write set: this cannot happen because we
                        // only lock cells we write. Abort defensively.
                        return Err(Abort::new(AbortReason::ReadLocked));
                    }
                    return Err(Abort::new(AbortReason::ReadLocked));
                }
                RawRead::Ok { value, version } => {
                    if version <= self.rv {
                        chk::cell_read(raw.addr(), "txn.read");
                        self.read_set.push(ReadEntry { cell: raw, version });
                        return Ok(T::decode(value));
                    }
                    // The location committed after we started: try to bring
                    // the snapshot forward.
                    if self.kind == TxKind::Elastic && self.write_set.is_empty() {
                        if self.elastic_cut() {
                            continue;
                        }
                        return Err(Abort::new(AbortReason::ReadVersion));
                    }
                    if self.extend() {
                        continue;
                    }
                    return Err(Abort::new(AbortReason::ReadVersion));
                }
            }
        }
    }

    /// Unit read (TinySTM unit load): returns the most recent committed value
    /// of the location without recording it in the read set. Spins while the
    /// location is locked by a concurrent commit.
    pub fn uread<T: TxValue>(&mut self, cell: &'env TCell<T>) -> T {
        self.ureads += 1;
        let raw = cell.raw();
        if let Some(buffered) = self.lookup_write(raw.addr()) {
            return T::decode(buffered);
        }
        let mut spins = 0u32;
        loop {
            match raw.read_consistent() {
                RawRead::Ok { value, .. } => {
                    chk::cell_read(raw.addr(), "txn.uread");
                    return T::decode(value);
                }
                RawRead::Locked { owner_word } if owner_word == self.owner_word => {
                    // Locked by us but not buffered: unreachable in practice,
                    // fall back to the raw payload.
                    return T::decode(raw.load_raw());
                }
                RawRead::Locked { .. } => {
                    chk::sched_point(chk::SchedEvent::Spin);
                    spins += 1;
                    if spins > 64 {
                        std::thread::yield_now();
                    } else {
                        std::hint::spin_loop();
                    }
                }
            }
        }
    }

    /// Transactional write: buffers the value. Under eager acquirement the
    /// cell lock is taken immediately.
    ///
    /// # Panics
    /// Panics when the attempt runs as [`TxKind::ReadOnly`]: scan
    /// transactions promise the runtime they never write, which is what lets
    /// commit skip the whole write-set protocol.
    pub fn write<T: TxValue>(&mut self, cell: &'env TCell<T>, value: T) -> TxResult<()> {
        assert!(
            self.kind != TxKind::ReadOnly,
            "transactional write inside a read-only (scan) transaction"
        );
        self.writes += 1;
        let raw = cell.raw();
        let encoded = value.encode();
        if let Some(entry) = self
            .write_set
            .iter_mut()
            .find(|e| e.cell.addr() == raw.addr())
        {
            entry.value = encoded;
            return Ok(());
        }
        match self.acquisition {
            LockAcquisition::CommitTime => {
                self.write_set.push(WriteEntry {
                    cell: raw,
                    value: encoded,
                    prev_lock: None,
                });
                Ok(())
            }
            LockAcquisition::EncounterTime => {
                chk::sched_point(chk::SchedEvent::Acquire);
                match raw.try_lock(self.owner_word) {
                    Ok(prev) => {
                        chk::cell_locked(raw.addr());
                        let prev_version = prev >> 1;
                        if prev_version > self.rv && !self.extend() {
                            // Release edge first: once the word flips back,
                            // another thread may acquire it immediately.
                            chk::cell_unlocked(raw.addr());
                            raw.unlock_restore(prev);
                            return Err(Abort::new(AbortReason::ReadVersion));
                        }
                        self.write_set.push(WriteEntry {
                            cell: raw,
                            value: encoded,
                            prev_lock: Some(prev),
                        });
                        Ok(())
                    }
                    Err(_) => Err(Abort::new(AbortReason::WriteLocked)),
                }
            }
        }
    }

    /// Validate that every read-set entry is unchanged.
    ///
    /// A location that this transaction itself has locked (because it is also
    /// in the write set) is *not* trusted blindly: another transaction may
    /// have committed to it between our read and our lock acquisition, so the
    /// version captured when the lock was taken must still match the version
    /// recorded by the read. Skipping this check would let a read-then-write
    /// transaction commit against a stale snapshot (e.g. an insert
    /// overwriting a child pointer that a concurrent rotation just updated).
    fn validate(&self) -> bool {
        chk::sched_point(chk::SchedEvent::Validate);
        for entry in &self.read_set {
            let l = entry.cell.lock_word();
            if l & 1 == 1 {
                if l != self.owner_word {
                    return false;
                }
                let owned_version = self
                    .write_set
                    .iter()
                    .find(|w| w.cell.addr() == entry.cell.addr())
                    .and_then(|w| w.prev_lock)
                    .map(|prev| prev >> 1);
                if owned_version != Some(entry.version) {
                    return false;
                }
            } else if (l >> 1) != entry.version {
                return false;
            }
        }
        true
    }

    /// Timestamp extension: re-sample the clock, revalidate, adopt the newer
    /// read version on success.
    fn extend(&mut self) -> bool {
        let new_rv = self.clock.now();
        if self.validate() {
            self.rv = new_rv;
            true
        } else {
            false
        }
    }

    /// Elastic cut: drop the read-set prefix (keeping the trailing window)
    /// after checking the window is still valid, then adopt a fresh read
    /// version. Only legal while nothing has been written.
    fn elastic_cut(&mut self) -> bool {
        debug_assert!(self.write_set.is_empty());
        let new_rv = self.clock.now();
        let keep_from = self.read_set.len().saturating_sub(self.elastic_window);
        for entry in &self.read_set[keep_from..] {
            let l = entry.cell.lock_word();
            if l & 1 == 1 || (l >> 1) != entry.version {
                return false;
            }
        }
        self.read_set.drain(..keep_from);
        self.rv = new_rv;
        self.cuts += 1;
        true
    }

    fn release_held_locks(&mut self) {
        for entry in &mut self.write_set {
            if let Some(prev) = entry.prev_lock.take() {
                // Release edge before the word flips back (see commit).
                chk::cell_unlocked(entry.cell.addr());
                entry.cell.unlock_restore(prev);
            }
        }
    }

    /// One-shot CTL lock pass: `try_lock` every write-set cell, recording the
    /// previous lock words. On the first locked cell, release everything
    /// taken so far and report failure.
    fn acquire_write_locks_once(&mut self) -> bool {
        for i in 0..self.write_set.len() {
            let cell = self.write_set[i].cell;
            chk::sched_point(chk::SchedEvent::Acquire);
            match cell.try_lock(self.owner_word) {
                Ok(prev) => {
                    chk::cell_locked(cell.addr());
                    self.write_set[i].prev_lock = Some(prev);
                }
                Err(_) => {
                    self.release_held_locks();
                    return false;
                }
            }
        }
        true
    }

    /// Combined-path lock pass: spin (bounded) on each write-set cell. Safe
    /// because the caller holds the combiner slot, so at most one combined
    /// committer spins at a time, and plain CTL committers only hold cell
    /// locks for the instantaneous tick/validate/publish window — the bound
    /// exists for the pathological case of a lock holder descheduled
    /// mid-commit.
    fn acquire_write_locks_spinning(&mut self) -> bool {
        const SPIN_BOUND: u32 = 1 << 14;
        for i in 0..self.write_set.len() {
            let cell = self.write_set[i].cell;
            chk::sched_point(chk::SchedEvent::Acquire);
            let mut spins = 0u32;
            loop {
                match cell.try_lock(self.owner_word) {
                    Ok(prev) => {
                        chk::cell_locked(cell.addr());
                        self.write_set[i].prev_lock = Some(prev);
                        break;
                    }
                    Err(_) => {
                        chk::sched_point(chk::SchedEvent::Spin);
                        spins += 1;
                        if spins > SPIN_BOUND {
                            self.release_held_locks();
                            return false;
                        }
                        std::hint::spin_loop();
                    }
                }
            }
        }
        true
    }

    /// Attempt to commit. On failure all held locks are released and the
    /// attempt counts as aborted; the caller re-executes the body.
    ///
    /// Commit-time locking normally acquires every write lock with a single
    /// one-shot `try_lock` pass and aborts on any conflict. When the runtime
    /// enabled the **flat-combined fast path** (small write set, see
    /// [`crate::StmConfig::combine_write_sets`]) the commit instead
    /// publishes while holding the STM's combiner slot: small committers
    /// hand off publication one after another rather than each fighting the
    /// same version-lock CAS and aborting.
    pub(crate) fn commit(&mut self) -> Result<CommitInfo, Abort> {
        debug_assert!(!self.finished);
        let mut info = CommitInfo {
            read_set: self.read_set.len(),
            write_set: self.write_set.len(),
            commit_version: self.rv,
            combined: false,
        };
        if self.write_set.is_empty() {
            // Read-only transactions are serialized at their read version.
            self.finished = true;
            return Ok(info);
        }
        let mut combined_guard = None;
        if self.acquisition == LockAcquisition::CommitTime {
            let combine = self.combiner.is_some() && self.write_set.len() <= self.combine_threshold;
            if !combine && !self.acquire_write_locks_once() {
                self.finished = true;
                return Err(Abort::new(AbortReason::CommitLocked));
            }
            if combine {
                let slot = self.combiner.expect("combined path requires a slot");
                let guard = slot.lock();
                if !self.acquire_write_locks_spinning() {
                    self.finished = true;
                    return Err(Abort::new(AbortReason::CombinerConflict));
                }
                combined_guard = Some(guard);
                info.combined = true;
            }
        }
        let wv = self.clock.tick();
        info.commit_version = wv;
        // If nobody committed between our snapshot and our tick, the read set
        // cannot have changed (TL2 optimization); otherwise revalidate.
        if wv != self.rv + 1 && !self.validate() {
            self.release_held_locks();
            self.finished = true;
            return Err(Abort::new(AbortReason::CommitValidation));
        }
        chk::sched_point(chk::SchedEvent::Publish);
        for entry in &self.write_set {
            debug_assert!(entry.prev_lock.is_some());
            // Write check + release edge BEFORE the version word goes even:
            // the instant `write_and_unlock` lands, a concurrent reader may
            // validate against the new version and take its acquire edge, so
            // the matching release must already be recorded.
            chk::cell_published(entry.cell.addr(), "txn.commit");
            entry.cell.write_and_unlock(entry.value, wv);
        }
        drop(combined_guard);
        self.write_set.clear();
        self.finished = true;
        Ok(info)
    }

    /// Abandon the attempt, releasing any held locks.
    pub(crate) fn rollback(&mut self) {
        if self.finished {
            return;
        }
        self.release_held_locks();
        self.write_set.clear();
        self.read_set.clear();
        self.finished = true;
    }
}

impl Drop for Transaction<'_> {
    fn drop(&mut self) {
        // Safety net: never leave cell locks dangling if the attempt is
        // dropped without an explicit commit/rollback (e.g. a panic in the
        // transaction body).
        if !self.finished {
            self.release_held_locks();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{LockAcquisition, TxKind};

    fn tx<'env>(clock: &'env GlobalClock, acq: LockAcquisition) -> Transaction<'env> {
        Transaction::begin(clock, TxKind::Normal, acq, (1 << 1) | 1, 2)
    }

    #[test]
    fn read_your_own_write() {
        let clock = GlobalClock::new();
        let cell = TCell::new(1u64);
        let mut t = tx(&clock, LockAcquisition::CommitTime);
        assert_eq!(t.read(&cell).unwrap(), 1);
        t.write(&cell, 5).unwrap();
        assert_eq!(t.read(&cell).unwrap(), 5);
        // The shared value is untouched until commit.
        assert_eq!(cell.unsync_load(), 1);
        t.commit().unwrap();
        assert_eq!(cell.unsync_load(), 5);
    }

    #[test]
    fn commit_bumps_version() {
        let clock = GlobalClock::new();
        let cell = TCell::new(1u64);
        let mut t = tx(&clock, LockAcquisition::CommitTime);
        t.write(&cell, 2).unwrap();
        t.commit().unwrap();
        assert_eq!(cell.version(), Some(1));
        assert_eq!(clock.now(), 1);
    }

    #[test]
    fn read_only_commit_does_not_tick_clock() {
        let clock = GlobalClock::new();
        let cell = TCell::new(1u64);
        let mut t = tx(&clock, LockAcquisition::CommitTime);
        let _ = t.read(&cell).unwrap();
        t.commit().unwrap();
        assert_eq!(clock.now(), 0);
    }

    #[test]
    fn stale_read_extends_when_read_set_untouched() {
        let clock = GlobalClock::new();
        let a = TCell::new(1u64);
        let b = TCell::new(2u64);
        let mut t = tx(&clock, LockAcquisition::CommitTime);
        assert_eq!(t.read(&a).unwrap(), 1);
        // Concurrent committer updates b only.
        let mut other = tx(&clock, LockAcquisition::CommitTime);
        other.write(&b, 20).unwrap();
        other.commit().unwrap();
        // Reading b sees version 1 > rv 0, extension succeeds because a is
        // unchanged.
        assert_eq!(t.read(&b).unwrap(), 20);
        assert!(t.commit().is_ok());
    }

    #[test]
    fn stale_read_aborts_when_read_set_invalidated() {
        let clock = GlobalClock::new();
        let a = TCell::new(1u64);
        let b = TCell::new(2u64);
        let mut t = tx(&clock, LockAcquisition::CommitTime);
        assert_eq!(t.read(&a).unwrap(), 1);
        // Concurrent committer updates both a and b.
        let mut other = tx(&clock, LockAcquisition::CommitTime);
        other.write(&a, 10).unwrap();
        other.write(&b, 20).unwrap();
        other.commit().unwrap();
        let err = t.read(&b).unwrap_err();
        assert_eq!(err.reason, AbortReason::ReadVersion);
        t.rollback();
    }

    #[test]
    fn commit_validation_detects_conflicting_writer() {
        let clock = GlobalClock::new();
        let a = TCell::new(1u64);
        let b = TCell::new(2u64);
        let mut t = tx(&clock, LockAcquisition::CommitTime);
        assert_eq!(t.read(&a).unwrap(), 1);
        t.write(&b, 22).unwrap();
        // Concurrent committer invalidates a after our read.
        let mut other = tx(&clock, LockAcquisition::CommitTime);
        other.write(&a, 10).unwrap();
        other.commit().unwrap();
        let err = t.commit().unwrap_err();
        assert_eq!(err.reason, AbortReason::CommitValidation);
        // b must not have been published.
        assert_eq!(b.unsync_load(), 2);
        assert_eq!(b.version(), Some(0));
    }

    #[test]
    fn read_then_write_detects_interleaved_commit_under_ctl() {
        // Regression test: T reads A, another transaction commits a new value
        // to A, then T writes A and tries to commit. T's commit acquires A's
        // lock itself, so validation must compare the pre-lock version with
        // the version recorded by the read — not skip the entry — and abort.
        let clock = GlobalClock::new();
        let a = TCell::new(1u64);
        let b = TCell::new(2u64);
        let mut t = tx(&clock, LockAcquisition::CommitTime);
        assert_eq!(t.read(&a).unwrap(), 1);
        // Interleaved committer updates A (and B, so the clock moves and the
        // wv == rv + 1 fast path does not apply).
        let mut other = Transaction::begin(
            &clock,
            TxKind::Normal,
            LockAcquisition::CommitTime,
            (2 << 1) | 1,
            2,
        );
        other.write(&a, 100).unwrap();
        other.write(&b, 200).unwrap();
        other.commit().unwrap();
        // T now blindly overwrites A based on its stale read.
        t.write(&a, 7).unwrap();
        let err = t.commit().unwrap_err();
        assert_eq!(err.reason, AbortReason::CommitValidation);
        assert_eq!(a.unsync_load(), 100, "the stale writer must not win");
    }

    #[test]
    fn etl_write_conflict_aborts_second_writer() {
        let clock = GlobalClock::new();
        let a = TCell::new(1u64);
        let mut t1 = tx(&clock, LockAcquisition::EncounterTime);
        let mut t2 = tx(&clock, LockAcquisition::EncounterTime);
        t1.write(&a, 10).unwrap();
        let err = t2.write(&a, 20).unwrap_err();
        assert_eq!(err.reason, AbortReason::WriteLocked);
        t2.rollback();
        t1.commit().unwrap();
        assert_eq!(a.unsync_load(), 10);
    }

    #[test]
    fn etl_abort_restores_lock_word() {
        let clock = GlobalClock::new();
        let a = TCell::new(1u64);
        // Bump a's version to 3 first.
        for v in [2u64, 3, 4] {
            let mut t = tx(&clock, LockAcquisition::CommitTime);
            t.write(&a, v).unwrap();
            t.commit().unwrap();
        }
        let version_before = a.version().unwrap();
        let mut t = tx(&clock, LockAcquisition::EncounterTime);
        t.write(&a, 99).unwrap();
        t.rollback();
        assert_eq!(a.version(), Some(version_before));
        assert_eq!(a.unsync_load(), 4);
        // The cell is usable again.
        let mut t2 = tx(&clock, LockAcquisition::CommitTime);
        t2.write(&a, 5).unwrap();
        t2.commit().unwrap();
        assert_eq!(a.unsync_load(), 5);
    }

    #[test]
    fn reader_conflicts_with_inflight_locked_cell() {
        let clock = GlobalClock::new();
        let a = TCell::new(1u64);
        let mut writer = tx(&clock, LockAcquisition::EncounterTime);
        writer.write(&a, 7).unwrap();
        let mut reader = tx(&clock, LockAcquisition::CommitTime);
        let err = reader.read(&a).unwrap_err();
        assert_eq!(err.reason, AbortReason::ReadLocked);
        reader.rollback();
        writer.rollback();
    }

    #[test]
    fn uread_returns_committed_value_without_tracking() {
        let clock = GlobalClock::new();
        let a = TCell::new(1u64);
        let mut t = tx(&clock, LockAcquisition::CommitTime);
        assert_eq!(t.uread(&a), 1);
        assert_eq!(t.read_set_len(), 0);
        // uread also sees our own buffered write.
        t.write(&a, 3).unwrap();
        assert_eq!(t.uread(&a), 3);
        t.rollback();
    }

    #[test]
    fn elastic_cut_allows_traversal_past_concurrent_commits() {
        let clock = GlobalClock::new();
        let a = TCell::new(1u64);
        let b = TCell::new(2u64);
        let c = TCell::new(3u64);
        let mut t = Transaction::begin(
            &clock,
            TxKind::Elastic,
            LockAcquisition::CommitTime,
            (1 << 1) | 1,
            1,
        );
        assert_eq!(t.read(&a).unwrap(), 1);
        assert_eq!(t.read(&b).unwrap(), 2);
        // Concurrent commit invalidates a (already left behind by the
        // traversal) and bumps the clock.
        let mut other = tx(&clock, LockAcquisition::CommitTime);
        other.write(&a, 10).unwrap();
        other.commit().unwrap();
        let mut other2 = tx(&clock, LockAcquisition::CommitTime);
        other2.write(&c, 30).unwrap();
        other2.commit().unwrap();
        // A normal transaction would abort here (a changed); the elastic one
        // cuts and continues.
        assert_eq!(t.read(&c).unwrap(), 30);
        assert_eq!(t.cuts, 1);
        assert!(t.commit().is_ok());
    }

    #[test]
    fn elastic_cut_refuses_after_first_write() {
        let clock = GlobalClock::new();
        let a = TCell::new(1u64);
        let b = TCell::new(2u64);
        let mut t = Transaction::begin(
            &clock,
            TxKind::Elastic,
            LockAcquisition::CommitTime,
            (1 << 1) | 1,
            1,
        );
        assert_eq!(t.read(&a).unwrap(), 1);
        t.write(&a, 5).unwrap();
        let mut other = tx(&clock, LockAcquisition::CommitTime);
        other.write(&a, 10).unwrap();
        other.write(&b, 20).unwrap();
        other.commit().unwrap();
        // With a non-empty write set the elastic transaction behaves like a
        // normal one: the stale read of b aborts (a changed under us).
        assert!(t.read(&b).is_err());
        t.rollback();
    }

    #[test]
    fn drop_without_commit_releases_locks() {
        let clock = GlobalClock::new();
        let a = TCell::new(1u64);
        {
            let mut t = tx(&clock, LockAcquisition::EncounterTime);
            t.write(&a, 9).unwrap();
            // dropped without commit/rollback (simulates a panic path)
        }
        // Lock must have been released so others can proceed.
        let mut t2 = tx(&clock, LockAcquisition::CommitTime);
        t2.write(&a, 4).unwrap();
        t2.commit().unwrap();
        assert_eq!(a.unsync_load(), 4);
    }

    #[test]
    fn ctl_commit_lock_conflict_aborts() {
        let clock = GlobalClock::new();
        let a = TCell::new(1u64);
        let mut holder = tx(&clock, LockAcquisition::EncounterTime);
        holder.write(&a, 2).unwrap();
        let mut t = tx(&clock, LockAcquisition::CommitTime);
        t.write(&a, 3).unwrap();
        let err = t.commit().unwrap_err();
        assert_eq!(err.reason, AbortReason::CommitLocked);
        holder.commit().unwrap();
        assert_eq!(a.unsync_load(), 2);
    }

    #[test]
    fn write_write_same_cell_keeps_last_value() {
        let clock = GlobalClock::new();
        let a = TCell::new(0u64);
        let mut t = tx(&clock, LockAcquisition::CommitTime);
        t.write(&a, 1).unwrap();
        t.write(&a, 2).unwrap();
        t.write(&a, 3).unwrap();
        assert_eq!(t.write_set_len(), 1);
        t.commit().unwrap();
        assert_eq!(a.unsync_load(), 3);
    }
}
