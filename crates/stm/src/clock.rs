//! The global version clock shared by all transactions.
//!
//! Commit timestamps are drawn from a single shared counter, exactly as in
//! TL2 and TinySTM: a transaction samples the clock when it begins (its read
//! version `rv`) and obtains `clock + 1` as its write version when it commits
//! a non-empty write set.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonically increasing commit counter.
#[derive(Debug, Default)]
pub struct GlobalClock {
    now: AtomicU64,
}

impl GlobalClock {
    /// A clock starting at zero (all freshly created cells have version 0).
    pub const fn new() -> Self {
        GlobalClock {
            now: AtomicU64::new(0),
        }
    }

    /// Current value of the clock. Used to obtain a transaction's read
    /// version and to re-sample during timestamp extension.
    #[inline]
    pub fn now(&self) -> u64 {
        self.now.load(Ordering::Acquire)
    }

    /// Advance the clock and return the new value, used as the commit
    /// version of an updating transaction.
    #[inline]
    pub fn tick(&self) -> u64 {
        self.now.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Raise the clock to at least `version` (no-op when it is already
    /// higher). Used when a recovered data set is loaded into a fresh STM
    /// instance: new commits must obtain versions strictly above every
    /// version recorded in the durable log, otherwise replay order would no
    /// longer match commit order across the restart.
    #[inline]
    pub fn advance_to(&self, version: u64) {
        self.now.fetch_max(version, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn starts_at_zero() {
        let c = GlobalClock::new();
        assert_eq!(c.now(), 0);
    }

    #[test]
    fn tick_is_monotonic_and_returns_new_value() {
        let c = GlobalClock::new();
        assert_eq!(c.tick(), 1);
        assert_eq!(c.tick(), 2);
        assert_eq!(c.now(), 2);
    }

    #[test]
    fn concurrent_ticks_are_unique() {
        let c = Arc::new(GlobalClock::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || (0..1000).map(|_| c.tick()).collect::<Vec<_>>())
            })
            .collect();
        let mut all: Vec<u64> = threads
            .into_iter()
            .flat_map(|t| t.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000, "every tick value must be unique");
        assert_eq!(c.now(), 4000);
    }

    #[test]
    fn advance_to_only_moves_forward() {
        let c = GlobalClock::new();
        c.advance_to(10);
        assert_eq!(c.now(), 10);
        c.advance_to(3);
        assert_eq!(c.now(), 10, "advancing backwards is a no-op");
        assert_eq!(c.tick(), 11, "ticks continue above the advanced value");
    }
}
