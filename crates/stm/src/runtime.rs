//! The STM runtime: global state shared by all threads ([`Stm`]) and the
//! per-thread handle that runs transactions ([`ThreadCtx`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::clock::GlobalClock;
use crate::config::{StmConfig, TxKind};
use crate::error::TxResult;
use crate::stats::{StatsRegistry, StatsSnapshot, ThreadStats};
use crate::txn::Transaction;

/// Global transactional-memory instance: the version clock, the configuration
/// and the statistics registry.
///
/// Create one `Stm` per set of data structures that must be mutually atomic,
/// register one [`ThreadCtx`] per application thread, and run operations with
/// [`ThreadCtx::atomically`].
#[derive(Debug)]
pub struct Stm {
    clock: GlobalClock,
    config: StmConfig,
    stats: StatsRegistry,
    next_owner: AtomicU64,
    /// The flat-combining slot: small-write-set CTL commits serialize their
    /// publication here instead of fighting over version-lock CAS (see
    /// [`StmConfig::combine_write_sets`]). Goes through the `parking_lot`
    /// shim so checked builds feed it to the lock-order/race instrumentation
    /// under a stable class name.
    combiner: parking_lot::Mutex<()>,
}

impl Stm {
    /// Create an STM instance with the given configuration.
    pub fn new(config: StmConfig) -> Arc<Self> {
        Arc::new(Stm {
            clock: GlobalClock::new(),
            config,
            stats: StatsRegistry::default(),
            next_owner: AtomicU64::new(1),
            combiner: parking_lot::Mutex::named((), "stm.combiner"),
        })
    }

    /// Create an STM instance with the default (TinySTM-CTL-like)
    /// configuration.
    pub fn default_config() -> Arc<Self> {
        Self::new(StmConfig::default())
    }

    /// Register the calling thread and obtain its transaction handle.
    pub fn register(self: &Arc<Self>) -> ThreadCtx {
        // sf-lint: allow(relaxed-atomic, owner ids need atomicity (uniqueness), not ordering)
        let id = self.next_owner.fetch_add(1, Ordering::Relaxed);
        ThreadCtx {
            stm: Arc::clone(self),
            owner_word: (id << 1) | 1,
            stats: self.stats.register(),
        }
    }

    /// The configuration this instance was created with.
    pub fn config(&self) -> &StmConfig {
        &self.config
    }

    /// The global version clock (exposed for diagnostics and tests).
    pub fn clock(&self) -> &GlobalClock {
        &self.clock
    }

    /// Aggregate statistics across every registered thread.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Reset the statistics of every registered thread (used between
    /// benchmark phases, e.g. after the initial tree population).
    pub fn reset_stats(&self) {
        self.stats.reset();
    }
}

/// Per-thread transaction handle.
///
/// The handle is `Send` so it can be moved into a worker thread, but it is not
/// `Sync`: each thread uses its own context, exactly like the thread-local
/// descriptor of C STMs.
#[derive(Debug)]
pub struct ThreadCtx {
    stm: Arc<Stm>,
    owner_word: u64,
    stats: Arc<ThreadStats>,
}

impl ThreadCtx {
    /// The shared STM instance this context belongs to.
    pub fn stm(&self) -> &Arc<Stm> {
        &self.stm
    }

    /// This thread's statistics counters.
    pub fn thread_stats(&self) -> &ThreadStats {
        &self.stats
    }

    /// Run `body` as an atomic transaction of the configured default kind,
    /// retrying until it commits, and return its result.
    pub fn atomically<'env, R, F>(&'env mut self, body: F) -> R
    where
        F: FnMut(&mut Transaction<'env>) -> TxResult<R>,
    {
        let kind = self.stm.config.default_kind;
        self.atomically_kind(kind, body)
    }

    /// Run `body` as an atomic transaction of the given kind (normal or
    /// elastic), retrying until it commits, and return its result.
    pub fn atomically_kind<'env, R, F>(&'env mut self, kind: TxKind, body: F) -> R
    where
        F: FnMut(&mut Transaction<'env>) -> TxResult<R>,
    {
        ThreadCtx::atomically_versioned_kind(self, kind, body).0
    }

    /// Run `body` as an atomic transaction of the configured default kind and
    /// return its result together with the **commit version** at which the
    /// winning attempt serialized (the write version for updating
    /// transactions, the final read version for read-only ones).
    ///
    /// The same version is passed to every
    /// [`Transaction::on_commit_versioned`] hook of the winning attempt, so
    /// a caller that logs committed operations can correlate its in-hook
    /// records with the value returned here.
    pub fn atomically_versioned<'env, R, F>(&'env mut self, body: F) -> (R, u64)
    where
        F: FnMut(&mut Transaction<'env>) -> TxResult<R>,
    {
        let kind = self.stm.config.default_kind;
        ThreadCtx::atomically_versioned_kind(self, kind, body)
    }

    /// [`ThreadCtx::atomically_versioned`] with an explicit transaction kind.
    pub fn atomically_versioned_kind<'env, R, F>(
        &'env mut self,
        kind: TxKind,
        mut body: F,
    ) -> (R, u64)
    where
        F: FnMut(&mut Transaction<'env>) -> TxResult<R>,
    {
        let config = &self.stm.config;
        let clock = &self.stm.clock;
        let stats = &self.stats;
        let combine = config.combine_write_sets > 0
            && config.acquisition == crate::config::LockAcquisition::CommitTime
            && kind != TxKind::ReadOnly;
        let flight = sf_obs::FlightRecorder::global();
        let mut attempt: u32 = 0;
        let mut reads_this_op: u64 = 0;
        loop {
            crate::chk::sched_point(crate::chk::SchedEvent::TxnBegin);
            let mut tx = Transaction::begin(
                clock,
                kind,
                config.acquisition,
                self.owner_word,
                config.elastic_window,
            );
            if combine {
                tx.set_combiner(&self.stm.combiner, config.combine_write_sets);
            }
            let outcome = body(&mut tx);
            let committed = match outcome {
                Ok(value) => match tx.commit() {
                    Ok(info) => {
                        stats.record_commit(info.read_set, info.write_set);
                        if info.combined {
                            // sf-lint: allow(relaxed-atomic, combined-commit telemetry counter; aggregated for reports only)
                            stats.combined_commits.fetch_add(1, Ordering::Relaxed);
                        }
                        if kind == TxKind::ReadOnly {
                            stats.record_scan_commit(info.read_set);
                        }
                        Some((value, info.commit_version))
                    }
                    Err(abort) => {
                        stats.record_abort(kind, abort.reason);
                        flight.record(
                            sf_obs::EventKind::TxnRetry,
                            abort.reason.code(),
                            u64::from(attempt) + 1,
                        );
                        None
                    }
                },
                Err(abort) => {
                    tx.rollback();
                    stats.record_abort(kind, abort.reason);
                    flight.record(
                        sf_obs::EventKind::TxnRetry,
                        abort.reason.code(),
                        u64::from(attempt) + 1,
                    );
                    None
                }
            };
            reads_this_op += tx.reads;
            // sf-lint: allow(relaxed-atomic, per-transaction telemetry counters; aggregated for reports only)
            stats.tx_reads.fetch_add(tx.reads, Ordering::Relaxed);
            // sf-lint: allow(relaxed-atomic, per-transaction telemetry counter; aggregated for reports only)
            stats.tx_ureads.fetch_add(tx.ureads, Ordering::Relaxed);
            // sf-lint: allow(relaxed-atomic, per-transaction telemetry counter; aggregated for reports only)
            stats.tx_writes.fetch_add(tx.writes, Ordering::Relaxed);
            // sf-lint: allow(relaxed-atomic, per-transaction telemetry counter; aggregated for reports only)
            stats.elastic_cuts.fetch_add(tx.cuts, Ordering::Relaxed);
            let hooks = if committed.is_some() {
                tx.take_commit_hooks()
            } else {
                tx.take_abort_hooks()
            };
            drop(tx);
            let hook_version = committed.as_ref().map_or(0, |&(_, version)| version);
            for hook in hooks {
                hook(hook_version);
            }
            if let Some((value, version)) = committed {
                stats.record_max_reads_per_op(reads_this_op);
                return (value, version);
            }
            attempt = attempt.saturating_add(1);
            self.backoff(attempt);
        }
    }

    /// Contention backoff: bounded exponential spinning, falling back to
    /// yielding the CPU after repeated aborts (essential when threads
    /// outnumber cores).
    fn backoff(&self, attempt: u32) {
        let config = &self.stm.config;
        if attempt >= config.yield_after_aborts {
            std::thread::yield_now();
            return;
        }
        let spins = (1u32 << attempt.min(16)).min(config.max_backoff_spins);
        for _ in 0..spins {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::TCell;
    use crate::config::StmConfig;

    #[test]
    fn atomically_commits_and_returns_value() {
        let stm = Stm::default_config();
        let mut ctx = stm.register();
        let cell = TCell::new(0u64);
        let out = ctx.atomically(|tx| {
            let v = tx.read(&cell)?;
            tx.write(&cell, v + 1)?;
            Ok(v)
        });
        assert_eq!(out, 0);
        assert_eq!(cell.unsync_load(), 1);
        let s = stm.stats();
        assert_eq!(s.commits, 1);
        assert_eq!(s.aborts, 0);
    }

    #[test]
    fn counters_accumulate_per_thread() {
        let stm = Stm::default_config();
        let mut ctx = stm.register();
        let cell = TCell::new(0u64);
        for _ in 0..10 {
            ctx.atomically(|tx| {
                let v = tx.read(&cell)?;
                tx.write(&cell, v + 1)
            });
        }
        assert_eq!(cell.unsync_load(), 10);
        let s = stm.stats();
        assert_eq!(s.commits, 10);
        assert_eq!(s.tx_reads, 10);
        assert_eq!(s.tx_writes, 10);
        assert!(s.max_reads_per_op >= 1);
    }

    #[test]
    fn concurrent_counter_increments_are_not_lost() {
        let stm = Stm::default_config();
        let cell = Arc::new(TCell::new(0u64));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let mut ctx = stm.register();
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        ctx.atomically(|tx| {
                            let v = tx.read(&cell)?;
                            tx.write(&cell, v + 1)
                        });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(cell.unsync_load(), 2000);
        let s = stm.stats();
        assert_eq!(s.commits, 2000);
    }

    #[test]
    fn concurrent_transfers_preserve_invariant_under_etl() {
        // Bank-account style invariant check across both acquisition modes.
        for config in [StmConfig::ctl(), StmConfig::etl()] {
            let stm = Stm::new(config);
            let a = Arc::new(TCell::new(1000i64));
            let b = Arc::new(TCell::new(1000i64));
            let threads: Vec<_> = (0..4)
                .map(|i| {
                    let mut ctx = stm.register();
                    let a = Arc::clone(&a);
                    let b = Arc::clone(&b);
                    std::thread::spawn(move || {
                        for j in 0..300 {
                            let amount = ((i * 7 + j) % 11) as i64;
                            ctx.atomically(|tx| {
                                let va = tx.read(&a)?;
                                let vb = tx.read(&b)?;
                                tx.write(&a, va - amount)?;
                                tx.write(&b, vb + amount)?;
                                Ok(())
                            });
                        }
                    })
                })
                .collect();
            for t in threads {
                t.join().unwrap();
            }
            assert_eq!(a.unsync_load() + b.unsync_load(), 2000);
        }
    }

    #[test]
    fn explicit_retry_is_counted() {
        let stm = Stm::default_config();
        let mut ctx = stm.register();
        let cell = TCell::new(0u64);
        let mut first = true;
        ctx.atomically(|tx| {
            let v = tx.read(&cell)?;
            if first {
                first = false;
                return tx.retry();
            }
            tx.write(&cell, v + 1)
        });
        let s = stm.stats();
        assert_eq!(s.explicit_aborts, 1);
        assert_eq!(s.commits, 1);
    }

    #[test]
    fn commit_and_abort_hooks_fire_appropriately() {
        use std::cell::Cell;
        let stm = Stm::default_config();
        let mut ctx = stm.register();
        let cell = TCell::new(0u64);
        let committed_runs = Cell::new(0u32);
        let aborted_runs = Cell::new(0u32);
        let mut first = true;
        ctx.atomically(|tx| {
            tx.on_commit(|| committed_runs.set(committed_runs.get() + 1));
            tx.on_abort(|| aborted_runs.set(aborted_runs.get() + 1));
            let v = tx.read(&cell)?;
            if first {
                first = false;
                return tx.retry();
            }
            tx.write(&cell, v + 1)
        });
        // One aborted attempt (explicit retry) then one committed attempt.
        assert_eq!(aborted_runs.get(), 1);
        assert_eq!(committed_runs.get(), 1);
    }

    #[test]
    fn versioned_commit_reports_the_clock_stamp_to_caller_and_hooks() {
        use std::cell::Cell;
        let stm = Stm::default_config();
        let mut ctx = stm.register();
        let cell = TCell::new(0u64);
        let hook_version = Cell::new(0u64);
        let ((), v1) = ctx.atomically_versioned(|tx| {
            tx.on_commit_versioned(|wv| hook_version.set(wv));
            tx.write(&cell, 1)
        });
        assert_eq!(v1, 1, "first updating commit draws version 1");
        assert_eq!(hook_version.get(), v1, "hook payload matches the return");
        let ((), v2) = ctx.atomically_versioned(|tx| tx.write(&cell, 2));
        assert!(v2 > v1, "versions are strictly increasing");
        assert_eq!(cell.version(), Some(v2));
    }

    #[test]
    fn versioned_read_only_commit_serializes_at_its_read_version() {
        use crate::config::TxKind;
        let stm = Stm::default_config();
        let mut ctx = stm.register();
        let cell = TCell::new(7u64);
        ctx.atomically(|tx| tx.write(&cell, 8));
        let (value, version) = ctx.atomically_versioned_kind(TxKind::ReadOnly, |tx| tx.read(&cell));
        assert_eq!(value, 8);
        assert_eq!(
            version,
            stm.clock().now(),
            "a read-only commit serializes at its (final) read version"
        );
    }

    #[test]
    fn versioned_hooks_only_fire_for_the_committing_attempt() {
        use std::cell::Cell;
        let stm = Stm::default_config();
        let mut ctx = stm.register();
        let cell = TCell::new(0u64);
        let fired = Cell::new(0u32);
        let mut first = true;
        let ((), version) = ctx.atomically_versioned(|tx| {
            tx.on_commit_versioned(|wv| {
                fired.set(fired.get() + 1);
                assert!(wv > 0, "an updating commit always reports version >= 1");
            });
            let v = tx.read(&cell)?;
            if first {
                first = false;
                return tx.retry();
            }
            tx.write(&cell, v + 1)
        });
        assert_eq!(fired.get(), 1, "the aborted attempt's hook must not run");
        assert_eq!(version, 1);
    }

    #[test]
    fn small_write_set_commits_through_the_combiner() {
        // A 1-entry write set is at or under ctl()'s threshold, so the
        // commit must publish through the combiner slot and be counted.
        let stm = Stm::new(StmConfig::ctl());
        let mut ctx = stm.register();
        let cell = TCell::new(0u64);
        ctx.atomically(|tx| {
            let v = tx.read(&cell)?;
            tx.write(&cell, v + 1)
        });
        assert_eq!(cell.unsync_load(), 1);
        let s = stm.stats();
        assert_eq!(s.commits, 1);
        assert_eq!(s.combined_commits, 1, "the small write set combines");
    }

    #[test]
    fn large_write_sets_and_disabled_config_never_combine() {
        // A write set above the threshold stays on the plain path ...
        let stm = Stm::new(StmConfig::ctl());
        let mut ctx = stm.register();
        let cells: Vec<TCell<u64>> = (0..4).map(TCell::new).collect();
        let mut first = true;
        ctx.atomically(|tx| {
            for c in &cells {
                let v = tx.read(c)?;
                tx.write(c, v + 1)?;
            }
            if first {
                first = false;
                return tx.retry();
            }
            Ok(())
        });
        assert_eq!(stm.stats().combined_commits, 0);
        // ... and combine_write_sets = 0 disables the path entirely.
        let stm = Stm::new(StmConfig {
            combine_write_sets: 0,
            ..StmConfig::ctl()
        });
        let mut ctx = stm.register();
        let cell = TCell::new(0u64);
        let mut first = true;
        ctx.atomically(|tx| {
            let v = tx.read(&cell)?;
            if first {
                first = false;
                return tx.retry();
            }
            tx.write(&cell, v + 1)
        });
        assert_eq!(stm.stats().combined_commits, 0);
    }

    #[test]
    fn etl_configuration_never_engages_the_combiner() {
        let stm = Stm::new(StmConfig::etl());
        let mut ctx = stm.register();
        let cell = TCell::new(0u64);
        let mut first = true;
        ctx.atomically(|tx| {
            let v = tx.read(&cell)?;
            if first {
                first = false;
                return tx.retry();
            }
            tx.write(&cell, v + 1)
        });
        assert_eq!(stm.stats().combined_commits, 0);
    }

    #[test]
    fn combined_commits_preserve_the_counter_invariant_under_contention() {
        let stm = Stm::new(StmConfig::ctl());
        let cell = Arc::new(TCell::new(0u64));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let mut ctx = stm.register();
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        ctx.atomically(|tx| {
                            let v = tx.read(&cell)?;
                            tx.write(&cell, v + 1)
                        });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(cell.unsync_load(), 2000, "no increment may be lost");
        let s = stm.stats();
        assert_eq!(s.commits, 2000);
        assert_eq!(
            s.combined_commits, 2000,
            "every 1-entry write set publishes through the slot"
        );
    }

    #[test]
    fn reset_stats_clears_counters() {
        let stm = Stm::default_config();
        let mut ctx = stm.register();
        let cell = TCell::new(0u64);
        ctx.atomically(|tx| tx.write(&cell, 1));
        assert_eq!(stm.stats().commits, 1);
        stm.reset_stats();
        assert_eq!(stm.stats().commits, 0);
    }

    #[test]
    fn read_only_kind_feeds_the_scan_counters() {
        use crate::config::TxKind;
        let stm = Stm::default_config();
        let mut ctx = stm.register();
        let cells: Vec<TCell<u64>> = (0..8).map(TCell::new).collect();
        let mut first = true;
        let sum = ctx.atomically_kind(TxKind::ReadOnly, |tx| {
            let mut acc = 0u64;
            for c in &cells {
                acc += tx.read(c)?;
            }
            if first {
                first = false;
                return tx.retry();
            }
            Ok(acc)
        });
        assert_eq!(sum, (0..8).sum::<u64>());
        let s = stm.stats();
        assert_eq!(s.scan_commits, 1);
        assert_eq!(
            s.scan_aborts, 1,
            "the explicit retry counts as a scan abort"
        );
        assert_eq!(s.max_scan_read_set, 8);
        // Scan attempts also show up in the general counters.
        assert_eq!(s.commits, 1);
        assert_eq!(s.aborts, 1);
        // Normal transactions never touch the scan counters.
        ctx.atomically(|tx| tx.read(&cells[0]));
        assert_eq!(stm.stats().scan_commits, 1);
    }

    #[test]
    #[should_panic(expected = "read-only")]
    fn read_only_kind_forbids_writes() {
        use crate::config::TxKind;
        let stm = Stm::default_config();
        let mut ctx = stm.register();
        let cell = TCell::new(0u64);
        ctx.atomically_kind(TxKind::ReadOnly, |tx| tx.write(&cell, 1));
    }

    #[test]
    fn elastic_kind_records_cuts_under_contention() {
        let stm = Stm::new(StmConfig::elastic());
        let cells: Arc<Vec<TCell<u64>>> = Arc::new((0..64).map(TCell::new).collect());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let mut ctx = stm.register();
                let cells = Arc::clone(&cells);
                std::thread::spawn(move || {
                    for i in 0..400usize {
                        let target = (t * 31 + i) % 64;
                        ctx.atomically(|tx| {
                            // Traverse a prefix of the cells, then update one.
                            let mut acc = 0u64;
                            for c in cells.iter().take(target) {
                                acc = acc.wrapping_add(tx.read(c)?);
                            }
                            tx.write(&cells[target], acc % 97)
                        });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = stm.stats();
        assert_eq!(s.commits, 1600);
    }
}
