//! Abort signalling.
//!
//! Transactional reads and writes return `Result<_, Abort>`; user code
//! propagates the abort with `?` and the enclosing
//! [`crate::ThreadCtx::atomically`] retry loop rolls back and re-executes the
//! closure. This mirrors the longjmp-based restart of C STMs while staying in
//! safe Rust control flow.

/// Reason a transaction attempt could not continue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// A transactional read found the location locked by another transaction.
    ReadLocked,
    /// A transactional read observed a version newer than the read version
    /// and timestamp extension failed.
    ReadVersion,
    /// An encounter-time write could not acquire the cell lock.
    WriteLocked,
    /// Commit-time lock acquisition failed.
    CommitLocked,
    /// Read-set validation at commit failed.
    CommitValidation,
    /// The flat-combining commit slot could not be acquired: the combined
    /// publication path lost its spinning lock acquisition to a competing
    /// combiner.
    CombinerConflict,
    /// The user requested an explicit abort/retry.
    Explicit,
}

impl AbortReason {
    /// Stable small-integer code for flight-recorder payloads (the trace
    /// event's `a` word; see `sf_obs::EventKind::TxnRetry`).
    pub const fn code(self) -> u64 {
        match self {
            AbortReason::ReadLocked => 1,
            AbortReason::ReadVersion => 2,
            AbortReason::WriteLocked => 3,
            AbortReason::CommitLocked => 4,
            AbortReason::CommitValidation => 5,
            AbortReason::CombinerConflict => 6,
            AbortReason::Explicit => 7,
        }
    }
}

/// The abort token carried through `?` propagation inside a transaction body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Abort {
    /// Why the attempt was abandoned.
    pub reason: AbortReason,
}

impl Abort {
    /// Construct an abort with the given reason.
    pub const fn new(reason: AbortReason) -> Self {
        Abort { reason }
    }

    /// An abort requested explicitly by user code (e.g. retry on a
    /// precondition that a concurrent transaction must establish).
    pub const fn explicit() -> Self {
        Abort::new(AbortReason::Explicit)
    }
}

impl std::fmt::Display for Abort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "transaction aborted: {:?}", self.reason)
    }
}

impl std::error::Error for Abort {}

/// Result alias used throughout transaction bodies.
pub type TxResult<T> = Result<T, Abort>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_reason() {
        let a = Abort::new(AbortReason::CommitValidation);
        assert!(a.to_string().contains("CommitValidation"));
    }

    #[test]
    fn explicit_constructor() {
        assert_eq!(Abort::explicit().reason, AbortReason::Explicit);
    }
}
