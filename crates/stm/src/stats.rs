//! Transaction statistics.
//!
//! The paper's Table 1 reports the *maximum number of transactional reads per
//! operation*, counting the reads performed by every aborted attempt in
//! addition to the read set of the committing attempt. Figures 3-6 report
//! throughput, and §5.5 reports rotation counts. The counters here provide
//! all the raw material: per-thread atomic counters aggregated into a
//! [`StatsSnapshot`] by the harness.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Per-thread transaction counters. All counters are cumulative since the
/// last reset.
#[derive(Debug, Default)]
pub struct ThreadStats {
    /// Committed transactions.
    pub commits: AtomicU64,
    /// Committed transactions that published through the flat-combining
    /// slot (the contended small-write-set fast path).
    pub combined_commits: AtomicU64,
    /// Aborted attempts (all causes).
    pub aborts: AtomicU64,
    /// Aborts requested explicitly by user code.
    pub explicit_aborts: AtomicU64,
    /// Transactional reads (read-set tracked).
    pub tx_reads: AtomicU64,
    /// Unit reads (not tracked in the read set).
    pub tx_ureads: AtomicU64,
    /// Transactional writes.
    pub tx_writes: AtomicU64,
    /// Elastic cuts performed (E-STM style read-set truncation).
    pub elastic_cuts: AtomicU64,
    /// Maximum transactional reads accumulated by one operation across all of
    /// its attempts (the quantity of Table 1).
    pub max_reads_per_op: AtomicU64,
    /// Maximum read-set size observed at commit.
    pub max_read_set: AtomicU64,
    /// Maximum write-set size observed at commit.
    pub max_write_set: AtomicU64,
    /// Committed read-only scan transactions ([`crate::TxKind::ReadOnly`]).
    pub scan_commits: AtomicU64,
    /// Aborted read-only scan attempts.
    pub scan_aborts: AtomicU64,
    /// Maximum read-set size observed at the commit of a scan transaction
    /// (how much of the structure one ordered scan had to protect).
    pub max_scan_read_set: AtomicU64,
}

impl ThreadStats {
    fn reset(&self) {
        self.commits.store(0, Ordering::Relaxed);
        self.combined_commits.store(0, Ordering::Relaxed);
        self.aborts.store(0, Ordering::Relaxed);
        self.explicit_aborts.store(0, Ordering::Relaxed);
        self.tx_reads.store(0, Ordering::Relaxed);
        self.tx_ureads.store(0, Ordering::Relaxed);
        self.tx_writes.store(0, Ordering::Relaxed);
        self.elastic_cuts.store(0, Ordering::Relaxed);
        self.max_reads_per_op.store(0, Ordering::Relaxed);
        self.max_read_set.store(0, Ordering::Relaxed);
        self.max_write_set.store(0, Ordering::Relaxed);
        self.scan_commits.store(0, Ordering::Relaxed);
        self.scan_aborts.store(0, Ordering::Relaxed);
        self.max_scan_read_set.store(0, Ordering::Relaxed);
    }

    pub(crate) fn record_scan_commit(&self, read_set: usize) {
        self.scan_commits.fetch_add(1, Ordering::Relaxed);
        self.max_scan_read_set
            .fetch_max(read_set as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_max_reads_per_op(&self, reads: u64) {
        self.max_reads_per_op.fetch_max(reads, Ordering::Relaxed);
    }

    pub(crate) fn record_commit(&self, read_set: usize, write_set: usize) {
        self.commits.fetch_add(1, Ordering::Relaxed);
        self.max_read_set
            .fetch_max(read_set as u64, Ordering::Relaxed);
        self.max_write_set
            .fetch_max(write_set as u64, Ordering::Relaxed);
    }
}

/// Aggregated, immutable view of the counters of every registered thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Committed transactions across all threads.
    pub commits: u64,
    /// Flat-combined commits across all threads.
    pub combined_commits: u64,
    /// Aborted attempts across all threads.
    pub aborts: u64,
    /// Explicit aborts across all threads.
    pub explicit_aborts: u64,
    /// Transactional reads across all threads.
    pub tx_reads: u64,
    /// Unit reads across all threads.
    pub tx_ureads: u64,
    /// Transactional writes across all threads.
    pub tx_writes: u64,
    /// Elastic cuts across all threads.
    pub elastic_cuts: u64,
    /// Maximum reads-per-operation over all threads (Table 1 metric).
    pub max_reads_per_op: u64,
    /// Maximum committed read-set size over all threads.
    pub max_read_set: u64,
    /// Maximum committed write-set size over all threads.
    pub max_write_set: u64,
    /// Committed read-only scan transactions across all threads.
    pub scan_commits: u64,
    /// Aborted read-only scan attempts across all threads.
    pub scan_aborts: u64,
    /// Maximum committed scan read-set size over all threads.
    pub max_scan_read_set: u64,
}

impl StatsSnapshot {
    /// Fold another snapshot into this one: counters add up, high-water marks
    /// take the maximum. Used to aggregate statistics across several STM
    /// instances (e.g. the per-shard instances of a sharded map).
    pub fn merge(&mut self, other: &StatsSnapshot) {
        self.commits += other.commits;
        self.combined_commits += other.combined_commits;
        self.aborts += other.aborts;
        self.explicit_aborts += other.explicit_aborts;
        self.tx_reads += other.tx_reads;
        self.tx_ureads += other.tx_ureads;
        self.tx_writes += other.tx_writes;
        self.elastic_cuts += other.elastic_cuts;
        self.max_reads_per_op = self.max_reads_per_op.max(other.max_reads_per_op);
        self.max_read_set = self.max_read_set.max(other.max_read_set);
        self.max_write_set = self.max_write_set.max(other.max_write_set);
        self.scan_commits += other.scan_commits;
        self.scan_aborts += other.scan_aborts;
        self.max_scan_read_set = self.max_scan_read_set.max(other.max_scan_read_set);
    }

    /// Ratio of aborted attempts to total attempts, in `[0, 1]`.
    pub fn abort_ratio(&self) -> f64 {
        let attempts = self.commits + self.aborts;
        if attempts == 0 {
            0.0
        } else {
            self.aborts as f64 / attempts as f64
        }
    }
}

/// Registry of the per-thread counters created by [`crate::Stm::register`].
#[derive(Debug, Default)]
pub(crate) struct StatsRegistry {
    threads: Mutex<Vec<Arc<ThreadStats>>>,
}

impl StatsRegistry {
    pub(crate) fn register(&self) -> Arc<ThreadStats> {
        let stats = Arc::new(ThreadStats::default());
        self.threads.lock().push(Arc::clone(&stats));
        stats
    }

    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        let threads = self.threads.lock();
        let mut s = StatsSnapshot::default();
        for t in threads.iter() {
            s.commits += t.commits.load(Ordering::Relaxed);
            s.combined_commits += t.combined_commits.load(Ordering::Relaxed);
            s.aborts += t.aborts.load(Ordering::Relaxed);
            s.explicit_aborts += t.explicit_aborts.load(Ordering::Relaxed);
            s.tx_reads += t.tx_reads.load(Ordering::Relaxed);
            s.tx_ureads += t.tx_ureads.load(Ordering::Relaxed);
            s.tx_writes += t.tx_writes.load(Ordering::Relaxed);
            s.elastic_cuts += t.elastic_cuts.load(Ordering::Relaxed);
            s.max_reads_per_op = s
                .max_reads_per_op
                .max(t.max_reads_per_op.load(Ordering::Relaxed));
            s.max_read_set = s.max_read_set.max(t.max_read_set.load(Ordering::Relaxed));
            s.max_write_set = s.max_write_set.max(t.max_write_set.load(Ordering::Relaxed));
            s.scan_commits += t.scan_commits.load(Ordering::Relaxed);
            s.scan_aborts += t.scan_aborts.load(Ordering::Relaxed);
            s.max_scan_read_set = s
                .max_scan_read_set
                .max(t.max_scan_read_set.load(Ordering::Relaxed));
        }
        s
    }

    pub(crate) fn reset(&self) {
        for t in self.threads.lock().iter() {
            t.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_sums_and_maxes() {
        let reg = StatsRegistry::default();
        let a = reg.register();
        let b = reg.register();
        a.commits.store(3, Ordering::Relaxed);
        b.commits.store(4, Ordering::Relaxed);
        a.aborts.store(1, Ordering::Relaxed);
        a.max_reads_per_op.store(10, Ordering::Relaxed);
        b.max_reads_per_op.store(25, Ordering::Relaxed);
        let s = reg.snapshot();
        assert_eq!(s.commits, 7);
        assert_eq!(s.aborts, 1);
        assert_eq!(s.max_reads_per_op, 25);
        assert!((s.abort_ratio() - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_counters() {
        let reg = StatsRegistry::default();
        let a = reg.register();
        a.commits.store(3, Ordering::Relaxed);
        reg.reset();
        assert_eq!(reg.snapshot().commits, 0);
    }

    #[test]
    fn empty_snapshot_has_zero_abort_ratio() {
        assert_eq!(StatsSnapshot::default().abort_ratio(), 0.0);
    }

    #[test]
    fn record_commit_tracks_max_sets() {
        let t = ThreadStats::default();
        t.record_commit(5, 2);
        t.record_commit(3, 7);
        assert_eq!(t.max_read_set.load(Ordering::Relaxed), 5);
        assert_eq!(t.max_write_set.load(Ordering::Relaxed), 7);
        assert_eq!(t.commits.load(Ordering::Relaxed), 2);
    }
}
