//! Transaction statistics.
//!
//! The paper's Table 1 reports the *maximum number of transactional reads per
//! operation*, counting the reads performed by every aborted attempt in
//! addition to the read set of the committing attempt. Figures 3-6 report
//! throughput, and §5.5 reports rotation counts. The counters here provide
//! all the raw material: per-thread atomic counters aggregated into a
//! [`StatsSnapshot`] by the harness.
//!
//! Every field is declared once in the [`define_stats!`] table with an
//! explicit **kind** — `counter` (adds under [`StatsSnapshot::merge`]) or
//! `max` (a high-water mark that takes the maximum) — and the struct,
//! aggregation, merge, and reset code are all generated from that single
//! list, so a new field cannot silently get the wrong merge semantics.
//!
//! Aborts are classified into a *cause taxonomy* (the `abort_*` counters)
//! with the invariant that the causes **partition** `aborts`: their sum is
//! exactly the total. The partition is by transaction kind first — every
//! read-only scan abort is `abort_scan_validation` — then by
//! [`AbortReason`]: version/validation failures are `abort_read_validation`,
//! lock-acquisition failures are `abort_lock_conflict`, flat-combining slot
//! conflicts are `abort_combiner`, and user-requested retries are
//! `abort_explicit`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::config::TxKind;
use crate::error::AbortReason;

/// Per-field merge: counters add, high-water marks take the max.
macro_rules! stat_merge_one {
    (counter, $self:ident, $other:ident, $field:ident) => {
        $self.$field += $other.$field;
    };
    (max, $self:ident, $other:ident, $field:ident) => {
        $self.$field = $self.$field.max($other.$field);
    };
}

/// Per-field aggregation of one thread's atomics into a snapshot.
macro_rules! stat_accumulate_one {
    (counter, $snap:ident, $thread:ident, $field:ident) => {
        $snap.$field += $thread.$field.load(Ordering::Relaxed);
    };
    (max, $snap:ident, $thread:ident, $field:ident) => {
        $snap.$field = $snap.$field.max($thread.$field.load(Ordering::Relaxed));
    };
}

/// Declare every statistic once: `kind field: "doc"`. Generates
/// [`ThreadStats`], [`StatsSnapshot`], the aggregation loop, `merge`, and
/// `reset` so the kind (counter vs max) is applied consistently everywhere.
macro_rules! define_stats {
    ($( $kind:ident $field:ident : $doc:expr, )*) => {
        /// Per-thread transaction counters. All counters are cumulative
        /// since the last reset.
        #[derive(Debug, Default)]
        pub struct ThreadStats {
            $( #[doc = $doc] pub $field: AtomicU64, )*
        }

        impl ThreadStats {
            fn reset(&self) {
                $( self.$field.store(0, Ordering::Relaxed); )*
            }
        }

        /// Aggregated, immutable view of the counters of every registered
        /// thread.
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct StatsSnapshot {
            $( #[doc = $doc] pub $field: u64, )*
        }

        impl StatsSnapshot {
            /// Fold another snapshot into this one: counters add up,
            /// high-water marks take the maximum. Used to aggregate
            /// statistics across several STM instances (e.g. the per-shard
            /// instances of a sharded map).
            pub fn merge(&mut self, other: &StatsSnapshot) {
                $( stat_merge_one!($kind, self, other, $field); )*
            }
        }

        impl StatsRegistry {
            pub(crate) fn snapshot(&self) -> StatsSnapshot {
                let threads = self.threads.lock();
                let mut s = StatsSnapshot::default();
                for t in threads.iter() {
                    $( stat_accumulate_one!($kind, s, t, $field); )*
                }
                s
            }
        }
    };
}

define_stats! {
    counter commits:
        "Committed transactions.",
    counter combined_commits:
        "Committed transactions that published through the flat-combining \
         slot (the contended small-write-set fast path).",
    counter aborts:
        "Aborted attempts (all causes; the `abort_*` cause counters \
         partition this total).",
    counter explicit_aborts:
        "Aborts requested explicitly by user code (legacy counter: counts \
         explicit aborts of every transaction kind).",
    counter abort_read_validation:
        "Aborts of updating transactions whose read set failed validation \
         (stale read version or commit-time validation failure).",
    counter abort_lock_conflict:
        "Aborts of updating transactions that lost a version-lock race \
         (read/write/commit-time lock acquisition failure).",
    counter abort_combiner:
        "Aborts of updating transactions whose flat-combining slot \
         acquisition failed (combined-commit path conflict).",
    counter abort_explicit:
        "Aborts of updating transactions requested explicitly by user code.",
    counter abort_scan_validation:
        "Aborts of read-only scan transactions (any cause: the scan could \
         not serialize against concurrent updates).",
    counter tx_reads:
        "Transactional reads (read-set tracked).",
    counter tx_ureads:
        "Unit reads (not tracked in the read set).",
    counter tx_writes:
        "Transactional writes.",
    counter elastic_cuts:
        "Elastic cuts performed (E-STM style read-set truncation).",
    max max_reads_per_op:
        "Maximum transactional reads accumulated by one operation across \
         all of its attempts (the quantity of Table 1).",
    max max_read_set:
        "Maximum read-set size observed at commit.",
    max max_write_set:
        "Maximum write-set size observed at commit.",
    counter scan_commits:
        "Committed read-only scan transactions ([`crate::TxKind::ReadOnly`]).",
    counter scan_aborts:
        "Aborted read-only scan attempts.",
    max max_scan_read_set:
        "Maximum read-set size observed at the commit of a scan transaction \
         (how much of the structure one ordered scan had to protect).",
}

impl ThreadStats {
    pub(crate) fn record_scan_commit(&self, read_set: usize) {
        self.scan_commits.fetch_add(1, Ordering::Relaxed);
        self.max_scan_read_set
            .fetch_max(read_set as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_max_reads_per_op(&self, reads: u64) {
        self.max_reads_per_op.fetch_max(reads, Ordering::Relaxed);
    }

    pub(crate) fn record_commit(&self, read_set: usize, write_set: usize) {
        self.commits.fetch_add(1, Ordering::Relaxed);
        self.max_read_set
            .fetch_max(read_set as u64, Ordering::Relaxed);
        self.max_write_set
            .fetch_max(write_set as u64, Ordering::Relaxed);
    }

    /// Account one aborted attempt: the total, the legacy scan/explicit
    /// counters, and exactly one cause counter (so the causes always sum to
    /// `aborts`).
    pub(crate) fn record_abort(&self, kind: TxKind, reason: AbortReason) {
        self.aborts.fetch_add(1, Ordering::Relaxed);
        if kind == TxKind::ReadOnly {
            self.scan_aborts.fetch_add(1, Ordering::Relaxed);
        }
        if reason == AbortReason::Explicit {
            self.explicit_aborts.fetch_add(1, Ordering::Relaxed);
        }
        let cause = if kind == TxKind::ReadOnly {
            &self.abort_scan_validation
        } else {
            match reason {
                AbortReason::ReadVersion | AbortReason::CommitValidation => {
                    &self.abort_read_validation
                }
                AbortReason::ReadLocked | AbortReason::WriteLocked | AbortReason::CommitLocked => {
                    &self.abort_lock_conflict
                }
                AbortReason::CombinerConflict => &self.abort_combiner,
                AbortReason::Explicit => &self.abort_explicit,
            }
        };
        cause.fetch_add(1, Ordering::Relaxed);
    }
}

impl StatsSnapshot {
    /// Ratio of aborted attempts to total attempts, in `[0, 1]`.
    pub fn abort_ratio(&self) -> f64 {
        let attempts = self.commits + self.aborts;
        if attempts == 0 {
            0.0
        } else {
            self.aborts as f64 / attempts as f64
        }
    }

    /// Sum of the per-cause abort counters. Invariant: equals
    /// [`StatsSnapshot::aborts`] — the taxonomy partitions the total.
    pub fn abort_causes_total(&self) -> u64 {
        self.abort_read_validation
            + self.abort_lock_conflict
            + self.abort_combiner
            + self.abort_explicit
            + self.abort_scan_validation
    }
}

/// Registry of the per-thread counters created by [`crate::Stm::register`].
#[derive(Debug, Default)]
pub(crate) struct StatsRegistry {
    threads: Mutex<Vec<Arc<ThreadStats>>>,
}

impl StatsRegistry {
    pub(crate) fn register(&self) -> Arc<ThreadStats> {
        let stats = Arc::new(ThreadStats::default());
        self.threads.lock().push(Arc::clone(&stats));
        stats
    }

    pub(crate) fn reset(&self) {
        for t in self.threads.lock().iter() {
            t.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_sums_and_maxes() {
        let reg = StatsRegistry::default();
        let a = reg.register();
        let b = reg.register();
        a.commits.store(3, Ordering::Relaxed);
        b.commits.store(4, Ordering::Relaxed);
        a.aborts.store(1, Ordering::Relaxed);
        a.max_reads_per_op.store(10, Ordering::Relaxed);
        b.max_reads_per_op.store(25, Ordering::Relaxed);
        let s = reg.snapshot();
        assert_eq!(s.commits, 7);
        assert_eq!(s.aborts, 1);
        assert_eq!(s.max_reads_per_op, 25);
        assert!((s.abort_ratio() - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_counters() {
        let reg = StatsRegistry::default();
        let a = reg.register();
        a.commits.store(3, Ordering::Relaxed);
        a.abort_combiner.store(2, Ordering::Relaxed);
        reg.reset();
        assert_eq!(reg.snapshot().commits, 0);
        assert_eq!(reg.snapshot().abort_combiner, 0);
    }

    #[test]
    fn empty_snapshot_has_zero_abort_ratio() {
        assert_eq!(StatsSnapshot::default().abort_ratio(), 0.0);
    }

    #[test]
    fn record_commit_tracks_max_sets() {
        let t = ThreadStats::default();
        t.record_commit(5, 2);
        t.record_commit(3, 7);
        assert_eq!(t.max_read_set.load(Ordering::Relaxed), 5);
        assert_eq!(t.max_write_set.load(Ordering::Relaxed), 7);
        assert_eq!(t.commits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn record_abort_partitions_the_total_across_causes() {
        let t = ThreadStats::default();
        // One abort of every (kind, reason) shape the runtime can produce.
        t.record_abort(TxKind::Normal, AbortReason::ReadVersion);
        t.record_abort(TxKind::Normal, AbortReason::CommitValidation);
        t.record_abort(TxKind::Elastic, AbortReason::ReadLocked);
        t.record_abort(TxKind::Normal, AbortReason::WriteLocked);
        t.record_abort(TxKind::Normal, AbortReason::CommitLocked);
        t.record_abort(TxKind::Normal, AbortReason::CombinerConflict);
        t.record_abort(TxKind::Normal, AbortReason::Explicit);
        t.record_abort(TxKind::ReadOnly, AbortReason::ReadVersion);
        t.record_abort(TxKind::ReadOnly, AbortReason::Explicit);
        let reg = StatsRegistry::default();
        let arc = reg.register();
        // Copy the hand-built counters into a registered thread so we can
        // snapshot them.
        for (dst, src) in [
            (&arc.aborts, &t.aborts),
            (&arc.explicit_aborts, &t.explicit_aborts),
            (&arc.scan_aborts, &t.scan_aborts),
            (&arc.abort_read_validation, &t.abort_read_validation),
            (&arc.abort_lock_conflict, &t.abort_lock_conflict),
            (&arc.abort_combiner, &t.abort_combiner),
            (&arc.abort_explicit, &t.abort_explicit),
            (&arc.abort_scan_validation, &t.abort_scan_validation),
        ] {
            dst.store(src.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        let s = reg.snapshot();
        assert_eq!(s.aborts, 9);
        assert_eq!(s.abort_causes_total(), s.aborts, "causes partition aborts");
        assert_eq!(s.abort_read_validation, 2);
        assert_eq!(s.abort_lock_conflict, 3);
        assert_eq!(s.abort_combiner, 1);
        assert_eq!(s.abort_explicit, 1);
        assert_eq!(s.abort_scan_validation, 2, "read-only aborts by kind");
        assert_eq!(s.explicit_aborts, 2, "legacy counter keeps both kinds");
        assert_eq!(s.scan_aborts, 2);
    }

    #[test]
    fn merge_applies_counter_and_max_semantics_per_field() {
        let mut a = StatsSnapshot {
            commits: 3,
            aborts: 1,
            abort_lock_conflict: 1,
            max_reads_per_op: 10,
            max_scan_read_set: 4,
            ..StatsSnapshot::default()
        };
        let b = StatsSnapshot {
            commits: 4,
            aborts: 2,
            abort_lock_conflict: 2,
            max_reads_per_op: 7,
            max_scan_read_set: 9,
            ..StatsSnapshot::default()
        };
        a.merge(&b);
        assert_eq!(a.commits, 7);
        assert_eq!(a.aborts, 3);
        assert_eq!(a.abort_lock_conflict, 3);
        assert_eq!(a.max_reads_per_op, 10, "max fields take the maximum");
        assert_eq!(a.max_scan_read_set, 9);
    }
}
