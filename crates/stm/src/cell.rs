//! Transactional memory locations.
//!
//! A [`TCell`] is the unit of conflict detection: one 64-bit payload word and
//! one versioned-lock word, the same granularity as the per-stripe ownership
//! records of word-based STMs such as TinySTM and TL2, but owned by the cell
//! itself so that no two logically unrelated locations ever alias the same
//! lock (no false conflicts from hash collisions).
//!
//! The lock word encodes either
//!
//! * `version << 1` (even) — the commit timestamp of the last transaction that
//!   wrote the cell, or
//! * `(owner << 1) | 1` (odd) — the cell is currently locked by the
//!   transaction whose thread lock-word is `owner << 1 | 1`.
//!
//! Readers use a seqlock-style protocol (load lock, load value, re-load lock)
//! so that a torn or in-flight write is never observed.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::value::TxValue;

/// Result of a consistent (lock, value) read of a raw cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RawRead {
    /// The cell was unlocked; `version` is its commit timestamp and `value`
    /// the payload written by that commit.
    Ok { value: u64, version: u64 },
    /// The cell is currently locked by the transaction identified by the
    /// given lock word.
    Locked { owner_word: u64 },
}

/// The untyped (type-erased) interior of a [`TCell`]: a versioned lock and a
/// 64-bit payload. Transactions track raw cells so that read and write sets
/// can hold locations of heterogeneous value types.
#[derive(Debug)]
pub struct RawCell {
    lock: AtomicU64,
    value: AtomicU64,
}

impl RawCell {
    /// Create a raw cell with version 0 and the given payload.
    pub(crate) const fn new(value: u64) -> Self {
        RawCell {
            lock: AtomicU64::new(0),
            value: AtomicU64::new(value),
        }
    }

    /// Perform one attempt at a consistent read. Loops internally only while
    /// the lock word changes under us while remaining unlocked (a committing
    /// writer finished between our two lock loads).
    #[inline]
    pub(crate) fn read_consistent(&self) -> RawRead {
        loop {
            let l1 = self.lock.load(Ordering::Acquire);
            if l1 & 1 == 1 {
                return RawRead::Locked { owner_word: l1 };
            }
            let value = self.value.load(Ordering::Acquire);
            let l2 = self.lock.load(Ordering::Acquire);
            if l1 == l2 {
                return RawRead::Ok {
                    value,
                    version: l1 >> 1,
                };
            }
            std::hint::spin_loop();
        }
    }

    /// Current lock word (used by validation).
    #[inline]
    pub(crate) fn lock_word(&self) -> u64 {
        self.lock.load(Ordering::Acquire)
    }

    /// Try to acquire the cell lock for the transaction identified by
    /// `owner_word`. On success returns the previous (unlocked) lock word so
    /// it can be restored on abort.
    #[inline]
    pub(crate) fn try_lock(&self, owner_word: u64) -> Result<u64, u64> {
        let cur = self.lock.load(Ordering::Acquire);
        if cur & 1 == 1 {
            return Err(cur);
        }
        match self
            .lock
            .compare_exchange(cur, owner_word, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => Ok(cur),
            Err(now) => Err(now),
        }
    }

    /// Release a lock held by this transaction, restoring the pre-lock
    /// version (abort path).
    #[inline]
    pub(crate) fn unlock_restore(&self, prev_lock_word: u64) {
        debug_assert_eq!(prev_lock_word & 1, 0);
        self.lock.store(prev_lock_word, Ordering::Release);
    }

    /// Store a new payload and release the lock with the given new commit
    /// version (commit path). The payload store happens before the version
    /// publish so the seqlock read protocol never observes a torn pair.
    #[inline]
    pub(crate) fn write_and_unlock(&self, value: u64, new_version: u64) {
        self.value.store(value, Ordering::Release);
        self.lock.store(new_version << 1, Ordering::Release);
    }

    /// Raw payload load without any transactional bookkeeping. Only meaningful
    /// when the caller can rule out concurrent commits (initialization,
    /// single-threaded verification, statistics).
    #[inline]
    pub(crate) fn load_raw(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }

    /// Raw payload store without any transactional bookkeeping. Only
    /// meaningful when the caller can rule out concurrent transactions on the
    /// same cell (e.g. a freshly allocated node not yet published).
    #[inline]
    pub(crate) fn store_raw(&self, value: u64) {
        self.value.store(value, Ordering::Release);
    }

    /// Address used as the identity of the cell inside read/write sets.
    #[inline]
    pub(crate) fn addr(&self) -> usize {
        self as *const RawCell as usize
    }
}

// Under sf-check, a dropped cell must retire its detector state: the
// allocator will reuse the address, and the next tenant must not inherit
// the previous cell's epochs (phantom races) or clocks (phantom ordering).
#[cfg(feature = "check")]
impl Drop for RawCell {
    fn drop(&mut self) {
        crate::chk::cell_retired(self.addr());
    }
}

/// A typed transactional memory location holding a `T`.
///
/// All concurrent accesses must go through a [`crate::Transaction`] (or
/// [`crate::Transaction::uread`] for unit loads). The `unsync_*` accessors are
/// provided for initialization and quiescent inspection.
#[derive(Debug)]
pub struct TCell<T: TxValue> {
    raw: RawCell,
    _marker: PhantomData<T>,
}

impl<T: TxValue> TCell<T> {
    /// Create a new cell with the given initial value and version 0.
    pub fn new(value: T) -> Self {
        TCell {
            raw: RawCell::new(value.encode()),
            _marker: PhantomData,
        }
    }

    /// Access the type-erased interior.
    #[inline]
    pub(crate) fn raw(&self) -> &RawCell {
        &self.raw
    }

    /// Read the value without transactional protection.
    ///
    /// This is an atomic load, so it never observes a torn word, but it takes
    /// part in no conflict detection: use it only during initialization,
    /// while the structure is quiescent, or for monitoring output where an
    /// instantaneous value is acceptable.
    #[inline]
    pub fn unsync_load(&self) -> T {
        T::decode(self.raw.load_raw())
    }

    /// Write the value without transactional protection.
    ///
    /// Use only when no concurrent transaction can access the cell (e.g. a
    /// node that has not been published yet, or test setup).
    #[inline]
    pub fn unsync_store(&self, value: T) {
        self.raw.store_raw(value.encode());
    }

    /// The commit version of the last transaction that wrote this cell, or
    /// `None` if it is currently locked by an in-flight commit.
    pub fn version(&self) -> Option<u64> {
        let l = self.raw.lock_word();
        if l & 1 == 1 {
            None
        } else {
            Some(l >> 1)
        }
    }
}

impl<T: TxValue + Default> Default for TCell<T> {
    fn default() -> Self {
        TCell::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_cell_reads_initial_value() {
        let c = TCell::new(42u64);
        assert_eq!(c.unsync_load(), 42);
        assert_eq!(c.version(), Some(0));
    }

    #[test]
    fn unsync_store_updates_value_not_version() {
        let c = TCell::new(1u32);
        c.unsync_store(9);
        assert_eq!(c.unsync_load(), 9);
        assert_eq!(c.version(), Some(0));
    }

    #[test]
    fn raw_lock_unlock_cycle() {
        let c = TCell::new(5u64);
        let owner = (7 << 1) | 1;
        let prev = c.raw().try_lock(owner).expect("lock should succeed");
        assert_eq!(prev, 0);
        // A second acquisition by anyone must fail while locked.
        assert!(c.raw().try_lock((9 << 1) | 1).is_err());
        match c.raw().read_consistent() {
            RawRead::Locked { owner_word } => assert_eq!(owner_word, owner),
            other => panic!("expected Locked, got {other:?}"),
        }
        c.raw().write_and_unlock(11u64, 3);
        assert_eq!(c.unsync_load(), 11);
        assert_eq!(c.version(), Some(3));
        match c.raw().read_consistent() {
            RawRead::Ok { value, version } => {
                assert_eq!(value, 11);
                assert_eq!(version, 3);
            }
            other => panic!("expected Ok, got {other:?}"),
        }
    }

    #[test]
    fn abort_restores_previous_version() {
        let c = TCell::new(5u64);
        c.raw().write_and_unlock(5, 4);
        let owner = (1 << 1) | 1;
        let prev = c.raw().try_lock(owner).unwrap();
        assert_eq!(prev >> 1, 4);
        c.raw().unlock_restore(prev);
        assert_eq!(c.version(), Some(4));
        assert_eq!(c.unsync_load(), 5);
    }

    #[test]
    fn default_cell() {
        let c: TCell<bool> = TCell::default();
        assert!(!c.unsync_load());
    }

    #[test]
    fn option_cell() {
        let c: TCell<Option<u32>> = TCell::new(None);
        assert_eq!(c.unsync_load(), None);
        c.unsync_store(Some(0));
        assert_eq!(c.unsync_load(), Some(0));
    }
}
