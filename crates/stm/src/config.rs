//! Runtime configuration of the STM.
//!
//! The paper evaluates the speculation-friendly tree on several TM
//! configurations to show the result is independent of the TM algorithm:
//! TinySTM with commit-time locking (CTL, lazy acquirement), TinySTM with
//! encounter-time locking (ETL, eager acquirement), and E-STM (elastic
//! transactions). The same knobs are exposed here.

/// When write locks are acquired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockAcquisition {
    /// Lazy acquirement: locks are taken at commit time (TinySTM-CTL).
    CommitTime,
    /// Eager acquirement: locks are taken at the first transactional write
    /// to the location (TinySTM-ETL).
    EncounterTime,
}

/// The kind of transaction executed by default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxKind {
    /// Opaque transaction with a full read set (standard TM interface).
    Normal,
    /// Elastic transaction: while the transaction has not written anything,
    /// a stale read may *cut* the transaction (drop the prefix of the read
    /// set) instead of aborting, as in E-STM.
    Elastic,
    /// Read-only scan transaction: reads behave exactly like [`TxKind::Normal`]
    /// (tracked read set, timestamp extension), but [`crate::Transaction::write`]
    /// is forbidden, so commit never acquires locks or ticks the clock and the
    /// runtime accounts the attempt in the dedicated scan counters of
    /// [`crate::StatsSnapshot`] (`scan_commits`, `scan_aborts`,
    /// `max_scan_read_set`). Used by the ordered-map range scans.
    ReadOnly,
}

/// STM-wide configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StmConfig {
    /// Write-lock acquisition policy.
    pub acquisition: LockAcquisition,
    /// Default transaction kind used by [`crate::ThreadCtx::atomically`].
    pub default_kind: TxKind,
    /// Number of trailing read-set entries revalidated when an elastic
    /// transaction cuts itself.
    pub elastic_window: usize,
    /// Upper bound on the exponential backoff spin budget applied after an
    /// abort (in spin-loop iterations).
    pub max_backoff_spins: u32,
    /// Number of consecutive aborts after which the retry loop starts
    /// yielding the CPU between attempts (important on machines with fewer
    /// cores than threads).
    pub yield_after_aborts: u32,
    /// Flat-combined fast commit path: a commit-time-locking transaction
    /// whose write set has at most this many entries publishes through the
    /// STM's **combiner slot** — a single mutex that serializes small
    /// committers so they hand off publication instead of repeatedly
    /// fighting (and aborting) over version-lock CAS. Uncontended, the slot
    /// is one CAS; contended, it turns the lock-grab storm into a queue.
    /// `0` disables the path. Only used under
    /// [`LockAcquisition::CommitTime`] (ETL transactions already hold their
    /// locks when commit starts).
    pub combine_write_sets: usize,
}

impl StmConfig {
    /// TinySTM-CTL-like configuration (lazy acquirement), the default used in
    /// the paper's main experiments (Table 1, Figure 3).
    pub fn ctl() -> Self {
        StmConfig {
            acquisition: LockAcquisition::CommitTime,
            default_kind: TxKind::Normal,
            elastic_window: 2,
            max_backoff_spins: 1 << 12,
            yield_after_aborts: 4,
            combine_write_sets: 2,
        }
    }

    /// TinySTM-ETL-like configuration (eager acquirement), used in Figure 4
    /// (right).
    pub fn etl() -> Self {
        StmConfig {
            acquisition: LockAcquisition::EncounterTime,
            ..Self::ctl()
        }
    }

    /// E-STM-like configuration: elastic transactions by default, used in
    /// Figure 4 (left) and Figure 5(a).
    pub fn elastic() -> Self {
        StmConfig {
            default_kind: TxKind::Elastic,
            ..Self::ctl()
        }
    }
}

impl Default for StmConfig {
    fn default() -> Self {
        Self::ctl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_the_expected_knob() {
        assert_eq!(StmConfig::ctl().acquisition, LockAcquisition::CommitTime);
        assert_eq!(StmConfig::etl().acquisition, LockAcquisition::EncounterTime);
        assert_eq!(StmConfig::elastic().default_kind, TxKind::Elastic);
        assert_eq!(StmConfig::default(), StmConfig::ctl());
    }
}
