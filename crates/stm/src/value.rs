//! Encoding of transactional values into 64-bit words.
//!
//! The STM stores every transactional location as a single `u64` (see
//! [`crate::cell::TCell`]). Any type that can be losslessly packed into 64
//! bits can be stored transactionally by implementing [`TxValue`]. The
//! word-based layout mirrors TinySTM, where every transactional access is a
//! machine-word load or store guarded by a versioned lock.

/// A value that can be stored in a [`crate::TCell`].
///
/// Implementations must round-trip exactly: `decode(encode(v)) == v` for every
/// value `v`. The encoding does not need to be ordered or hash-friendly, it is
/// only used as an opaque 64-bit payload.
pub trait TxValue: Copy {
    /// Pack the value into a 64-bit word.
    fn encode(self) -> u64;
    /// Unpack a value previously produced by [`TxValue::encode`].
    fn decode(raw: u64) -> Self;
}

impl TxValue for u64 {
    #[inline]
    fn encode(self) -> u64 {
        self
    }
    #[inline]
    fn decode(raw: u64) -> Self {
        raw
    }
}

impl TxValue for i64 {
    #[inline]
    fn encode(self) -> u64 {
        self as u64
    }
    #[inline]
    fn decode(raw: u64) -> Self {
        raw as i64
    }
}

impl TxValue for u32 {
    #[inline]
    fn encode(self) -> u64 {
        self as u64
    }
    #[inline]
    fn decode(raw: u64) -> Self {
        raw as u32
    }
}

impl TxValue for i32 {
    #[inline]
    fn encode(self) -> u64 {
        self as u32 as u64
    }
    #[inline]
    fn decode(raw: u64) -> Self {
        raw as u32 as i32
    }
}

impl TxValue for u16 {
    #[inline]
    fn encode(self) -> u64 {
        self as u64
    }
    #[inline]
    fn decode(raw: u64) -> Self {
        raw as u16
    }
}

impl TxValue for u8 {
    #[inline]
    fn encode(self) -> u64 {
        self as u64
    }
    #[inline]
    fn decode(raw: u64) -> Self {
        raw as u8
    }
}

impl TxValue for bool {
    #[inline]
    fn encode(self) -> u64 {
        self as u64
    }
    #[inline]
    fn decode(raw: u64) -> Self {
        raw != 0
    }
}

impl TxValue for () {
    #[inline]
    fn encode(self) -> u64 {
        0
    }
    #[inline]
    fn decode(_raw: u64) -> Self {}
}

impl TxValue for f64 {
    #[inline]
    fn encode(self) -> u64 {
        self.to_bits()
    }
    #[inline]
    fn decode(raw: u64) -> Self {
        f64::from_bits(raw)
    }
}

/// `Option<u32>` is encoded with the tag in bit 32 so that `None` and
/// `Some(0)` are distinguishable. This is the natural encoding for optional
/// arena indices (child pointers in the trees built on top of this STM).
impl TxValue for Option<u32> {
    #[inline]
    fn encode(self) -> u64 {
        match self {
            None => 0,
            Some(v) => (1 << 32) | v as u64,
        }
    }
    #[inline]
    fn decode(raw: u64) -> Self {
        if raw & (1 << 32) == 0 {
            None
        } else {
            Some(raw as u32)
        }
    }
}

impl TxValue for Option<u64> {
    /// Encoded in 64 bits by reserving `u64::MAX` as the `None` sentinel.
    /// Storing `Some(u64::MAX)` is therefore not representable and panics.
    #[inline]
    fn encode(self) -> u64 {
        match self {
            None => u64::MAX,
            Some(v) => {
                assert!(v != u64::MAX, "Some(u64::MAX) is not encodable");
                v
            }
        }
    }
    #[inline]
    fn decode(raw: u64) -> Self {
        if raw == u64::MAX {
            None
        } else {
            Some(raw)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: TxValue + PartialEq + core::fmt::Debug>(v: T) {
        assert_eq!(T::decode(v.encode()), v);
    }

    #[test]
    fn unsigned_roundtrip() {
        for v in [0u64, 1, 42, u64::MAX] {
            roundtrip(v);
        }
        for v in [0u32, 7, u32::MAX] {
            roundtrip(v);
        }
        for v in [0u16, 7, u16::MAX] {
            roundtrip(v);
        }
        for v in [0u8, 7, u8::MAX] {
            roundtrip(v);
        }
    }

    #[test]
    fn signed_roundtrip() {
        for v in [0i64, -1, i64::MIN, i64::MAX, 123456789] {
            roundtrip(v);
        }
        for v in [0i32, -1, i32::MIN, i32::MAX] {
            roundtrip(v);
        }
    }

    #[test]
    fn bool_and_unit_roundtrip() {
        roundtrip(true);
        roundtrip(false);
        roundtrip(());
    }

    #[test]
    fn float_roundtrip() {
        for v in [0.0f64, -1.5, f64::MAX, f64::MIN_POSITIVE] {
            roundtrip(v);
        }
        // NaN does not compare equal, check bit pattern instead.
        assert!(f64::decode(f64::NAN.encode()).is_nan());
    }

    #[test]
    fn option_u32_roundtrip() {
        roundtrip(None::<u32>);
        roundtrip(Some(0u32));
        roundtrip(Some(u32::MAX));
        roundtrip(Some(17u32));
        // None and Some(0) must encode differently.
        assert_ne!(None::<u32>.encode(), Some(0u32).encode());
    }

    #[test]
    fn option_u64_roundtrip() {
        roundtrip(None::<u64>);
        roundtrip(Some(0u64));
        roundtrip(Some(u64::MAX - 1));
    }

    #[test]
    #[should_panic]
    fn option_u64_sentinel_panics() {
        let _ = Some(u64::MAX).encode();
    }
}
