//! Internal indirection over the `sf-check` instrumentation hooks.
//!
//! With the `check` feature the functions below forward to
//! [`sf_check::hooks`] and [`sf_check::sched_point`]; without it they are
//! empty `#[inline(always)]` bodies the optimizer erases, so call sites in
//! the hot transaction paths stay unconditional and the default build pays
//! nothing.

#[cfg(feature = "check")]
pub(crate) use sf_check::hooks::{
    cell_locked, cell_published, cell_read, cell_retired, cell_unlocked,
};
#[cfg(feature = "check")]
pub(crate) use sf_check::{sched_point, SchedEvent};

#[cfg(not(feature = "check"))]
mod noop {
    /// Mirror of `sf_check::SchedEvent` restricted to the variants sf-stm
    /// emits, so call sites compile identically in both configurations.
    #[derive(Debug, Clone, Copy)]
    pub(crate) enum SchedEvent {
        TxnBegin,
        Acquire,
        Validate,
        Publish,
        Spin,
    }

    #[inline(always)]
    pub(crate) fn sched_point(_ev: SchedEvent) {}

    #[inline(always)]
    pub(crate) fn cell_locked(_addr: usize) {}

    #[inline(always)]
    pub(crate) fn cell_unlocked(_addr: usize) {}

    #[inline(always)]
    pub(crate) fn cell_read(_addr: usize, _site: &'static str) {}

    #[inline(always)]
    pub(crate) fn cell_published(_addr: usize, _site: &'static str) {}
}

#[cfg(not(feature = "check"))]
pub(crate) use noop::*;
