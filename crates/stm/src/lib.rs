//! # sf-stm — word-based software transactional memory
//!
//! The STM substrate used by the reproduction of *A Speculation-Friendly
//! Binary Search Tree* (Crain, Gramoli, Raynal — PPoPP 2012). The paper
//! evaluates its tree on TinySTM (with lazy and eager lock acquirement) and on
//! E-STM (elastic transactions); this crate implements the same family of
//! algorithms from scratch:
//!
//! * **Versioned-lock, write-back STM** in the TL2/TinySTM style: a global
//!   version clock ([`GlobalClock`]), per-location versioned locks
//!   ([`TCell`]), invisible reads with timestamp extension, and write-back at
//!   commit ([`Transaction`]).
//! * **Commit-time (CTL) and encounter-time (ETL) lock acquisition**, selected
//!   through [`StmConfig`].
//! * **Unit reads** ([`Transaction::uread`]) — TinySTM's unit loads, used by
//!   the optimized tree traversal of the paper's Algorithm 2.
//! * **Elastic transactions** ([`TxKind::Elastic`]) — E-STM-style read-set
//!   cutting for search-structure traversals.
//! * **Statistics** ([`StatsSnapshot`]) — commits, aborts, transactional
//!   reads (including aborted attempts) and read/write-set high-water marks,
//!   the raw data behind the paper's Table 1.
//!
//! ## Quick example
//!
//! ```
//! use sf_stm::{Stm, TCell};
//!
//! let stm = Stm::default_config();
//! let mut ctx = stm.register();
//! let account = TCell::new(100u64);
//!
//! let before = ctx.atomically(|tx| {
//!     let v = tx.read(&account)?;
//!     tx.write(&account, v + 1)?;
//!     Ok(v)
//! });
//! assert_eq!(before, 100);
//! assert_eq!(account.unsync_load(), 101);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod cell;
mod chk;
mod clock;
mod config;
mod error;
mod stats;
mod txn;
mod value;

pub mod runtime;

pub use cell::TCell;
pub use clock::GlobalClock;
pub use config::{LockAcquisition, StmConfig, TxKind};
pub use error::{Abort, AbortReason, TxResult};
pub use runtime::{Stm, ThreadCtx};
pub use stats::{StatsSnapshot, ThreadStats};
pub use txn::Transaction;
pub use value::TxValue;
