//! A comment/string-aware Rust lexer with `file:line` spans.
//!
//! The build environment is offline — no `syn`, no rustc plugins — so the
//! analyzer tokenizes workspace sources itself. The lexer is deliberately
//! shallow: it produces a flat token stream (identifiers, punctuation,
//! string/char/number literals) with line numbers, plus three derived
//! overlays the rules share:
//!
//! * **waivers** — `// sf-lint: allow(rule, reason)` comments, attached to
//!   the line they trail or (for standalone comment lines) to the code line
//!   immediately below the comment block;
//! * **test regions** — line ranges covered by `#[cfg(test)]` /  `#[test]`
//!   items, so rules about production invariants skip test code;
//! * **functions** — `fn name { body token range }` extents, used by the
//!   lock-order rule for per-function acquisition sets and one-level call
//!   propagation.
//!
//! Lexing handles the corners that regex passes get wrong: nested block
//! comments, raw strings with `#` fences, byte strings, char literals vs
//! lifetimes, and raw identifiers.

/// One lexical token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    Ident,
    /// String or byte-string literal; `text` holds the *unescaped* value.
    Str,
    Char,
    Lifetime,
    Number,
    Punct,
}

/// An inline waiver comment: `// sf-lint: allow(rule-name, free text reason)`.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Line the comment appears on.
    pub line: usize,
    /// `true` when the comment is the only thing on its line — it then also
    /// covers the next code line below the comment block.
    pub standalone: bool,
    pub rule: String,
    pub reason: String,
}

/// A lexed source file plus the derived overlays.
#[derive(Debug)]
pub struct LexedFile {
    pub path: String,
    pub tokens: Vec<Token>,
    pub waivers: Vec<Waiver>,
    /// Inclusive line ranges belonging to `#[cfg(test)]` / `#[test]` items.
    pub test_regions: Vec<(usize, usize)>,
    /// `fn` items: name plus the half-open token range of the body block.
    pub functions: Vec<FnSpan>,
}

#[derive(Debug, Clone)]
pub struct FnSpan {
    pub name: String,
    pub name_line: usize,
    /// Token index of the body's opening `{`.
    pub body_start: usize,
    /// Token index one past the body's closing `}`.
    pub body_end: usize,
}

impl LexedFile {
    pub fn lex(path: &str, text: &str) -> LexedFile {
        let (tokens, waivers) = tokenize(text);
        let test_regions = find_test_regions(&tokens);
        let functions = find_functions(&tokens);
        LexedFile {
            path: path.to_string(),
            tokens,
            waivers,
            test_regions,
            functions,
        }
    }

    pub fn in_test_region(&self, line: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    /// Is a finding for `rule` at `line` covered by a waiver? A waiver
    /// covers its own line, and a block of standalone waiver comments covers
    /// the first code line after the block (comments directly above the
    /// offending line, including inside a method chain).
    pub fn waived(&self, rule: &str, line: usize) -> bool {
        self.waivers.iter().any(|w| {
            w.rule == rule
                && (w.line == line
                    || (w.standalone && w.line < line && self.covers_from_below(w.line, line)))
        })
    }

    /// True when every line strictly between `comment_line` and `code_line`
    /// holds only comments (i.e. the standalone comment block ends directly
    /// above `code_line`).
    fn covers_from_below(&self, comment_line: usize, code_line: usize) -> bool {
        // A token on an intervening line means real code sits between the
        // waiver and the finding, so the waiver does not apply.
        !self
            .tokens
            .iter()
            .any(|t| t.line > comment_line && t.line < code_line)
            && code_line - comment_line <= 6
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Core tokenizer. Returns the token stream and any waiver comments.
fn tokenize(text: &str) -> (Vec<Token>, Vec<Waiver>) {
    let chars: Vec<char> = text.chars().collect();
    let mut tokens = Vec::new();
    let mut waivers = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    // Tracks whether any token has been emitted on the current line, so a
    // comment can be classified trailing vs standalone.
    let mut code_on_line = false;

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                code_on_line = false;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                let comment: String = chars[start..i].iter().collect();
                if let Some(w) = parse_waiver(&comment, line, !code_on_line) {
                    waivers.push(w);
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Nested block comments.
                let mut depth = 1;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                            code_on_line = false;
                        }
                        i += 1;
                    }
                }
            }
            '"' => {
                let (value, next, lines) = scan_string(&chars, i);
                tokens.push(Token {
                    kind: TokenKind::Str,
                    text: value,
                    line,
                });
                line += lines;
                i = next;
                code_on_line = true;
            }
            'r' | 'b' if starts_string(&chars, i) => {
                let (value, next, lines) = scan_prefixed_string(&chars, i);
                tokens.push(Token {
                    kind: TokenKind::Str,
                    text: value,
                    line,
                });
                line += lines;
                i = next;
                code_on_line = true;
            }
            'r' if chars.get(i + 1) == Some(&'#')
                && chars.get(i + 2).is_some_and(|&c| is_ident_start(c)) =>
            {
                // Raw identifier `r#ident`.
                let mut j = i + 2;
                while j < chars.len() && is_ident_continue(chars[j]) {
                    j += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: chars[i + 2..j].iter().collect(),
                    line,
                });
                i = j;
                code_on_line = true;
            }
            '\'' => {
                let (tok, next) = scan_char_or_lifetime(&chars, i, line);
                tokens.push(tok);
                i = next;
                code_on_line = true;
            }
            c if is_ident_start(c) => {
                let mut j = i;
                while j < chars.len() && is_ident_continue(chars[j]) {
                    j += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: chars[i..j].iter().collect(),
                    line,
                });
                i = j;
                code_on_line = true;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < chars.len()
                    && (is_ident_continue(chars[j])
                        || (chars[j] == '.'
                            && chars.get(j + 1).is_some_and(|d| d.is_ascii_digit())
                            && chars.get(j.wrapping_sub(1)) != Some(&'.')))
                {
                    j += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Number,
                    text: chars[i..j].iter().collect(),
                    line,
                });
                i = j;
                code_on_line = true;
            }
            c => {
                tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += 1;
                code_on_line = true;
            }
        }
    }
    (tokens, waivers)
}

/// Does `r`/`b` at `i` start a (raw/byte) string literal rather than an
/// identifier? Covers `r"`, `r#"`, `b"`, `br"`, `br#"`, `b'`-is-not-ours.
fn starts_string(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j) == Some(&'\'') {
            return false; // b'x' is a byte char literal, not a string
        }
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
    }
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Scan a plain `"…"` string starting at the opening quote. Returns the
/// unescaped value, the index after the closing quote, and newline count.
fn scan_string(chars: &[char], start: usize) -> (String, usize, usize) {
    let mut value = String::new();
    let mut i = start + 1;
    let mut lines = 0;
    while i < chars.len() {
        match chars[i] {
            '\\' => {
                if let Some(&esc) = chars.get(i + 1) {
                    match esc {
                        'n' => value.push('\n'),
                        't' => value.push('\t'),
                        'r' => value.push('\r'),
                        '0' => value.push('\0'),
                        '\n' => lines += 1,         // line-continuation escape
                        other => value.push(other), // includes \" \\ \'
                    }
                    i += 2;
                } else {
                    i += 1;
                }
            }
            '"' => return (value, i + 1, lines),
            c => {
                if c == '\n' {
                    lines += 1;
                }
                value.push(c);
                i += 1;
            }
        }
    }
    (value, i, lines)
}

/// Scan `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` starting at the prefix.
fn scan_prefixed_string(chars: &[char], start: usize) -> (String, usize, usize) {
    let mut i = start;
    if chars[i] == 'b' {
        i += 1;
    }
    let raw = chars.get(i) == Some(&'r');
    if raw {
        i += 1;
    }
    let mut hashes = 0;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if !raw {
        // b"…" — same escape rules as a plain string.
        return scan_string(chars, i);
    }
    // Raw: ends at `"` followed by `hashes` hash marks.
    i += 1; // opening quote
    let mut value = String::new();
    let mut lines = 0;
    while i < chars.len() {
        if chars[i] == '"' {
            let mut ok = true;
            for k in 0..hashes {
                if chars.get(i + 1 + k) != Some(&'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                return (value, i + 1 + hashes, lines);
            }
        }
        if chars[i] == '\n' {
            lines += 1;
        }
        value.push(chars[i]);
        i += 1;
    }
    (value, i, lines)
}

/// Disambiguate `'a'` / `'\n'` / `b'x'` char literals from `'lifetime`.
fn scan_char_or_lifetime(chars: &[char], start: usize, line: usize) -> (Token, usize) {
    let next = chars.get(start + 1).copied();
    match next {
        Some('\\') => {
            // Escaped char literal: skip to closing quote.
            let mut i = start + 2;
            if i < chars.len() {
                i += 1; // the escaped char (or first of \u{...})
            }
            while i < chars.len() && chars[i] != '\'' {
                i += 1;
            }
            (
                Token {
                    kind: TokenKind::Char,
                    text: String::new(),
                    line,
                },
                (i + 1).min(chars.len()),
            )
        }
        Some(c) if is_ident_start(c) => {
            if chars.get(start + 2) == Some(&'\'') {
                // 'a' — a char literal.
                (
                    Token {
                        kind: TokenKind::Char,
                        text: c.to_string(),
                        line,
                    },
                    start + 3,
                )
            } else {
                // 'lifetime
                let mut j = start + 1;
                while j < chars.len() && is_ident_continue(chars[j]) {
                    j += 1;
                }
                (
                    Token {
                        kind: TokenKind::Lifetime,
                        text: chars[start + 1..j].iter().collect(),
                        line,
                    },
                    j,
                )
            }
        }
        Some(c) if c != '\'' => {
            // Punctuation char literal like '{' or '0'.
            if chars.get(start + 2) == Some(&'\'') {
                (
                    Token {
                        kind: TokenKind::Char,
                        text: c.to_string(),
                        line,
                    },
                    start + 3,
                )
            } else {
                (
                    Token {
                        kind: TokenKind::Punct,
                        text: "'".into(),
                        line,
                    },
                    start + 1,
                )
            }
        }
        _ => (
            Token {
                kind: TokenKind::Punct,
                text: "'".into(),
                line,
            },
            start + 1,
        ),
    }
}

/// Parse an `sf-lint: allow(rule, reason)` waiver out of a `//` comment.
fn parse_waiver(comment: &str, line: usize, standalone: bool) -> Option<Waiver> {
    let body = comment.trim_start_matches('/').trim();
    let rest = body.strip_prefix("sf-lint:")?.trim();
    let rest = rest.strip_prefix("allow")?.trim();
    let rest = rest.strip_prefix('(')?;
    let close = rest.rfind(')')?;
    let inner = &rest[..close];
    let (rule, reason) = match inner.split_once(',') {
        Some((r, why)) => (r.trim(), why.trim()),
        None => (inner.trim(), ""),
    };
    if rule.is_empty() {
        return None;
    }
    Some(Waiver {
        line,
        standalone,
        rule: rule.to_string(),
        reason: reason.to_string(),
    })
}

/// Find the token-index of the matching close for the open delimiter at
/// `open_idx` (any of `(`/`[`/`{`). Returns the index one past the close.
pub fn balanced_end(tokens: &[Token], open_idx: usize) -> usize {
    let open = tokens[open_idx].text.as_str();
    let close = match open {
        "(" => ")",
        "[" => "]",
        "{" => "}",
        _ => return open_idx + 1,
    };
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.kind == TokenKind::Punct {
            if t.text == open {
                depth += 1;
            } else if t.text == close {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
        }
    }
    tokens.len()
}

/// Line ranges of `#[cfg(test)]` / `#[test]` items: the attribute's line
/// through the closing brace (or semicolon) of the item it decorates.
fn find_test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].kind == TokenKind::Punct
            && tokens[i].text == "#"
            && tokens.get(i + 1).is_some_and(|t| t.text == "[")
        {
            let start_line = tokens[i].line;
            let attr_end = balanced_end(tokens, i + 1);
            let attr = &tokens[i + 2..attr_end.saturating_sub(1)];
            let is_test_attr = match attr.first().map(|t| t.text.as_str()) {
                Some("test") => attr.len() == 1,
                Some("cfg") => attr.iter().any(|t| t.text == "test"),
                _ => false,
            };
            if is_test_attr {
                // The region runs to the end of the decorated item: skip any
                // further attributes, then find the item's closing `}` / `;`.
                let mut j = attr_end;
                while j < tokens.len()
                    && tokens[j].text == "#"
                    && tokens.get(j + 1).is_some_and(|t| t.text == "[")
                {
                    j = balanced_end(tokens, j + 1);
                }
                let mut end_line = start_line;
                while j < tokens.len() {
                    match tokens[j].text.as_str() {
                        "{" => {
                            let e = balanced_end(tokens, j);
                            end_line = tokens.get(e.saturating_sub(1)).map_or(end_line, |t| t.line);
                            j = e;
                            break;
                        }
                        ";" => {
                            end_line = tokens[j].line;
                            j += 1;
                            break;
                        }
                        _ => j += 1,
                    }
                }
                if j >= tokens.len() {
                    end_line = tokens.last().map_or(end_line, |t| t.line);
                }
                regions.push((start_line, end_line));
                i = j.max(attr_end);
                continue;
            }
        }
        i += 1;
    }
    regions
}

/// Extract `fn` items with their body token ranges. Trait-method
/// declarations without bodies are skipped.
fn find_functions(tokens: &[Token]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].kind == TokenKind::Ident && tokens[i].text == "fn" {
            if let Some(name_tok) = tokens.get(i + 1) {
                if name_tok.kind == TokenKind::Ident {
                    // Scan forward to the body `{` or a `;` (no body),
                    // skipping balanced (), <>-free since generics use
                    // ident/punct soup — `{` can't appear in a signature
                    // except inside a const generic default, which the
                    // workspace doesn't use.
                    let mut j = i + 2;
                    while j < tokens.len() {
                        match tokens[j].text.as_str() {
                            "(" | "[" => j = balanced_end(tokens, j),
                            "{" => {
                                let end = balanced_end(tokens, j);
                                fns.push(FnSpan {
                                    name: name_tok.text.clone(),
                                    name_line: name_tok.line,
                                    body_start: j,
                                    body_end: end,
                                });
                                break;
                            }
                            ";" => break,
                            _ => j += 1,
                        }
                    }
                    i += 2;
                    continue;
                }
            }
        }
        i += 1;
    }
    fns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_not_code() {
        let f = LexedFile::lex(
            "x.rs",
            "// \"not a string\"\nlet s = \"has // no comment\"; /* fn fake() {} */\n",
        );
        assert!(f
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Str && t.text == "has // no comment"));
        assert!(f.functions.is_empty());
    }

    #[test]
    fn raw_strings_and_escapes_unescape() {
        let f = LexedFile::lex(
            "x.rs",
            r##"let a = r#"raw "quoted" body"#; let b = "a\"b";"##,
        );
        let strs: Vec<&str> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, vec![r#"raw "quoted" body"#, r#"a"b"#]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = LexedFile::lex("x.rs", "fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(f
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "a"));
        assert!(f
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Char && t.text == "x"));
    }

    #[test]
    fn waiver_parsing_trailing_and_standalone() {
        let src = "\
let x = 1; // sf-lint: allow(relaxed-atomic, counter only)
// sf-lint: allow(lock-order, ascending index order)
let y = 2;
";
        let f = LexedFile::lex("x.rs", src);
        assert_eq!(f.waivers.len(), 2);
        assert!(f.waived("relaxed-atomic", 1));
        assert!(!f.waived("relaxed-atomic", 3));
        assert!(f.waived("lock-order", 3));
        assert!(!f.waived("lock-order", 1));
    }

    #[test]
    fn test_regions_cover_cfg_test_mods() {
        let src = "\
fn prod() { work(); }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { check(); }
}
fn prod2() {}
";
        let f = LexedFile::lex("x.rs", src);
        assert!(!f.in_test_region(1));
        assert!(f.in_test_region(2));
        assert!(f.in_test_region(5));
        assert!(f.in_test_region(6));
        assert!(!f.in_test_region(7));
    }

    #[test]
    fn functions_have_body_ranges() {
        let f = LexedFile::lex("x.rs", "fn a() { b(); }\nfn sig_only();\nfn c() { d(); }");
        let names: Vec<&str> = f.functions.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["a", "c"]);
    }
}
