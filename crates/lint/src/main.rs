//! `sf-lint` CLI: lint the workspace, honoring waivers and the baseline.
//!
//! ```text
//! cargo run -p sf-lint                  # human diagnostics
//! cargo run -p sf-lint -- --json        # machine-readable report
//! cargo run -p sf-lint -- --write-baseline   # regenerate lint.baseline
//! ```
//!
//! Exit status: 0 when every finding is waived or baselined, 1 when any
//! finding gates, 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut write_baseline = false;
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--write-baseline" => write_baseline = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return usage("--baseline needs a path"),
            },
            "--help" | "-h" => {
                println!("sf-lint [--json] [--root DIR] [--baseline FILE] [--write-baseline]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    // Default root: the workspace the binary was built from (works under
    // `cargo run -p sf-lint` from anywhere inside the repo), falling back
    // to the current directory for a relocated binary.
    let root = root.unwrap_or_else(|| {
        std::env::var_os("CARGO_MANIFEST_DIR")
            .map(|d| PathBuf::from(d).join("../.."))
            .filter(|p| p.join("Cargo.toml").is_file())
            .unwrap_or_else(|| PathBuf::from("."))
    });
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint.baseline"));

    let ws = match sf_lint::Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!(
                "sf-lint: failed to load workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };
    let mut findings = sf_lint::run_rules(&ws);

    if write_baseline {
        let text = sf_lint::baseline::write(&findings);
        if let Err(e) = std::fs::write(&baseline_path, text) {
            eprintln!("sf-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "sf-lint: wrote {} entries to {}",
            findings.iter().filter(|f| !f.waived).count(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let entries = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match sf_lint::baseline::parse(&text) {
            Ok(entries) => entries,
            Err(e) => {
                eprintln!("sf-lint: {e}");
                return ExitCode::from(2);
            }
        },
        Err(_) => Vec::new(), // no baseline file: everything gates
    };
    let stale = sf_lint::baseline::apply(&mut findings, &entries);

    if json {
        print!("{}", sf_lint::render_json(&findings, &stale));
    } else {
        print!("{}", sf_lint::render_human(&findings, &stale));
    }

    let gating = findings
        .iter()
        .filter(|f| !f.waived && !f.baselined)
        .count();
    if gating > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("sf-lint: {msg}");
    eprintln!("usage: sf-lint [--json] [--root DIR] [--baseline FILE] [--write-baseline]");
    ExitCode::from(2)
}
