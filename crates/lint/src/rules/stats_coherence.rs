//! **SF-STATS-COHERENCE** — stats fields and `SF_*` env knobs must not
//! drift from the `SF_JSON` emission and the EXPERIMENTS.md tables.
//!
//! Three checks, all cross-referencing code against docs:
//!
//! 1. every field declared in a `define_stats!` / `define_wal_stats!`
//!    invocation must appear in some `SF_JSON` emission string as
//!    `"field":` (WAL fields under their exported `wal_` prefix);
//! 2. every such field must have a backticked row in an EXPERIMENTS.md
//!    table;
//! 3. every `SF_*` env var the code reads (any exact `"SF_…"` string
//!    literal outside test code — all reads go through `std::env::var`
//!    with a literal name, directly or via a helper) must have a
//!    backticked row in an EXPERIMENTS.md table, and every `SF_*` var
//!    named in a table row must still be read somewhere — drift in either
//!    direction is a finding.
//!
//! Docs-side findings (stale rows) anchor at EXPERIMENTS.md and can only
//! be baselined, not waived — markdown has no `sf-lint:` comments.

use crate::lexer::{balanced_end, TokenKind};
use crate::{Finding, Workspace};
use std::collections::BTreeMap;

const CODE: &str = "SF-STATS-COHERENCE";
const WAIVER_RULE: &str = "stats-coherence";

const STAT_KINDS: &[&str] = &["counter", "max", "gauge"];

#[derive(Debug)]
struct DeclaredField {
    /// Name as emitted in the JSON line (`wal_` prefix already applied).
    emitted: String,
    path: String,
    line: usize,
}

pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();

    // --- collect: declared stats fields -------------------------------
    let mut declared: Vec<DeclaredField> = Vec::new();
    for file in &ws.files {
        let tokens = &file.tokens;
        for i in 0..tokens.len() {
            let is_stats = tokens[i].text == "define_stats";
            let is_wal = tokens[i].text == "define_wal_stats";
            if !(is_stats || is_wal)
                || tokens[i].kind != TokenKind::Ident
                || tokens.get(i + 1).map(|t| t.text.as_str()) != Some("!")
            {
                continue;
            }
            // Invocation body: the balanced {...} / (...) after the bang.
            let Some(open) = tokens
                .get(i + 2)
                .filter(|t| t.text == "{" || t.text == "(")
                .map(|_| i + 2)
            else {
                continue;
            };
            let end = balanced_end(tokens, open);
            let body = &tokens[open + 1..end.saturating_sub(1)];
            for w in body.windows(3) {
                if STAT_KINDS.contains(&w[0].text.as_str())
                    && w[0].kind == TokenKind::Ident
                    && w[1].kind == TokenKind::Ident
                    && w[2].text == ":"
                {
                    declared.push(DeclaredField {
                        emitted: if is_wal {
                            format!("wal_{}", w[1].text)
                        } else {
                            w[1].text.clone()
                        },
                        path: file.path.clone(),
                        line: w[1].line,
                    });
                }
            }
        }
    }

    // --- collect: everything the emission strings and docs tables say ---
    let mut all_strings = String::new();
    for file in &ws.files {
        for t in &file.tokens {
            if t.kind == TokenKind::Str {
                all_strings.push_str(&t.text);
                all_strings.push('\n');
            }
        }
    }
    // Backticked names in doc table rows: name -> first (docfile, line).
    let mut doc_rows: BTreeMap<String, (String, usize)> = BTreeMap::new();
    for (doc_path, text) in &ws.docs {
        for (n, line) in text.lines().enumerate() {
            if !line.trim_start().starts_with('|') {
                continue;
            }
            for name in backticked(line) {
                doc_rows
                    .entry(name)
                    .or_insert_with(|| (doc_path.clone(), n + 1));
            }
        }
    }

    // --- check 1 & 2: declared fields vs emission and docs -------------
    for f in &declared {
        let emitted_pat = format!("\"{}\":", f.emitted);
        if !all_strings.contains(&emitted_pat) {
            findings.push(finding_at(
                f,
                ws,
                format!(
                    "stats field `{}` is declared but missing from the SF_JSON emission \
                     (no string literal contains `{emitted_pat}`)",
                    f.emitted
                ),
            ));
        }
        if !doc_rows.contains_key(&f.emitted) {
            findings.push(finding_at(
                f,
                ws,
                format!(
                    "stats field `{}` is declared but has no row in the EXPERIMENTS.md \
                     field table",
                    f.emitted
                ),
            ));
        }
    }

    // --- check 3: env vars, both directions ----------------------------
    let mut reads: BTreeMap<String, (String, usize)> = BTreeMap::new();
    for file in &ws.files {
        for t in &file.tokens {
            if t.kind == TokenKind::Str && is_env_name(&t.text) && !file.in_test_region(t.line) {
                reads
                    .entry(t.text.clone())
                    .or_insert_with(|| (file.path.clone(), t.line));
            }
        }
    }
    for (var, (path, line)) in &reads {
        if !doc_rows.contains_key(var) {
            let file = ws.files.iter().find(|f| &f.path == path);
            findings.push(Finding {
                code: CODE,
                path: path.clone(),
                line: *line,
                anchor: var.clone(),
                message: format!(
                    "env var `{var}` is read here but has no row in the EXPERIMENTS.md \
                     env table"
                ),
                waived: file.is_some_and(|f| f.waived(WAIVER_RULE, *line)),
                baselined: false,
            });
        }
    }
    for (name, (doc_path, line)) in &doc_rows {
        if is_env_name(name) && !reads.contains_key(name) {
            findings.push(Finding {
                code: CODE,
                path: doc_path.clone(),
                line: *line,
                anchor: name.clone(),
                message: format!(
                    "env var `{name}` has a table row in {doc_path} but nothing in the \
                     workspace reads it — stale docs"
                ),
                waived: false,
                baselined: false,
            });
        }
    }

    findings
}

fn finding_at(f: &DeclaredField, ws: &Workspace, message: String) -> Finding {
    let file = ws.files.iter().find(|lf| lf.path == f.path);
    Finding {
        code: CODE,
        path: f.path.clone(),
        line: f.line,
        anchor: f.emitted.clone(),
        message,
        waived: file.is_some_and(|lf| lf.waived(WAIVER_RULE, f.line)),
        baselined: false,
    }
}

/// `SF_` followed by at least one uppercase/digit/underscore char, nothing
/// else — the exact-literal shape of an env-var name.
fn is_env_name(s: &str) -> bool {
    s.len() > 3
        && s.starts_with("SF_")
        && s[3..]
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

/// All `` `name` `` spans in a line.
fn backticked(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(start) = rest.find('`') {
        let after = &rest[start + 1..];
        match after.find('`') {
            Some(end) => {
                let name = &after[..end];
                if !name.is_empty() && !name.contains(char::is_whitespace) {
                    out.push(name.to_string());
                }
                rest = &after[end + 1..];
            }
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::Workspace;

    const STATS_SRC: &str = r#"
define_stats! {
    counter commits: "committed transactions",
    counter aborts: "aborted attempts",
    max max_read_set: "largest read set",
}
"#;

    #[test]
    fn field_missing_from_emission_and_docs_fires_twice() {
        let ws = Workspace::from_sources(
            &[
                ("crates/stm/src/stats.rs", STATS_SRC),
                (
                    "crates/bench/src/lib.rs",
                    r#"fn j() { format!("\"commits\":{},\"max_read_set\":{}", a, b); }"#,
                ),
            ],
            &[(
                "EXPERIMENTS.md",
                "| field | meaning |\n|---|---|\n| `commits` | x |\n| `max_read_set` | y |\n",
            )],
        );
        let fs = super::run(&ws);
        let about_aborts: Vec<_> = fs.iter().filter(|f| f.anchor == "aborts").collect();
        assert_eq!(about_aborts.len(), 2, "{fs:?}");
        assert!(fs.iter().all(|f| f.anchor == "aborts"));
    }

    #[test]
    fn wal_fields_use_their_exported_prefix() {
        let ws = Workspace::from_sources(
            &[
                (
                    "crates/persist/src/stats.rs",
                    r#"define_wal_stats! { counter records: "records appended", }"#,
                ),
                (
                    "crates/bench/src/lib.rs",
                    r#"fn j() { format!("\"wal_records\":{}", n); }"#,
                ),
            ],
            &[("EXPERIMENTS.md", "| `wal_records` | appended |\n")],
        );
        assert!(super::run(&ws).is_empty());
    }

    #[test]
    fn env_var_read_without_doc_row_fires() {
        let ws = Workspace::from_sources(
            &[(
                "crates/bench/src/lib.rs",
                r#"fn f() { std::env::var("SF_NEW_KNOB").ok(); }"#,
            )],
            &[("EXPERIMENTS.md", "| `SF_THREADS` | n |\n")],
        );
        let fs = super::run(&ws);
        // SF_NEW_KNOB undocumented + SF_THREADS stale.
        assert_eq!(fs.len(), 2, "{fs:?}");
        assert!(fs
            .iter()
            .any(|f| f.anchor == "SF_NEW_KNOB" && f.path.ends_with("lib.rs")));
        assert!(fs
            .iter()
            .any(|f| f.anchor == "SF_THREADS" && f.path == "EXPERIMENTS.md"));
    }

    #[test]
    fn documented_and_read_is_clean() {
        let ws = Workspace::from_sources(
            &[(
                "crates/bench/src/lib.rs",
                r#"fn f() { std::env::var("SF_THREADS").ok(); }"#,
            )],
            &[("EXPERIMENTS.md", "| `SF_THREADS` | worker count |\n")],
        );
        assert!(super::run(&ws).is_empty());
    }

    #[test]
    fn prose_mention_is_not_a_table_row() {
        let ws = Workspace::from_sources(
            &[(
                "crates/bench/src/lib.rs",
                r#"fn f() { std::env::var("SF_THREADS").ok(); }"#,
            )],
            &[("EXPERIMENTS.md", "Set `SF_THREADS` to control workers.\n")],
        );
        let fs = super::run(&ws);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].anchor, "SF_THREADS");
    }

    #[test]
    fn test_region_env_reads_are_exempt() {
        let ws = Workspace::from_sources(
            &[(
                "crates/bench/src/lib.rs",
                "#[cfg(test)]\nmod tests {\n fn t() { std::env::var(\"SF_TEST_ONLY\").ok(); }\n}",
            )],
            &[("EXPERIMENTS.md", "")],
        );
        assert!(super::run(&ws).is_empty());
    }
}
