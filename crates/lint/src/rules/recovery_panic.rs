//! **SF-RECOVERY-PANIC** — the crash-recovery read path must not panic.
//!
//! Recovery parses bytes that survived a crash: torn frames, truncated
//! checkpoints, bit flips. Every byte is attacker-controlled as far as the
//! parser is concerned, so `unwrap()`, `expect()`, and panicking slice
//! indexing are bugs — corrupt input must surface as `io::Error`, which is
//! what the bit-flip sweep claims the code does. The rule covers the
//! recovery/replay source files and flags, outside test code:
//!
//! * `.unwrap()` / `.expect(...)` calls — except the poison-recovery idiom
//!   `unwrap_or_else(PoisonError::into_inner)` (different method name, not
//!   matched) and except `.unwrap()` on values proven infallible, which
//!   should be waived with a reason;
//! * slice indexing with a literal or range index (`payload[0..8]`,
//!   `bytes[4]`) — loop-variable indexing is bounds-derived and exempt.
//!
//! Serialization functions ([`WRITE_PATH_FNS`]) are exempt: they index
//! fixed-size buffers they just built, and no disk byte reaches them.
//! Indexing that a lexical linter cannot prove safe but a `.get(..)?`
//! guard does (the `decode`/`read_frame` idiom) carries an inline waiver
//! naming the guard.

use crate::lexer::{balanced_end, TokenKind};
use crate::rules::is_method_call;
use crate::{Finding, Workspace};

const CODE: &str = "SF-RECOVERY-PANIC";
const WAIVER_RULE: &str = "recovery-panic";

/// The crash-recovery read path: log replay, frame decode, checkpoint parse.
const RECOVERY_FILES: &[&str] = &[
    "crates/persist/src/recovery.rs",
    "crates/persist/src/record.rs",
    "crates/persist/src/log.rs",
];

/// Serialization (write-path) functions inside the recovery files: they
/// index fixed-size local buffers they just allocated, and corrupt disk
/// bytes never reach them.
const WRITE_PATH_FNS: &[&str] = &["encode_into", "write_frame"];

pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &ws.files {
        if crate::rules::analysis_internal(&file.path) {
            continue;
        }
        if !RECOVERY_FILES.contains(&file.path.as_str()) {
            continue;
        }
        let tokens = &file.tokens;
        let write_path: Vec<(usize, usize)> = file
            .functions
            .iter()
            .filter(|f| WRITE_PATH_FNS.contains(&f.name.as_str()))
            .map(|f| (f.body_start, f.body_end))
            .collect();
        for i in 0..tokens.len() {
            let line = tokens[i].line;
            if file.in_test_region(line) {
                continue;
            }
            if write_path.iter().any(|&(a, b)| a <= i && i < b) {
                continue;
            }
            for m in ["unwrap", "expect"] {
                if is_method_call(tokens, i, m) {
                    findings.push(Finding {
                        code: CODE,
                        path: file.path.clone(),
                        line,
                        anchor: m.to_string(),
                        message: format!(
                            "`.{m}()` in the crash-recovery read path — corrupt log bytes \
                             reach this code, so parse failures must return `io::Error`, \
                             not panic"
                        ),
                        waived: file.waived(WAIVER_RULE, line),
                        baselined: false,
                    });
                }
            }
            // Slice indexing: `expr [ literal-or-range ]` where expr ends in
            // an identifier or closing bracket. Declaration forms (`let x:
            // [u8; 4]`, array literals after `=`/`(`/`,`) don't match the
            // preceding-token test.
            if tokens[i].text == "["
                && i > 0
                && (tokens[i - 1].kind == TokenKind::Ident
                    || tokens[i - 1].text == "]"
                    || tokens[i - 1].text == ")")
                && tokens[i - 1].text != "return"
            {
                let end = balanced_end(tokens, i);
                let inner = &tokens[i + 1..end.saturating_sub(1)];
                if inner.is_empty() {
                    continue;
                }
                let has_range = inner
                    .windows(2)
                    .any(|w| w[0].text == "." && w[1].text == ".");
                let literal_index = inner.len() == 1 && inner[0].kind == TokenKind::Number;
                let literal_start = inner.first().is_some_and(|t| t.kind == TokenKind::Number);
                if has_range || literal_index || literal_start {
                    let anchor = format!(
                        "index:{}",
                        tokens[i - 1].text.chars().take(24).collect::<String>()
                    );
                    findings.push(Finding {
                        code: CODE,
                        path: file.path.clone(),
                        line,
                        anchor,
                        message: format!(
                            "panicking slice index `{}[{}]` in the crash-recovery read path — \
                             use `.get(..)` and surface truncation as `io::Error`",
                            tokens[i - 1].text,
                            inner
                                .iter()
                                .map(|t| t.text.as_str())
                                .collect::<Vec<_>>()
                                .join("")
                        ),
                        waived: file.waived(WAIVER_RULE, line),
                        baselined: false,
                    });
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use crate::Workspace;

    fn findings_for(src: &str) -> Vec<crate::Finding> {
        let ws = Workspace::from_sources(&[("crates/persist/src/recovery.rs", src)], &[]);
        super::run(&ws)
    }

    #[test]
    fn unwrap_and_literal_range_index_fire() {
        let fs = findings_for(
            "fn parse(payload: &[u8]) -> u64 {\n\
             u64::from_le_bytes(payload[0..8].try_into().unwrap())\n}",
        );
        let anchors: Vec<&str> = fs.iter().map(|f| f.anchor.as_str()).collect();
        assert!(anchors.contains(&"unwrap"), "{fs:?}");
        assert!(anchors.iter().any(|a| a.starts_with("index:")), "{fs:?}");
    }

    #[test]
    fn loop_variable_index_is_exempt() {
        let fs = findings_for("fn f(v: &[u8]) { for i in 0..v.len() { use_(v[i]); } }");
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let fs =
            findings_for("fn f(&self) { self.mu.lock().unwrap_or_else(PoisonError::into_inner); }");
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn test_module_is_skipped() {
        let fs = findings_for(
            "fn clean() -> Option<u8> { None }\n\
             #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { parse(&b).unwrap(); }\n}",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn write_path_functions_are_exempt() {
        let fs = findings_for(
            "fn encode_into(&self, out: &mut Vec<u8>) {\n\
             let mut payload = [0u8; 25];\n\
             payload[0..8].copy_from_slice(&self.version.to_le_bytes());\n}\n\
             fn decode(payload: &[u8]) { let x = payload[0..8]; }",
        );
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].line, 5);
    }

    #[test]
    fn other_files_are_out_of_scope() {
        let ws =
            Workspace::from_sources(&[("crates/core/src/map.rs", "fn f() { x.unwrap(); }")], &[]);
        assert!(super::run(&ws).is_empty());
    }

    #[test]
    fn waiver_marks_finding() {
        let fs = findings_for(
            "fn f(h: JoinHandle<()>) {\n\
             // sf-lint: allow(recovery-panic, join error only on writer panic, not corrupt bytes)\n\
             h.join().unwrap();\n}",
        );
        assert_eq!(fs.len(), 1);
        assert!(fs[0].waived);
    }
}
