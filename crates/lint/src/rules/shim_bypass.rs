//! **SF-SHIM-BYPASS** — blocking-sync primitives come from the
//! `parking_lot` shim, not `std::sync`, outside the shim itself.
//!
//! PR 10's dynamic analysis (`sf-check`) sees lock operations only through
//! the shim's instrumentation hooks: a `std::sync::Mutex`/`RwLock`/
//! `Condvar` used directly is invisible to the race detector's
//! happens-before edges and to the lock-order checker, silently punching a
//! hole in both. This rule flags every `std::sync::{Mutex, RwLock,
//! Condvar}` mention — path-qualified uses and `use std::sync::{...}`
//! brace imports alike — outside `crates/shims`. The escape hatch is the
//! usual inline waiver, `// sf-lint: allow(shim-bypass, <reason>)`, for
//! the few places that must not recurse into instrumented locks (the
//! detector's own support structures in `sf-obs`).

use crate::lexer::TokenKind;
use crate::rules::is_path_seg;
use crate::{Finding, Workspace};

const CODE: &str = "SF-SHIM-BYPASS";
const WAIVER_RULE: &str = "shim-bypass";

/// The blocking primitives the shim wraps. `Arc`, `Barrier`, `OnceLock`,
/// atomics and channels are untracked by sf-check and stay fair game.
const BANNED: &[&str] = &["Mutex", "RwLock", "Condvar"];

pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &ws.files {
        if crate::rules::analysis_internal(&file.path) {
            continue;
        }
        let tokens = &file.tokens;
        for i in 0..tokens.len() {
            // `std :: sync :: <next>` (the lexer emits `:` twice per `::`).
            if !is_path_seg(tokens, i, "std", "sync") {
                continue;
            }
            if tokens.get(i + 4).is_none_or(|t| t.text != ":")
                || tokens.get(i + 5).is_none_or(|t| t.text != ":")
            {
                continue;
            }
            let Some(next) = tokens.get(i + 6) else {
                continue;
            };
            let banned = |s: &str| BANNED.iter().find(|b| **b == s).copied();
            let mut hits: Vec<(&'static str, usize)> = Vec::new();
            if next.text == "{" {
                // `use std::sync::{Arc, Mutex, ...}` — walk the brace
                // group (including nested groups) for banned idents.
                let mut depth = 0usize;
                for t in &tokens[i + 6..] {
                    match t.text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        name if t.kind == TokenKind::Ident => {
                            if let Some(b) = banned(name) {
                                hits.push((b, t.line));
                            }
                        }
                        _ => {}
                    }
                }
            } else if next.kind == TokenKind::Ident {
                if let Some(b) = banned(&next.text) {
                    hits.push((b, next.line));
                }
            }
            for (name, line) in hits {
                if file.in_test_region(line) {
                    continue;
                }
                let waived = file.waived(WAIVER_RULE, line);
                findings.push(Finding {
                    code: CODE,
                    path: file.path.clone(),
                    line,
                    anchor: format!("std::sync::{name}"),
                    message: format!(
                        "`std::sync::{name}` bypasses the `parking_lot` shim — sf-check's \
                         race and lock-order detectors only see shim locks, so this lock is \
                         invisible to them; use `parking_lot::{name}` (`Mutex::named` for a \
                         lock-order class), or waive with \
                         `// sf-lint: allow(shim-bypass, <reason>)` if this lock must not \
                         recurse into the instrumentation"
                    ),
                    waived,
                    baselined: false,
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use crate::Workspace;

    #[test]
    fn qualified_mutex_fires() {
        let ws = Workspace::from_sources(
            &[(
                "crates/core/src/x.rs",
                "struct S { m: std::sync::Mutex<u32> }",
            )],
            &[],
        );
        let fs = super::run(&ws);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].anchor, "std::sync::Mutex");
        assert!(!fs[0].waived);
    }

    #[test]
    fn brace_import_fires_per_banned_ident() {
        let ws = Workspace::from_sources(
            &[(
                "crates/core/src/x.rs",
                "use std::sync::{Arc, Condvar, Mutex, OnceLock};",
            )],
            &[],
        );
        let fs = super::run(&ws);
        assert_eq!(fs.len(), 2, "{fs:?}");
    }

    #[test]
    fn plain_arc_and_atomics_are_clean() {
        let ws = Workspace::from_sources(
            &[(
                "crates/core/src/x.rs",
                "use std::sync::Arc;\nuse std::sync::atomic::{AtomicU64, Ordering};\nuse std::sync::{Barrier, OnceLock};",
            )],
            &[],
        );
        assert!(super::run(&ws).is_empty());
    }

    #[test]
    fn waiver_marks_the_finding() {
        let ws = Workspace::from_sources(
            &[(
                "crates/obs/src/registry.rs",
                "// sf-lint: allow(shim-bypass, the detector itself logs through sf-obs; an instrumented lock here would recurse)\nuse std::sync::Mutex;",
            )],
            &[],
        );
        let fs = super::run(&ws);
        assert_eq!(fs.len(), 1);
        assert!(fs[0].waived);
    }

    #[test]
    fn test_code_is_exempt() {
        let ws = Workspace::from_sources(
            &[(
                "crates/core/src/x.rs",
                "#[cfg(test)]\nmod tests {\n use std::sync::Mutex;\n}",
            )],
            &[],
        );
        assert!(super::run(&ws).is_empty());
    }

    #[test]
    fn shim_reexport_from_parking_lot_is_clean() {
        let ws = Workspace::from_sources(
            &[(
                "crates/core/src/x.rs",
                "use parking_lot::{Condvar, Mutex};\nfn f() { let m = Mutex::named(0u32, \"x\"); }",
            )],
            &[],
        );
        assert!(super::run(&ws).is_empty());
    }
}
