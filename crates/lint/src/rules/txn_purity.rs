//! **SF-TXN-PURITY** — no side effects inside `atomically*` closures.
//!
//! Transaction bodies re-execute on abort, so any effect that escapes the
//! STM's read/write sets runs an unpredictable number of times: file I/O,
//! blocking lock acquisition, printing, environment access, channel sends.
//! The rule scans the balanced-paren argument region of every
//! `atomically`-prefixed call (`atomically`, `atomically_kind`,
//! `atomically_versioned`, …) for the banned patterns below.
//!
//! Two sanctioned escape hatches are honored:
//! * the argument regions of `on_commit` / `on_commit_versioned` calls are
//!   skipped — those closures run exactly once, post-commit;
//! * the STM crate itself (`crates/stm/`) is allowlisted: the *machinery*
//!   of `atomically` legitimately takes the commit locks and combiner slot.

use crate::lexer::balanced_end;
use crate::rules::{is_call, is_macro, is_method_call, is_path_seg};
use crate::{Finding, Workspace};

const CODE: &str = "SF-TXN-PURITY";
const WAIVER_RULE: &str = "txn-purity";

/// Crates whose sources implement the STM itself.
const ALLOWLIST_PREFIXES: &[&str] = &["crates/stm/"];

/// Methods whose argument region runs once, post-commit — not speculative.
const POST_COMMIT_HOOKS: &[&str] = &["on_commit", "on_commit_versioned"];

const BANNED_METHODS: &[(&str, &str)] = &[
    ("lock", "blocking Mutex/RwLock acquisition"),
    ("try_lock", "Mutex/RwLock acquisition"),
    ("send", "channel send"),
    ("try_send", "channel send"),
    ("recv", "channel receive"),
    ("try_recv", "channel receive"),
    ("write_all", "file write"),
    ("sync_all", "fsync"),
    ("sync_data", "fsync"),
    ("read_to_end", "file read"),
    ("read_to_string", "file read"),
];

const BANNED_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];

/// Path segments that reach the filesystem or the environment.
const BANNED_PATHS: &[(&str, &str, &str)] = &[
    ("std", "env", "std::env access"),
    ("env", "var", "environment read"),
    ("fs", "write", "file write"),
    ("fs", "read", "file read"),
    ("File", "open", "file open"),
    ("File", "create", "file create"),
    ("OpenOptions", "new", "file open"),
];

pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &ws.files {
        if crate::rules::analysis_internal(&file.path) {
            continue;
        }
        if ALLOWLIST_PREFIXES.iter().any(|p| file.path.starts_with(p)) {
            continue;
        }
        let tokens = &file.tokens;
        let mut i = 0;
        while i < tokens.len() {
            let t = &tokens[i];
            if t.text.starts_with("atomically") && is_call(tokens, i) {
                let open = i + 1;
                let end = balanced_end(tokens, open);
                scan_region(file, open + 1, end.saturating_sub(1), &mut findings);
                i = end;
            } else {
                i += 1;
            }
        }
    }
    findings
}

/// Scan `[start, end)` inside an `atomically` argument region, skipping
/// post-commit hook argument regions.
fn scan_region(
    file: &crate::lexer::LexedFile,
    start: usize,
    end: usize,
    findings: &mut Vec<Finding>,
) {
    let tokens = &file.tokens;
    let mut i = start;
    while i < end {
        // Post-commit hook: skip its balanced argument region entirely.
        if POST_COMMIT_HOOKS
            .iter()
            .any(|h| is_method_call(tokens, i, h))
        {
            i = balanced_end(tokens, i + 1);
            continue;
        }
        let line = tokens[i].line;
        if file.in_test_region(line) {
            i += 1;
            continue;
        }
        let mut hit: Option<(String, String)> = None;
        for (m, why) in BANNED_METHODS {
            if is_method_call(tokens, i, m) {
                hit = Some((m.to_string(), why.to_string()));
                break;
            }
        }
        if hit.is_none() {
            for m in BANNED_MACROS {
                if is_macro(tokens, i, m) {
                    hit = Some((m.to_string(), format!("{m}! output")));
                    break;
                }
            }
        }
        if hit.is_none() {
            for (a, b, why) in BANNED_PATHS {
                if is_path_seg(tokens, i, a, b) {
                    hit = Some((format!("{a}::{b}"), why.to_string()));
                    break;
                }
            }
        }
        if let Some((anchor, why)) = hit {
            findings.push(Finding {
                code: CODE,
                path: file.path.clone(),
                line,
                anchor: anchor.clone(),
                message: format!(
                    "{why} (`{anchor}`) inside an `atomically` closure — transaction bodies \
                     re-execute on abort, so this effect can run any number of times; move it \
                     to an `on_commit` hook or outside the transaction"
                ),
                waived: file.waived(WAIVER_RULE, line),
                baselined: false,
            });
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use crate::Workspace;

    fn findings_for(src: &str) -> Vec<crate::Finding> {
        let ws = Workspace::from_sources(&[("crates/core/src/x.rs", src)], &[]);
        super::run(&ws)
    }

    #[test]
    fn println_inside_atomically_fires() {
        let fs = findings_for("fn f(rt: &mut Rt) { rt.atomically(|tx| { println!(\"x\"); }); }");
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].anchor, "println");
        assert!(!fs[0].waived);
    }

    #[test]
    fn lock_inside_atomically_versioned_fires() {
        let fs =
            findings_for("fn f() { rt.atomically_versioned(|tx| { self.mu.lock().unwrap(); }); }");
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].anchor, "lock");
    }

    #[test]
    fn near_miss_outside_closure_is_clean() {
        let fs = findings_for(
            "fn f() { println!(\"before\"); rt.atomically(|tx| tx.read(v)); mu.lock(); }",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn on_commit_region_is_carved_out() {
        let fs = findings_for(
            "fn f() { rt.atomically(|tx| { tx.on_commit_versioned(move |v| { wal.send(v); }); tx.write(x) }); }",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn send_after_hook_still_fires() {
        let fs =
            findings_for("fn f() { rt.atomically(|tx| { tx.on_commit(|| {}); ch.send(1); }); }");
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].anchor, "send");
    }

    #[test]
    fn stm_crate_is_allowlisted() {
        let ws = Workspace::from_sources(
            &[(
                "crates/stm/src/runtime.rs",
                "fn f() { rt.atomically(|tx| { slot.lock(); }); }",
            )],
            &[],
        );
        assert!(super::run(&ws).is_empty());
    }

    #[test]
    fn waiver_suppresses_gating() {
        let fs = findings_for(
            "fn f() { rt.atomically(|tx| {\n// sf-lint: allow(txn-purity, debug print kept deliberately)\nprintln!(\"x\");\n}); }",
        );
        assert_eq!(fs.len(), 1);
        assert!(fs[0].waived);
    }

    #[test]
    fn string_contents_do_not_fire() {
        let fs = findings_for("fn f() { rt.atomically(|tx| tx.note(\"println! .lock()\")); }");
        assert!(fs.is_empty(), "{fs:?}");
    }
}
