//! **SF-LOCK-ORDER** — `.lock()` / `.try_lock()` acquisitions must respect
//! the declared partial order.
//!
//! The workspace's blocking locks form a hierarchy (established in PRs 6-8
//! and until now recorded only in comments):
//!
//! | rank | class | where |
//! |------|-------|-------|
//! | 10 | `move_lock` (per-shard) | `crates/core/sharded.rs` |
//! | 20 | `checkpoint_lock` / `hook_lock` | `crates/persist/durable.rs` |
//! | 30 | combiner `slot` | `crates/stm/txn.rs` |
//! | 40 | WAL `state` | `crates/persist/log.rs` |
//! | 50 | WAL `segment` | `crates/persist/log.rs` |
//!
//! The WAL's registration mutexes (`last_checkpoint_at`,
//! `checkpoint_hook`, `writer_thread`, `writer`) are deliberately *not*
//! classified: each guards a single field, is taken for one statement and
//! never across another acquisition, so ranking them only manufactures
//! false inversions under the no-drop-tracking over-approximation.
//!
//! Acquisitions are extracted lexically per function (receiver identifier
//! of the `.lock()`/`.try_lock()` chain) and the held-set is propagated one
//! call level deep within the workspace by callee name. Guards are assumed
//! held to end-of-function (a deliberate over-approximation — there is no
//! drop tracking; waive the rare early-drop site instead). Receivers not
//! named in the table (leaf utility mutexes) are ignored.
//!
//! Findings: acquiring a class while holding one of **equal or higher**
//! rank (inversion / same-class double acquisition — the latter is how a
//! deadlock between two shards would look). Classes sharing a rank are
//! aliases for the *same* underlying mutex (e.g. `hook_lock` is a clone of
//! `checkpoint_lock`), so equal-rank cross-class acquisition is flagged
//! too; `try_lock` of an already-held class is exempt (non-blocking,
//! deadlock-free by construction).

use crate::lexer::LexedFile;
use crate::rules::{is_method_call, receiver_ident};
use crate::{Finding, Workspace};
use std::collections::HashMap;

const CODE: &str = "SF-LOCK-ORDER";
const WAIVER_RULE: &str = "lock-order";

/// (receiver ident, path-substring filter, rank, class label)
const CLASSES: &[(&str, &str, u32, &str)] = &[
    ("move_lock", "", 10, "move_lock"),
    ("checkpoint_lock", "", 20, "checkpoint_lock"),
    ("hook_lock", "", 20, "checkpoint_lock"),
    ("slot", "crates/stm/", 30, "combiner-slot"),
    ("state", "crates/persist/", 40, "wal-state"),
    ("segment", "crates/persist/", 50, "wal-segment"),
];

fn classify(receiver: &str, path: &str) -> Option<(u32, &'static str)> {
    CLASSES
        .iter()
        .find(|(ident, prefix, _, _)| *ident == receiver && path.contains(prefix))
        .map(|&(_, _, rank, label)| (rank, label))
}

#[derive(Debug, Clone)]
struct Acquisition {
    rank: u32,
    class: &'static str,
    line: usize,
    try_lock: bool,
    /// Set when the acquisition is inherited from a callee one level down.
    via_call: Option<String>,
}

pub fn run(ws: &Workspace) -> Vec<Finding> {
    // Pass 1: direct acquisitions per function, keyed by function name for
    // the one-level call propagation. Name collisions across crates merge
    // conservatively (over-approximation is safe: worst case is a finding
    // to waive, never a missed inversion).
    let mut direct: HashMap<String, Vec<Acquisition>> = HashMap::new();
    for file in &ws.files {
        if crate::rules::analysis_internal(&file.path) {
            continue;
        }
        for span in &file.functions {
            let acqs = direct_acquisitions(file, span.body_start, span.body_end);
            if !acqs.is_empty() {
                direct.entry(span.name.clone()).or_default().extend(acqs);
            }
        }
    }

    // Pass 2: replay each function's body in order; at calls to known
    // acquiring functions, fold in the callee's classes; at direct
    // acquisitions, check against the held set.
    let mut findings = Vec::new();
    for file in &ws.files {
        if crate::rules::analysis_internal(&file.path) {
            continue;
        }
        for span in &file.functions {
            check_function(file, span, &direct, &mut findings);
        }
    }
    findings
}

/// Direct `.lock()`/`.try_lock()` acquisitions of classified receivers in
/// `[start, end)`, in lexical order.
fn direct_acquisitions(file: &LexedFile, start: usize, end: usize) -> Vec<Acquisition> {
    let tokens = &file.tokens;
    let mut out = Vec::new();
    for i in start..end.min(tokens.len()) {
        let try_lock = is_method_call(tokens, i, "try_lock");
        if !try_lock && !is_method_call(tokens, i, "lock") {
            continue;
        }
        let Some(receiver) = receiver_ident(tokens, i) else {
            continue;
        };
        let Some((rank, class)) = classify(receiver, &file.path) else {
            continue;
        };
        out.push(Acquisition {
            rank,
            class,
            line: tokens[i].line,
            try_lock,
            via_call: None,
        });
    }
    out
}

fn check_function(
    file: &LexedFile,
    span: &crate::lexer::FnSpan,
    direct: &HashMap<String, Vec<Acquisition>>,
    findings: &mut Vec<Finding>,
) {
    let tokens = &file.tokens;
    let mut held: Vec<Acquisition> = Vec::new();
    let mut i = span.body_start;
    while i < span.body_end.min(tokens.len()) {
        let line = tokens[i].line;
        if file.in_test_region(line) {
            i += 1;
            continue;
        }
        // Direct acquisition?
        let try_lock = is_method_call(tokens, i, "try_lock");
        if try_lock || is_method_call(tokens, i, "lock") {
            if let Some(receiver) = receiver_ident(tokens, i) {
                if let Some((rank, class)) = classify(receiver, &file.path) {
                    let acq = Acquisition {
                        rank,
                        class,
                        line,
                        try_lock,
                        via_call: None,
                    };
                    report_conflicts(file, span, &held, &acq, findings);
                    held.push(acq);
                }
            }
            i += 1;
            continue;
        }
        // One-level propagation: a plain call `name(...)` or `.name(...)`
        // to a workspace function known to acquire locks. Self-recursion by
        // name is skipped (it would manufacture a same-class double).
        if crate::rules::is_call(tokens, i) && tokens[i].text != span.name {
            if let Some(callee_acqs) = direct.get(&tokens[i].text) {
                for a in callee_acqs {
                    let acq = Acquisition {
                        rank: a.rank,
                        class: a.class,
                        line,
                        try_lock: a.try_lock,
                        via_call: Some(tokens[i].text.clone()),
                    };
                    report_conflicts(file, span, &held, &acq, findings);
                }
                // Callee guards are released on return — not added to held.
            }
        }
        i += 1;
    }
}

fn report_conflicts(
    file: &LexedFile,
    span: &crate::lexer::FnSpan,
    held: &[Acquisition],
    acq: &Acquisition,
    findings: &mut Vec<Finding>,
) {
    for h in held {
        let conflict = h.rank > acq.rank || (h.rank == acq.rank && !acq.try_lock);
        if !conflict {
            continue;
        }
        let how = match &acq.via_call {
            Some(callee) => format!("via call to `{callee}`"),
            None => "directly".to_string(),
        };
        let shape = if h.class == acq.class {
            format!("same-class double acquisition of `{}`", acq.class)
        } else {
            format!(
                "`{}` (rank {}) acquired while holding `{}` (rank {})",
                acq.class, acq.rank, h.class, h.rank
            )
        };
        findings.push(Finding {
            code: CODE,
            path: file.path.clone(),
            line: acq.line,
            anchor: format!("{}:{}", span.name, acq.class),
            message: format!(
                "lock-order violation in `{}`: {shape} {how} (prior acquisition at line {}) — \
                 the declared order is move_lock < checkpoint_lock < combiner-slot < wal-state \
                 < wal-segment",
                span.name, h.line
            ),
            waived: file.waived(WAIVER_RULE, acq.line),
            baselined: false,
        });
    }
}

#[cfg(test)]
mod tests {
    use crate::Workspace;

    fn findings_for(path: &str, src: &str) -> Vec<crate::Finding> {
        let ws = Workspace::from_sources(&[(path, src)], &[]);
        super::run(&ws)
    }

    #[test]
    fn inversion_fires() {
        let fs = findings_for(
            "crates/persist/src/log.rs",
            "fn f(&self) { let a = self.segment.lock(); let b = self.state.lock(); }",
        );
        assert_eq!(fs.len(), 1);
        assert!(fs[0].message.contains("wal-state"));
        assert!(fs[0].message.contains("wal-segment"));
    }

    #[test]
    fn ascending_order_is_clean() {
        let fs = findings_for(
            "crates/persist/src/log.rs",
            "fn f(&self) { let a = self.state.lock(); let b = self.segment.lock(); }",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn same_class_double_fires_and_waiver_covers() {
        let waived = findings_for(
            "crates/core/src/sharded.rs",
            "fn mv(&self) { let lo = a.move_lock.lock();\n\
             // sf-lint: allow(lock-order, ascending shard index order rules out deadlock)\n\
             let hi = b.move_lock.lock(); }",
        );
        assert_eq!(waived.len(), 1);
        assert!(waived[0].waived);
        let unwaived = findings_for(
            "crates/core/src/sharded.rs",
            "fn mv(&self) { let lo = a.move_lock.lock(); let hi = b.move_lock.lock(); }",
        );
        assert_eq!(unwaived.len(), 1);
        assert!(!unwaived[0].waived);
        assert!(unwaived[0].message.contains("same-class"));
    }

    #[test]
    fn one_level_call_propagation_sees_callee_locks() {
        let fs = findings_for(
            "crates/persist/src/log.rs",
            "fn callee(&self) { let g = self.state.lock(); }\n\
             fn caller(&self) { let s = self.segment.lock(); callee(); }",
        );
        assert_eq!(fs.len(), 1);
        assert!(fs[0].message.contains("via call to `callee`"));
    }

    #[test]
    fn unclassified_receivers_are_ignored() {
        let fs = findings_for(
            "crates/obs/src/registry.rs",
            "fn f(&self) { let a = self.sources.lock(); let b = self.next_id.lock(); }",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn try_lock_of_same_rank_is_exempt() {
        let fs = findings_for(
            "crates/persist/src/durable.rs",
            "fn f(&self) { let a = self.checkpoint_lock.lock(); let b = hook_lock.try_lock(); }",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }
}
