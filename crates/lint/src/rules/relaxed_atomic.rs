//! **SF-RELAXED-ATOMIC** — every `Ordering::Relaxed` outside the
//! designed-relaxed modules needs an inline waiver.
//!
//! The workspace's deliberate policy (PRs 7-8): relaxed atomics are legal
//! only for monotone counters and sampled telemetry whose readers tolerate
//! staleness — never for anything a correctness invariant reads. Four
//! modules are designed around that property wholesale and are allowlisted;
//! everywhere else, each `Ordering::Relaxed` must carry
//! `// sf-lint: allow(relaxed-atomic, <why staleness is safe here>)`,
//! turning the design decision into in-place documentation the next editor
//! sees.

use crate::rules::is_path_seg;
use crate::{Finding, Workspace};

const CODE: &str = "SF-RELAXED-ATOMIC";
const WAIVER_RULE: &str = "relaxed-atomic";

/// Modules designed end-to-end around relaxed counters: the stats tables
/// (single-writer-ish monotone counters aggregated at exit), the latency
/// histogram's bucket array, and the flight recorder's lossy rings.
const ALLOWLIST: &[&str] = &[
    "crates/stm/src/stats.rs",
    "crates/persist/src/stats.rs",
    "crates/obs/src/histogram.rs",
    "crates/obs/src/flight.rs",
];

pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &ws.files {
        if crate::rules::analysis_internal(&file.path) {
            continue;
        }
        if ALLOWLIST.contains(&file.path.as_str()) {
            continue;
        }
        let tokens = &file.tokens;
        for i in 0..tokens.len() {
            if !is_path_seg(tokens, i, "Ordering", "Relaxed") {
                continue;
            }
            let line = tokens[i].line;
            if file.in_test_region(line) {
                continue;
            }
            let waived = file.waived(WAIVER_RULE, line);
            findings.push(Finding {
                code: CODE,
                path: file.path.clone(),
                line,
                anchor: "Ordering::Relaxed".to_string(),
                message: "`Ordering::Relaxed` outside the designed-relaxed modules — if this \
                          is a counter whose readers tolerate staleness, document it with \
                          `// sf-lint: allow(relaxed-atomic, <reason>)`; if anything \
                          synchronizes on this value, it needs Acquire/Release"
                    .to_string(),
                waived,
                baselined: false,
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use crate::Workspace;

    #[test]
    fn unwaived_relaxed_fires() {
        let ws = Workspace::from_sources(
            &[(
                "crates/core/src/node.rs",
                "fn bump(&self) { self.hits.fetch_add(1, Ordering::Relaxed); }",
            )],
            &[],
        );
        let fs = super::run(&ws);
        assert_eq!(fs.len(), 1);
        assert!(!fs[0].waived);
    }

    #[test]
    fn waivered_site_is_marked() {
        let ws = Workspace::from_sources(
            &[(
                "crates/core/src/node.rs",
                "fn bump(&self) {\n\
                 // sf-lint: allow(relaxed-atomic, hot counter; maintenance reads are advisory)\n\
                 self.hits.fetch_add(1, Ordering::Relaxed);\n}",
            )],
            &[],
        );
        let fs = super::run(&ws);
        assert_eq!(fs.len(), 1);
        assert!(fs[0].waived);
    }

    #[test]
    fn allowlisted_module_is_clean() {
        let ws = Workspace::from_sources(
            &[(
                "crates/stm/src/stats.rs",
                "fn bump(&self) { self.commits.fetch_add(1, Ordering::Relaxed); }",
            )],
            &[],
        );
        assert!(super::run(&ws).is_empty());
    }

    #[test]
    fn acquire_release_are_not_flagged() {
        let ws = Workspace::from_sources(
            &[(
                "crates/core/src/node.rs",
                "fn f(&self) { self.v.load(Ordering::Acquire); self.v.store(1, Ordering::Release); }",
            )],
            &[],
        );
        assert!(super::run(&ws).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let ws = Workspace::from_sources(
            &[(
                "crates/core/src/node.rs",
                "#[cfg(test)]\nmod tests {\n fn t() { c.load(Ordering::Relaxed); }\n}",
            )],
            &[],
        );
        assert!(super::run(&ws).is_empty());
    }
}
