//! The rule engine: six rules with stable `SF-*` codes.
//!
//! Each rule is a function from a [`crate::Workspace`] to findings. Rules
//! share the small token-pattern helpers below rather than an AST — the
//! lexer's flat stream plus balanced-delimiter scanning covers every
//! pattern the rules need.

pub mod lock_order;
pub mod recovery_panic;
pub mod relaxed_atomic;
pub mod shim_bypass;
pub mod stats_coherence;
pub mod txn_purity;

use crate::lexer::{Token, TokenKind};

/// Files exempt from the *invariant* rules: the dynamic-analysis engine
/// itself (`crates/check`). Its internals deliberately use what the rules
/// forbid — raw `std::sync` locks (they must not recurse into the
/// instrumentation they power) and relaxed counters — while the
/// stats-coherence rule still reads it so `SF_CHECK_*` env vars stay in
/// sync with the EXPERIMENTS.md table.
pub(crate) fn analysis_internal(path: &str) -> bool {
    path.starts_with("crates/check/")
}

/// Is token `i` the `name` of a method call `.name(` ?
pub(crate) fn is_method_call(tokens: &[Token], i: usize, name: &str) -> bool {
    tokens[i].kind == TokenKind::Ident
        && tokens[i].text == name
        && i > 0
        && tokens[i - 1].text == "."
        && tokens.get(i + 1).is_some_and(|t| t.text == "(")
}

/// Is token `i` an identifier immediately followed by `(` (a call or
/// call-like macro-free invocation)?
pub(crate) fn is_call(tokens: &[Token], i: usize) -> bool {
    tokens[i].kind == TokenKind::Ident && tokens.get(i + 1).is_some_and(|t| t.text == "(")
}

/// Is token `i` a macro invocation `name!` ?
pub(crate) fn is_macro(tokens: &[Token], i: usize, name: &str) -> bool {
    tokens[i].kind == TokenKind::Ident
        && tokens[i].text == name
        && tokens.get(i + 1).is_some_and(|t| t.text == "!")
}

/// The receiver identifier of a method call at token `i` (the ident before
/// the `.`): `shard.move_lock.lock()` → `move_lock`;  chains ending in `)`
/// or `]` (computed receivers) return `None`.
pub(crate) fn receiver_ident(tokens: &[Token], call_ident: usize) -> Option<&str> {
    if call_ident < 2 || tokens[call_ident - 1].text != "." {
        return None;
    }
    let prev = &tokens[call_ident - 2];
    (prev.kind == TokenKind::Ident).then_some(prev.text.as_str())
}

/// Does the token pair at `i` spell `a :: b`? (The lexer emits `:` twice.)
pub(crate) fn is_path_seg(tokens: &[Token], i: usize, a: &str, b: &str) -> bool {
    tokens[i].text == a
        && tokens.get(i + 1).is_some_and(|t| t.text == ":")
        && tokens.get(i + 2).is_some_and(|t| t.text == ":")
        && tokens.get(i + 3).is_some_and(|t| t.text == b)
}
