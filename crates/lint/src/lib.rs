//! `sf-lint`: in-repo static analysis for the speculation-friendly tree
//! workspace.
//!
//! The paper's central mechanism is speculation — transaction bodies
//! re-execute on abort — so several of the repo's invariants are invisible
//! to the type system and unreliable to test: no side effects inside
//! `atomically` closures, a fixed cross-shard lock order, "relaxed atomics
//! only for counters", and docs/JSON tables that must track the code. This
//! crate lexes the workspace itself (no `syn` offline) and enforces those
//! invariants as six rules with stable codes:
//!
//! | code | invariant |
//! |------|-----------|
//! | `SF-TXN-PURITY` | no I/O, lock acquisition, printing, env access, or channel sends inside `atomically*` closures |
//! | `SF-LOCK-ORDER` | `.lock()`/`.try_lock()` acquisitions respect the declared partial order |
//! | `SF-RECOVERY-PANIC` | no `unwrap`/`expect`/literal-or-range indexing in the crash-recovery read path |
//! | `SF-RELAXED-ATOMIC` | every `Ordering::Relaxed` outside designed-relaxed modules carries a waiver |
//! | `SF-STATS-COHERENCE` | stats fields and `SF_*` env vars stay in sync with the `SF_JSON` emission and EXPERIMENTS.md tables |
//! | `SF-SHIM-BYPASS` | blocking sync primitives come from the instrumented `parking_lot` shim, never `std::sync` directly |
//!
//! Findings can be waived inline (`// sf-lint: allow(rule, reason)`) or
//! carried in a checked-in `lint.baseline` for burn-down; CI gates at zero
//! non-baselined findings.

pub mod baseline;
pub mod lexer;
pub mod rules;

use lexer::LexedFile;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One diagnostic produced by a rule.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Stable rule code, e.g. `SF-TXN-PURITY`.
    pub code: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    pub line: usize,
    /// Short, line-number-independent token used for baseline matching
    /// (e.g. the offending receiver, macro, field, or env-var name).
    pub anchor: String,
    pub message: String,
    /// Covered by an inline waiver (informational; never gates).
    pub waived: bool,
    /// Matched against `lint.baseline` (doesn't gate, scheduled burn-down).
    pub baselined: bool,
}

/// The whole analysis input: lexed Rust sources plus raw doc files.
pub struct Workspace {
    pub files: Vec<LexedFile>,
    /// (path, contents) of documentation files the coherence rule reads.
    pub docs: Vec<(String, String)>,
}

impl Workspace {
    /// Build a workspace from in-memory sources — the unit-test entry point.
    pub fn from_sources(sources: &[(&str, &str)], docs: &[(&str, &str)]) -> Workspace {
        Workspace {
            files: sources
                .iter()
                .map(|(p, text)| LexedFile::lex(p, text))
                .collect(),
            docs: docs
                .iter()
                .map(|(p, t)| (p.to_string(), t.to_string()))
                .collect(),
        }
    }

    /// Load the real workspace rooted at `root`: every `.rs` file under
    /// `src/`, `examples/` and `crates/*/src` (shim crates excluded — they
    /// are vendored API stand-ins, not ours to lint), plus `EXPERIMENTS.md`.
    /// `tests/` and `benches/` trees are skipped entirely: the rules
    /// enforce production invariants.
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut rust_files = Vec::new();
        for top in ["src", "examples"] {
            collect_rs(&root.join(top), &mut rust_files)?;
        }
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            for entry in std::fs::read_dir(&crates_dir)? {
                let entry = entry?;
                let name = entry.file_name();
                if name == "shims" || name == "lint" {
                    // `lint` excluded from self-analysis: its rule tables
                    // and fixtures quote the very patterns it flags.
                    // `check` stays in (its `SF_CHECK_*` env reads feed the
                    // coherence rule) but the invariant rules skip it — see
                    // `rules::analysis_internal`.
                    continue;
                }
                collect_rs(&entry.path().join("src"), &mut rust_files)?;
            }
        }
        rust_files.sort();
        let files = rust_files
            .iter()
            .map(|p| {
                let text = std::fs::read_to_string(p)?;
                Ok(LexedFile::lex(&rel(root, p), &text))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        let mut docs = Vec::new();
        let exp = root.join("EXPERIMENTS.md");
        if exp.is_file() {
            docs.push(("EXPERIMENTS.md".to_string(), std::fs::read_to_string(&exp)?));
        }
        Ok(Workspace { files, docs })
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "tests" || name == "benches" || name == "target" {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Run every rule over the workspace. Findings come back sorted by
/// (path, line, code); waiver status is already resolved, baseline is not.
pub fn run_rules(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(rules::txn_purity::run(ws));
    findings.extend(rules::lock_order::run(ws));
    findings.extend(rules::recovery_panic::run(ws));
    findings.extend(rules::relaxed_atomic::run(ws));
    findings.extend(rules::shim_bypass::run(ws));
    findings.extend(rules::stats_coherence::run(ws));
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.code).cmp(&(b.path.as_str(), b.line, b.code)));
    findings
}

/// Human-readable report. Waived findings are suppressed (they are the
/// documented escape hatch), baselined ones are listed but marked.
pub fn render_human(findings: &[Finding], stale_baseline: &[baseline::Entry]) -> String {
    let mut out = String::new();
    let mut gating = 0usize;
    let mut baselined = 0usize;
    for f in findings {
        if f.waived {
            continue;
        }
        let tag = if f.baselined {
            baselined += 1;
            " [baselined]"
        } else {
            gating += 1;
            ""
        };
        let _ = writeln!(
            out,
            "{}: {}:{}: {}{}",
            f.code, f.path, f.line, f.message, tag
        );
    }
    for e in stale_baseline {
        let _ = writeln!(
            out,
            "warning: stale baseline entry (no longer fires): {}\t{}\t{}",
            e.code, e.path, e.anchor
        );
    }
    let _ = writeln!(
        out,
        "sf-lint: {} finding(s) gate, {} baselined, {} waived",
        gating,
        baselined,
        findings.iter().filter(|f| f.waived).count()
    );
    out
}

/// Machine-readable report: one JSON object, hand-serialized (std-only).
pub fn render_json(findings: &[Finding], stale_baseline: &[baseline::Entry]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"code\":\"{}\",\"path\":\"{}\",\"line\":{},\"anchor\":\"{}\",\"message\":\"{}\",\"waived\":{},\"baselined\":{}}}",
            esc(f.code),
            esc(&f.path),
            f.line,
            esc(&f.anchor),
            esc(&f.message),
            f.waived,
            f.baselined
        );
    }
    let gating = findings
        .iter()
        .filter(|f| !f.waived && !f.baselined)
        .count();
    let _ = write!(
        out,
        "],\"stale_baseline\":{},\"gating\":{},\"baselined\":{},\"waived\":{}}}",
        stale_baseline.len(),
        gating,
        findings.iter().filter(|f| f.baselined && !f.waived).count(),
        findings.iter().filter(|f| f.waived).count()
    );
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_escapes_and_counts() {
        let findings = vec![Finding {
            code: "SF-TXN-PURITY",
            path: "a/b.rs".into(),
            line: 3,
            anchor: "println".into(),
            message: "a \"quoted\" message".into(),
            waived: false,
            baselined: false,
        }];
        let json = render_json(&findings, &[]);
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"gating\":1"));
    }
}
