//! The `lint.baseline` burn-down file.
//!
//! Each line is `CODE<TAB>path<TAB>anchor` — deliberately line-number-free
//! so unrelated edits don't invalidate entries. Matching is multiset:
//! `n` identical entries absorb at most `n` identical findings. Entries
//! that no longer fire are reported as stale warnings (prune them);
//! findings with no entry gate the build.

use crate::Finding;

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub code: String,
    pub path: String,
    pub anchor: String,
}

/// Parse baseline text. Blank lines and `#` comments are skipped; a line
/// with fewer than three tab-separated fields is an error.
pub fn parse(text: &str) -> Result<Vec<Entry>, String> {
    let mut entries = Vec::new();
    for (n, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        match (parts.next(), parts.next(), parts.next()) {
            (Some(code), Some(path), Some(anchor)) if !code.is_empty() && !path.is_empty() => {
                entries.push(Entry {
                    code: code.to_string(),
                    path: path.to_string(),
                    anchor: anchor.to_string(),
                });
            }
            _ => {
                return Err(format!(
                    "lint.baseline:{}: expected CODE<TAB>path<TAB>anchor, got {:?}",
                    n + 1,
                    line
                ))
            }
        }
    }
    Ok(entries)
}

/// Mark findings covered by the baseline (multiset semantics) and return
/// the stale entries that matched nothing. Waived findings never consume
/// baseline entries.
pub fn apply(findings: &mut [Finding], entries: &[Entry]) -> Vec<Entry> {
    let mut remaining: Vec<Entry> = entries.to_vec();
    for f in findings.iter_mut() {
        if f.waived {
            continue;
        }
        if let Some(pos) = remaining
            .iter()
            .position(|e| e.code == f.code && e.path == f.path && e.anchor == f.anchor)
        {
            f.baselined = true;
            remaining.swap_remove(pos);
        }
    }
    remaining
}

/// Serialize the current non-waived findings as a fresh baseline.
pub fn write(findings: &[Finding]) -> String {
    let mut out = String::from(
        "# sf-lint baseline: CODE<TAB>path<TAB>anchor, one finding per line.\n\
         # Entries are debt scheduled for burn-down — shrink this file, never grow it.\n",
    );
    let mut rows: Vec<String> = findings
        .iter()
        .filter(|f| !f.waived)
        .map(|f| format!("{}\t{}\t{}", f.code, f.path, f.anchor))
        .collect();
    rows.sort();
    for r in rows {
        out.push_str(&r);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(code: &'static str, path: &str, anchor: &str) -> Finding {
        Finding {
            code,
            path: path.into(),
            line: 1,
            anchor: anchor.into(),
            message: String::new(),
            waived: false,
            baselined: false,
        }
    }

    #[test]
    fn multiset_matching_consumes_one_entry_per_finding() {
        let entries = parse("SF-X\ta.rs\tfoo\nSF-X\ta.rs\tfoo\n").unwrap();
        let mut fs = vec![
            finding("SF-X", "a.rs", "foo"),
            finding("SF-X", "a.rs", "foo"),
            finding("SF-X", "a.rs", "foo"),
        ];
        let stale = apply(&mut fs, &entries);
        assert!(stale.is_empty());
        assert_eq!(fs.iter().filter(|f| f.baselined).count(), 2);
        assert_eq!(fs.iter().filter(|f| !f.baselined).count(), 1);
    }

    #[test]
    fn stale_entries_surface() {
        let entries = parse("# comment\nSF-Y\tb.rs\tgone\n").unwrap();
        let mut fs = vec![finding("SF-X", "a.rs", "foo")];
        let stale = apply(&mut fs, &entries);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].anchor, "gone");
        assert!(!fs[0].baselined);
    }

    #[test]
    fn malformed_lines_error() {
        assert!(parse("SF-X only-two-fields\n").is_err());
    }

    #[test]
    fn roundtrip_write_parse() {
        let fs = vec![finding("SF-X", "a.rs", "foo")];
        let text = write(&fs);
        let entries = parse(&text).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].path, "a.rs");
    }
}
