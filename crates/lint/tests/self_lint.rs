//! The workspace must lint clean: every rule, run over the real sources,
//! with only `lint.baseline` absorbing findings. A new finding fails
//! `cargo test` the same way it fails the CI gate, so debt cannot land
//! silently between CI pushes.

use std::path::Path;

#[test]
fn workspace_has_no_non_baselined_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    assert!(
        root.join("Cargo.toml").is_file(),
        "workspace root not found at {}",
        root.display()
    );

    let ws = sf_lint::Workspace::load(&root).expect("load workspace sources");
    assert!(
        ws.files.len() > 20,
        "suspiciously few sources ({}) — did source discovery break?",
        ws.files.len()
    );

    let mut findings = sf_lint::run_rules(&ws);
    let baseline_path = root.join("lint.baseline");
    let entries = if baseline_path.is_file() {
        let text = std::fs::read_to_string(&baseline_path).expect("read lint.baseline");
        sf_lint::baseline::parse(&text).expect("parse lint.baseline")
    } else {
        Vec::new()
    };
    let stale = sf_lint::baseline::apply(&mut findings, &entries);

    let gating: Vec<String> = findings
        .iter()
        .filter(|f| !f.waived && !f.baselined)
        .map(|f| format!("{} {}:{} {}", f.code, f.path, f.line, f.message))
        .collect();
    assert!(
        gating.is_empty(),
        "sf-lint found {} non-baselined finding(s) — fix them, waive them \
         inline with a reason, and only as a last resort baseline them:\n{}",
        gating.len(),
        gating.join("\n")
    );

    // The ratchet must tighten: a baseline row that matches nothing is debt
    // already paid — delete the row.
    assert!(
        stale.is_empty(),
        "stale lint.baseline entries (remove them): {stale:?}"
    );
}
