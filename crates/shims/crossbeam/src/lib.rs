//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the one type this workspace uses — [`queue::SegQueue`] — as a
//! mutex-protected `VecDeque`. The real `SegQueue` is lock-free; this shim
//! keeps the same unbounded MPMC FIFO semantics (the arena free list that
//! uses it is far off the hot path, so the mutex is an acceptable cost in an
//! offline build).

#![warn(missing_docs)]

/// Concurrent queues.
pub mod queue {
    use std::collections::VecDeque;
    use std::sync::{Mutex, PoisonError};

    /// Unbounded multi-producer multi-consumer FIFO queue.
    #[derive(Debug)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// Create an empty queue.
        pub fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Push an element to the back of the queue.
        pub fn push(&self, value: T) {
            self.inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(value);
        }

        /// Pop the element at the front of the queue, if any.
        pub fn pop(&self) -> Option<T> {
            self.inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
        }

        /// Number of queued elements at the time of the call.
        pub fn len(&self) -> usize {
            self.inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len()
        }

        /// True when the queue held no element at the time of the call.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::Arc;

        #[test]
        fn fifo_order() {
            let q = SegQueue::new();
            q.push(1);
            q.push(2);
            assert_eq!(q.len(), 2);
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.pop(), Some(2));
            assert_eq!(q.pop(), None);
            assert!(q.is_empty());
        }

        #[test]
        fn concurrent_producers_and_consumers_conserve_elements() {
            let q = Arc::new(SegQueue::new());
            let producers: Vec<_> = (0..4)
                .map(|t| {
                    let q = Arc::clone(&q);
                    std::thread::spawn(move || {
                        for i in 0..1000u64 {
                            q.push(t * 1000 + i);
                        }
                    })
                })
                .collect();
            for p in producers {
                p.join().unwrap();
            }
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let q = Arc::clone(&q);
                    std::thread::spawn(move || {
                        let mut got = 0u64;
                        while q.pop().is_some() {
                            got += 1;
                        }
                        got
                    })
                })
                .collect();
            let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
            assert_eq!(total, 4000);
        }
    }
}
