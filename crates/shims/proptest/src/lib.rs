//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors the
//! slice of proptest's API its tests use: the [`Strategy`] trait with
//! [`Strategy::prop_map`] and [`Strategy::boxed`], `any::<T>()`, integer-range
//! and tuple strategies, [`collection::vec`] / [`collection::btree_set`], the
//! [`prop_oneof!`] union macro, and the [`proptest!`] test macro with
//! `#![proptest_config(...)]` plus [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Differences from the real crate, acceptable for this repository's tests:
//!
//! * **No shrinking.** A failing case reports its seed, case index and the
//!   generated inputs (via `Debug`), but is not minimized.
//! * Case generation is deterministic per test (seeded from the test
//!   function's name), so failures reproduce across runs.

#![warn(missing_docs)]

use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

#[doc(hidden)]
pub use rand;

use rand::rngs::StdRng;
use rand::{Rng, Sample, SampleRange};

/// The generator handed to strategies; a seeded deterministic PRNG.
pub type TestRng = StdRng;

/// Error signalling a failed property inside a [`proptest!`] body.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    /// Human-readable description of the failed assertion.
    pub message: String,
}

impl TestCaseError {
    /// Create a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

/// Result type of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted but unused (kept for source compatibility).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe view of a strategy, used by [`BoxedStrategy`].
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;
    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// Strategy generating any value of `T` (the full sampling domain of the
/// vendored `rand` shim: uniform over all bit patterns for integers).
pub struct Any<T>(PhantomData<T>);

/// `any::<T>()` — the canonical strategy for a primitive type.
pub fn any<T: Sample>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Sample> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

impl<T> Strategy for Range<T>
where
    T: Copy,
    Range<T>: SampleRange<T>,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: Copy,
    RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// A union of equally-weighted strategies (the engine of [`prop_oneof!`]).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build a union from boxed alternatives. Panics when empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let pick = rng.gen_range(0..self.options.len());
        self.options[pick].generate(rng)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::*;

    /// Size specification for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.lo..self.hi)
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, len_range)` — generate vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a target size drawn from
    /// `size`. Gives up growing (returning a smaller set) if the element
    /// domain is too small to reach the target.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `btree_set(element, len_range)` — generate ordered sets of distinct
    /// `element` values.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 20 + 100 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Derive a stable 64-bit seed from a test's name.
#[doc(hidden)]
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a; stability across runs matters, cryptographic strength does not.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Union of strategies: `prop_oneof![s1, s2, ...]` picks one alternative
/// uniformly per generated value.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Assert a condition inside a [`proptest!`] body, failing the case (with
/// generated-input context) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`\n{}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)` both: `{:?}`",
            left
        );
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }` item
/// becomes a `#[test]` that runs `body` over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut rng = <$crate::TestRng as $crate::rand::SeedableRng>::seed_from_u64(
                        seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(case as u64 + 1)),
                    );
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    // Captured before the body runs: the body takes the
                    // generated values and may consume them.
                    let inputs = format!(
                        concat!($("\n  ", stringify!($arg), " = {:?}",)+),
                        $(&$arg),+
                    );
                    let outcome: $crate::TestCaseResult = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} failed (seed {:#x}): {}\ninputs:{}",
                            case + 1,
                            config.cases,
                            seed,
                            e.message,
                            inputs
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn union_picks_every_alternative() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = <crate::TestRng as rand::SeedableRng>::seed_from_u64(9);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(crate::Strategy::generate(&s, &mut rng) - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn vec_lengths_respect_range() {
        let s = crate::collection::vec(any::<u8>(), 3..6);
        let mut rng = <crate::TestRng as rand::SeedableRng>::seed_from_u64(1);
        for _ in 0..100 {
            let v = crate::Strategy::generate(&s, &mut rng);
            assert!((3..6).contains(&v.len()));
        }
    }

    #[test]
    fn btree_set_reaches_target_sizes() {
        let s = crate::collection::btree_set(0u16..4096, 16..200);
        let mut rng = <crate::TestRng as rand::SeedableRng>::seed_from_u64(2);
        for _ in 0..50 {
            let set = crate::Strategy::generate(&s, &mut rng);
            assert!(set.len() >= 16, "set too small: {}", set.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_generates_and_checks(x in 0u64..100, pair in (any::<u8>(), any::<u8>())) {
            prop_assert!(x < 100);
            let (a, b) = pair;
            prop_assert_eq!(a as u16 + b as u16, b as u16 + a as u16);
        }
    }

    proptest! {
        #[test]
        fn macro_with_default_config(v in crate::collection::vec(0u8..10, 1..20)) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]
            #[allow(unused)]
            fn always_fails(x in 0u8..4) {
                prop_assert!(false, "forced failure with x = {}", x);
            }
        }
        always_fails();
    }
}
