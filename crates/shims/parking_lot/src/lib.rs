//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment of this repository has no network access, so the
//! workspace vendors the small slice of `parking_lot` it actually uses:
//! [`Mutex`], [`RwLock`] and [`Condvar`] with non-poisoning guards. The
//! implementation wraps `std::sync` and recovers from poisoning (matching
//! `parking_lot`'s semantics, where a panicking holder does not poison the
//! lock).
//!
//! Guards are this crate's own wrapper types (not re-exported std guards)
//! so that, under the `check` cargo feature, every acquire and release is
//! reported to `sf-check`'s vector-clock race detector and lock-order
//! graph. The release hook fires *before* the underlying lock is dropped
//! and the acquire hook *after* it is taken, so the detector's
//! happens-before edges always bracket the real critical section. Locks
//! can carry a stable class name ([`Mutex::named`] / [`RwLock::named`])
//! used by the lock-order checker; unnamed locks share a default class and
//! still get pairwise (per-instance) inversion checking.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

#[cfg(feature = "check")]
use sf_check::hooks;

#[cfg(not(feature = "check"))]
mod hooks {
    #[inline(always)]
    pub fn lock_acquired(_addr: usize, _class: &'static str) {}
    #[inline(always)]
    pub fn lock_released(_addr: usize) {}
    #[inline(always)]
    pub fn lock_destroyed(_addr: usize) {}
}

const DEFAULT_MUTEX_CLASS: &str = "mutex";
const DEFAULT_RWLOCK_CLASS: &str = "rwlock";

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning `lock()`.
pub struct Mutex<T: ?Sized> {
    class: &'static str,
    inner: sync::Mutex<T>,
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            class: DEFAULT_MUTEX_CLASS,
            inner: sync::Mutex::new(value),
        }
    }

    /// Create a mutex with a stable class name for the sf-check lock-order
    /// graph (e.g. `"wal.state"`, `"move_lock"`). Extension over the real
    /// `parking_lot` API; behaves exactly like [`Mutex::new`] otherwise.
    pub const fn named(value: T, class: &'static str) -> Self {
        Mutex {
            class,
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex and return the protected value.
    pub fn into_inner(self) -> T {
        hooks::lock_destroyed(std::ptr::addr_of!(self.inner) as *const () as usize);
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    fn addr(&self) -> usize {
        std::ptr::addr_of!(self.inner) as *const () as usize
    }

    /// Acquire the lock, blocking until it is available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        hooks::lock_acquired(self.addr(), self.class);
        MutexGuard {
            inner: Some(inner),
            addr: self.addr(),
            class: self.class,
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(guard) => guard,
            Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        hooks::lock_acquired(self.addr(), self.class);
        Some(MutexGuard {
            inner: Some(inner),
            addr: self.addr(),
            class: self.class,
        })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex")
            .field("inner", &&self.inner)
            .finish()
    }
}

/// RAII guard for [`Mutex`]; releases (and reports the release) on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
    addr: usize,
    class: &'static str,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.is_some() {
            // Publish the release edge while still holding the lock, so a
            // competing acquirer can only observe it afterwards.
            hooks::lock_released(self.addr);
            self.inner = None;
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning accessors.
pub struct RwLock<T: ?Sized> {
    class: &'static str,
    inner: sync::RwLock<T>,
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            class: DEFAULT_RWLOCK_CLASS,
            inner: sync::RwLock::new(value),
        }
    }

    /// Like [`RwLock::new`] with a stable lock-order class name.
    pub const fn named(value: T, class: &'static str) -> Self {
        RwLock {
            class,
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock and return the protected value.
    pub fn into_inner(self) -> T {
        hooks::lock_destroyed(std::ptr::addr_of!(self.inner) as *const () as usize);
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    fn addr(&self) -> usize {
        std::ptr::addr_of!(self.inner) as *const () as usize
    }

    /// Acquire a shared read lock. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        hooks::lock_acquired(self.addr(), self.class);
        RwLockReadGuard {
            inner: Some(inner),
            addr: self.addr(),
        }
    }

    /// Acquire an exclusive write lock. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        hooks::lock_acquired(self.addr(), self.class);
        RwLockWriteGuard {
            inner: Some(inner),
            addr: self.addr(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock")
            .field("inner", &&self.inner)
            .finish()
    }
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: Option<sync::RwLockReadGuard<'a, T>>,
    addr: usize,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.is_some() {
            hooks::lock_released(self.addr);
            self.inner = None;
        }
    }
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: Option<sync::RwLockWriteGuard<'a, T>>,
    addr: usize,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.is_some() {
            hooks::lock_released(self.addr);
            self.inner = None;
        }
    }
}

/// Whether a [`Condvar::wait_for`] returned because the timeout elapsed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended by timeout rather than notification.
    pub fn timed_out(self) -> bool {
        self.0
    }
}

/// A condition variable in `parking_lot`'s style: `wait` takes `&mut
/// MutexGuard` and never poisons.
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Block until notified. The mutex is released while waiting (the
    /// race detector sees the release/re-acquire pair) and re-acquired
    /// before returning; spurious wakeups are possible.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken");
        hooks::lock_released(guard.addr);
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        hooks::lock_acquired(guard.addr, guard.class);
        guard.inner = Some(inner);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard taken");
        hooks::lock_released(guard.addr);
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        hooks::lock_acquired(guard.addr, guard.class);
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Block until `condition` returns false (checked under the lock).
    pub fn wait_while<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        mut condition: impl FnMut(&mut T) -> bool,
    ) {
        while condition(&mut **guard) {
            self.wait(guard);
        }
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn lock_survives_a_panicking_holder() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn named_locks_behave_like_plain_ones() {
        let m = Mutex::named(3, "test.named");
        assert_eq!(*m.lock(), 3);
        let l = RwLock::named(4, "test.named_rw");
        assert_eq!(*l.read(), 4);
    }

    #[test]
    fn condvar_handoff() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            *ready = true;
            cv.notify_one();
            drop(ready);
        });
        let (lock, cv) = &*pair;
        let mut ready = lock.lock();
        cv.wait_while(&mut ready, |r| !*r);
        assert!(*ready);
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }
}
