//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment of this repository has no network access, so the
//! workspace vendors the small slice of `parking_lot` it actually uses:
//! [`Mutex`] and [`RwLock`] with non-poisoning guards. The implementation
//! wraps `std::sync` and recovers from poisoning (matching `parking_lot`'s
//! semantics, where a panicking holder does not poison the lock).

#![warn(missing_docs)]

use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex and return the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock and return the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write lock. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn lock_survives_a_panicking_holder() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
