//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this workspace vendors the
//! slice of criterion's API its benches use: [`Criterion::benchmark_group`],
//! `bench_function` / `bench_with_input` with [`Bencher::iter`],
//! [`BenchmarkId`], the group tuning knobs (`measurement_time`,
//! `warm_up_time`, `sample_size`) and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical machinery, each benchmark runs a warm-up
//! phase followed by `sample_size` timed samples and prints the mean, minimum
//! and maximum time per iteration. Good enough to spot order-of-magnitude
//! regressions from the terminal; not a replacement for real criterion runs.

#![warn(missing_docs)]

use std::fmt::Display;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement back-ends (only wall-clock time is provided).
pub mod measurement {
    /// Wall-clock time measurement (the default and only back-end).
    #[derive(Debug, Default, Clone, Copy)]
    pub struct WallTime;
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, printed `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The benchmark runner handed to `criterion_group!` functions.
#[derive(Debug)]
pub struct Criterion {
    default_measurement_time: Duration,
    default_warm_up_time: Duration,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_measurement_time: Duration::from_millis(500),
            default_warm_up_time: Duration::from_millis(100),
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            measurement_time: self.default_measurement_time,
            warm_up_time: self.default_warm_up_time,
            sample_size: self.default_sample_size,
            _criterion: PhantomData,
        }
    }
}

/// A group of benchmarks sharing tuning parameters.
#[derive(Debug)]
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
    _criterion: PhantomData<&'a M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Total measured time budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Warm-up time before measuring.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark with an auxiliary input value.
    pub fn bench_with_input<I, F>(&mut self, id: impl Into<BenchmarkId>, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = self.bencher();
        f(&mut bencher, input);
        self.report(&id.id, &bencher);
    }

    /// Run a benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = self.bencher();
        f(&mut bencher);
        self.report(&id.id, &bencher);
    }

    /// Finish the group (printing is immediate, so this is a no-op hook kept
    /// for API compatibility).
    pub fn finish(self) {}

    fn bencher(&self) -> Bencher {
        Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples: Vec::new(),
        }
    }

    fn report(&self, id: &str, bencher: &Bencher) {
        let samples = &bencher.samples;
        if samples.is_empty() {
            println!("{}/{id:<40} (no samples)", self.name);
            return;
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{}/{id:<40} mean {:>12} min {:>12} max {:>12} ({} samples)",
            self.name,
            format_ns(mean),
            format_ns(min),
            format_ns(max),
            samples.len()
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Runs the measured routine and records per-iteration timings.
#[derive(Debug)]
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Measure `routine`: warm up for the configured time, then take
    /// `sample_size` samples whose total duration approximates the configured
    /// measurement time, recording mean nanoseconds per iteration.
    pub fn iter<R, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> R,
    {
        // Warm-up, also used to calibrate iterations per sample.
        let warm_up_start = Instant::now();
        let mut warm_up_iters: u64 = 0;
        while warm_up_start.elapsed() < self.warm_up_time || warm_up_iters == 0 {
            black_box(routine());
            warm_up_iters += 1;
        }
        let per_iter = warm_up_start.elapsed().as_nanos() as f64 / warm_up_iters as f64;
        let sample_budget_ns = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let iters_per_sample = ((sample_budget_ns / per_iter.max(1.0)) as u64).max(1);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples.push(elapsed / iters_per_sample as f64);
        }
    }
}

/// Collect benchmark functions into one group runner, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce a `main` that runs the given groups, like criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_sample_count() {
        let mut b = Bencher {
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(5),
            sample_size: 4,
            samples: Vec::new(),
        };
        let mut counter = 0u64;
        b.iter(|| {
            counter += 1;
            counter
        });
        assert_eq!(b.samples.len(), 4);
        assert!(b.samples.iter().all(|&s| s > 0.0));
        assert!(counter > 0);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_smoke");
        group.measurement_time(Duration::from_millis(2));
        group.warm_up_time(Duration::from_millis(1));
        group.sample_size(2);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.bench_with_input(BenchmarkId::from_parameter("param"), &"param", |b, _| {
            b.iter(|| ())
        });
        group.finish();
    }

    #[test]
    fn format_ns_scales_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("us"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with("s"));
    }
}
