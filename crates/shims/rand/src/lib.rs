//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors the
//! slice of `rand 0.8`'s API it uses: [`rngs::StdRng`] seeded through
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! [`Rng::gen`], [`Rng::gen_range`] (over `Range` / `RangeInclusive` of the
//! integer types) and [`Rng::gen_bool`].
//!
//! The generator behind `StdRng` is xoshiro256++ seeded via SplitMix64 — not
//! the ChaCha12 of the real crate, but deterministic, fast, and of more than
//! sufficient quality for workload generation. Range sampling uses a simple
//! modulo reduction; its bias is at most `span / 2^64`, irrelevant for the
//! key ranges used here.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator producing 64-bit outputs.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be created from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's raw output.
pub trait Sample: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! sample_int {
    ($($t:ty),*) => {$(
        impl Sample for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Sample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` (uniform over its sampling domain; `[0, 1)`
    /// for floats).
    #[inline]
    fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            StdRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(10..20u64);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(1..=5u64);
            assert!((1..=5).contains(&y));
            let z: usize = rng.gen_range(0..3usize);
            assert!(z < 3);
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        let mut seen_incl = [false; 5];
        for _ in 0..1000 {
            seen_incl[rng.gen_range(1..=5usize) - 1] = true;
        }
        assert!(seen_incl.iter().all(|&s| s));
    }

    #[test]
    fn f64_samples_are_in_unit_interval_and_spread() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n)
            .map(|_| {
                let x: f64 = rng.gen();
                assert!((0.0..1.0).contains(&x));
                x
            })
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn full_width_inclusive_range_does_not_panic() {
        let mut rng = StdRng::seed_from_u64(5);
        let _: u64 = rng.gen_range(0..=u64::MAX);
    }
}
