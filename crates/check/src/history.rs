//! Concurrent-history recording and Wing–Gong/WGL linearizability checking
//! against a `BTreeMap` sequential witness.
//!
//! The driver records an invocation/response timeline per worker thread
//! ([`Recorder`] / [`HistoryHandle`]); after the run the merged history is
//! checked by [`check_history`]: a depth-first search over linearisation
//! orders, restricted at each step to operations whose invocation precedes
//! every uncompleted operation's response (the WGL candidate rule), with
//! memoisation on (linearised-set, witness-state-hash) to keep the search
//! polynomial on the low-contention histories real runs produce.
//!
//! Linearizability is local (Herlihy & Wing): operations on disjoint keys
//! never constrain each other, so before searching the history is split
//! into independent per-key-cluster subhistories (`Move` unions its two
//! keys; a `Scan` observes a whole range and disables the split). This is
//! what keeps long driver histories tractable — one slow operation
//! overlapping thousands of fast ones on *other* keys no longer widens the
//! search window. A hard state budget backstops pathological clusters: the
//! checker reports "inconclusive" instead of pinning a core.
//!
//! Crash histories are supported too ([`check_crash_history`]): operations
//! with no response (in flight at the kill point) may be linearised or
//! dropped, and the final witness state must equal the recovered contents
//! — this is what gives `recover()` drills a linearizability verdict.
//!
//! Witness semantics mirror the production maps exactly:
//! * `insert` returns `true` iff the key was absent (no overwrite);
//! * `delete` returns `true` iff the key was present;
//! * `move(from, to)` with `from == to` degenerates to `contains`; it
//!   returns `false` when the source is absent **or** the destination is
//!   occupied, and moves the value otherwise (`sf_tree::map::tx_move`,
//!   `sf_tree::sharded::move_entry`);
//! * `scan(lo, hi)` returns the entries with keys in `[lo, hi]`, ascending.

use crate::sched::splitmix64;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// One map operation, as invoked.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// `insert(key, value)`.
    Insert(u64, u64),
    /// `delete(key)`.
    Delete(u64),
    /// `contains(key)`.
    Contains(u64),
    /// `move_entry(from, to)`.
    Move(u64, u64),
    /// `range_collect(lo, hi)` (inclusive bounds).
    Scan(u64, u64),
}

/// An operation's observed result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Ret {
    /// Result of insert/delete/contains/move.
    Bool(bool),
    /// Result of a range scan.
    Entries(Vec<(u64, u64)>),
}

/// One completed (or, in crash histories, in-flight) operation with its
/// real-time window.
#[derive(Clone, Debug)]
pub struct Event {
    /// The invoked operation.
    pub op: Op,
    /// Observed result; `None` for operations still in flight at a crash.
    pub ret: Option<Ret>,
    /// Global sequence number drawn at invocation.
    pub invoke: u64,
    /// Global sequence number drawn at response (`u64::MAX` if pending).
    pub response: u64,
    /// Recording thread, for reports.
    pub thread: u32,
}

/// Process-wide history recorder: hands out per-thread [`HistoryHandle`]s
/// and merges their timelines.
pub struct Recorder {
    seq: AtomicU64,
    next_thread: AtomicU64,
    logs: Mutex<Vec<Vec<Event>>>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// A fresh, empty recorder.
    pub fn new() -> Recorder {
        Recorder {
            seq: AtomicU64::new(0),
            next_thread: AtomicU64::new(0),
            logs: Mutex::new(Vec::new()),
        }
    }

    /// Create a handle for one worker thread.
    pub fn handle(self: &Arc<Self>) -> HistoryHandle {
        HistoryHandle {
            recorder: Arc::clone(self),
            thread: self.next_thread.fetch_add(1, Ordering::Relaxed) as u32,
            events: Vec::new(),
        }
    }

    /// Merge all finished handles' timelines, sorted by invocation time.
    pub fn take(&self) -> Vec<Event> {
        let mut logs = self.logs.lock().unwrap_or_else(PoisonError::into_inner);
        let mut all: Vec<Event> = logs.drain(..).flatten().collect();
        all.sort_by_key(|e| e.invoke);
        all
    }
}

/// An operation that has been invoked but not yet completed on a handle.
#[derive(Debug)]
pub struct Pending {
    index: usize,
}

/// Per-thread recording handle. Buffers locally (no synchronisation on the
/// hot path beyond one global sequence fetch per timestamp) and publishes
/// on [`HistoryHandle::finish`] or drop.
pub struct HistoryHandle {
    recorder: Arc<Recorder>,
    thread: u32,
    events: Vec<Event>,
}

impl HistoryHandle {
    /// Record an invocation; pair with [`HistoryHandle::complete`].
    pub fn invoke(&mut self, op: Op) -> Pending {
        let invoke = self.recorder.seq.fetch_add(1, Ordering::SeqCst);
        self.events.push(Event {
            op,
            ret: None,
            invoke,
            response: u64::MAX,
            thread: self.thread,
        });
        Pending {
            index: self.events.len() - 1,
        }
    }

    /// Record the response for a pending invocation.
    pub fn complete(&mut self, pending: Pending, ret: Ret) {
        let response = self.recorder.seq.fetch_add(1, Ordering::SeqCst);
        let ev = &mut self.events[pending.index];
        ev.ret = Some(ret);
        ev.response = response;
    }

    /// Publish this thread's timeline to the recorder.
    pub fn finish(mut self) {
        self.publish();
    }

    fn publish(&mut self) {
        if self.events.is_empty() {
            return;
        }
        let mut logs = self
            .recorder
            .logs
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        logs.push(std::mem::take(&mut self.events));
    }
}

impl Drop for HistoryHandle {
    fn drop(&mut self) {
        self.publish();
    }
}

/// Outcome of a linearizability check.
#[derive(Clone, Debug)]
pub struct Verdict {
    /// True when a valid linearisation exists.
    pub ok: bool,
    /// Number of events checked.
    pub ops: usize,
    /// Search states visited (for tuning/reports).
    pub explored: u64,
    /// Human-readable explanation on failure (empty when ok).
    pub message: String,
}

/// Check a completed history (every event has a response) against the
/// sequential witness seeded with `initial`.
pub fn check_history(initial: &[(u64, u64)], events: &[Event]) -> Verdict {
    check_inner(initial, events, None, SEARCH_BUDGET)
}

/// Check a crash history: events with `ret == None` were in flight at the
/// kill point and may be linearised (with any effect) or dropped; the
/// witness state after linearising everything must equal `recovered`.
pub fn check_crash_history(
    initial: &[(u64, u64)],
    events: &[Event],
    recovered: &[(u64, u64)],
) -> Verdict {
    let observed: BTreeMap<u64, u64> = recovered.iter().copied().collect();
    check_inner(initial, events, Some(&observed), SEARCH_BUDGET)
}

/// [`check_history`] on a dedicated thread with a large stack. The search
/// recurses once per event, so long driver histories (tens of thousands of
/// operations) need more than the default main-thread stack.
pub fn check_history_spawned(initial: Vec<(u64, u64)>, events: Vec<Event>) -> Verdict {
    std::thread::Builder::new()
        .name("sf-check-history".to_string())
        .stack_size(256 << 20)
        .spawn(move || check_history(&initial, &events))
        .expect("spawn history checker")
        .join()
        .expect("history checker panicked")
}

const PENDING: u64 = u64::MAX;

/// Widest completion window (in events past `base`) the memo table will
/// represent: 64 words = 4096 bits. Wider windows skip memoisation —
/// correct but unpruned, which is why the state budget exists.
const MEMO_WORDS: usize = 64;

/// Total search-state budget across all key clusters of one check. Real
/// linearizable driver histories explore well under a million states; a
/// search that needs more than this is contended beyond what a CI verdict
/// is worth, and "inconclusive" beats a wedged job.
const SEARCH_BUDGET: u64 = 20_000_000;

struct Search<'a> {
    events: &'a [Event],
    state: BTreeMap<u64, u64>,
    state_hash: u64,
    /// `done[i]`: event i already linearised (or dropped, for pending ops).
    done: Vec<bool>,
    base: usize,
    /// Monotonic upper bound on the highest index ever marked done.
    /// Never lowered on backtrack (an over-approximation is fine: `done`
    /// stays the ground truth; this only bounds `memo_key`'s scan).
    max_done: usize,
    explored: u64,
    /// States this search may still visit; decremented per `solve` call.
    remaining: u64,
    /// Set when the budget ran out: the `false` result is then
    /// "inconclusive", not "no linearisation exists".
    exhausted: bool,
    memo: HashSet<(usize, Box<[u64]>, u64)>,
    final_state: Option<&'a BTreeMap<u64, u64>>,
}

fn entry_hash(k: u64, v: u64) -> u64 {
    splitmix64(k.wrapping_mul(0x9e3779b97f4a7c15) ^ splitmix64(v ^ 0x2545f4914f6cdd1d))
}

enum Undo {
    None,
    Insert(u64),
    Restore(u64, u64),
    /// Move: remove `to`, restore `from`.
    Move {
        from: u64,
        to: u64,
        value: u64,
    },
}

impl<'a> Search<'a> {
    /// Apply `op` to the witness; returns (result, undo). Pure state
    /// transition — result matching happens in the caller.
    fn apply(&mut self, op: &Op) -> (Ret, Undo) {
        match *op {
            Op::Insert(k, v) => match self.state.entry(k) {
                std::collections::btree_map::Entry::Occupied(_) => (Ret::Bool(false), Undo::None),
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(v);
                    self.state_hash ^= entry_hash(k, v);
                    (Ret::Bool(true), Undo::Insert(k))
                }
            },
            Op::Delete(k) => match self.state.remove(&k) {
                Some(v) => {
                    self.state_hash ^= entry_hash(k, v);
                    (Ret::Bool(true), Undo::Restore(k, v))
                }
                None => (Ret::Bool(false), Undo::None),
            },
            Op::Contains(k) => (Ret::Bool(self.state.contains_key(&k)), Undo::None),
            Op::Move(from, to) => {
                if from == to {
                    return (Ret::Bool(self.state.contains_key(&from)), Undo::None);
                }
                if self.state.contains_key(&to) {
                    return (Ret::Bool(false), Undo::None);
                }
                match self.state.remove(&from) {
                    None => (Ret::Bool(false), Undo::None),
                    Some(value) => {
                        self.state.insert(to, value);
                        self.state_hash ^= entry_hash(from, value) ^ entry_hash(to, value);
                        (Ret::Bool(true), Undo::Move { from, to, value })
                    }
                }
            }
            Op::Scan(lo, hi) => {
                let entries: Vec<(u64, u64)> =
                    self.state.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
                (Ret::Entries(entries), Undo::None)
            }
        }
    }

    fn revert(&mut self, undo: Undo) {
        match undo {
            Undo::None => {}
            Undo::Insert(k) => {
                let v = self.state.remove(&k).expect("undo insert");
                self.state_hash ^= entry_hash(k, v);
            }
            Undo::Restore(k, v) => {
                self.state.insert(k, v);
                self.state_hash ^= entry_hash(k, v);
            }
            Undo::Move { from, to, value } => {
                self.state.remove(&to).expect("undo move");
                self.state.insert(from, value);
                self.state_hash ^= entry_hash(from, value) ^ entry_hash(to, value);
            }
        }
    }

    /// Memo key: first un-linearised index plus a completion bitmask over
    /// the window after it, plus the witness hash. Windows wider than
    /// `MEMO_WORDS * 64` bits skip memoisation (correct, just unpruned).
    ///
    /// The scan stops at `max_done` — a monotonic upper bound on the
    /// highest done index — not at the end of the event vector: done bits
    /// only ever exist inside the (small) concurrency window, and walking
    /// the whole tail here made every `solve` step O(history length),
    /// which turned long driver histories quadratic.
    fn memo_key(&self) -> Option<(usize, Box<[u64]>, u64)> {
        let mut words = 0usize;
        let mut bits = [0u64; MEMO_WORDS];
        if self.max_done >= self.base {
            let hi = self.max_done.min(self.events.len() - 1);
            for i in self.base..=hi {
                if self.done[i] {
                    let off = i - self.base;
                    if off >= MEMO_WORDS * 64 {
                        return None;
                    }
                    bits[off / 64] |= 1u64 << (off % 64);
                    words = words.max(off / 64 + 1);
                }
            }
        }
        Some((self.base, bits[..words].into(), self.state_hash))
    }

    fn solve(&mut self) -> bool {
        if self.remaining == 0 {
            self.exhausted = true;
            return false;
        }
        self.remaining -= 1;
        self.explored += 1;
        while self.base < self.events.len() && self.done[self.base] {
            self.base += 1;
        }
        if self.base == self.events.len() {
            return match self.final_state {
                None => true,
                Some(want) => self.state == *want,
            };
        }
        if let Some(key) = self.memo_key() {
            if !self.memo.insert(key) {
                return false;
            }
        }
        // WGL candidate rule: an op may linearise next iff its invocation
        // precedes every un-linearised op's response. Since events are
        // sorted by invocation, candidates form a prefix bounded by the
        // minimum response among un-linearised ops seen so far.
        let mut min_resp = u64::MAX;
        let mut i = self.base;
        while i < self.events.len() {
            if !self.done[i] {
                let ev = &self.events[i];
                if ev.invoke >= min_resp {
                    break;
                }
                // Try linearising event i here.
                let (got, undo) = self.apply(&ev.op);
                let matches = match &ev.ret {
                    Some(want) => *want == got,
                    None => true, // pending op: any effect acceptable
                };
                if matches {
                    self.done[i] = true;
                    self.max_done = self.max_done.max(i);
                    let saved_base = self.base;
                    if self.solve() {
                        return true;
                    }
                    self.base = saved_base;
                    self.done[i] = false;
                }
                self.revert(undo);
                // A pending op may also never take effect at all. Model
                // "drop" by marking it done without applying it.
                if ev.ret.is_none() {
                    self.done[i] = true;
                    self.max_done = self.max_done.max(i);
                    let saved_base = self.base;
                    if self.solve() {
                        return true;
                    }
                    self.base = saved_base;
                    self.done[i] = false;
                }
                min_resp = min_resp.min(ev.response);
            }
            i += 1;
        }
        false
    }
}

/// Union-find over the keys a history touches, used to split it into
/// independent clusters (linearizability locality).
struct KeyClusters {
    parent: Vec<usize>,
    key_node: HashMap<u64, usize>,
}

impl KeyClusters {
    fn node(&mut self, k: u64) -> usize {
        if let Some(&n) = self.key_node.get(&k) {
            n
        } else {
            let n = self.parent.len();
            self.parent.push(n);
            self.key_node.insert(k, n);
            n
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: u64, b: u64) {
        let (na, nb) = (self.node(a), self.node(b));
        let (ra, rb) = (self.find(na), self.find(nb));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

fn check_inner(
    initial: &[(u64, u64)],
    events: &[Event],
    final_state: Option<&BTreeMap<u64, u64>>,
    budget: u64,
) -> Verdict {
    let mut sorted: Vec<Event> = events.to_vec();
    sorted.sort_by_key(|e| e.invoke);
    if final_state.is_none() {
        if let Some(p) = sorted.iter().find(|e| e.ret.is_none()) {
            return Verdict {
                ok: false,
                ops: sorted.len(),
                explored: 0,
                message: format!(
                    "history has a pending op ({:?} by thread {}) but no crash state to check against",
                    p.op, p.thread
                ),
            };
        }
    }
    let n = sorted.len();

    // Cluster the history by key: single-key ops claim their key, `Move`
    // unions its endpoints, and a `Scan` — which observes a whole range —
    // couples everything, forcing one whole-history search.
    let mut clusters = KeyClusters {
        parent: Vec::new(),
        key_node: HashMap::new(),
    };
    let mut splittable = true;
    for ev in &sorted {
        match ev.op {
            Op::Insert(k, _) | Op::Delete(k) | Op::Contains(k) => {
                clusters.node(k);
            }
            Op::Move(a, b) => clusters.union(a, b),
            Op::Scan(..) => {
                splittable = false;
                break;
            }
        }
    }
    // Bucket events by final cluster root, assigning group indices in
    // first-event order; `key_group` records every touched key's group
    // (both endpoints of a `Move`), for restricting initial/final states.
    let mut key_group: HashMap<u64, usize> = HashMap::new();
    let groups: Vec<Vec<Event>> = if splittable {
        let mut by_root: HashMap<usize, usize> = HashMap::new();
        let mut out: Vec<Vec<Event>> = Vec::new();
        for ev in &sorted {
            let (ka, kb) = match ev.op {
                Op::Insert(k, _) | Op::Delete(k) | Op::Contains(k) => (k, None),
                Op::Move(a, b) => (a, Some(b)),
                Op::Scan(..) => unreachable!("scan histories are not split"),
            };
            let node = clusters.node(ka);
            let root = clusters.find(node);
            let idx = *by_root.entry(root).or_insert_with(|| {
                out.push(Vec::new());
                out.len() - 1
            });
            key_group.insert(ka, idx);
            if let Some(kb) = kb {
                key_group.insert(kb, idx);
            }
            out[idx].push(ev.clone());
        }
        out
    } else {
        vec![sorted.clone()]
    };

    // Keys outside every cluster are untouched by the history: a crash
    // state must carry them through from `initial` unchanged, and must not
    // invent keys no operation or initial entry explains. (The whole-
    // history search covers this itself when the split is disabled.)
    if splittable {
        if let Some(want) = final_state {
            for (k, v) in initial {
                if !key_group.contains_key(k) && want.get(k) != Some(v) {
                    return Verdict {
                        ok: false,
                        ops: n,
                        explored: 0,
                        message: format!(
                            "recovered state lost or changed untouched key {k} (expected {v:?}, found {:?})",
                            want.get(k)
                        ),
                    };
                }
            }
            let initial_keys: HashSet<u64> = initial.iter().map(|(k, _)| *k).collect();
            for k in want.keys() {
                if !key_group.contains_key(k) && !initial_keys.contains(k) {
                    return Verdict {
                        ok: false,
                        ops: n,
                        explored: 0,
                        message: format!(
                            "recovered state contains key {k} that no operation or initial entry explains"
                        ),
                    };
                }
            }
        }
    }

    let mut remaining = budget;
    let mut explored_total = 0u64;
    for (gi, group) in groups.iter().enumerate() {
        let initial_g: BTreeMap<u64, u64> = if splittable {
            initial
                .iter()
                .filter(|(k, _)| key_group.get(k) == Some(&gi))
                .copied()
                .collect()
        } else {
            initial.iter().copied().collect()
        };
        let final_g: Option<BTreeMap<u64, u64>> = final_state.map(|want| {
            if splittable {
                want.iter()
                    .filter(|(k, _)| key_group.get(k) == Some(&gi))
                    .map(|(k, v)| (*k, *v))
                    .collect()
            } else {
                want.clone()
            }
        });
        let state_hash = initial_g
            .iter()
            .fold(0u64, |h, (k, v)| h ^ entry_hash(*k, *v));
        let mut search = Search {
            events: group,
            state: initial_g,
            state_hash,
            done: vec![false; group.len()],
            base: 0,
            max_done: 0,
            explored: 0,
            remaining,
            exhausted: false,
            memo: HashSet::new(),
            final_state: final_g.as_ref(),
        };
        let ok = search.solve();
        explored_total += search.explored;
        remaining = search.remaining;
        if search.exhausted {
            return Verdict {
                ok: false,
                ops: n,
                explored: explored_total,
                message: format!(
                    "linearizability search budget exhausted ({budget} states) — \
                     verdict inconclusive; the history is more contended than the checker can decide"
                ),
            };
        }
        if !ok {
            return Verdict {
                ok: false,
                ops: n,
                explored: explored_total,
                message: describe_failure(group, final_g.as_ref()),
            };
        }
    }
    Verdict {
        ok: true,
        ops: n,
        explored: explored_total,
        message: String::new(),
    }
}

fn describe_failure(events: &[Event], final_state: Option<&BTreeMap<u64, u64>>) -> String {
    let mut msg = String::from("history is NOT linearizable");
    if final_state.is_some() {
        msg.push_str(" against the recovered state");
    }
    msg.push_str(&format!(
        " ({} events). Tail of the timeline:\n",
        events.len()
    ));
    for ev in events
        .iter()
        .rev()
        .take(12)
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
    {
        let resp = if ev.response == PENDING {
            "pending".to_string()
        } else {
            ev.response.to_string()
        };
        msg.push_str(&format!(
            "  t{} [{} .. {}] {:?} -> {:?}\n",
            ev.thread, ev.invoke, resp, ev.op, ev.ret
        ));
    }
    msg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(op: Op, ret: Ret, invoke: u64, response: u64, thread: u32) -> Event {
        Event {
            op,
            ret: Some(ret),
            invoke,
            response,
            thread,
        }
    }

    #[test]
    fn sequential_history_checks() {
        let events = vec![
            ev(Op::Insert(1, 10), Ret::Bool(true), 0, 1, 0),
            ev(Op::Contains(1), Ret::Bool(true), 2, 3, 0),
            ev(Op::Delete(1), Ret::Bool(true), 4, 5, 0),
            ev(Op::Contains(1), Ret::Bool(false), 6, 7, 0),
        ];
        let v = check_history(&[], &events);
        assert!(v.ok, "{}", v.message);
        assert_eq!(v.ops, 4);
    }

    #[test]
    fn overlapping_ops_may_reorder() {
        // contains(1) overlaps insert(1) and sees it: the contains must be
        // linearised after the insert even though it was invoked first.
        let events = vec![
            ev(Op::Contains(1), Ret::Bool(true), 0, 5, 0),
            ev(Op::Insert(1, 10), Ret::Bool(true), 1, 4, 1),
        ];
        let v = check_history(&[], &events);
        assert!(v.ok, "{}", v.message);
    }

    #[test]
    fn non_overlapping_stale_read_is_rejected() {
        // insert(1) completed before contains(1) was invoked, so the false
        // result is a real-time violation.
        let events = vec![
            ev(Op::Insert(1, 10), Ret::Bool(true), 0, 1, 0),
            ev(Op::Contains(1), Ret::Bool(false), 2, 3, 1),
        ];
        let v = check_history(&[], &events);
        assert!(!v.ok);
        assert!(v.message.contains("NOT linearizable"), "{}", v.message);
    }

    #[test]
    fn move_semantics_match_the_tree() {
        let initial = [(1, 10), (2, 20)];
        let events = vec![
            // dst occupied -> false
            ev(Op::Move(1, 2), Ret::Bool(false), 0, 1, 0),
            // self-move == contains
            ev(Op::Move(1, 1), Ret::Bool(true), 2, 3, 0),
            // real move
            ev(Op::Move(1, 3), Ret::Bool(true), 4, 5, 0),
            ev(Op::Contains(1), Ret::Bool(false), 6, 7, 0),
            ev(
                Op::Scan(0, 10),
                Ret::Entries(vec![(2, 20), (3, 10)]),
                8,
                9,
                0,
            ),
            // absent src -> false
            ev(Op::Move(9, 4), Ret::Bool(false), 10, 11, 0),
        ];
        let v = check_history(&initial, &events);
        assert!(v.ok, "{}", v.message);
    }

    #[test]
    fn scan_must_be_atomic() {
        // A scan that observes insert(1) but not the earlier-completed
        // insert(2) is not linearizable.
        let events = vec![
            ev(Op::Insert(2, 20), Ret::Bool(true), 0, 1, 0),
            ev(Op::Insert(1, 10), Ret::Bool(true), 2, 3, 0),
            ev(Op::Scan(0, 10), Ret::Entries(vec![(1, 10)]), 4, 5, 1),
        ];
        let v = check_history(&[], &events);
        assert!(!v.ok);
    }

    #[test]
    fn concurrent_inserts_on_one_key() {
        // Two concurrent insert(7) — exactly one wins, in either order.
        let events = vec![
            ev(Op::Insert(7, 1), Ret::Bool(false), 0, 10, 0),
            ev(Op::Insert(7, 2), Ret::Bool(true), 1, 9, 1),
            ev(Op::Contains(7), Ret::Bool(true), 11, 12, 0),
        ];
        let v = check_history(&[], &events);
        assert!(v.ok, "{}", v.message);
    }

    #[test]
    fn crash_history_with_pending_op_applied_or_dropped() {
        let pending = Event {
            op: Op::Insert(5, 50),
            ret: None,
            invoke: 2,
            response: PENDING,
            thread: 1,
        };
        let acked = ev(Op::Insert(1, 10), Ret::Bool(true), 0, 1, 0);
        // Case A: recovery kept the pending insert.
        let v = check_crash_history(&[], &[acked.clone(), pending.clone()], &[(1, 10), (5, 50)]);
        assert!(v.ok, "{}", v.message);
        // Case B: recovery dropped it.
        let v = check_crash_history(&[], &[acked.clone(), pending.clone()], &[(1, 10)]);
        assert!(v.ok, "{}", v.message);
        // Case C: recovery lost the ACKED insert — torn durability.
        let v = check_crash_history(&[], &[acked, pending], &[(5, 50)]);
        assert!(!v.ok);
    }

    #[test]
    fn recorder_round_trip() {
        let rec = Arc::new(Recorder::new());
        let mut h0 = rec.handle();
        let mut h1 = rec.handle();
        let p = h0.invoke(Op::Insert(1, 1));
        h0.complete(p, Ret::Bool(true));
        let p = h1.invoke(Op::Contains(1));
        h1.complete(p, Ret::Bool(true));
        h0.finish();
        h1.finish();
        let events = rec.take();
        assert_eq!(events.len(), 2);
        let v = check_history(&[], &events);
        assert!(v.ok, "{}", v.message);
    }

    #[test]
    fn memoisation_survives_wide_histories() {
        // 40 sequential inserts then a full scan: trivially linearizable,
        // must not blow up.
        let mut events = Vec::new();
        let mut t = 0u64;
        for k in 0..40u64 {
            events.push(ev(Op::Insert(k, k), Ret::Bool(true), t, t + 1, 0));
            t += 2;
        }
        let all: Vec<(u64, u64)> = (0..40).map(|k| (k, k)).collect();
        events.push(ev(Op::Scan(0, 100), Ret::Entries(all), t, t + 1, 0));
        let v = check_history(&[], &events);
        assert!(v.ok, "{}", v.message);
    }

    #[test]
    fn key_split_still_catches_a_single_bad_cluster() {
        // Thousands of clean ops on other keys must not drown out one lost
        // insert on key 3 — the per-key split checks each cluster alone.
        let mut events = Vec::new();
        let mut t = 0u64;
        for i in 0..2_000u64 {
            let k = 100 + (i % 64);
            events.push(ev(Op::Insert(k, i), Ret::Bool(true), t, t + 1, 0));
            events.push(ev(Op::Delete(k), Ret::Bool(true), t + 2, t + 3, 0));
            t += 4;
        }
        events.push(ev(Op::Insert(3, 30), Ret::Bool(true), t, t + 1, 1));
        events.push(ev(Op::Contains(3), Ret::Bool(false), t + 2, t + 3, 1));
        let v = check_history(&[], &events);
        assert!(!v.ok, "the lost insert must fail despite the clean noise");
        assert!(v.message.contains("NOT linearizable"), "{}", v.message);
    }

    #[test]
    fn moves_join_clusters_across_keys() {
        // A move chains keys 1 -> 2 -> 3 into one cluster; observing the
        // value at 3 only linearizes if the cluster is checked as a whole.
        let events = vec![
            ev(Op::Insert(1, 10), Ret::Bool(true), 0, 1, 0),
            ev(Op::Move(1, 2), Ret::Bool(true), 2, 3, 0),
            ev(Op::Move(2, 3), Ret::Bool(true), 4, 5, 0),
            ev(Op::Contains(3), Ret::Bool(true), 6, 7, 1),
            ev(Op::Contains(1), Ret::Bool(false), 8, 9, 1),
            // Independent cluster rides along.
            ev(Op::Insert(9, 90), Ret::Bool(true), 10, 11, 0),
        ];
        let v = check_history(&[], &events);
        assert!(v.ok, "{}", v.message);
    }

    #[test]
    fn crash_state_must_explain_untouched_and_unknown_keys() {
        let acked = ev(Op::Insert(1, 10), Ret::Bool(true), 0, 1, 0);
        // Untouched initial key 50 lost by recovery.
        let v = check_crash_history(&[(50, 500)], std::slice::from_ref(&acked), &[(1, 10)]);
        assert!(!v.ok);
        assert!(v.message.contains("untouched key 50"), "{}", v.message);
        // Recovery invented key 77 no op or initial entry explains.
        let v = check_crash_history(&[], std::slice::from_ref(&acked), &[(1, 10), (77, 7)]);
        assert!(!v.ok);
        assert!(v.message.contains("key 77"), "{}", v.message);
        // Clean carry-through passes.
        let v = check_crash_history(&[(50, 500)], &[acked], &[(1, 10), (50, 500)]);
        assert!(v.ok, "{}", v.message);
    }

    #[test]
    fn exhausted_budget_reports_inconclusive_not_a_violation() {
        // Heavily overlapped ops with a one-state budget: the search must
        // stop immediately and say so, not wedge or claim a violation.
        let events = vec![
            ev(Op::Insert(1, 1), Ret::Bool(true), 0, 4, 0),
            ev(Op::Contains(1), Ret::Bool(true), 1, 5, 1),
            ev(Op::Delete(1), Ret::Bool(true), 2, 6, 2),
        ];
        let v = check_inner(&[], &events, None, 1);
        assert!(!v.ok);
        assert!(v.message.contains("inconclusive"), "{}", v.message);
    }

    #[test]
    fn hot_key_stall_window_stays_tractable() {
        // Regression for the armed-fig3 wedge: one operation whose
        // response arrives thousands of sequence numbers late (a stalled
        // insert behind a maintenance pass) used to widen the WGL window
        // past the memo bitmask on contended runs, turning the search
        // exponential. With per-key clustering the stalled op only windows
        // against its own key's ops, and the wide memo covers the rest.
        let mut events = Vec::new();
        // The stalled op: invoked first, completes after everything.
        events.push(ev(Op::Insert(7, 700), Ret::Bool(false), 0, 60_001, 0));
        let mut t = 1u64;
        for i in 0..5_000u64 {
            // Hot-key traffic racing the stalled insert(7): a insert/delete
            // pair per iteration keeps key 7 toggling, so the stall can
            // linearize (as a failed insert) at any occupied moment.
            events.push(ev(Op::Insert(7, i), Ret::Bool(true), t, t + 1, 1));
            events.push(ev(Op::Delete(7), Ret::Bool(true), t + 2, t + 3, 1));
            // Cold-key noise on another thread.
            let k = 1_000 + (i % 128);
            events.push(ev(Op::Insert(k, i), Ret::Bool(true), t + 4, t + 5, 2));
            events.push(ev(Op::Delete(k), Ret::Bool(true), t + 6, t + 7, 2));
            t += 8;
        }
        let v = check_history_spawned(Vec::new(), events);
        assert!(v.ok, "{}", v.message);
        assert_eq!(v.ops, 20_001);
    }

    #[test]
    fn long_driver_history_checks_in_linear_time() {
        // Regression: `memo_key` used to scan from `base` to the END of
        // the event vector on every solve step, making real driver
        // histories (tens of thousands of events) quadratic — a 100k-op
        // fig3 run pinned a core for minutes. 30k sequential ops with a
        // light 2-thread overlap must check essentially instantly; if this
        // test is slow, the window bound in `memo_key` regressed.
        let mut events = Vec::new();
        let mut t = 0u64;
        for i in 0..15_000u64 {
            let k = i % 512;
            // Two overlapping ops per step, emulating a 2-thread window.
            events.push(ev(Op::Insert(k, i), Ret::Bool(true), t, t + 3, 0));
            events.push(ev(Op::Delete(k), Ret::Bool(true), t + 1, t + 2, 1));
            t += 4;
        }
        // The spawned variant is what the driver uses for long histories:
        // the search recurses once per event, so this also needs its
        // 256 MB stack.
        let v = check_history_spawned(Vec::new(), events);
        assert!(v.ok, "{}", v.message);
        assert!(v.ops == 30_000);
    }
}
