//! Schedule control: yield points, a seeded random-priority fuzzer, and a
//! bounded exhaustive DFS explorer for small unit scenarios.
//!
//! Instrumented code calls [`sched_point`] at the interleaving-relevant
//! boundaries (STM acquire/validate/publish, spin retries, maintenance
//! passes, cross-shard moves, checkpoints). With no scheduler installed the
//! call is a single relaxed atomic load — negligible even in `check`
//! builds.
//!
//! ## Random mode (PCT-style)
//!
//! `SF_CHECK_SCHED_SEED` installs a seeded random-priority scheduler: each
//! thread draws an effective priority from `splitmix64(seed, epoch,
//! thread)` and low-priority threads yield (possibly several times) at
//! every sched point. Priorities reshuffle at `SF_CHECK_PREEMPTIONS`-many
//! derived change points, approximating PCT's d priority-change points.
//! Any panic while the fuzzer is installed appends a replay line with the
//! exact seed.
//!
//! ## DFS mode
//!
//! [`explore`] runs a 2–3-thread scenario under a controlling scheduler:
//! scenario threads block at every sched point until granted one step, and
//! the controller enumerates all grant orders depth-first up to
//! [`DfsOptions::max_depth`], free-running the tail. Spin points are never
//! branched on (the spinner is granted only when nothing else is
//! runnable), which keeps the state space finite without losing mutual
//! exclusion bugs. A failing schedule is reported as a rank vector that
//! [`replay`] re-executes deterministically.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, Once, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// What kind of boundary the instrumented code is at. Used by the DFS
/// explorer to deprioritise spin retries and by reports to label steps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedEvent {
    /// A controlled thread has started and is waiting for its first grant.
    ThreadStart,
    /// Transaction attempt begins (including retries).
    TxnBegin,
    /// About to acquire a version lock or shim lock.
    Acquire,
    /// About to validate the read set.
    Validate,
    /// About to publish the write set (commit point).
    Publish,
    /// Spin-loop retry (uread spin, commit spin); never branched on.
    Spin,
    /// Maintenance pass boundary (rotation/removal sweep).
    MaintPass,
    /// Cross-shard move step boundary.
    Move,
    /// Checkpoint step boundary.
    Checkpoint,
}

impl SchedEvent {
    /// Short label for traces.
    pub fn label(self) -> &'static str {
        match self {
            SchedEvent::ThreadStart => "start",
            SchedEvent::TxnBegin => "txn-begin",
            SchedEvent::Acquire => "acquire",
            SchedEvent::Validate => "validate",
            SchedEvent::Publish => "publish",
            SchedEvent::Spin => "spin",
            SchedEvent::MaintPass => "maint-pass",
            SchedEvent::Move => "move",
            SchedEvent::Checkpoint => "checkpoint",
        }
    }
}

const MODE_OFF: u8 = 0;
const MODE_RANDOM: u8 = 1;
const MODE_DFS: u8 = 2;

static MODE: AtomicU8 = AtomicU8::new(MODE_OFF);

/// The instrumentation entry point. A no-op unless a scheduler is
/// installed ([`install_random_from_env`] or an active [`explore`] run).
#[inline]
pub fn sched_point(ev: SchedEvent) {
    match MODE.load(Ordering::Relaxed) {
        MODE_RANDOM => random_point(ev),
        MODE_DFS => dfs_point(ev),
        _ => {}
    }
}

pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

// ---------------------------------------------------------------------------
// Random (PCT-style) scheduler
// ---------------------------------------------------------------------------

struct RandomSched {
    seed: u64,
    preemptions: u64,
    epoch_len: u64,
    step: AtomicU64,
}

static RANDOM: OnceLock<RandomSched> = OnceLock::new();
static NEXT_SALT: AtomicU64 = AtomicU64::new(1);
static PANIC_HOOK: Once = Once::new();

thread_local! {
    static SALT: u64 = NEXT_SALT.fetch_add(1, Ordering::Relaxed);
}

/// Horizon over which the priority-change points are spread. Long enough
/// to cover a CI smoke run; the epoch pattern simply repeats after it.
const HORIZON: u64 = 1 << 20;

/// Install the seeded random scheduler. Idempotent: the first call wins.
/// Returns the effective seed.
pub fn install_random(seed: u64, preemptions: u64) -> u64 {
    let d = preemptions.max(1);
    let sched = RANDOM.get_or_init(|| RandomSched {
        seed,
        preemptions: d,
        epoch_len: (HORIZON / (d + 1)).max(1),
        step: AtomicU64::new(0),
    });
    PANIC_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            prev(info);
            if let Some(h) = replay_hint() {
                eprintln!("{h}");
            }
        }));
    });
    MODE.store(MODE_RANDOM, Ordering::Relaxed);
    sched.seed
}

/// Install the random scheduler from `SF_CHECK_SCHED_SEED` /
/// `SF_CHECK_PREEMPTIONS`, if set. `SF_CHECK_SCHED_SEED=random` derives a
/// seed from the clock; the chosen seed is always printed so any failure
/// is replayable. Returns the seed when installed.
pub fn install_random_from_env() -> Option<u64> {
    let raw = std::env::var("SF_CHECK_SCHED_SEED").ok()?;
    let seed = match raw.trim() {
        "" => return None,
        "random" => {
            let now = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap_or_default();
            splitmix64(now.as_nanos() as u64)
        }
        s => s.parse::<u64>().unwrap_or_else(|_| splitmix64(hash_str(s))),
    };
    let preemptions = std::env::var("SF_CHECK_PREEMPTIONS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(3);
    let seed = install_random(seed, preemptions);
    eprintln!(
        "sf-check: schedule fuzzing on (SF_CHECK_SCHED_SEED={seed} SF_CHECK_PREEMPTIONS={preemptions})"
    );
    Some(seed)
}

fn hash_str(s: &str) -> u64 {
    s.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

/// The replay line appended to panics while the fuzzer is installed.
pub fn replay_hint() -> Option<String> {
    RANDOM.get().map(|s| {
        format!(
            "sf-check replay: SF_CHECK_SCHED_SEED={} SF_CHECK_PREEMPTIONS={}",
            s.seed, s.preemptions
        )
    })
}

fn random_point(ev: SchedEvent) {
    let Some(sched) = RANDOM.get() else { return };
    let step = sched.step.fetch_add(1, Ordering::Relaxed);
    let epoch = (step / sched.epoch_len) % (sched.preemptions + 1);
    let salt = SALT.with(|s| *s);
    let eff =
        splitmix64(sched.seed ^ epoch.wrapping_mul(0x9e37_79b9) ^ salt.wrapping_mul(0x85eb_ca6b));
    // Priority band: half the threads run free, the rest yield 1–3 times.
    // Spin retries always yield once so a preempted lock holder can run.
    let yields = if ev == SchedEvent::Spin {
        1
    } else {
        match eff % 16 {
            0..=7 => 0,
            8..=13 => 1,
            _ => 3,
        }
    };
    for _ in 0..yields {
        std::thread::yield_now();
    }
}

// ---------------------------------------------------------------------------
// DFS explorer
// ---------------------------------------------------------------------------

/// Tuning for [`explore`].
#[derive(Clone, Debug)]
pub struct DfsOptions {
    /// Stop after this many schedules even if not exhausted.
    pub max_schedules: usize,
    /// Choice depth after which the remainder of the run free-runs.
    pub max_depth: usize,
    /// How long to wait for threads to settle at a point before treating
    /// still-running threads as (temporarily) blocked.
    pub step_timeout: Duration,
    /// Consecutive grants to a spinning thread (with nothing else
    /// runnable) before declaring livelock.
    pub max_spin_grants: u32,
}

impl Default for DfsOptions {
    fn default() -> Self {
        DfsOptions {
            max_schedules: 10_000,
            max_depth: 256,
            step_timeout: Duration::from_secs(5),
            max_spin_grants: 256,
        }
    }
}

/// A failing schedule: the rank vector to hand to [`replay`], plus the
/// first panic message (or deadlock/livelock description).
#[derive(Clone, Debug)]
pub struct DfsFailure {
    /// Grant ranks, one per choice point, replayable via [`replay`].
    pub schedule: Vec<u32>,
    /// What went wrong on that schedule.
    pub message: String,
}

/// Outcome of an [`explore`] call.
#[derive(Clone, Debug, Default)]
pub struct DfsReport {
    /// Schedules fully executed.
    pub schedules: usize,
    /// True when the whole bounded space was covered.
    pub exhausted: bool,
    /// True if any schedule ran past `max_depth` and free-ran its tail.
    pub max_depth_hit: bool,
    /// First failing schedule, if any.
    pub failure: Option<DfsFailure>,
}

#[derive(Clone, Debug, PartialEq)]
enum Status {
    Starting,
    AtPoint(SchedEvent),
    Granted,
    Running,
    Done,
}

struct ThreadRec {
    name: String,
    status: Status,
    spin_grants: u32,
    panic: Option<String>,
}

struct CtlState {
    threads: Vec<ThreadRec>,
    free: bool,
}

struct Controller {
    state: Mutex<CtlState>,
    cv: Condvar,
}

impl Controller {
    fn new() -> Controller {
        Controller {
            state: Mutex::new(CtlState {
                threads: Vec::new(),
                free: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CtlState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Block the calling controlled thread at a sched point until granted.
    fn at_point(&self, idx: usize, ev: SchedEvent) {
        let mut st = self.lock();
        if st.free {
            return;
        }
        st.threads[idx].status = Status::AtPoint(ev);
        self.cv.notify_all();
        loop {
            if st.free {
                return;
            }
            if st.threads[idx].status == Status::Granted {
                st.threads[idx].status = Status::Running;
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn finish(&self, idx: usize, panic_msg: Option<String>) {
        let mut st = self.lock();
        st.threads[idx].status = Status::Done;
        st.threads[idx].panic = panic_msg;
        self.cv.notify_all();
    }

    fn release_all(&self) {
        let mut st = self.lock();
        st.free = true;
        self.cv.notify_all();
    }
}

thread_local! {
    static DFS_SELF: std::cell::RefCell<Option<(Arc<Controller>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

fn dfs_point(ev: SchedEvent) {
    let slot = DFS_SELF.with(|s| s.borrow().clone());
    if let Some((ctl, idx)) = slot {
        ctl.at_point(idx, ev);
    }
}

/// Handle the scenario closure uses to spawn controlled threads.
pub struct DfsCtx {
    ctl: Arc<Controller>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl DfsCtx {
    /// Spawn a controlled thread. It blocks before running `f` and at every
    /// [`sched_point`] inside `f` until the explorer grants it a step.
    pub fn spawn(&mut self, name: &str, f: impl FnOnce() + Send + 'static) {
        let idx = {
            let mut st = self.ctl.lock();
            st.threads.push(ThreadRec {
                name: name.to_string(),
                status: Status::Starting,
                spin_grants: 0,
                panic: None,
            });
            st.threads.len() - 1
        };
        let ctl = Arc::clone(&self.ctl);
        let handle = std::thread::Builder::new()
            .name(name.to_string())
            .spawn(move || {
                DFS_SELF.with(|s| *s.borrow_mut() = Some((Arc::clone(&ctl), idx)));
                ctl.at_point(idx, SchedEvent::ThreadStart);
                let result = catch_unwind(AssertUnwindSafe(f));
                DFS_SELF.with(|s| *s.borrow_mut() = None);
                let msg = result.err().map(|e| panic_message(&*e));
                ctl.finish(idx, msg);
            })
            .expect("spawn controlled thread");
        self.handles.push(handle);
    }
}

fn panic_message(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic (non-string payload)".to_string()
    }
}

/// Serialises DFS runs process-wide (the MODE flag and thread-local
/// registration assume one explorer at a time).
static EXPLORE_LOCK: Mutex<()> = Mutex::new(());

#[derive(Clone, Copy)]
struct Branch {
    rank: u32,
    candidates: u32,
}

/// Exhaustively explore grant orders of `scenario`'s threads (bounded by
/// `opts`). The scenario closure is re-run once per schedule; share state
/// between threads via `Arc` and rebuild it fresh in each invocation.
pub fn explore(opts: &DfsOptions, scenario: impl Fn(&mut DfsCtx)) -> DfsReport {
    let _guard = EXPLORE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let mut report = DfsReport::default();
    let mut prefix: Vec<u32> = Vec::new();
    loop {
        if report.schedules >= opts.max_schedules {
            return report;
        }
        let (trace, failure, hit_depth) = run_one(opts, &prefix, &scenario);
        report.schedules += 1;
        report.max_depth_hit |= hit_depth;
        if let Some(message) = failure {
            report.failure = Some(DfsFailure {
                schedule: trace.iter().map(|b| b.rank).collect(),
                message,
            });
            return report;
        }
        // Backtrack: deepest branch with an unexplored sibling.
        let mut stack = trace;
        loop {
            match stack.pop() {
                None => {
                    report.exhausted = true;
                    return report;
                }
                Some(b) if b.rank + 1 < b.candidates => {
                    prefix = stack.iter().map(|x| x.rank).collect();
                    prefix.push(b.rank + 1);
                    break;
                }
                Some(_) => {}
            }
        }
    }
}

/// Deterministically re-run one schedule produced by [`explore`] (the
/// `schedule` field of a [`DfsFailure`]). Panics propagate to the caller.
pub fn replay(
    opts: &DfsOptions,
    schedule: &[u32],
    scenario: impl Fn(&mut DfsCtx),
) -> Option<String> {
    let _guard = EXPLORE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let prefix: Vec<u32> = schedule.to_vec();
    let (_trace, failure, _hit) = run_one(opts, &prefix, &scenario);
    failure
}

fn run_one(
    opts: &DfsOptions,
    prefix: &[u32],
    scenario: &impl Fn(&mut DfsCtx),
) -> (Vec<Branch>, Option<String>, bool) {
    let prev_mode = MODE.swap(MODE_DFS, Ordering::Relaxed);
    let ctl = Arc::new(Controller::new());
    let mut ctx = DfsCtx {
        ctl: Arc::clone(&ctl),
        handles: Vec::new(),
    };
    scenario(&mut ctx);
    let mut trace: Vec<Branch> = Vec::new();
    let mut failure: Option<String> = None;
    let mut hit_depth = false;
    let deadline_slack = opts.step_timeout.mul_add_safe(3);
    'control: loop {
        // Wait for all threads to settle at a point or finish.
        let started = Instant::now();
        let (runnable, spinners, any_unsettled) = loop {
            let st = self_settle(&ctl, opts.step_timeout);
            let mut runnable = Vec::new();
            let mut spinners = Vec::new();
            let mut unsettled = false;
            let mut all_done = true;
            for (i, t) in st.iter().enumerate() {
                match t {
                    (Status::AtPoint(SchedEvent::Spin), _) => {
                        spinners.push(i);
                        all_done = false;
                    }
                    (Status::AtPoint(_), _) => {
                        runnable.push(i);
                        all_done = false;
                    }
                    (Status::Done, _) => {}
                    _ => {
                        unsettled = true;
                        all_done = false;
                    }
                }
            }
            if all_done {
                break 'control;
            }
            if !unsettled || started.elapsed() >= deadline_slack {
                break (runnable, spinners, unsettled);
            }
            if !runnable.is_empty() || !spinners.is_empty() {
                // Settled candidates exist; if the rest stay unsettled past
                // the step timeout they are blocked on uninstrumented sync —
                // proceed with what we have.
                if started.elapsed() >= opts.step_timeout {
                    break (runnable, spinners, unsettled);
                }
            }
        };
        let (candidates, is_spin_step) = if !runnable.is_empty() {
            (runnable, false)
        } else if !spinners.is_empty() {
            (spinners, true)
        } else if any_unsettled {
            failure =
                Some("deadlock: all controlled threads blocked outside sched points".to_string());
            break 'control;
        } else {
            break 'control;
        };
        if is_spin_step {
            let exhausted_spin = {
                let st = ctl.lock();
                candidates
                    .iter()
                    .all(|&i| st.threads[i].spin_grants >= opts.max_spin_grants)
            };
            if exhausted_spin {
                failure = Some(format!(
                    "livelock: spinning threads made no progress after {} grants",
                    opts.max_spin_grants
                ));
                break 'control;
            }
        }
        let depth = trace.len();
        if depth >= opts.max_depth {
            hit_depth = true;
            break 'control;
        }
        let n = candidates.len() as u32;
        let rank = if depth < prefix.len() {
            prefix[depth].min(n - 1)
        } else {
            0
        };
        // Spin steps are forced (never branched): record candidates=1.
        trace.push(Branch {
            rank,
            candidates: if is_spin_step { 1 } else { n },
        });
        let chosen = candidates[rank as usize];
        {
            let mut st = ctl.lock();
            if is_spin_step {
                st.threads[chosen].spin_grants += 1;
            } else {
                st.threads[chosen].spin_grants = 0;
            }
            st.threads[chosen].status = Status::Granted;
            ctl.cv.notify_all();
        }
    }
    ctl.release_all();
    for h in ctx.handles.drain(..) {
        let _ = h.join();
    }
    if failure.is_none() {
        let st = ctl.lock();
        for t in &st.threads {
            if let Some(p) = &t.panic {
                failure = Some(format!("thread '{}' panicked: {p}", t.name));
                break;
            }
        }
    }
    MODE.store(prev_mode, Ordering::Relaxed);
    (trace, failure, hit_depth)
}

/// Snapshot thread statuses after waiting up to `timeout` for a change.
fn self_settle(ctl: &Controller, timeout: Duration) -> Vec<(Status, u32)> {
    let st = ctl.lock();
    let settled = |s: &CtlState| {
        s.threads
            .iter()
            .all(|t| matches!(t.status, Status::AtPoint(_) | Status::Done))
    };
    let st = if settled(&st) {
        st
    } else {
        let (guard, _res) = ctl
            .cv
            .wait_timeout_while(st, timeout, |s| !settled(s))
            .unwrap_or_else(PoisonError::into_inner);
        guard
    };
    st.threads
        .iter()
        .map(|t| (t.status.clone(), t.spin_grants))
        .collect()
}

trait DurationExt {
    fn mul_add_safe(&self, k: u32) -> Duration;
}

impl DurationExt for Duration {
    fn mul_add_safe(&self, k: u32) -> Duration {
        self.checked_mul(k).unwrap_or(Duration::MAX)
    }
}

/// Convenience used by tests: deterministic queue-backed scenario state.
#[doc(hidden)]
pub type SharedQueue<T> = Arc<Mutex<VecDeque<T>>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn quick_opts() -> DfsOptions {
        DfsOptions {
            max_schedules: 1000,
            max_depth: 64,
            step_timeout: Duration::from_secs(2),
            max_spin_grants: 16,
        }
    }

    #[test]
    fn dfs_explores_both_orders_of_two_steps() {
        // Two threads each append their id at one sched point; DFS must
        // produce both interleavings.
        let log: Arc<Mutex<Vec<Vec<u8>>>> = Arc::new(Mutex::new(Vec::new()));
        let opts = quick_opts();
        let log2 = Arc::clone(&log);
        let report = explore(&opts, move |ctx| {
            let run: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
            {
                let mut l = log2.lock().unwrap();
                l.push(Vec::new());
            }
            for id in [1u8, 2u8] {
                let run = Arc::clone(&run);
                let log = Arc::clone(&log2);
                ctx.spawn(&format!("t{id}"), move || {
                    sched_point(SchedEvent::Acquire);
                    let mut r = run.lock().unwrap();
                    r.push(id);
                    let mut l = log.lock().unwrap();
                    *l.last_mut().unwrap() = r.clone();
                });
            }
        });
        assert!(report.failure.is_none(), "{:?}", report.failure);
        assert!(report.exhausted);
        let seen = log.lock().unwrap();
        assert!(seen.contains(&vec![1, 2]), "{seen:?}");
        assert!(seen.contains(&vec![2, 1]), "{seen:?}");
    }

    #[test]
    fn dfs_finds_atomicity_violation_and_replays_it() {
        // Classic lost-update: read, yield, write. DFS must find the
        // interleaving where both threads read 0 and the counter ends at 1.
        let opts = quick_opts();
        let scenario = |ctx: &mut DfsCtx| {
            let counter = Arc::new(AtomicUsize::new(0));
            let c1 = Arc::clone(&counter);
            let c2 = Arc::clone(&counter);
            let check = Arc::new(AtomicUsize::new(0));
            for c in [c1, c2] {
                let check = Arc::clone(&check);
                let counter = Arc::clone(&counter);
                ctx.spawn("inc", move || {
                    let v = c.load(Ordering::SeqCst);
                    sched_point(SchedEvent::Acquire);
                    c.store(v + 1, Ordering::SeqCst);
                    if check.fetch_add(1, Ordering::SeqCst) == 1
                        && counter.load(Ordering::SeqCst) != 2
                    {
                        panic!("lost update");
                    }
                });
            }
        };
        let report = explore(&opts, scenario);
        let failure = report.failure.expect("lost update must be found");
        assert!(
            failure.message.contains("lost update"),
            "{}",
            failure.message
        );
        // And the schedule replays to the same failure.
        let replayed = replay(&opts, &failure.schedule, scenario);
        assert!(
            replayed.is_some_and(|m| m.contains("lost update")),
            "replay should reproduce"
        );
    }

    #[test]
    fn dfs_grants_spinners_when_nothing_else_runs() {
        let opts = quick_opts();
        let report = explore(&opts, |ctx| {
            let flag = Arc::new(AtomicUsize::new(0));
            let f1 = Arc::clone(&flag);
            let f2 = Arc::clone(&flag);
            ctx.spawn("setter", move || {
                sched_point(SchedEvent::Publish);
                f1.store(1, Ordering::SeqCst);
            });
            ctx.spawn("spinner", move || {
                while f2.load(Ordering::SeqCst) == 0 {
                    sched_point(SchedEvent::Spin);
                }
            });
        });
        assert!(report.failure.is_none(), "{:?}", report.failure);
        assert!(report.exhausted);
    }

    #[test]
    fn random_mode_replay_hint_round_trips() {
        // install_random is process-global: hold the explore lock so the
        // MODE flips here cannot interleave with a DFS run in another test.
        let _guard = EXPLORE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let seed = install_random(42, 3);
        assert_eq!(seed, 42);
        let hint = replay_hint().expect("installed");
        assert!(hint.contains("SF_CHECK_SCHED_SEED=42"), "{hint}");
        // sched_point in random mode must not deadlock or panic.
        for _ in 0..100 {
            sched_point(SchedEvent::Acquire);
            sched_point(SchedEvent::Spin);
        }
        MODE.store(MODE_OFF, Ordering::Relaxed);
    }
}
