//! `sf-check`: execution-level concurrency analysis for the
//! speculation-friendly tree workspace — the dynamic twin of `sf-lint`.
//!
//! Three engines, all zero-dependency (only `sf-obs` for flight-recorder
//! context in reports):
//!
//! * [`race`] — a FastTrack-style vector-clock data-race detector plus a
//!   runtime lock-order (inversion) checker. Instrumentation lives in the
//!   `parking_lot` shim and `sf_stm`'s versioned cells, compiled in behind
//!   the `check` cargo feature and armed at runtime by `SF_CHECK_RACES=1`.
//! * [`sched`] — [`sched::sched_point`] yield hooks at STM
//!   acquire/validate/publish and maintenance/move/checkpoint boundaries,
//!   driven either by a seeded PCT-style random fuzzer
//!   (`SF_CHECK_SCHED_SEED`, `SF_CHECK_PREEMPTIONS`) or by a bounded
//!   exhaustive DFS explorer for 2–3-thread unit scenarios.
//! * [`history`] — invocation/response timeline recording
//!   (`SF_CHECK_HISTORY=1` in the workload driver) and a Wing–Gong/WGL
//!   linearizability checker with memoised state hashing, including a
//!   crash mode that validates post-`recover()` states.
//!
//! The [`hooks`] module is the thin global layer production code calls:
//! every hook is gated on an atomic flag and is a no-op until the matching
//! `SF_CHECK_*` variable arms it, so `--features check` builds stay usable
//! for ordinary runs. A detected race or inversion panics with both
//! accesses' context and the `sf-obs` flight-recorder dump.
//!
//! Raw relaxed counters that are racy by design (hot-key popularity,
//! statistics) are suppressed through the typed [`benign`] API — mirroring
//! the sf-lint `SF-RELAXED-ATOMIC` waiver taxonomy — and counted, so a
//! clean run reports what it skipped.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod history;
pub mod race;
pub mod sched;
pub mod vc;

pub use race::{BenignKind, Detector, RaceReport, ThreadSlot, Violation};
pub use sched::{sched_point, SchedEvent};

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

thread_local! {
    static BENIGN_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Scope guard marking the current thread's monitored accesses as benign
/// (suppressed from race reporting, but counted).
pub struct BenignGuard {
    kind: BenignKind,
}

impl Drop for BenignGuard {
    fn drop(&mut self) {
        let _ = self.kind;
        BENIGN_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

/// Enter a benign region: monitored accesses on this thread are exempt
/// from race checking until the returned guard drops. Also counts one
/// suppressed access of `kind` (so un-instrumented raw counters can call
/// this purely for the accounting).
pub fn benign(kind: BenignKind) -> BenignGuard {
    BENIGN_DEPTH.with(|d| d.set(d.get() + 1));
    if races_enabled() {
        hooks::detector().note_benign(kind);
    }
    BenignGuard { kind }
}

static RACES_ON: AtomicBool = AtomicBool::new(false);
static RACES_INIT: OnceLock<bool> = OnceLock::new();

/// Is the race detector armed? Reads `SF_CHECK_RACES=1` once, after which
/// [`set_races_enabled`] can override (used by self-tests and the driver).
#[inline]
pub fn races_enabled() -> bool {
    if RACES_INIT.get().is_some() {
        return RACES_ON.load(Ordering::Relaxed);
    }
    let on = *RACES_INIT.get_or_init(|| std::env::var("SF_CHECK_RACES").is_ok_and(|v| v == "1"));
    if on {
        RACES_ON.store(true, Ordering::Relaxed);
    }
    RACES_ON.load(Ordering::Relaxed)
}

/// Force the race detector on or off (overrides the env).
pub fn set_races_enabled(on: bool) {
    let _ = RACES_INIT.get_or_init(|| on);
    RACES_ON.store(on, Ordering::Relaxed);
}

/// The thin global instrumentation layer. Call sites live in the
/// `parking_lot` shim and in `sf_stm`; each hook no-ops unless
/// [`races_enabled`] (the sched points are armed separately through
/// [`sched`]).
pub mod hooks {
    use super::*;
    use race::{Detector, ThreadSlot, Violation};
    use std::cell::RefCell;

    static DETECTOR: OnceLock<Detector> = OnceLock::new();

    /// The process-global detector behind the hooks.
    pub fn detector() -> &'static Detector {
        DETECTOR.get_or_init(Detector::new)
    }

    thread_local! {
        static SLOT: RefCell<Option<ThreadSlot>> = const { RefCell::new(None) };
    }

    fn with_slot(f: impl FnOnce(&Detector, &mut ThreadSlot) -> Option<Violation>) {
        if !races_enabled() {
            return;
        }
        let d = detector();
        let violation = SLOT.with(|s| {
            let mut slot = s.borrow_mut();
            let slot = slot.get_or_insert_with(|| {
                let name = std::thread::current()
                    .name()
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("thread-{:?}", std::thread::current().id()));
                d.register(&name)
            });
            f(d, slot)
        });
        if let Some(v) = violation {
            fail(v);
        }
    }

    fn fail(v: Violation) -> ! {
        let dump = sf_obs::FlightRecorder::global().dump();
        let replay = sched::replay_hint().unwrap_or_default();
        panic!(
            "sf-check {}: {}\n--- flight recorder ---\n{}{}",
            v.kind, v.message, dump, replay
        );
    }

    /// Shim lock acquired (mutex or rwlock write). `class` is a stable
    /// name for the lock-order graph.
    pub fn lock_acquired(addr: usize, class: &'static str) {
        with_slot(|d, s| d.lock_acquire(s, addr, class));
    }

    /// Shim lock released.
    pub fn lock_released(addr: usize) {
        with_slot(|d, s| {
            d.lock_release(s, addr);
            None
        });
    }

    /// Shim lock destroyed: forget its clock and instance edges so a
    /// recycled allocation does not inherit stale ordering.
    pub fn lock_destroyed(addr: usize) {
        if !races_enabled() {
            return;
        }
        detector().sync_forget(addr);
    }

    /// STM cell dropped: forget its variable history and sync channels so
    /// the allocator reusing the address cannot produce phantom races
    /// against the previous tenant.
    pub fn cell_retired(addr: usize) {
        if !races_enabled() {
            return;
        }
        detector().retire_cell(addr);
    }

    /// STM version-lock word acquired (commit-time or encounter-time
    /// `try_lock` success).
    pub fn cell_locked(addr: usize) {
        with_slot(|d, s| {
            d.sync_acquire(s, addr);
            None
        });
    }

    /// STM version-lock word released without publishing (abort path).
    pub fn cell_unlocked(addr: usize) {
        with_slot(|d, s| {
            d.sync_release(s, addr);
            None
        });
    }

    /// Validated transactional read of a cell: acquire edge from the
    /// version word, the read check, then a release into the cell's
    /// *reader channel* (`addr ^ 1` — cells are 8-aligned so the odd
    /// address never collides with a real sync object).
    ///
    /// The reader-channel release is what makes TL2's invisible reads
    /// visible to the detector: the next writer absorbs it in
    /// [`cell_published`], so a protocol-correct `validated read → lock →
    /// publish` sequence is ordered. A read whose validation the writer
    /// never observed (a publish that skipped the lock) stays unordered
    /// and is reported.
    pub fn cell_read(addr: usize, site: &'static str) {
        with_slot(|d, s| {
            if benign_here() {
                d.note_benign(BenignKind::Other("benign-scope"));
                return None;
            }
            d.cell_read_op(s, addr, site)
        });
    }

    /// Commit publish of a cell (`write_and_unlock`): absorb the reader
    /// channel (`addr ^ 1`), write check, then the release edge through
    /// the version word itself.
    ///
    /// The reader-channel acquire must NOT be folded into the version
    /// word: a buggy publish that skipped the lock would then absorb the
    /// previous publisher's release and hide the write-write race. Kept
    /// separate, prior *reads* are forgiven (they validated against the
    /// version word) while an unlocked prior *write* still fails the
    /// epoch check, because only [`cell_locked`] acquires the word.
    pub fn cell_published(addr: usize, site: &'static str) {
        with_slot(|d, s| {
            let check = !benign_here();
            if !check {
                d.note_benign(BenignKind::Other("benign-scope"));
            }
            d.cell_publish_op(s, addr, site, check)
        });
    }

    /// Count a deliberately racy raw access (hot/stats counters) without
    /// running the race check.
    pub fn benign_access(kind: BenignKind) {
        if races_enabled() {
            detector().note_benign(kind);
        }
    }

    fn benign_here() -> bool {
        BENIGN_DEPTH.with(|d| d.get() > 0)
    }

    /// End-of-run one-line summary (returns `None` when the detector is
    /// off). The driver prints this after a checked run.
    pub fn summary() -> Option<String> {
        if !races_enabled() {
            return None;
        }
        let d = detector();
        let r = d.report();
        let kinds: Vec<String> = d
            .benign_breakdown()
            .into_iter()
            .filter(|(_, n)| *n > 0)
            .map(|(k, n)| format!("{k}={n}"))
            .collect();
        Some(format!(
            "sf-check races: {} race(s), {} inversion(s); {} reads / {} writes monitored; {} benign suppressed [{}]",
            r.races,
            r.order_violations,
            r.monitored_reads,
            r.monitored_writes,
            r.benign_suppressed,
            kinds.join(" ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_guard_nests_and_counts() {
        set_races_enabled(true);
        {
            let _a = benign(BenignKind::StatsCounter);
            let _b = benign(BenignKind::HotCounter);
        }
        hooks::benign_access(BenignKind::HotCounter);
        let report = hooks::detector().report();
        assert!(report.benign_suppressed >= 3);
        // With the guards dropped the depth is back to zero.
        BENIGN_DEPTH.with(|d| assert_eq!(d.get(), 0));
    }

    #[test]
    fn summary_mentions_monitored_counts() {
        set_races_enabled(true);
        let s = hooks::summary().expect("enabled");
        assert!(s.contains("monitored"), "{s}");
    }
}
