//! FastTrack-style happens-before race detection plus runtime lock-order
//! checking.
//!
//! The engine is instance-based: a [`Detector`] owns all shared analysis
//! state, and each analysed thread holds a [`ThreadSlot`] (its vector clock
//! and lock-held set). Production instrumentation goes through the global
//! detector in [`crate::hooks`]; unit tests and the mutation self-tests
//! construct a private `Detector` and drive several [`ThreadSlot`]s from a
//! single test thread to replay an interleaving deterministically.
//!
//! ## What counts as a synchronisation edge
//!
//! * shim `Mutex`/`RwLock` acquire and release (`lock_*` methods) — these
//!   also feed the lock-order graph;
//! * STM version-lock words: `try_lock` success, `unlock_restore`, and the
//!   `write_and_unlock` publish are release/acquire operations on the lock
//!   word in the real memory model, so they are modelled as edges too
//!   (`sync_acquire` / `sync_release`);
//! * a validated transactional read or unit read carries the publishing
//!   committer's clock into the reader (`sync_acquire` before the read
//!   check).
//!
//! ## Lock ordering
//!
//! Cross-class edges (`class held → class acquired`) feed a directed graph;
//! a cycle is an inversion. Locks of the *same* class may be nested (the
//! sharded map takes two `move_lock`s in index order), so same-class
//! nesting is checked pairwise by instance address: observing both
//! `(a → b)` and `(b → a)` for the same class is an inversion — unless
//! every observation of both orders happened under a common **gate lock**
//! (a third lock held across both acquisitions, e.g. the shard move locks
//! that serialize the direction-dependent `durable.checkpoint` nesting of
//! a cross-shard move), which rules the deadlock out.

use crate::vc::VectorClock;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Why a raw access is exempt from race reporting. Mirrors the waiver
/// taxonomy of sf-lint's `SF-RELAXED-ATOMIC` rule: every suppression names
/// its justification so the clean run stays meaningful.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BenignKind {
    /// Hot-key popularity counters on tree nodes: monotonic heuristics,
    /// lossy by design.
    HotCounter,
    /// Throughput/abort statistics counters: aggregated after quiescence.
    StatsCounter,
    /// Quiescent-state inspection (`unsync_load` after all workers joined).
    QuiescentInspect,
    /// Initialisation of a not-yet-published object (`unsync_store`).
    UnpublishedInit,
    /// Anything else; the string should say why it is safe.
    Other(&'static str),
}

impl BenignKind {
    fn index(self) -> usize {
        match self {
            BenignKind::HotCounter => 0,
            BenignKind::StatsCounter => 1,
            BenignKind::QuiescentInspect => 2,
            BenignKind::UnpublishedInit => 3,
            BenignKind::Other(_) => 4,
        }
    }

    /// Stable label used in the suppression summary.
    pub fn label(self) -> &'static str {
        match self {
            BenignKind::HotCounter => "hot-counter",
            BenignKind::StatsCounter => "stats-counter",
            BenignKind::QuiescentInspect => "quiescent-inspect",
            BenignKind::UnpublishedInit => "unpublished-init",
            BenignKind::Other(_) => "other",
        }
    }
}

const BENIGN_KINDS: usize = 5;

/// A detected violation. The global hook layer panics on these; the
/// instance API returns them so self-tests can assert on detection power.
#[derive(Clone, Debug)]
pub struct Violation {
    /// `"data-race"` or `"lock-order"`.
    pub kind: &'static str,
    /// Full human-readable report (both accesses / the cycle).
    pub message: String,
}

#[derive(Clone, Debug)]
struct Access {
    tid: u32,
    clk: u64,
    site: &'static str,
    thread: String,
}

impl Access {
    fn describe(&self) -> String {
        format!(
            "{} at {} (epoch {}@{})",
            self.thread, self.site, self.clk, self.tid
        )
    }
}

#[derive(Default)]
struct VarState {
    last_write: Option<Access>,
    /// Reads since the last write that are not yet ordered before any
    /// subsequent write — the concurrent-read set of FastTrack's read VC.
    reads: Vec<Access>,
}

#[derive(Default)]
struct OrderGraph {
    /// class held -> classes acquired while holding it.
    class_edges: HashMap<&'static str, HashSet<&'static str>>,
    /// Per-class pairwise instance order for intentional same-class nesting.
    /// Each observed `(first, second)` pair keeps the intersection of the
    /// gate sets (other locks held at the second acquisition) across all its
    /// observations: a reversed pair only deadlocks if the two orders are
    /// not both protected by a common gate lock.
    same_class: HashMap<&'static str, HashMap<(usize, usize), HashSet<usize>>>,
}

impl OrderGraph {
    fn reaches(&self, from: &'static str, to: &'static str) -> Option<Vec<&'static str>> {
        // DFS for a path from `from` to `to` in the class graph.
        let mut stack = vec![(from, vec![from])];
        let mut seen = HashSet::new();
        while let Some((node, path)) = stack.pop() {
            if node == to {
                return Some(path);
            }
            if !seen.insert(node) {
                continue;
            }
            if let Some(nexts) = self.class_edges.get(node) {
                for &n in nexts {
                    let mut p = path.clone();
                    p.push(n);
                    stack.push((n, p));
                }
            }
        }
        None
    }
}

#[derive(Default)]
struct State {
    next_tid: u32,
    vars: HashMap<usize, VarState>,
    syncs: HashMap<usize, VectorClock>,
    order: OrderGraph,
}

/// A held lock as seen by the order checker.
#[derive(Clone, Copy, Debug)]
struct Held {
    addr: usize,
    class: &'static str,
}

/// Per-thread analysis state. Owned by the analysed thread (or by a test
/// simulating one); methods on [`Detector`] take it explicitly so a single
/// test thread can interleave several logical threads.
pub struct ThreadSlot {
    tid: u32,
    name: String,
    clock: VectorClock,
    held: Vec<Held>,
}

impl ThreadSlot {
    /// This slot's thread index within its detector.
    pub fn tid(&self) -> u32 {
        self.tid
    }
}

/// Aggregate counters for the end-of-run summary.
#[derive(Clone, Copy, Debug, Default)]
pub struct RaceReport {
    /// Data races reported.
    pub races: u64,
    /// Lock-order inversions reported.
    pub order_violations: u64,
    /// Accesses skipped under a [`BenignKind`] suppression.
    pub benign_suppressed: u64,
    /// Reads that went through the full vector-clock check.
    pub monitored_reads: u64,
    /// Writes that went through the full vector-clock check.
    pub monitored_writes: u64,
}

/// The race/lock-order detection engine.
pub struct Detector {
    state: Mutex<State>,
    races: AtomicU64,
    order_violations: AtomicU64,
    monitored_reads: AtomicU64,
    monitored_writes: AtomicU64,
    benign: [AtomicU64; BENIGN_KINDS],
}

impl Default for Detector {
    fn default() -> Self {
        Self::new()
    }
}

impl Detector {
    /// A fresh detector with no threads registered.
    pub fn new() -> Detector {
        Detector {
            state: Mutex::new(State::default()),
            races: AtomicU64::new(0),
            order_violations: AtomicU64::new(0),
            monitored_reads: AtomicU64::new(0),
            monitored_writes: AtomicU64::new(0),
            benign: Default::default(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Register a logical thread and return its slot. The initial clock
    /// already ticks once so the first access has a non-zero epoch.
    pub fn register(&self, name: &str) -> ThreadSlot {
        let mut st = self.lock();
        let tid = st.next_tid;
        st.next_tid += 1;
        let mut clock = VectorClock::new();
        clock.tick(tid);
        ThreadSlot {
            tid,
            name: name.to_string(),
            clock,
            held: Vec::new(),
        }
    }

    /// Record that `child` was forked from (and thus ordered after)
    /// `parent`'s current point.
    pub fn fork(&self, parent: &mut ThreadSlot, child: &mut ThreadSlot) {
        child.clock.join(&parent.clock);
        parent.clock.tick(parent.tid);
    }

    /// Record that `parent` observed `child`'s completion (join edge).
    pub fn join(&self, parent: &mut ThreadSlot, child: &ThreadSlot) {
        parent.clock.join(&child.clock);
    }

    /// Happens-before edge *into* the thread from sync object `addr`
    /// (acquire side of a release/acquire pair).
    pub fn sync_acquire(&self, slot: &mut ThreadSlot, addr: usize) {
        let st = self.lock();
        if let Some(vc) = st.syncs.get(&addr) {
            slot.clock.join(vc);
        }
    }

    /// Happens-before edge *out of* the thread into sync object `addr`
    /// (release side). Ticks the thread clock so later accesses are not
    /// retroactively ordered.
    pub fn sync_release(&self, slot: &mut ThreadSlot, addr: usize) {
        let mut st = self.lock();
        st.syncs.entry(addr).or_default().join(&slot.clock);
        slot.clock.tick(slot.tid);
    }

    /// Drop all knowledge of sync object `addr` (called when a lock is
    /// destroyed, so a reused allocation does not inherit stale ordering).
    pub fn sync_forget(&self, addr: usize) {
        self.lock().syncs.remove(&addr);
    }

    /// Drop all knowledge of STM cell `addr`: its variable history and
    /// both sync channels (the version word and the `addr ^ 1` reader
    /// channel). Called when a cell is dropped, so the allocator reusing
    /// its address cannot produce phantom races against the old tenant.
    pub fn retire_cell(&self, addr: usize) {
        let mut st = self.lock();
        st.vars.remove(&addr);
        st.syncs.remove(&addr);
        st.syncs.remove(&(addr ^ 1));
    }

    /// Checked read of shared variable `addr` from site `site`.
    pub fn read(
        &self,
        slot: &mut ThreadSlot,
        addr: usize,
        site: &'static str,
    ) -> Option<Violation> {
        self.monitored_reads.fetch_add(1, Ordering::Relaxed);
        let mut st = self.lock();
        self.read_in(&mut st, slot, addr, site)
    }

    fn read_in(
        &self,
        st: &mut State,
        slot: &mut ThreadSlot,
        addr: usize,
        site: &'static str,
    ) -> Option<Violation> {
        let var = st.vars.entry(addr).or_default();
        let violation = match &var.last_write {
            Some(w) if !slot.clock.covers(w.tid, w.clk) => {
                Some(self.race(addr, "read", slot, "prior write", w.describe(), site))
            }
            _ => None,
        };
        let me = Access {
            tid: slot.tid,
            clk: slot.clock.get(slot.tid),
            site,
            thread: slot.name.clone(),
        };
        // Keep the read set minimal: drop reads this one supersedes.
        var.reads
            .retain(|r| r.tid != me.tid && !slot.clock.covers(r.tid, r.clk));
        var.reads.push(me);
        violation
    }

    /// Checked write of shared variable `addr` from site `site`.
    pub fn write(
        &self,
        slot: &mut ThreadSlot,
        addr: usize,
        site: &'static str,
    ) -> Option<Violation> {
        self.monitored_writes.fetch_add(1, Ordering::Relaxed);
        let mut st = self.lock();
        self.write_in(&mut st, slot, addr, site)
    }

    fn write_in(
        &self,
        st: &mut State,
        slot: &mut ThreadSlot,
        addr: usize,
        site: &'static str,
    ) -> Option<Violation> {
        let var = st.vars.entry(addr).or_default();
        let mut violation = None;
        if let Some(w) = &var.last_write {
            if !slot.clock.covers(w.tid, w.clk) {
                violation = Some(self.race(addr, "write", slot, "prior write", w.describe(), site));
            }
        }
        if violation.is_none() {
            for r in &var.reads {
                if r.tid != slot.tid && !slot.clock.covers(r.tid, r.clk) {
                    violation =
                        Some(self.race(addr, "write", slot, "concurrent read", r.describe(), site));
                    break;
                }
            }
        }
        var.reads.clear();
        var.last_write = Some(Access {
            tid: slot.tid,
            clk: slot.clock.get(slot.tid),
            site,
            thread: slot.name.clone(),
        });
        violation
    }

    /// The full detector action for one validated STM read, under a single
    /// state-lock critical section: acquire edge from the version word,
    /// the read check, then a release into the `addr ^ 1` reader channel.
    ///
    /// The atomicity matters: hooks run at some delay after the memory
    /// accesses they describe, so a reader's hook can land between a
    /// concurrent publisher's write-check and its release edge. Done as
    /// three separate lock sections that interleaving manufactures a
    /// phantom race; done under one section, the publisher's release is
    /// either fully visible here or not yet recorded at all.
    pub fn cell_read_op(
        &self,
        slot: &mut ThreadSlot,
        addr: usize,
        site: &'static str,
    ) -> Option<Violation> {
        self.monitored_reads.fetch_add(1, Ordering::Relaxed);
        let mut st = self.lock();
        if let Some(vc) = st.syncs.get(&addr) {
            slot.clock.join(vc);
        }
        let violation = self.read_in(&mut st, slot, addr, site);
        st.syncs.entry(addr ^ 1).or_default().join(&slot.clock);
        slot.clock.tick(slot.tid);
        violation
    }

    /// The full detector action for one commit publish, under a single
    /// state-lock critical section (see [`Self::cell_read_op`] for why):
    /// absorb the `addr ^ 1` reader channel, the write check (skipped but
    /// the edges kept when `check` is false — benign scope), then the
    /// release edge through the version word itself.
    pub fn cell_publish_op(
        &self,
        slot: &mut ThreadSlot,
        addr: usize,
        site: &'static str,
        check: bool,
    ) -> Option<Violation> {
        if check {
            self.monitored_writes.fetch_add(1, Ordering::Relaxed);
        }
        let mut st = self.lock();
        if let Some(vc) = st.syncs.get(&(addr ^ 1)) {
            slot.clock.join(vc);
        }
        let violation = if check {
            self.write_in(&mut st, slot, addr, site)
        } else {
            None
        };
        st.syncs.entry(addr).or_default().join(&slot.clock);
        slot.clock.tick(slot.tid);
        violation
    }

    fn race(
        &self,
        addr: usize,
        op: &str,
        slot: &ThreadSlot,
        other_role: &str,
        other: String,
        site: &'static str,
    ) -> Violation {
        self.races.fetch_add(1, Ordering::Relaxed);
        Violation {
            kind: "data-race",
            message: format!(
                "data race on 0x{addr:x}: {op} by {} at {site} is unordered with {other_role} by {other}",
                slot.name
            ),
        }
    }

    /// Blocking-lock acquisition: order check, order-graph update, held-set
    /// push, and the acquire-side happens-before edge.
    pub fn lock_acquire(
        &self,
        slot: &mut ThreadSlot,
        addr: usize,
        class: &'static str,
    ) -> Option<Violation> {
        let mut violation = None;
        {
            let mut st = self.lock();
            for h in &slot.held {
                if h.addr == addr {
                    // Recursive acquisition of the very same instance would
                    // self-deadlock; report it as an order violation.
                    violation = Some(Violation {
                        kind: "lock-order",
                        message: format!(
                            "{} re-acquired lock {class} (0x{addr:x}) it already holds",
                            slot.name
                        ),
                    });
                    continue;
                }
                if h.class == class {
                    let pair = (h.addr, addr);
                    let rev = (addr, h.addr);
                    let gates: HashSet<usize> = slot
                        .held
                        .iter()
                        .map(|g| g.addr)
                        .filter(|&a| a != h.addr && a != addr)
                        .collect();
                    let pairs = st.order.same_class.entry(class).or_default();
                    if let Some(rev_gates) = pairs.get(&rev) {
                        if rev_gates.is_disjoint(&gates) {
                            violation = Some(Violation {
                                kind: "lock-order",
                                message: format!(
                                    "same-class lock-order inversion on {class}: {} acquired 0x{:x} then 0x{:x}, but the reverse nesting was also observed (and no common gate lock protects both orders)",
                                    slot.name, h.addr, addr
                                ),
                            });
                        }
                    }
                    pairs
                        .entry(pair)
                        .and_modify(|g| g.retain(|a| gates.contains(a)))
                        .or_insert(gates);
                } else {
                    // Would edge h.class -> class close a cycle?
                    if let Some(mut path) = st.order.reaches(class, h.class) {
                        path.push(class);
                        violation = Some(Violation {
                            kind: "lock-order",
                            message: format!(
                                "lock-order inversion: {} acquired {class} while holding {}, but the order graph already has {}",
                                slot.name,
                                h.class,
                                path.join(" -> ")
                            ),
                        });
                    }
                    st.order
                        .class_edges
                        .entry(h.class)
                        .or_default()
                        .insert(class);
                }
            }
        }
        if violation.is_some() {
            self.order_violations.fetch_add(1, Ordering::Relaxed);
        }
        self.sync_acquire(slot, addr);
        slot.held.push(Held { addr, class });
        violation
    }

    /// Lock release: held-set pop and the release-side edge.
    pub fn lock_release(&self, slot: &mut ThreadSlot, addr: usize) {
        if let Some(pos) = slot.held.iter().rposition(|h| h.addr == addr) {
            slot.held.remove(pos);
        }
        self.sync_release(slot, addr);
    }

    /// Count a suppressed access without running the race check.
    pub fn note_benign(&self, kind: BenignKind) {
        self.benign[kind.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Counter snapshot for the end-of-run summary.
    pub fn report(&self) -> RaceReport {
        RaceReport {
            races: self.races.load(Ordering::Relaxed),
            order_violations: self.order_violations.load(Ordering::Relaxed),
            benign_suppressed: self.benign.iter().map(|c| c.load(Ordering::Relaxed)).sum(),
            monitored_reads: self.monitored_reads.load(Ordering::Relaxed),
            monitored_writes: self.monitored_writes.load(Ordering::Relaxed),
        }
    }

    /// Per-kind suppression counts, labelled.
    pub fn benign_breakdown(&self) -> Vec<(&'static str, u64)> {
        const LABELS: [&str; BENIGN_KINDS] = [
            "hot-counter",
            "stats-counter",
            "quiescent-inspect",
            "unpublished-init",
            "other",
        ];
        LABELS
            .iter()
            .zip(self.benign.iter())
            .map(|(l, c)| (*l, c.load(Ordering::Relaxed)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unordered_write_write_is_a_race() {
        let d = Detector::new();
        let mut a = d.register("a");
        let mut b = d.register("b");
        assert!(d.write(&mut a, 0x10, "t1").is_none());
        let v = d.write(&mut b, 0x10, "t2").expect("race expected");
        assert_eq!(v.kind, "data-race");
        assert!(v.message.contains("0x10"));
    }

    #[test]
    fn lock_protected_accesses_are_ordered() {
        let d = Detector::new();
        let mut a = d.register("a");
        let mut b = d.register("b");
        assert!(d.lock_acquire(&mut a, 0x1, "m").is_none());
        assert!(d.write(&mut a, 0x10, "w").is_none());
        d.lock_release(&mut a, 0x1);
        assert!(d.lock_acquire(&mut b, 0x1, "m").is_none());
        assert!(d.read(&mut b, 0x10, "r").is_none());
        assert!(d.write(&mut b, 0x10, "w").is_none());
        d.lock_release(&mut b, 0x1);
    }

    #[test]
    fn read_then_unordered_write_is_a_race() {
        let d = Detector::new();
        let mut a = d.register("a");
        let mut b = d.register("b");
        assert!(d.lock_acquire(&mut a, 0x1, "m").is_none());
        assert!(d.write(&mut a, 0x10, "w").is_none());
        d.lock_release(&mut a, 0x1);
        assert!(d.lock_acquire(&mut b, 0x1, "m").is_none());
        assert!(d.read(&mut b, 0x10, "r").is_none());
        d.lock_release(&mut b, 0x1);
        // `a` writes again without re-synchronising with b's read.
        let v = d.write(&mut a, 0x10, "w2").expect("race expected");
        assert!(v.message.contains("concurrent read"));
    }

    #[test]
    fn stm_publish_read_edge_orders_accesses() {
        // Models: committer locks the cell word, publishes value+version,
        // reader performs a validated read (acquire on the same word).
        let d = Detector::new();
        let mut w = d.register("committer");
        let mut r = d.register("reader");
        let word = 0x100;
        let data = 0x108;
        d.sync_acquire(&mut w, word); // try_lock success
        assert!(d.write(&mut w, data, "stm::publish").is_none());
        d.sync_release(&mut w, word); // write_and_unlock
        d.sync_acquire(&mut r, word); // validated read of the version word
        assert!(d.read(&mut r, data, "stm::read").is_none());
    }

    #[test]
    fn cross_class_cycle_is_reported() {
        let d = Detector::new();
        let mut a = d.register("a");
        let mut b = d.register("b");
        assert!(d.lock_acquire(&mut a, 0x1, "wal.state").is_none());
        assert!(d.lock_acquire(&mut a, 0x2, "move_lock").is_none());
        d.lock_release(&mut a, 0x2);
        d.lock_release(&mut a, 0x1);
        assert!(d.lock_acquire(&mut b, 0x2, "move_lock").is_none());
        let v = d
            .lock_acquire(&mut b, 0x1, "wal.state")
            .expect("inversion expected");
        assert_eq!(v.kind, "lock-order");
        assert!(v.message.contains("wal.state"), "{}", v.message);
    }

    #[test]
    fn same_class_inversion_is_reported_but_consistent_nesting_is_not() {
        let d = Detector::new();
        let mut a = d.register("a");
        // Consistent (lo, hi) order twice: fine.
        assert!(d.lock_acquire(&mut a, 0x10, "move_lock").is_none());
        assert!(d.lock_acquire(&mut a, 0x20, "move_lock").is_none());
        d.lock_release(&mut a, 0x20);
        d.lock_release(&mut a, 0x10);
        assert!(d.lock_acquire(&mut a, 0x10, "move_lock").is_none());
        assert!(d.lock_acquire(&mut a, 0x20, "move_lock").is_none());
        d.lock_release(&mut a, 0x20);
        d.lock_release(&mut a, 0x10);
        // Reversed pair: inversion.
        let mut b = d.register("b");
        assert!(d.lock_acquire(&mut b, 0x20, "move_lock").is_none());
        let v = d
            .lock_acquire(&mut b, 0x10, "move_lock")
            .expect("same-class inversion expected");
        assert_eq!(v.kind, "lock-order");
        assert_eq!(d.report().order_violations, 1);
    }

    #[test]
    fn gated_same_class_reversal_is_not_an_inversion() {
        // The cross-shard move pattern: both directions of the
        // direction-dependent checkpoint-lock nesting run under the same
        // pair of (consistently ordered) move locks, so no deadlock.
        let d = Detector::new();
        let mut a = d.register("a");
        assert!(d.lock_acquire(&mut a, 0x1, "move_lock").is_none());
        assert!(d.lock_acquire(&mut a, 0x2, "move_lock").is_none());
        assert!(d.lock_acquire(&mut a, 0x10, "checkpoint").is_none());
        assert!(d.lock_acquire(&mut a, 0x20, "checkpoint").is_none());
        for addr in [0x20, 0x10, 0x2, 0x1] {
            d.lock_release(&mut a, addr);
        }
        let mut b = d.register("b");
        assert!(d.lock_acquire(&mut b, 0x1, "move_lock").is_none());
        assert!(d.lock_acquire(&mut b, 0x2, "move_lock").is_none());
        assert!(d.lock_acquire(&mut b, 0x20, "checkpoint").is_none());
        assert!(
            d.lock_acquire(&mut b, 0x10, "checkpoint").is_none(),
            "reversed checkpoint nesting is gated by the move locks"
        );
        assert_eq!(d.report().order_violations, 0);
    }

    #[test]
    fn fork_join_edges_order_accesses() {
        let d = Detector::new();
        let mut main = d.register("main");
        let mut child = d.register("child");
        assert!(d.write(&mut main, 0x10, "init").is_none());
        d.fork(&mut main, &mut child);
        assert!(d.read(&mut child, 0x10, "child-read").is_none());
        assert!(d.write(&mut child, 0x10, "child-write").is_none());
        d.join(&mut main, &child);
        assert!(d.read(&mut main, 0x10, "after-join").is_none());
        assert_eq!(d.report().races, 0);
    }

    #[test]
    fn benign_counts_do_not_race() {
        let d = Detector::new();
        d.note_benign(BenignKind::HotCounter);
        d.note_benign(BenignKind::HotCounter);
        d.note_benign(BenignKind::StatsCounter);
        let r = d.report();
        assert_eq!(r.benign_suppressed, 3);
        assert_eq!(r.races, 0);
        let kinds = d.benign_breakdown();
        assert_eq!(kinds[0], ("hot-counter", 2));
        assert_eq!(kinds[1], ("stats-counter", 1));
    }

    #[test]
    fn sync_forget_clears_stale_ordering() {
        let d = Detector::new();
        let mut a = d.register("a");
        let mut b = d.register("b");
        d.sync_release(&mut a, 0x1);
        d.sync_forget(0x1);
        // b acquires the recycled address but must NOT inherit a's clock,
        // so the read is (correctly) racy.
        d.sync_acquire(&mut b, 0x1);
        assert!(d.write(&mut a, 0x10, "w").is_none());
        assert!(d.read(&mut b, 0x10, "r").is_some());
    }
}
