//! Vector clocks: the happens-before lattice underlying the race detector.
//!
//! A [`VectorClock`] maps thread indices to logical timestamps. Thread `t`'s
//! clock `C_t` summarises everything `t` has observed: `C_t[u] = k` means
//! "`t` has seen `u`'s first `k` increments". An access by `t` is ordered
//! after an access `(u, k)` iff `C_t[u] >= k` — the FastTrack epoch test.

/// A growable vector clock. Missing entries read as zero.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VectorClock {
    slots: Vec<u64>,
}

impl VectorClock {
    /// The empty clock (everything reads zero).
    pub fn new() -> Self {
        VectorClock { slots: Vec::new() }
    }

    /// Component for thread index `tid`.
    pub fn get(&self, tid: u32) -> u64 {
        self.slots.get(tid as usize).copied().unwrap_or(0)
    }

    /// Set component `tid` to `value` (grows as needed).
    pub fn set(&mut self, tid: u32, value: u64) {
        let idx = tid as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, 0);
        }
        self.slots[idx] = value;
    }

    /// Increment this thread's own component and return the new value.
    pub fn tick(&mut self, tid: u32) -> u64 {
        let next = self.get(tid) + 1;
        self.set(tid, next);
        next
    }

    /// Pointwise maximum: `self ⊔= other`.
    pub fn join(&mut self, other: &VectorClock) {
        if other.slots.len() > self.slots.len() {
            self.slots.resize(other.slots.len(), 0);
        }
        for (i, &v) in other.slots.iter().enumerate() {
            if v > self.slots[i] {
                self.slots[i] = v;
            }
        }
    }

    /// Does this clock dominate the epoch `(tid, value)`? In FastTrack
    /// terms: has the owner of this clock observed that access?
    pub fn covers(&self, tid: u32, value: u64) -> bool {
        self.get(tid) >= value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_tick() {
        let mut c = VectorClock::new();
        assert_eq!(c.get(3), 0);
        c.set(3, 7);
        assert_eq!(c.get(3), 7);
        assert_eq!(c.tick(3), 8);
        assert_eq!(c.get(3), 8);
        assert_eq!(c.tick(0), 1);
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VectorClock::new();
        a.set(0, 5);
        a.set(2, 1);
        let mut b = VectorClock::new();
        b.set(0, 3);
        b.set(1, 9);
        a.join(&b);
        assert_eq!(a.get(0), 5);
        assert_eq!(a.get(1), 9);
        assert_eq!(a.get(2), 1);
    }

    #[test]
    fn covers_is_epoch_ordering() {
        let mut c = VectorClock::new();
        c.set(1, 4);
        assert!(c.covers(1, 4));
        assert!(c.covers(1, 3));
        assert!(!c.covers(1, 5));
        assert!(!c.covers(2, 1));
        assert!(c.covers(2, 0));
    }
}
