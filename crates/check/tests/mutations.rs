//! Mutation self-tests: deliberately broken code that sf-check MUST catch.
//!
//! Each test plants a known concurrency bug — an unlocked publish (racy
//! counter), a lock-order inversion, a stub backend that acknowledges an
//! insert and then denies it — and asserts the matching engine reports it.
//! A detector that stays silent here is broken, whatever its clean-run
//! tests say. This file is an integration test so it owns its process: the
//! global hook-layer detector can be armed without leaking into other
//! suites (tests within the file use disjoint addresses and lock classes).

use sf_check::history::{check_history, Op, Recorder, Ret};
use sf_check::hooks;
use std::sync::Arc;

fn panic_text(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("<non-string panic>")
    }
}

/// Seeded racy counter, end-to-end through the hook layer: thread A
/// publishes a cell under the version lock (the correct TL2 protocol);
/// thread B is the mutation — it publishes the same cell without ever
/// acquiring the lock, so no happens-before edge orders the two writes.
/// The detector must kill thread B with a data-race report that names both
/// sites.
#[test]
fn unlocked_publish_racy_counter_is_caught() {
    sf_check::set_races_enabled(true);
    let addr = 0x7000usize; // stand-in 8-aligned cell address, unique to this test
    std::thread::Builder::new()
        .name("mut-counter-a".into())
        .spawn(move || {
            hooks::cell_locked(addr);
            hooks::cell_published(addr, "mut.counter.locked");
        })
        .unwrap()
        .join()
        .expect("the protocol-correct writer must survive");
    let result = std::thread::Builder::new()
        .name("mut-counter-b".into())
        .spawn(move || {
            // MUTATION: publish with no cell_locked first.
            hooks::cell_published(addr, "mut.counter.unlocked");
        })
        .unwrap()
        .join();
    let msg = panic_text(result.expect_err("the unlocked publish must be reported"));
    assert!(msg.contains("data-race"), "wrong report kind: {msg}");
    assert!(
        msg.contains("mut.counter.unlocked") && msg.contains("mut-counter-a"),
        "report must name the racing site and the prior writer: {msg}"
    );
}

/// The same mutation inside a typed benign scope must NOT be reported —
/// and must be counted as suppressed. This is the escape hatch for
/// deliberately racy counters; a suppression that silently widened to
/// everything would also be caught here, because the first test proves the
/// identical access panics outside the scope.
#[test]
fn benign_scope_suppresses_the_same_mutation() {
    sf_check::set_races_enabled(true);
    let addr = 0x7010usize;
    std::thread::Builder::new()
        .name("mut-benign-a".into())
        .spawn(move || {
            hooks::cell_locked(addr);
            hooks::cell_published(addr, "mut.benign.locked");
        })
        .unwrap()
        .join()
        .expect("the protocol-correct writer must survive");
    std::thread::Builder::new()
        .name("mut-benign-b".into())
        .spawn(move || {
            let _guard = sf_check::benign(sf_check::BenignKind::Other("mutation-test"));
            hooks::cell_published(addr, "mut.benign.unlocked");
        })
        .unwrap()
        .join()
        .expect("a benign-scoped access must be suppressed, not reported");
    let suppressed = hooks::detector().report().benign_suppressed;
    assert!(suppressed > 0, "suppression must be counted");
}

/// Lock-order inversion through the hook layer: thread A establishes
/// `class-a → class-b` in the order graph; thread B is the mutation,
/// acquiring the same two classes reversed. The second acquisition must
/// panic with a lock-order report.
#[test]
fn lock_order_inversion_is_caught() {
    sf_check::set_races_enabled(true);
    let (la, lb) = (0x7100usize, 0x7110usize);
    std::thread::Builder::new()
        .name("mut-order-a".into())
        .spawn(move || {
            hooks::lock_acquired(la, "mut.class-a");
            hooks::lock_acquired(lb, "mut.class-b");
            hooks::lock_released(lb);
            hooks::lock_released(la);
        })
        .unwrap()
        .join()
        .expect("consistent nesting is clean");
    let result = std::thread::Builder::new()
        .name("mut-order-b".into())
        .spawn(move || {
            // MUTATION: same classes, reversed nesting.
            hooks::lock_acquired(lb, "mut.class-b");
            hooks::lock_acquired(la, "mut.class-a");
        })
        .unwrap()
        .join();
    let msg = panic_text(result.expect_err("the reversed nesting must be reported"));
    assert!(msg.contains("lock-order"), "wrong report kind: {msg}");
    assert!(
        msg.contains("mut.class-a") && msg.contains("mut.class-b"),
        "report must name both classes: {msg}"
    );
}

/// A stub backend that loses writes: it acknowledges `insert(7)` and then
/// answers `contains(7) -> false`. No linearization order explains that
/// history, and the checker must say so.
#[test]
fn non_linearizable_stub_backend_is_caught() {
    let recorder = Arc::new(Recorder::new());
    let mut log = recorder.handle();
    let p = log.invoke(Op::Insert(7, 70));
    log.complete(p, Ret::Bool(true));
    let p = log.invoke(Op::Contains(7));
    log.complete(p, Ret::Bool(false)); // MUTATION: the stub lost the insert
    log.finish();
    let verdict = check_history(&[], &recorder.take());
    assert!(!verdict.ok, "the lost insert must fail the check");
    assert!(
        !verdict.message.is_empty(),
        "failure must carry an explanation"
    );

    // Control: the honest answer linearizes.
    let recorder = Arc::new(Recorder::new());
    let mut log = recorder.handle();
    let p = log.invoke(Op::Insert(7, 70));
    log.complete(p, Ret::Bool(true));
    let p = log.invoke(Op::Contains(7));
    log.complete(p, Ret::Bool(true));
    log.finish();
    let verdict = check_history(&[], &recorder.take());
    assert!(verdict.ok, "control history must pass: {}", verdict.message);
}

/// A stub that reorders a move's halves: the destination is visible while
/// the source also still answers — two keys simultaneously live off one
/// `move_entry`, which no sequential witness allows.
#[test]
fn double_visibility_during_move_is_caught() {
    let recorder = Arc::new(Recorder::new());
    let mut log = recorder.handle();
    let p = log.invoke(Op::Insert(1, 10));
    log.complete(p, Ret::Bool(true));
    let p = log.invoke(Op::Move(1, 2));
    log.complete(p, Ret::Bool(true));
    let p = log.invoke(Op::Contains(2));
    log.complete(p, Ret::Bool(true));
    let p = log.invoke(Op::Contains(1));
    log.complete(p, Ret::Bool(true)); // MUTATION: source still visible
    log.finish();
    let verdict = check_history(&[], &recorder.take());
    assert!(!verdict.ok, "double visibility must fail the check");
}
