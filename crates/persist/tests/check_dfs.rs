//! sf-check scenarios over the durability layer.
//!
//! * A DFS-explored cross-shard `move_entry` racing `checkpoint_sharded`:
//!   at every explored preemption (the `Move` and `Checkpoint` sched
//!   points plus the underlying STM boundaries) the on-disk state must
//!   recover to exactly the in-memory map — a checkpoint that snapshots
//!   mid-move must never persist a state the WAL cannot reconcile.
//! * A history-checked crash drill: a recorded run of inserts, deletes and
//!   cross-shard moves is cut off without a clean shutdown
//!   (`mem::forget`), recovered from disk, and the invocation/response
//!   timeline — including an operation still in flight at the kill point —
//!   must linearize to the recovered state (`check_crash_history`).

#![cfg(feature = "check")]

use sf_check::history::{check_crash_history, Op, Recorder, Ret};
use sf_check::sched::{explore, DfsOptions};
use sf_persist::{
    checkpoint_sharded, recover_sharded, sharded_with, DurableMap, TempDir, WalOptions,
};
use sf_stm::{Stm, StmConfig};
use sf_tree::{OptSpecFriendlyTree, ShardedHandle, ShardedMap, TxMap};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

type Map = ShardedMap<DurableMap<OptSpecFriendlyTree>>;

fn wal_opts() -> WalOptions {
    WalOptions {
        group: 8,
        window: Duration::ZERO,
        ..WalOptions::default()
    }
}

/// A 2-shard durable map with no background maintenance (the explorer
/// controls every interesting thread; rotations are exercised elsewhere).
fn open_map(base: &Path) -> Map {
    let (map, recovery) = sharded_with(2, base, wal_opts(), |_| {
        (
            Stm::new(StmConfig::ctl()),
            Arc::new(OptSpecFriendlyTree::new()),
            None,
        )
    })
    .expect("open sharded durable map");
    assert!(recovery.entries.is_empty(), "expected a fresh directory");
    map
}

/// Flush every shard's WAL, recover the directory from disk, and require
/// the recovered entries to equal the live in-memory contents.
fn assert_recovers_to_memory(
    map: &Map,
    h: &mut ShardedHandle<DurableMap<OptSpecFriendlyTree>>,
    base: &Path,
) {
    for shard in 0..map.shard_count() {
        map.shard_map(shard).flush().expect("flush shard WAL");
    }
    let recovered = recover_sharded(base, 2).expect("recover").entries;
    let live = map.range_collect(h, 0..=u64::MAX);
    assert_eq!(
        recovered, live,
        "recovered state diverges from the live map"
    );
}

#[test]
fn cross_shard_move_vs_checkpoint_recovers_exactly() {
    let dir = TempDir::new("dfs-move-vs-ckpt");
    let run = AtomicUsize::new(0);
    let opts = DfsOptions {
        max_schedules: 12,
        max_depth: 96,
        step_timeout: Duration::from_secs(2),
        max_spin_grants: 64,
    };
    let report = explore(&opts, |ctx| {
        // Fresh directory per schedule: recovery state must not leak
        // between explored interleavings.
        let base = dir
            .path()
            .join(format!("run-{}", run.fetch_add(1, Ordering::SeqCst)));
        let map = Arc::new(open_map(&base));
        let mut setup = map.register_sharded();
        for k in 1..=8u64 {
            assert!(map.insert(&mut setup, k, 100 + k));
        }
        let from = 3u64;
        let to = (9..32u64)
            .find(|t| map.shard_of(*t) != map.shard_of(from))
            .expect("a key hashing to the other shard");
        let done = Arc::new(AtomicUsize::new(0));
        {
            let map = Arc::clone(&map);
            let mut h = map.register_sharded();
            let done = Arc::clone(&done);
            let base = base.clone();
            ctx.spawn("mover", move || {
                assert!(map.move_entry(&mut h, from, to), "cross-shard move failed");
                assert_eq!(map.get(&mut h, to), Some(100 + from), "moved value lost");
                assert!(!map.contains(&mut h, from), "source key survived the move");
                if done.fetch_add(1, Ordering::SeqCst) == 1 {
                    assert_recovers_to_memory(&map, &mut h, &base);
                }
            });
        }
        {
            let map = Arc::clone(&map);
            let mut h = map.register_sharded();
            let done = Arc::clone(&done);
            let base = base.clone();
            ctx.spawn("checkpoint", move || {
                let reports = checkpoint_sharded(&map, &mut h).expect("checkpoint");
                assert_eq!(reports.len(), 2);
                if done.fetch_add(1, Ordering::SeqCst) == 1 {
                    assert_recovers_to_memory(&map, &mut h, &base);
                }
            });
        }
    });
    assert!(
        report.failure.is_none(),
        "schedule {:?} failed: {}",
        report.failure.as_ref().map(|f| &f.schedule),
        report.failure.as_ref().map_or("", |f| f.message.as_str())
    );
    assert!(report.schedules > 1, "explorer never branched");
}

#[test]
fn crash_drill_history_linearizes_to_recovered_state() {
    let dir = TempDir::new("check-crash-drill");
    let recorder = Arc::new(Recorder::new());
    {
        let map = open_map(dir.path());
        let mut h = map.register_sharded();
        let mut log = recorder.handle();
        for k in 1..=12u64 {
            let p = log.invoke(Op::Insert(k, 1000 + k));
            let ok = map.insert(&mut h, k, 1000 + k);
            log.complete(p, Ret::Bool(ok));
        }
        for k in [2u64, 5, 8] {
            let p = log.invoke(Op::Delete(k));
            let ok = map.delete(&mut h, k);
            log.complete(p, Ret::Bool(ok));
        }
        let from = 3u64;
        let to = (20..52u64)
            .find(|t| map.shard_of(*t) != map.shard_of(from))
            .expect("a key hashing to the other shard");
        let p = log.invoke(Op::Move(from, to));
        let ok = map.move_entry(&mut h, from, to);
        log.complete(p, Ret::Bool(ok));
        // One operation still in flight at the kill point: invoked,
        // executed, never acknowledged. The crash checker may linearize it
        // with any outcome or drop it.
        let _in_flight = log.invoke(Op::Insert(99, 9999));
        map.insert(&mut h, 99, 9999);
        log.finish();
        for shard in 0..map.shard_count() {
            map.shard_map(shard).flush().expect("flush shard WAL");
        }
        // Simulated crash: skip the clean shutdown (which would drain and
        // join the WAL writers) so recovery sees exactly the flushed state.
        std::mem::forget(map);
    }
    let recovered = recover_sharded(dir.path(), 2).expect("recover").entries;
    let events = recorder.take();
    let verdict = check_crash_history(&[], &events, &recovered);
    assert!(
        verdict.ok,
        "crash history is not linearizable against the recovered state: {}",
        verdict.message
    );
    assert!(verdict.ops >= 17, "history lost events: {}", verdict.ops);
}
